//! Scenario study (§II-C of the paper): different serving use cases weight
//! metrics differently. Runs the chatbot / live-translation /
//! batch-analytics scenarios on the CPU and both GPUs and shows which
//! platform wins each scenario's *primary* metric.
//!
//! ```sh
//! cargo run --example chatbot_latency
//! ```

use llmsim::core::{Backend, CpuBackend, GpuBackend, InferenceReport, Request, SimError};
use llmsim::model::families;
use llmsim::report::Table;
use llmsim::workload::{PrimaryMetric, Scenario};

/// Extracts a scenario's primary metric; for latency metrics smaller is
/// better, so invert to "score" where bigger wins.
fn score(metric: PrimaryMetric, r: &InferenceReport) -> f64 {
    match metric {
        PrimaryMetric::Ttft => 1.0 / r.ttft.as_f64(),
        PrimaryMetric::Tpot => 1.0 / r.tpot.as_f64(),
        PrimaryMetric::E2eLatency => 1.0 / r.e2e_latency.as_f64(),
        PrimaryMetric::Throughput => r.e2e_throughput(),
    }
}

fn main() -> Result<(), SimError> {
    let model = families::llama2_13b();
    let cpu = CpuBackend::paper_spr();
    let a100 = GpuBackend::paper_a100();
    let h100 = GpuBackend::paper_h100();

    println!("Scenario study on {model}\n");
    let mut table = Table::new(vec![
        "scenario".into(),
        "primary metric".into(),
        "CPU".into(),
        "A100".into(),
        "H100".into(),
        "winner".into(),
    ]);

    for scenario in Scenario::all() {
        let req = Request::new(scenario.batch, scenario.prompt_len, scenario.gen_len);
        let rc = cpu.run(&model, &req)?;
        let ra = a100.run(&model, &req)?;
        let rh = h100.run(&model, &req)?;
        let display = |r: &InferenceReport| match scenario.metric {
            PrimaryMetric::Ttft => format!("{:.1} ms", r.ttft.as_millis()),
            PrimaryMetric::Tpot => format!("{:.1} ms", r.tpot.as_millis()),
            PrimaryMetric::E2eLatency => format!("{:.2} s", r.e2e_latency.as_f64()),
            PrimaryMetric::Throughput => format!("{:.0} tok/s", r.e2e_throughput()),
        };
        let winner = [("CPU", &rc), ("A100", &ra), ("H100", &rh)]
            .into_iter()
            .max_by(|a, b| score(scenario.metric, a.1).total_cmp(&score(scenario.metric, b.1)))
            .map(|(n, _)| n)
            .unwrap_or("?");
        table.row(vec![
            scenario.name.clone(),
            scenario.metric.to_string(),
            display(&rc),
            display(&ra),
            display(&rh),
            winner.to_owned(),
        ]);
    }
    print!("{table}");
    println!("\nFor a 13B model that fits GPU memory the GPUs win every scenario —");
    println!("the CPU case (Key Finding #4) appears once models outgrow the GPU.");
    Ok(())
}
