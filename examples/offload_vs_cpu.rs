//! The paper's headline crossover (Key Finding #4): for models that exceed
//! GPU memory, an AMX CPU beats offloading-based GPU inference.
//!
//! Sweeps every paper model on the SPR CPU, A100 and H100 at batch 1 and
//! prints who wins and by how much, marking offloaded GPU runs.
//!
//! ```sh
//! cargo run --example offload_vs_cpu
//! ```

use llmsim::core::{Backend, CpuBackend, GpuBackend, Request, SimError};
use llmsim::model::families;
use llmsim::report::Table;

fn main() -> Result<(), SimError> {
    let cpu = CpuBackend::paper_spr();
    let a100 = GpuBackend::paper_a100();
    let h100 = GpuBackend::paper_h100();
    let req = Request::paper_default(1);

    let mut table = Table::new(vec![
        "model".into(),
        "CPU tok/s".into(),
        "A100 tok/s".into(),
        "H100 tok/s".into(),
        "best".into(),
    ]);

    for model in families::all_paper_models() {
        let c = cpu.run(&model, &req)?;
        let a = a100.run(&model, &req)?;
        let h = h100.run(&model, &req)?;
        let mark = |r: &llmsim::core::InferenceReport| {
            if r.offload.is_some() {
                format!("{:.2}*", r.e2e_throughput())
            } else {
                format!("{:.2}", r.e2e_throughput())
            }
        };
        let best = [
            ("CPU", c.e2e_throughput()),
            ("A100", a.e2e_throughput()),
            ("H100", h.e2e_throughput()),
        ]
        .into_iter()
        .max_by(|x, y| x.1.total_cmp(&y.1))
        .map(|(n, _)| n)
        .unwrap_or("?");
        table.row(vec![
            model.name.clone(),
            mark(&c),
            mark(&a),
            mark(&h),
            best.to_owned(),
        ]);
    }

    println!("End-to-end throughput at batch 1 ('*' = GPU offloading over PCIe)");
    println!();
    print!("{table}");
    println!();
    println!("Once a model no longer fits GPU memory, every token streams the");
    println!("weights over PCIe and the CPU takes the lead (Key Finding #4).");
    Ok(())
}
