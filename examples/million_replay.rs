//! Million-request replay: seeded synthetic trace → deterministic parallel
//! shard replay with streaming span logs.
//!
//! A `service_day` trace (bursty MMPP arrivals, chat/summarize/codegen
//! length mixture) is dealt round-robin across fleet shards — independent
//! cells, each a full copy of the fleet — and the shards replay on scoped
//! worker threads while each streams its span log to a TSV file with
//! bounded memory. The merged report is byte-identical for any worker
//! thread count (proptested in `crates/cluster/tests/fastpath.rs`); this
//! example demonstrates it directly by replaying twice.
//!
//! ```sh
//! cargo run --release --example million_replay            # 1e6 requests
//! cargo run --release --example million_replay -- 100000  # smaller run
//! ```

use llmsim::cluster::{
    shard_fleet, simulate_shards_traced, ClusterConfig, ClusterRequest, JoinShortestQueue,
    ReplicaConfig, RouterPolicy,
};
use llmsim::core::{CostModel, CpuBackend, StreamSink};
use llmsim::model::families;
use llmsim::workload::synthetic::{synthesize, SyntheticSpec};
use std::fs::File;
use std::io::BufWriter;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("request count must be an integer"))
        .unwrap_or(1_000_000);
    let threads = std::thread::available_parallelism().map_or(4, |t| t.get());
    let shard_count = threads.max(4);

    // Eight warm Sapphire Rapids replicas sharing one backend Arc — a
    // homogeneous CPU cell serving OPT-13B.
    let spr: Arc<dyn CostModel + Send + Sync> = Arc::new(CpuBackend::paper_spr());
    let config = ClusterConfig::new(
        (0..8).map(|_| ReplicaConfig::warm(spr.clone())).collect(),
        vec![families::opt_13b()],
    );

    let t0 = Instant::now();
    let requests: Vec<ClusterRequest> = synthesize(&SyntheticSpec::service_day(0x5EED, n, 1.5))
        .into_iter()
        .enumerate()
        .map(|(i, r)| ClusterRequest {
            id: i,
            arrival_s: r.arrival_s,
            prompt_len: r.prompt_len,
            gen_len: r.gen_len,
            ..ClusterRequest::default()
        })
        .collect();
    println!(
        "synthesized {n} requests spanning {:.0}s of simulated time in {:.2}s",
        requests.last().map_or(0.0, |r| r.arrival_s),
        t0.elapsed().as_secs_f64()
    );

    // Deal the trace across shards and replay in parallel, each shard
    // streaming its spans straight to disk.
    let shards = shard_fleet(&config, &requests, shard_count);
    let make_router: &(dyn Fn(usize) -> Box<dyn RouterPolicy> + Sync) =
        &|_| Box::new(JoinShortestQueue);
    let span_dir = std::env::temp_dir();
    let mut sinks: Vec<StreamSink<BufWriter<File>>> = (0..shards.len())
        .map(|ix| {
            let path = span_dir.join(format!("million_replay.shard{ix}.tsv"));
            StreamSink::tsv(BufWriter::new(
                File::create(&path).expect("create span file"),
            ))
        })
        .collect();

    let t1 = Instant::now();
    let report = simulate_shards_traced(&shards, make_router, threads, &mut sinks);
    let wall = t1.elapsed().as_secs_f64();
    for sink in sinks {
        sink.finish_into()
            .expect("flush span file")
            .into_inner()
            .expect("flush span file");
    }

    println!(
        "replayed {} shards on {} threads in {:.2}s ({:.0} req/s of wall time)",
        shards.len(),
        threads,
        wall,
        n as f64 / wall.max(1e-9),
    );
    println!(
        "completed={} rejected={} events={} peak_in_flight={} goodput={:.0} tok/s",
        report.completed(),
        report.rejected(),
        report.events_processed,
        report.peak_in_flight,
        report.goodput_tok_s(),
    );
    println!(
        "span logs: {}/million_replay.shard{{0..{}}}.tsv",
        span_dir.display(),
        shards.len() - 1
    );

    // Determinism spot-check: one worker thread, same merged bytes.
    let serial = llmsim::cluster::simulate_shards(&shards, make_router, 1);
    assert_eq!(
        serial.render(),
        report.render(),
        "merged report must not depend on the worker thread count"
    );
    println!("determinism check: 1-thread replay renders byte-identical ✓");
}
