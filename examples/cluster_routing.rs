//! Cluster extension: cost-model-aware routing on a heterogeneous fleet.
//!
//! A mixed OPT-13B / OPT-66B request stream hits a fleet of {ICL, SPR,
//! A100, H100} replicas. The 66B model offloads on both GPUs (Fig. 18's
//! PCIe streaming cliff), so the latency-predicting router sends it to the
//! CPUs and keeps the resident 13B traffic on the GPUs — the paper's
//! Fig. 17/19 crossover applied per request instead of per deployment.
//!
//! ```sh
//! cargo run --example cluster_routing
//! ```

use llmsim::cluster::{
    simulate_fleet, ClusterConfig, ClusterRequest, HeteroAware, ReplicaConfig, RoundRobin,
    RouterPolicy, SloTargets,
};
use llmsim::core::{CostModel, CpuBackend, GpuBackend};
use llmsim::model::families;
use llmsim::report::Table;
use llmsim::workload::ArrivalTrace;
use std::sync::Arc;

fn main() {
    let fleet = ClusterConfig::new(
        vec![
            ReplicaConfig::warm(
                Arc::new(CpuBackend::paper_icl()) as Arc<dyn CostModel + Send + Sync>
            ),
            ReplicaConfig::warm(
                Arc::new(CpuBackend::paper_spr()) as Arc<dyn CostModel + Send + Sync>
            ),
            ReplicaConfig::warm(
                Arc::new(GpuBackend::paper_a100()) as Arc<dyn CostModel + Send + Sync>
            ),
            ReplicaConfig::warm(
                Arc::new(GpuBackend::paper_h100()) as Arc<dyn CostModel + Send + Sync>
            ),
        ],
        vec![families::opt_13b(), families::opt_66b()],
    )
    .with_slo(SloTargets {
        ttft_s: 8.0,
        e2e_s: 60.0,
    });

    // 36 Poisson arrivals; every third request is the offload-heavy 66B.
    let requests: Vec<ClusterRequest> = ArrivalTrace::poisson(7, 36, 0.75)
        .arrivals
        .iter()
        .enumerate()
        .map(|(i, &arrival_s)| ClusterRequest {
            id: i,
            arrival_s,
            prompt_len: 128 + 128 * (i as u64 % 3),
            gen_len: 16 + 16 * (i as u64 % 3),
            model: usize::from(i % 3 == 0),
            ..ClusterRequest::default()
        })
        .collect();

    println!(
        "Routing {} requests (1/3 OPT-66B, 2/3 OPT-13B) across ICL, SPR, A100, H100\n",
        requests.len()
    );

    let mut comparison = Table::new(vec![
        "router".into(),
        "goodput tok/s".into(),
        "SLO att. %".into(),
        "p99 ttft (s)".into(),
        "p99 e2e (s)".into(),
    ]);
    let mut routers: Vec<Box<dyn RouterPolicy>> =
        vec![Box::new(RoundRobin::new()), Box::new(HeteroAware)];
    for router in &mut routers {
        let report = simulate_fleet(&fleet, &mut **router, &requests);
        comparison.row(vec![
            report.router.clone(),
            format!("{:.1}", report.goodput_tok_s()),
            format!("{:.0}", report.slo_attainment() * 100.0),
            format!("{:.2}", report.ttft_percentile(99.0)),
            format!("{:.2}", report.e2e_percentile(99.0)),
        ]);
    }
    println!("{}", comparison.render());

    // Where did the cost-aware router put each model?
    let report = simulate_fleet(&fleet, &mut HeteroAware, &requests);
    let mut placement = Table::new(vec![
        "replica".into(),
        "OPT-13B reqs".into(),
        "OPT-66B reqs".into(),
        "resident 66B?".into(),
    ]);
    for (i, stats) in report.replicas.iter().enumerate() {
        let count = |m: usize| {
            report
                .outcomes
                .iter()
                .filter(|o| o.replica == Some(i) && o.model == m)
                .count()
        };
        placement.row(vec![
            stats.name.clone(),
            count(0).to_string(),
            count(1).to_string(),
            if fleet.replicas[i].backend.holds_resident(&fleet.models[1]) {
                "yes".into()
            } else {
                "no (offloads)".into()
            },
        ]);
    }
    println!(
        "\nhetero-aware placement — offloaded models stay on CPUs, resident on GPUs:\n\n{}",
        placement.render()
    );
}
