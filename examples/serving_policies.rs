//! Continuous-batching extension (§VII-C): replay a Poisson arrival trace
//! with ShareGPT-like heavy-tailed lengths against the SPR CPU under three
//! scheduling policies — static batching (FasterTransformer), iteration-
//! level (Orca/vLLM), and chunked prefill (Sarathi-Serve) — and compare
//! throughput, tail latency, and the worst decode stall.
//!
//! ```sh
//! cargo run --example serving_policies -- 6.0
//! ```
//! (argument: arrival rate in requests/second, default 4.0)

use llmsim::core::serving::{simulate, SchedulingPolicy, ServingConfig, ServingRequest};
use llmsim::core::CpuBackend;
use llmsim::model::families;
use llmsim::report::Table;
use llmsim::workload::{sharegpt_like_lengths, ArrivalTrace};

fn main() {
    let rate: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4.0);
    let model = families::opt_6_7b();
    let backend = CpuBackend::paper_spr();

    // 48 requests with ShareGPT-like heavy-tailed lengths.
    let n = 48;
    let arrivals = ArrivalTrace::poisson(42, n, rate);
    let lengths = sharegpt_like_lengths(42, n);
    let requests: Vec<ServingRequest> = arrivals
        .arrivals
        .iter()
        .zip(&lengths)
        .enumerate()
        .map(|(i, (&t, &(prompt_len, gen_len)))| ServingRequest {
            id: i as u64,
            arrival_s: t,
            prompt_len,
            gen_len,
        })
        .collect();

    println!(
        "Serving {} on SPR Max 9468 (quad_flat, 48c) — {n} ShareGPT-like requests at {rate:.1} req/s\n",
        model.name,
    );

    let mut table = Table::new(vec![
        "policy".into(),
        "tok/s".into(),
        "mean TTFT (s)".into(),
        "p99 E2E (s)".into(),
        "max decode stall (s)".into(),
    ]);
    for policy in [
        SchedulingPolicy::Static,
        SchedulingPolicy::IterationLevel,
        SchedulingPolicy::ChunkedPrefill { chunk_tokens: 256 },
    ] {
        let rep = simulate(
            &backend,
            &model,
            &ServingConfig {
                max_batch: 8,
                policy,
            },
            &requests,
        );
        table.row(vec![
            policy.to_string(),
            format!("{:.1}", rep.throughput()),
            format!("{:.2}", rep.mean_ttft()),
            format!("{:.2}", rep.e2e_percentile(99.0)),
            format!("{:.3}", rep.max_decode_stall_s),
        ]);
    }
    print!("{table}");
    println!("\nIteration-level scheduling avoids padding to the batch's longest");
    println!("generation; chunked prefill additionally bounds the decode stall a");
    println!("long prompt causes — the Orca and Sarathi-Serve results the paper's");
    println!("related-work section describes.");
}
