//! Server-tuning assistant: sweeps NUMA configurations and core counts for
//! a model of your choice and recommends the best setting per metric —
//! the practical takeaway of Key Findings #2 and #3.
//!
//! ```sh
//! cargo run --example numa_tuning -- LLaMA2-13B
//! ```

use llmsim::core::{Backend, CpuBackend, Request, SimError};
use llmsim::hw::{presets, NumaConfig};
use llmsim::model::{families, DType};
use llmsim::report::Table;

fn main() -> Result<(), SimError> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "LLaMA2-13B".to_owned());
    let model = families::by_name(&name)
        .ok_or_else(|| llmsim::core::SimError::InvalidRequest(format!("unknown model {name}")))?;
    let req = Request::paper_default(8);

    println!("Tuning SPR Max 9468 for {model} at {req}\n");

    let mut table = Table::new(vec![
        "config".into(),
        "TTFT (ms)".into(),
        "TPOT (ms)".into(),
        "E2E (s)".into(),
        "tok/s".into(),
    ]);

    let mut best: Option<(String, f64)> = None;
    for numa in NumaConfig::PAPER_SWEEP {
        for cores in [12u32, 24, 48, 96] {
            let backend = CpuBackend::new(presets::spr_max_9468(), numa, cores, DType::Bf16)?;
            let r = backend.run(&model, &req)?;
            let label = format!("{numa} {cores}c");
            table.row(vec![
                label.clone(),
                format!("{:.1}", r.ttft.as_millis()),
                format!("{:.1}", r.tpot.as_millis()),
                format!("{:.2}", r.e2e_latency.as_f64()),
                format!("{:.1}", r.e2e_throughput()),
            ]);
            let tput = r.e2e_throughput();
            if best.as_ref().is_none_or(|(_, b)| tput > *b) {
                best = Some((label, tput));
            }
        }
    }
    print!("{table}");
    if let Some((label, tput)) = best {
        println!("\nRecommended configuration: {label} ({tput:.1} tok/s)");
        println!("The paper's conclusion — quad_flat with one full socket — should win.");
    }
    Ok(())
}
