//! Quickstart: simulate LLaMA2-13B inference on the paper's tuned SPR Max
//! configuration and print the full metric set.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use llmsim::core::{Backend, CpuBackend, Request, SimError};
use llmsim::model::families;

fn main() -> Result<(), SimError> {
    // The paper's best CPU configuration: Xeon Max 9468, quad_flat NUMA
    // mode, 48 cores, BF16 (Key Findings #2 and #3).
    let spr = CpuBackend::paper_spr();
    let model = families::llama2_13b();

    println!("backend : {}", spr.name());
    println!("model   : {model}");
    println!();

    for batch in [1, 8, 32] {
        // The paper's standard workload: 128 input tokens, 32 output tokens.
        let report = spr.run(&model, &Request::paper_default(batch))?;
        println!("batch {batch:>2}:");
        println!("  TTFT            {}", report.ttft);
        println!("  TPOT            {}", report.tpot);
        println!("  E2E latency     {}", report.e2e_latency);
        println!("  throughput      {:.1} tok/s", report.e2e_throughput());
        println!(
            "  decode memory-bound fraction {:.0}%",
            report.decode.memory_bound_fraction * 100.0
        );
        println!("  LLC MPKI        {:.1}", report.counters.llc_mpki);
        println!();
    }
    Ok(())
}
