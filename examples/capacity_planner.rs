//! Capacity planner: the §III arithmetic as a tool. For every paper model
//! and a chosen workload, prints weight/KV footprints, how many GPUs the
//! weights alone need, whether the state fits each platform, and the
//! simulated throughput of the viable options.
//!
//! ```sh
//! cargo run --example capacity_planner -- 32 4096
//! ```
//! (arguments: batch size, sequence length; defaults 32 and 4096)

use llmsim::core::{Backend, CpuBackend, GpuBackend, Request, SimError};
use llmsim::hw::presets;
use llmsim::model::{families, footprint, DType};
use llmsim::report::Table;

fn main() -> Result<(), SimError> {
    let mut args = std::env::args().skip(1);
    let batch: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(32);
    let seq: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(4096);

    let cpu = CpuBackend::paper_spr();
    let h100 = GpuBackend::paper_h100();
    let h100_mem = presets::h100_80gb().memory_capacity;

    println!("Capacity plan for batch {batch}, context {seq} (BF16)\n");
    let mut table = Table::new(vec![
        "model".into(),
        "weights".into(),
        "KV cache".into(),
        "min H100s".into(),
        "fits SPR".into(),
        "SPR tok/s".into(),
        "H100 tok/s".into(),
    ]);

    for model in families::all_paper_models() {
        let weights = model.weight_bytes(DType::Bf16);
        let kv = model.kv_cache_bytes(seq, batch, DType::Bf16);
        let gpus = footprint::min_gpus_for_weights(&model, DType::Bf16, h100_mem);
        // Plan against a realistic request: most of the context is prompt.
        let req = Request::new(batch, seq.saturating_sub(32).max(1), 32);
        let spr_run = cpu.run(&model, &req);
        let h100_run = h100.run(&model, &req);
        let show = |r: &Result<llmsim::core::InferenceReport, SimError>| match r {
            Ok(rep) if rep.offload.is_some() => format!("{:.1}*", rep.e2e_throughput()),
            Ok(rep) => format!("{:.1}", rep.e2e_throughput()),
            Err(_) => "-".to_owned(),
        };
        table.row(vec![
            model.name.clone(),
            format!("{weights}"),
            format!("{kv}"),
            gpus.to_string(),
            if spr_run.is_ok() {
                "yes".into()
            } else {
                "no".into()
            },
            show(&spr_run),
            show(&h100_run),
        ]);
    }
    print!("{table}");
    println!("\n'*' = H100 ran offloading; '-' = state exceeds the platform's memory.");
    Ok(())
}
