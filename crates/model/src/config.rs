//! Decoder-only transformer model configurations.

use crate::dtype::DType;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Model family (affects FFN structure, positional encoding, biases).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Family {
    /// Meta OPT: learned positional embeddings, GELU FFN (2 matrices), biases.
    Opt,
    /// Meta LLaMA-2: RoPE, SwiGLU FFN (3 matrices), no biases, RMSNorm.
    Llama2,
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Family::Opt => "OPT",
            Family::Llama2 => "LLaMA-2",
        };
        f.write_str(s)
    }
}

/// FFN block structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FfnKind {
    /// Two matrices with a GELU between them (OPT).
    Gelu,
    /// Three matrices with SiLU gating (LLaMA): gate, up, down.
    SwiGlu,
}

impl FfnKind {
    /// How many `d_model × d_ff`-sized weight matrices the block holds.
    #[must_use]
    pub const fn matrices(self) -> u64 {
        match self {
            FfnKind::Gelu => 2,
            FfnKind::SwiGlu => 3,
        }
    }
}

/// Architecture hyper-parameters of a decoder-only transformer.
///
/// # Examples
///
/// ```
/// use llmsim_model::families;
/// use llmsim_model::dtype::DType;
///
/// let m = families::opt_66b();
/// // §I: "OPT-66B with a sequence length of 4096 and a batch size of 32
/// //      requires 288GB of memory for KV caching."
/// let kv = m.kv_cache_bytes(4096, 32, DType::Bf16);
/// assert!((kv.as_gib() - 288.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Human name, e.g. "LLaMA2-13B".
    pub name: String,
    /// Model family.
    pub family: Family,
    /// Number of decoder layers.
    pub n_layers: u64,
    /// Hidden dimension.
    pub d_model: u64,
    /// Number of attention (query) heads.
    pub n_heads: u64,
    /// Number of key/value heads (`< n_heads` under grouped-query attention).
    pub n_kv_heads: u64,
    /// FFN inner dimension.
    pub d_ff: u64,
    /// FFN structure.
    pub ffn: FfnKind,
    /// Vocabulary size.
    pub vocab_size: u64,
    /// Maximum positions (sizes OPT's learned positional embedding table).
    pub max_positions: u64,
    /// Whether linear layers carry bias vectors (true for OPT).
    pub biases: bool,
    /// Whether input and output embeddings share one matrix (true for OPT).
    pub tied_embeddings: bool,
}

impl ModelConfig {
    /// Per-head dimension.
    ///
    /// # Panics
    ///
    /// Panics if `d_model` is not divisible by `n_heads`.
    #[must_use]
    pub fn d_head(&self) -> u64 {
        assert!(
            self.d_model.is_multiple_of(self.n_heads),
            "{}: d_model {} not divisible by {} heads",
            self.name,
            self.d_model,
            self.n_heads
        );
        self.d_model / self.n_heads
    }

    /// Total key (or value) dimension per token: `n_kv_heads × d_head`.
    #[must_use]
    pub fn d_kv(&self) -> u64 {
        self.n_kv_heads * self.d_head()
    }

    /// Query heads served by each KV head (1 without GQA).
    #[must_use]
    pub fn gqa_group(&self) -> u64 {
        self.n_heads / self.n_kv_heads
    }

    /// Parameters in one decoder layer.
    #[must_use]
    pub fn params_per_layer(&self) -> u64 {
        let d = self.d_model;
        let attn = d * d          // Q projection
            + 2 * d * self.d_kv() // K, V projections
            + d * d; // output projection
        let ffn = self.ffn.matrices() * d * self.d_ff;
        let norms = 2 * d;
        let bias = if self.biases {
            // Q/K/V/O biases + two FFN biases + norm biases.
            2 * d + 2 * self.d_kv() + 2 * self.d_ff.max(d) + 2 * d
        } else {
            0
        };
        attn + ffn + norms + bias
    }

    /// Total parameter count (layers + embeddings + final norm/head).
    #[must_use]
    pub fn param_count(&self) -> u64 {
        let embed_in = self.vocab_size * self.d_model;
        let embed_pos = match self.family {
            Family::Opt => self.max_positions * self.d_model,
            Family::Llama2 => 0, // RoPE has no learned table
        };
        let embed_out = if self.tied_embeddings {
            0
        } else {
            self.vocab_size * self.d_model
        };
        let final_norm = self.d_model;
        self.n_layers * self.params_per_layer() + embed_in + embed_pos + embed_out + final_norm
    }

    /// Memory footprint of the weights in `dtype` (Fig. 6 of the paper uses
    /// FP16).
    #[must_use]
    pub fn weight_bytes(&self, dtype: DType) -> llmsim_hw::Bytes {
        llmsim_hw::Bytes::new(self.param_count() * dtype.bytes())
    }

    /// KV-cache bytes appended per token per sequence (all layers, K and V).
    ///
    /// This is the §II-B formula `2 (K/V) × n_layers × d_kv × dtype_bytes`
    /// evaluated for one token of one sequence.
    #[must_use]
    pub fn kv_bytes_per_token(&self, dtype: DType) -> u64 {
        2 * self.n_layers * self.d_kv() * dtype.bytes()
    }

    /// Total KV-cache footprint at `seq_len` context across `batch`
    /// sequences (§II-B: `2B × 2 × n_layers × d_model × n_seq × n_batch` for
    /// non-GQA models).
    #[must_use]
    pub fn kv_cache_bytes(&self, seq_len: u64, batch: u64, dtype: DType) -> llmsim_hw::Bytes {
        llmsim_hw::Bytes::new(self.kv_bytes_per_token(dtype) * seq_len * batch)
    }

    /// Peak activation working set for a forward pass over `tokens` tokens
    /// (coarse: the widest intermediate is the FFN hidden state, plus the
    /// attention probability matrix during prefill).
    #[must_use]
    pub fn activation_bytes(&self, tokens: u64, seq_len: u64, dtype: DType) -> llmsim_hw::Bytes {
        let ffn_hidden = tokens * self.d_ff * dtype.bytes();
        let residuals = 2 * tokens * self.d_model * dtype.bytes();
        // Attention probabilities are materialized per head-row in blocks;
        // count one head's worth per token as the live slice.
        let attn_probs = tokens * seq_len * dtype.bytes();
        llmsim_hw::Bytes::new(ffn_hidden + residuals + attn_probs)
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_layers == 0 {
            return Err(format!("{}: zero layers", self.name));
        }
        if !self.d_model.is_multiple_of(self.n_heads) {
            return Err(format!("{}: d_model not divisible by heads", self.name));
        }
        if !self.n_heads.is_multiple_of(self.n_kv_heads) {
            return Err(format!("{}: heads not divisible by kv heads", self.name));
        }
        if self.vocab_size == 0 {
            return Err(format!("{}: empty vocabulary", self.name));
        }
        Ok(())
    }

    /// Whether this model can be tensor-parallelized `degree` ways:
    /// attention heads, KV heads, FFN columns, hidden dim, and vocabulary
    /// must all split evenly so every rank's shard is a well-formed graph
    /// (the dims [`crate::OpGraph::with_tensor_parallel`] divides).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first indivisible
    /// dimension.
    pub fn supports_tensor_parallel(&self, degree: u64) -> Result<(), String> {
        if degree == 0 {
            return Err(format!("{}: zero tensor-parallel degree", self.name));
        }
        for (dim, what) in [
            (self.n_heads, "attention heads"),
            (self.n_kv_heads, "KV heads"),
            (self.d_model, "hidden dim"),
            (self.d_ff, "FFN dim"),
            (self.vocab_size, "vocabulary"),
        ] {
            if !dim.is_multiple_of(degree) {
                return Err(format!(
                    "{}: {what} ({dim}) not divisible by TP degree {degree}",
                    self.name
                ));
            }
        }
        Ok(())
    }
}

impl fmt::Display for ModelConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} layers, d={}, {} heads, {:.1}B params)",
            self.name,
            self.n_layers,
            self.d_model,
            self.n_heads,
            self.param_count() as f64 / 1e9
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::dtype::DType;
    use crate::families;

    #[test]
    fn param_counts_match_model_names() {
        // Each model's derived parameter count must land within 6% of its
        // nameplate size.
        for m in families::all_paper_models() {
            let billions = m.param_count() as f64 / 1e9;
            let nameplate = families::nameplate_billions(&m.name);
            let rel = (billions - nameplate).abs() / nameplate;
            assert!(
                rel < 0.06,
                "{}: derived {billions:.2}B vs nameplate {nameplate}B",
                m.name
            );
        }
    }

    #[test]
    fn gqa_shrinks_kv() {
        let llama70 = families::llama2_70b();
        assert_eq!(llama70.gqa_group(), 8);
        assert_eq!(llama70.d_kv(), 1024);
        let llama13 = families::llama2_13b();
        assert_eq!(llama13.gqa_group(), 1);
        assert_eq!(llama13.d_kv(), llama13.d_model);
    }

    #[test]
    fn paper_kv_example_opt66b() {
        // §I: OPT-66B, seq 4096, batch 32 → 288 GB of KV cache.
        let kv = families::opt_66b().kv_cache_bytes(4096, 32, DType::Bf16);
        assert!((kv.as_gib() - 288.0).abs() < 1.0, "{}", kv);
    }

    #[test]
    fn weight_footprint_examples() {
        // §III: LLaMA2-70B needs at least two H100-80GB for FP16 weights.
        let w = families::llama2_70b().weight_bytes(DType::Fp16);
        assert!(w.as_gib() > 80.0 && w.as_gib() < 160.0, "{w}");
        // OPT-66B ≈ 132 GB FP16, exceeding one H100.
        let w66 = families::opt_66b().weight_bytes(DType::Fp16);
        assert!(w66.as_gib() > 80.0, "{w66}");
    }

    #[test]
    fn validate_accepts_all_presets() {
        for m in families::all_paper_models() {
            m.validate().unwrap();
        }
    }

    #[test]
    fn activation_bytes_grow_with_tokens() {
        let m = families::llama2_7b();
        let a1 = m.activation_bytes(128, 128, DType::Bf16);
        let a2 = m.activation_bytes(4096, 4096, DType::Bf16);
        assert!(a2 > a1);
    }
}
