//! Phase operator-graph construction.
//!
//! [`prefill_graph`] and [`decode_step_graph`] expand a [`ModelConfig`] into
//! the exact operator sequence one forward pass executes, with per-operator
//! FLOP/byte costs. The engine consumes these graphs; the footprint and
//! counter models reuse their totals.

use crate::config::{Family, FfnKind, ModelConfig};
use crate::dtype::DType;
use crate::ops::{Matmul, OpClass, OpKind, Operator};
use crate::phases::Phase;
use serde::{Deserialize, Serialize};

/// Aggregate costs of a phase graph.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct GraphTotals {
    /// Total FLOPs.
    pub flops: f64,
    /// Weight bytes streamed.
    pub weight_bytes: u64,
    /// Activation bytes moved.
    pub act_bytes: u64,
    /// KV-cache bytes read.
    pub kv_read_bytes: u64,
    /// KV-cache bytes written.
    pub kv_write_bytes: u64,
}

impl GraphTotals {
    /// All bytes moved.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.weight_bytes + self.act_bytes + self.kv_read_bytes + self.kv_write_bytes
    }

    /// FLOP/byte over the whole phase.
    #[must_use]
    pub fn arithmetic_intensity(&self) -> f64 {
        let b = self.total_bytes();
        if b == 0 {
            0.0
        } else {
            self.flops / b as f64
        }
    }
}

/// The operator graph of one inference phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpGraph {
    /// Which phase this graph describes.
    pub phase: Phase,
    /// Operators in execution order (each with its own repeat count).
    pub ops: Vec<Operator>,
}

impl OpGraph {
    /// Sums costs across all operators × repeats.
    #[must_use]
    pub fn totals(&self) -> GraphTotals {
        let mut t = GraphTotals::default();
        for op in &self.ops {
            let r = op.repeat as f64;
            t.flops += op.flops() * r;
            t.weight_bytes += op.weight_bytes() * op.repeat;
            t.act_bytes += op.act_bytes() * op.repeat;
            t.kv_read_bytes += op.kv_read_bytes() * op.repeat;
            t.kv_write_bytes += op.kv_write_bytes() * op.repeat;
        }
        t
    }

    /// Totals restricted to one operator class.
    #[must_use]
    pub fn totals_for_class(&self, class: OpClass) -> GraphTotals {
        let mut t = GraphTotals::default();
        for op in self.ops.iter().filter(|o| o.class() == class) {
            let r = op.repeat as f64;
            t.flops += op.flops() * r;
            t.weight_bytes += op.weight_bytes() * op.repeat;
            t.act_bytes += op.act_bytes() * op.repeat;
            t.kv_read_bytes += op.kv_read_bytes() * op.repeat;
            t.kv_write_bytes += op.kv_write_bytes() * op.repeat;
        }
        t
    }

    /// Rewrites every weight-carrying operator to stream weights in
    /// `dtype` (weight-only quantization: activations, KV cache and compute
    /// dtype are unchanged; only the weight stream shrinks).
    #[must_use]
    pub fn with_weight_dtype(mut self, dtype: DType) -> OpGraph {
        for op in &mut self.ops {
            if op.weight_bytes() > 0 {
                *op = op.clone().with_weight_dtype(dtype);
            }
        }
        self
    }

    /// Applies H2O-style KV-cache compression (Zhang et al., the paper's
    /// ref. \[58\]): only a `keep_ratio` fraction of cached tokens (the
    /// "heavy hitters" plus a recency window) is attended, scaling both the
    /// attention FLOPs and the KV read traffic.
    ///
    /// # Panics
    ///
    /// Panics if `keep_ratio` is not in `(0, 1]`.
    #[must_use]
    pub fn with_kv_keep_ratio(mut self, keep_ratio: f64) -> OpGraph {
        assert!(
            keep_ratio > 0.0 && keep_ratio <= 1.0,
            "keep ratio must be in (0,1], got {keep_ratio}"
        );
        for op in &mut self.ops {
            match &mut op.kind {
                crate::ops::OpKind::AttentionScore {
                    shape,
                    kv_read_bytes,
                } => {
                    shape.n = ((shape.n as f64 * keep_ratio).ceil() as u64).max(1);
                    *kv_read_bytes = (*kv_read_bytes as f64 * keep_ratio).ceil() as u64;
                }
                crate::ops::OpKind::AttentionContext {
                    shape,
                    kv_read_bytes,
                } => {
                    shape.k = ((shape.k as f64 * keep_ratio).ceil() as u64).max(1);
                    *kv_read_bytes = (*kv_read_bytes as f64 * keep_ratio).ceil() as u64;
                }
                crate::ops::OpKind::Softmax { cols, .. } => {
                    *cols = ((*cols as f64 * keep_ratio).ceil() as u64).max(1);
                }
                _ => {}
            }
        }
        self
    }

    /// Rewrites the graph into the per-rank shard of a Megatron-style
    /// `degree`-way tensor-parallel execution: attention heads and FFN
    /// columns split across ranks, norms/residuals/embeddings replicated.
    /// Column-parallel projections (Q/K/V, FFN up/gate, LM head) shard
    /// their output dimension; row-parallel projections (attention output,
    /// FFN down) shard their inner dimension. The all-reduce that stitches
    /// ranks back together is *not* represented here — interconnect pricing
    /// lives in the backend layer.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is zero or does not evenly divide the sharded
    /// dimensions (use [`crate::ModelConfig::supports_tensor_parallel`] to
    /// pre-validate).
    #[must_use]
    pub fn with_tensor_parallel(mut self, degree: u64) -> OpGraph {
        assert!(degree > 0, "tensor-parallel degree must be positive");
        if degree == 1 {
            return self;
        }
        let shard = |dim: &mut u64, what: &str| {
            assert!(
                dim.is_multiple_of(degree),
                "tensor parallelism degree {degree} must divide {what} = {dim}"
            );
            *dim /= degree;
        };
        for op in &mut self.ops {
            let column_parallel = matches!(
                op.name.as_str(),
                "attn.q_proj"
                    | "attn.k_proj"
                    | "attn.v_proj"
                    | "ffn.fc1"
                    | "ffn.gate_proj"
                    | "ffn.up_proj"
                    | "final.lm_head"
            );
            let row_parallel = matches!(
                op.name.as_str(),
                "attn.out_proj" | "ffn.fc2" | "ffn.down_proj"
            );
            let sharded_elementwise =
                matches!(op.name.as_str(), "attn.rope" | "ffn.gelu" | "ffn.silu_mul");
            match &mut op.kind {
                OpKind::Linear {
                    shape,
                    weight_elems,
                } if column_parallel => {
                    shard(&mut shape.n, "projection output dim");
                    *weight_elems /= degree;
                }
                OpKind::Linear {
                    shape,
                    weight_elems,
                } if row_parallel => {
                    shard(&mut shape.k, "projection inner dim");
                    *weight_elems /= degree;
                }
                OpKind::AttentionScore {
                    shape,
                    kv_read_bytes,
                }
                | OpKind::AttentionContext {
                    shape,
                    kv_read_bytes,
                } => {
                    // `batch` is request-batch × heads; heads shard.
                    shard(&mut shape.batch, "batch x heads");
                    *kv_read_bytes /= degree;
                }
                OpKind::Softmax { rows, .. } => shard(rows, "softmax rows"),
                OpKind::KvAppend { bytes } => *bytes /= degree,
                OpKind::Elementwise { elems, .. } if sharded_elementwise => {
                    // These act on sharded head/FFN activations; residual
                    // adds stay on the replicated d_model stream.
                    *elems /= degree;
                }
                _ => {}
            }
        }
        self
    }

    /// Number of distinct operators (not counting repeats).
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the graph is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Builds the prefill-phase graph: `batch` prompts of `prompt_len` tokens are
/// processed in one pass, producing the first output token and populating the
/// KV cache.
///
/// # Panics
///
/// Panics if `batch` or `prompt_len` is zero, or the model fails validation.
#[must_use]
pub fn prefill_graph(model: &ModelConfig, batch: u64, prompt_len: u64, dtype: DType) -> OpGraph {
    assert!(
        batch > 0 && prompt_len > 0,
        "batch and prompt length must be positive"
    );
    model.validate().expect("invalid model config");
    let tokens = batch * prompt_len;
    let mut b = GraphBuilder::new(model, dtype);
    b.embedding(tokens);
    b.decoder_layers(
        batch, /* q_len = */ prompt_len, /* kv_len = */ prompt_len,
    );
    b.lm_head(batch); // only the last position's logits are needed
    OpGraph {
        phase: Phase::Prefill,
        ops: b.ops,
    }
}

/// Builds a single decode-step graph: each of `batch` sequences extends its
/// context (currently `kv_len` tokens, including the one being attended) by
/// one token.
///
/// # Panics
///
/// Panics if `batch` or `kv_len` is zero, or the model fails validation.
#[must_use]
pub fn decode_step_graph(model: &ModelConfig, batch: u64, kv_len: u64, dtype: DType) -> OpGraph {
    assert!(
        batch > 0 && kv_len > 0,
        "batch and context length must be positive"
    );
    model.validate().expect("invalid model config");
    let mut b = GraphBuilder::new(model, dtype);
    b.embedding(batch);
    b.decoder_layers(batch, /* q_len = */ 1, kv_len);
    b.lm_head(batch);
    OpGraph {
        phase: Phase::Decode,
        ops: b.ops,
    }
}

struct GraphBuilder<'m> {
    model: &'m ModelConfig,
    dtype: DType,
    ops: Vec<Operator>,
}

impl<'m> GraphBuilder<'m> {
    fn new(model: &'m ModelConfig, dtype: DType) -> Self {
        GraphBuilder {
            model,
            dtype,
            ops: Vec::with_capacity(24),
        }
    }

    fn push(&mut self, name: &str, kind: OpKind, repeat: u64) {
        self.ops.push(Operator::new(name, kind, self.dtype, repeat));
    }

    fn embedding(&mut self, tokens: u64) {
        self.push(
            "embed.tokens",
            OpKind::Embedding {
                tokens,
                d_model: self.model.d_model,
            },
            1,
        );
        if self.model.family == Family::Opt {
            self.push(
                "embed.positions",
                OpKind::Embedding {
                    tokens,
                    d_model: self.model.d_model,
                },
                1,
            );
        }
    }

    /// Emits the per-layer block, repeated `n_layers` times.
    ///
    /// `q_len` is tokens computed this pass per sequence; `kv_len` is the
    /// context length attended over (= `q_len` in prefill).
    fn decoder_layers(&mut self, batch: u64, q_len: u64, kv_len: u64) {
        let m = self.model;
        let layers = m.n_layers;
        let d = m.d_model;
        let d_kv = m.d_kv();
        let d_head = m.d_head();
        let tokens = batch * q_len;
        let bytes = self.dtype.bytes();

        self.push("attn.norm", OpKind::Norm { tokens, dim: d }, layers);
        self.push(
            "attn.q_proj",
            OpKind::Linear {
                shape: Matmul::new(tokens, d, d),
                weight_elems: d * d,
            },
            layers,
        );
        self.push(
            "attn.k_proj",
            OpKind::Linear {
                shape: Matmul::new(tokens, d_kv, d),
                weight_elems: d * d_kv,
            },
            layers,
        );
        self.push(
            "attn.v_proj",
            OpKind::Linear {
                shape: Matmul::new(tokens, d_kv, d),
                weight_elems: d * d_kv,
            },
            layers,
        );
        if m.family == Family::Llama2 {
            // RoPE rotates Q and K in place: ~6 flops per rotated element.
            self.push(
                "attn.rope",
                OpKind::Elementwise {
                    elems: tokens * (d + d_kv),
                    flops_per_elem: 6.0,
                    streams: 2,
                },
                layers,
            );
        }
        self.push(
            "attn.kv_append",
            OpKind::KvAppend {
                bytes: 2 * batch * q_len * d_kv * bytes,
            },
            layers,
        );
        // During prefill, K/V for the current block are produced on-chip;
        // attending still reads the full populated cache once per layer.
        let kv_cache_read = batch * kv_len * d_kv * bytes;
        self.push(
            "attn.score",
            OpKind::AttentionScore {
                shape: Matmul::batched(q_len, kv_len, d_head, batch * m.n_heads),
                kv_read_bytes: kv_cache_read,
            },
            layers,
        );
        self.push(
            "attn.softmax",
            OpKind::Softmax {
                rows: batch * m.n_heads * q_len,
                cols: kv_len,
            },
            layers,
        );
        self.push(
            "attn.context",
            OpKind::AttentionContext {
                shape: Matmul::batched(q_len, d_head, kv_len, batch * m.n_heads),
                kv_read_bytes: kv_cache_read,
            },
            layers,
        );
        self.push(
            "attn.out_proj",
            OpKind::Linear {
                shape: Matmul::new(tokens, d, d),
                weight_elems: d * d,
            },
            layers,
        );
        self.push(
            "attn.residual",
            OpKind::Elementwise {
                elems: tokens * d,
                flops_per_elem: 1.0,
                streams: 3,
            },
            layers,
        );

        self.push("ffn.norm", OpKind::Norm { tokens, dim: d }, layers);
        match m.ffn {
            FfnKind::Gelu => {
                self.push(
                    "ffn.fc1",
                    OpKind::Linear {
                        shape: Matmul::new(tokens, m.d_ff, d),
                        weight_elems: d * m.d_ff,
                    },
                    layers,
                );
                self.push(
                    "ffn.gelu",
                    OpKind::Elementwise {
                        elems: tokens * m.d_ff,
                        flops_per_elem: 8.0,
                        streams: 2,
                    },
                    layers,
                );
                self.push(
                    "ffn.fc2",
                    OpKind::Linear {
                        shape: Matmul::new(tokens, d, m.d_ff),
                        weight_elems: d * m.d_ff,
                    },
                    layers,
                );
            }
            FfnKind::SwiGlu => {
                self.push(
                    "ffn.gate_proj",
                    OpKind::Linear {
                        shape: Matmul::new(tokens, m.d_ff, d),
                        weight_elems: d * m.d_ff,
                    },
                    layers,
                );
                self.push(
                    "ffn.up_proj",
                    OpKind::Linear {
                        shape: Matmul::new(tokens, m.d_ff, d),
                        weight_elems: d * m.d_ff,
                    },
                    layers,
                );
                self.push(
                    "ffn.silu_mul",
                    OpKind::Elementwise {
                        elems: tokens * m.d_ff,
                        flops_per_elem: 9.0,
                        streams: 3,
                    },
                    layers,
                );
                self.push(
                    "ffn.down_proj",
                    OpKind::Linear {
                        shape: Matmul::new(tokens, d, m.d_ff),
                        weight_elems: d * m.d_ff,
                    },
                    layers,
                );
            }
        }
        self.push(
            "ffn.residual",
            OpKind::Elementwise {
                elems: tokens * d,
                flops_per_elem: 1.0,
                streams: 3,
            },
            layers,
        );
    }

    fn lm_head(&mut self, rows: u64) {
        let m = self.model;
        self.push(
            "final.norm",
            OpKind::Norm {
                tokens: rows,
                dim: m.d_model,
            },
            1,
        );
        self.push(
            "final.lm_head",
            OpKind::Linear {
                shape: Matmul::new(rows, m.vocab_size, m.d_model),
                weight_elems: m.d_model * m.vocab_size,
            },
            1,
        );
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact float assertions are deliberate: determinism is bit-level
mod tests {
    use super::*;
    use crate::families;

    #[test]
    fn prefill_flops_track_2_params_tokens() {
        // Rule of thumb: forward FLOPs ≈ 2 × params × tokens for short
        // sequences (attention adds a small s² term).
        for m in [families::opt_13b(), families::llama2_13b()] {
            let g = prefill_graph(&m, 4, 128, DType::Bf16);
            let approx = 2.0 * m.param_count() as f64 * (4.0 * 128.0);
            let ratio = g.totals().flops / approx;
            assert!((0.85..1.25).contains(&ratio), "{}: ratio {ratio}", m.name);
        }
    }

    #[test]
    fn decode_weight_traffic_equals_weight_footprint() {
        // A decode step must stream every weight matrix exactly once,
        // independent of batch size.
        let m = families::llama2_7b();
        let g1 = decode_step_graph(&m, 1, 512, DType::Bf16);
        let g32 = decode_step_graph(&m, 32, 512, DType::Bf16);
        // GEMM weight traffic is exactly batch-independent (embedding
        // gathers touch one extra row per extra sequence and are excluded).
        assert_eq!(
            g1.totals_for_class(OpClass::Gemm).weight_bytes,
            g32.totals_for_class(OpClass::Gemm).weight_bytes
        );
        let weights = m.weight_bytes(DType::Bf16).get() as f64;
        let streamed = g1.totals().weight_bytes as f64;
        // Embedding gathers only touch a few rows, so streamed < full
        // footprint but within ~5%.
        assert!(streamed <= weights);
        assert!(
            streamed > 0.93 * weights,
            "streamed {streamed} vs {weights}"
        );
    }

    #[test]
    fn decode_kv_read_scales_with_context_and_batch() {
        let m = families::opt_13b();
        let short = decode_step_graph(&m, 1, 128, DType::Bf16)
            .totals()
            .kv_read_bytes;
        let long = decode_step_graph(&m, 1, 1024, DType::Bf16)
            .totals()
            .kv_read_bytes;
        assert_eq!(long, 8 * short);
        let batched = decode_step_graph(&m, 16, 128, DType::Bf16)
            .totals()
            .kv_read_bytes;
        assert_eq!(batched, 16 * short);
    }

    #[test]
    fn prefill_kv_write_matches_footprint_formula() {
        let m = families::llama2_13b();
        let g = prefill_graph(&m, 8, 256, DType::Bf16);
        assert_eq!(
            g.totals().kv_write_bytes,
            m.kv_cache_bytes(256, 8, DType::Bf16).get()
        );
    }

    #[test]
    fn prefill_is_more_compute_intense_than_decode() {
        let m = families::opt_6_7b();
        let p = prefill_graph(&m, 1, 128, DType::Bf16).totals();
        let d = decode_step_graph(&m, 1, 128, DType::Bf16).totals();
        assert!(p.arithmetic_intensity() > 20.0 * d.arithmetic_intensity());
    }

    #[test]
    fn gqa_reduces_kv_traffic() {
        let llama70 = families::llama2_70b();
        let g = decode_step_graph(&llama70, 1, 1024, DType::Bf16);
        // d_kv = 1024 = d_model/8: score+context read 2 × kv_len × d_kv per layer.
        let expect = 2 * 1024 * 1024 * 2 * llama70.n_layers;
        assert_eq!(g.totals().kv_read_bytes, expect);
    }

    #[test]
    fn opt_has_positional_embedding_op_llama_has_rope() {
        let opt = prefill_graph(&families::opt_1_3b(), 1, 8, DType::Bf16);
        assert!(opt.ops.iter().any(|o| o.name == "embed.positions"));
        assert!(!opt.ops.iter().any(|o| o.name == "attn.rope"));
        let ll = prefill_graph(&families::llama2_7b(), 1, 8, DType::Bf16);
        assert!(ll.ops.iter().any(|o| o.name == "attn.rope"));
        assert!(!ll.ops.iter().any(|o| o.name == "embed.positions"));
    }

    #[test]
    fn class_totals_partition_the_graph() {
        let m = families::llama2_13b();
        let g = prefill_graph(&m, 2, 64, DType::Bf16);
        let whole = g.totals();
        let classes = [
            OpClass::Gemm,
            OpClass::Attention,
            OpClass::Normalization,
            OpClass::Elementwise,
            OpClass::Memory,
        ];
        let sum: f64 = classes.iter().map(|c| g.totals_for_class(*c).flops).sum();
        assert!((sum - whole.flops).abs() / whole.flops < 1e-12);
        let sum_bytes: u64 = classes
            .iter()
            .map(|c| g.totals_for_class(*c).total_bytes())
            .sum();
        assert_eq!(sum_bytes, whole.total_bytes());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_batch_panics() {
        let _ = prefill_graph(&families::opt_1_3b(), 0, 128, DType::Bf16);
    }

    #[test]
    fn kv_compression_scales_attention_only() {
        let m = families::opt_13b();
        let g = decode_step_graph(&m, 4, 4096, DType::Bf16);
        let c = g.clone().with_kv_keep_ratio(0.25);
        let (gt, ct) = (g.totals(), c.totals());
        // KV reads scale by the keep ratio...
        let ratio = ct.kv_read_bytes as f64 / gt.kv_read_bytes as f64;
        assert!((ratio - 0.25).abs() < 0.01, "{ratio}");
        // ...while weight traffic is untouched.
        assert_eq!(ct.weight_bytes, gt.weight_bytes);
        assert!(ct.flops < gt.flops);
    }

    #[test]
    fn tensor_parallel_shards_gemms_and_replicates_norms() {
        for m in [families::opt_13b(), families::llama2_70b()] {
            assert!(m.supports_tensor_parallel(2).is_ok());
            let g = prefill_graph(&m, 4, 256, DType::Bf16);
            let s = g.clone().with_tensor_parallel(2);
            let (gt, st) = (g.totals(), s.totals());
            // GEMM work (the sharded classes) halves exactly.
            for class in [OpClass::Gemm, OpClass::Attention] {
                assert_eq!(
                    g.totals_for_class(class).flops,
                    2.0 * s.totals_for_class(class).flops,
                    "{}: {class} must shard",
                    m.name
                );
            }
            // Weight traffic per rank halves exactly except the replicated
            // embedding gathers.
            assert!(st.weight_bytes <= gt.weight_bytes / 2 + 8 * m.d_model * 256);
            // KV cache is head-sharded.
            assert_eq!(st.kv_read_bytes, gt.kv_read_bytes / 2);
            assert_eq!(st.kv_write_bytes, gt.kv_write_bytes / 2);
            // Norms/residuals are replicated: per-rank work is strictly
            // more than half the full pass.
            assert!(
                st.flops > gt.flops / 2.0,
                "{}: replicated ops must keep the shard above half",
                m.name
            );
            let norm = g.totals_for_class(OpClass::Normalization).flops;
            // Softmax rows shard, norms do not; the class loses less
            // than half its flops.
            assert!(s.totals_for_class(OpClass::Normalization).flops > norm / 2.0);
        }
    }

    #[test]
    fn tensor_parallel_degree_one_is_identity() {
        let m = families::llama2_13b();
        let g = decode_step_graph(&m, 2, 512, DType::Bf16);
        assert_eq!(g.clone().with_tensor_parallel(1), g);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn tensor_parallel_indivisible_heads_panic() {
        // 32 heads / 5120 d_model: degree 3 divides neither.
        let m = families::opt_6_7b();
        let _ = prefill_graph(&m, 1, 64, DType::Bf16).with_tensor_parallel(3);
    }

    #[test]
    #[should_panic(expected = "keep ratio")]
    fn zero_keep_ratio_panics() {
        let m = families::opt_1_3b();
        let _ = decode_step_graph(&m, 1, 64, DType::Bf16).with_kv_keep_ratio(0.0);
    }

    #[test]
    fn weight_only_quantization_halves_weight_traffic() {
        let m = families::llama2_7b();
        let g = decode_step_graph(&m, 1, 512, DType::Bf16);
        let q = g.clone().with_weight_dtype(DType::Int8);
        assert_eq!(q.totals().weight_bytes * 2, g.totals().weight_bytes);
        // Activations and KV are untouched by weight-only quantization.
        assert_eq!(q.totals().kv_read_bytes, g.totals().kv_read_bytes);
        assert_eq!(q.totals().act_bytes, g.totals().act_bytes);
        assert_eq!(q.totals().flops, g.totals().flops);
    }
}
