//! Numeric data types used for weights, activations and KV cache.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Element type of a tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DType {
    /// 32-bit IEEE float.
    Fp32,
    /// 16-bit IEEE half.
    Fp16,
    /// 16-bit brain float (the paper's CPU inference dtype; AMX-native).
    Bf16,
    /// 8-bit integer (AMX-native for quantized inference).
    Int8,
}

impl DType {
    /// Size of one element in bytes.
    #[must_use]
    pub const fn bytes(self) -> u64 {
        match self {
            DType::Fp32 => 4,
            DType::Fp16 | DType::Bf16 => 2,
            DType::Int8 => 1,
        }
    }

    /// Whether Intel AMX TMUL has a native tile-multiply instruction for this
    /// type (`TDPBF16PS` for BF16, `TDPBSSD` and friends for INT8).
    #[must_use]
    pub const fn amx_native(self) -> bool {
        matches!(self, DType::Bf16 | DType::Int8)
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DType::Fp32 => "fp32",
            DType::Fp16 => "fp16",
            DType::Bf16 => "bf16",
            DType::Int8 => "int8",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(DType::Fp32.bytes(), 4);
        assert_eq!(DType::Fp16.bytes(), 2);
        assert_eq!(DType::Bf16.bytes(), 2);
        assert_eq!(DType::Int8.bytes(), 1);
    }

    #[test]
    fn amx_native_types() {
        assert!(DType::Bf16.amx_native());
        assert!(DType::Int8.amx_native());
        assert!(!DType::Fp32.amx_native());
        assert!(!DType::Fp16.amx_native());
    }
}
