//! Preset configurations for the model families evaluated in the paper:
//! OPT (1.3B–66B) and LLaMA-2 (7B–70B).
//!
//! Hyper-parameters follow the published model cards (Zhang et al. 2022 for
//! OPT; Touvron et al. 2023 for LLaMA-2).

use crate::config::{Family, FfnKind, ModelConfig};

fn opt(name: &str, n_layers: u64, d_model: u64, n_heads: u64) -> ModelConfig {
    ModelConfig {
        name: name.to_owned(),
        family: Family::Opt,
        n_layers,
        d_model,
        n_heads,
        n_kv_heads: n_heads,
        d_ff: 4 * d_model,
        ffn: FfnKind::Gelu,
        vocab_size: 50_272,
        max_positions: 2048,
        biases: true,
        tied_embeddings: true,
    }
}

fn llama2(
    name: &str,
    n_layers: u64,
    d_model: u64,
    n_heads: u64,
    n_kv_heads: u64,
    d_ff: u64,
) -> ModelConfig {
    ModelConfig {
        name: name.to_owned(),
        family: Family::Llama2,
        n_layers,
        d_model,
        n_heads,
        n_kv_heads,
        d_ff,
        ffn: FfnKind::SwiGlu,
        vocab_size: 32_000,
        max_positions: 4096,
        biases: false,
        tied_embeddings: false,
    }
}

/// OPT-1.3B.
#[must_use]
pub fn opt_1_3b() -> ModelConfig {
    opt("OPT-1.3B", 24, 2048, 32)
}

/// OPT-6.7B.
#[must_use]
pub fn opt_6_7b() -> ModelConfig {
    opt("OPT-6.7B", 32, 4096, 32)
}

/// OPT-13B.
#[must_use]
pub fn opt_13b() -> ModelConfig {
    opt("OPT-13B", 40, 5120, 40)
}

/// OPT-30B.
#[must_use]
pub fn opt_30b() -> ModelConfig {
    opt("OPT-30B", 48, 7168, 56)
}

/// OPT-66B.
#[must_use]
pub fn opt_66b() -> ModelConfig {
    opt("OPT-66B", 64, 9216, 72)
}

/// OPT-175B (used only for footprint discussion in §I/§III; not part of the
/// measured sweeps).
#[must_use]
pub fn opt_175b() -> ModelConfig {
    opt("OPT-175B", 96, 12_288, 96)
}

/// LLaMA2-7B.
#[must_use]
pub fn llama2_7b() -> ModelConfig {
    llama2("LLaMA2-7B", 32, 4096, 32, 32, 11_008)
}

/// LLaMA2-13B.
#[must_use]
pub fn llama2_13b() -> ModelConfig {
    llama2("LLaMA2-13B", 40, 5120, 40, 40, 13_824)
}

/// LLaMA2-70B (grouped-query attention: 8 KV heads).
#[must_use]
pub fn llama2_70b() -> ModelConfig {
    llama2("LLaMA2-70B", 80, 8192, 64, 8, 28_672)
}

/// Llama-3 8B (the paper cites the Llama-3 release as [36]; these presets
/// support forward-looking experiments): GQA with 8 KV heads and a 128k
/// vocabulary.
#[must_use]
pub fn llama3_8b() -> ModelConfig {
    ModelConfig {
        name: "Llama3-8B".to_owned(),
        family: Family::Llama2, // same architectural skeleton
        n_layers: 32,
        d_model: 4096,
        n_heads: 32,
        n_kv_heads: 8,
        d_ff: 14_336,
        ffn: FfnKind::SwiGlu,
        vocab_size: 128_256,
        max_positions: 8192,
        biases: false,
        tied_embeddings: false,
    }
}

/// Llama-3 70B.
#[must_use]
pub fn llama3_70b() -> ModelConfig {
    ModelConfig {
        name: "Llama3-70B".to_owned(),
        family: Family::Llama2,
        n_layers: 80,
        d_model: 8192,
        n_heads: 64,
        n_kv_heads: 8,
        d_ff: 28_672,
        ffn: FfnKind::SwiGlu,
        vocab_size: 128_256,
        max_positions: 8192,
        biases: false,
        tied_embeddings: false,
    }
}

/// The eight models the paper sweeps in its evaluation (Figs. 8–21),
/// smallest to largest.
#[must_use]
pub fn all_paper_models() -> Vec<ModelConfig> {
    vec![
        opt_1_3b(),
        opt_6_7b(),
        llama2_7b(),
        opt_13b(),
        llama2_13b(),
        opt_30b(),
        opt_66b(),
        llama2_70b(),
    ]
}

/// Looks up a paper model by its display name (e.g. `"OPT-13B"`).
#[must_use]
pub fn by_name(name: &str) -> Option<ModelConfig> {
    all_paper_models().into_iter().find(|m| m.name == name)
}

/// Nameplate parameter count (billions) for a paper model name.
///
/// # Panics
///
/// Panics if `name` is not one of the paper's models.
#[must_use]
pub fn nameplate_billions(name: &str) -> f64 {
    match name {
        "OPT-1.3B" => 1.3,
        "OPT-6.7B" => 6.7,
        "OPT-13B" => 13.0,
        "OPT-30B" => 30.0,
        "OPT-66B" => 66.0,
        "OPT-175B" => 175.0,
        "LLaMA2-7B" => 7.0,
        "LLaMA2-13B" => 13.0,
        "LLaMA2-70B" => 70.0,
        other => panic!("unknown paper model: {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_sorted_by_size() {
        let sizes: Vec<u64> = all_paper_models().iter().map(|m| m.param_count()).collect();
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        assert_eq!(sizes, sorted);
    }

    #[test]
    fn by_name_round_trips() {
        for m in all_paper_models() {
            assert_eq!(by_name(&m.name).unwrap(), m);
        }
        assert!(by_name("GPT-4").is_none());
    }

    #[test]
    fn llama3_presets_are_sane() {
        let m8 = llama3_8b();
        m8.validate().unwrap();
        let b = m8.param_count() as f64 / 1e9;
        assert!((7.0..9.0).contains(&b), "{b}");
        let m70 = llama3_70b();
        m70.validate().unwrap();
        let b70 = m70.param_count() as f64 / 1e9;
        assert!((68.0..72.0).contains(&b70), "{b70}");
        // GQA: 8 KV heads shrink the cache 4x (8B) / 8x (70B).
        assert_eq!(m8.gqa_group(), 4);
        assert_eq!(m70.gqa_group(), 8);
    }

    #[test]
    fn opt_175b_footprint_matches_intro() {
        // §I: OPT-175B requires 350 GB in FP16.
        let gb = opt_175b().weight_bytes(crate::dtype::DType::Fp16).as_f64() / 1e9;
        assert!((gb - 350.0).abs() < 10.0, "{gb}");
    }
}
