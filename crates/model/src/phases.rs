//! Inference phases (§II-B of the paper).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The two phases of autoregressive LLM inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Prompt processing: all input tokens in one compute-bound pass.
    Prefill,
    /// Token generation: one token per step, memory-bound.
    Decode,
}

impl Phase {
    /// Both phases, prefill first.
    pub const ALL: [Phase; 2] = [Phase::Prefill, Phase::Decode];
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Phase::Prefill => "prefill",
            Phase::Decode => "decode",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names() {
        assert_eq!(Phase::Prefill.to_string(), "prefill");
        assert_eq!(Phase::Decode.to_string(), "decode");
        assert_eq!(Phase::ALL.len(), 2);
    }
}
