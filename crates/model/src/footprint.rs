//! Memory-footprint tabulations backing Figs. 6 and 7 of the paper.

use crate::config::ModelConfig;
use crate::dtype::DType;
use llmsim_hw::Bytes;
use serde::{Deserialize, Serialize};

/// One row of the Fig. 6 weight-footprint chart.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightFootprint {
    /// Model name.
    pub model: String,
    /// Parameter count.
    pub params: u64,
    /// Weight bytes in the requested dtype.
    pub bytes: Bytes,
}

/// Computes the Fig. 6 table: weight footprint per model.
#[must_use]
pub fn weight_footprints(models: &[ModelConfig], dtype: DType) -> Vec<WeightFootprint> {
    models
        .iter()
        .map(|m| WeightFootprint {
            model: m.name.clone(),
            params: m.param_count(),
            bytes: m.weight_bytes(dtype),
        })
        .collect()
}

/// One cell of the Fig. 7 KV-cache grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KvFootprint {
    /// Sequence length.
    pub seq_len: u64,
    /// Batch size.
    pub batch: u64,
    /// KV cache bytes.
    pub bytes: Bytes,
    /// Whether the KV cache exceeds the model's own weight footprint
    /// (the dotted line in Fig. 7).
    pub exceeds_model: bool,
}

/// Computes the Fig. 7 grid: KV-cache footprint for every
/// `seq_len × batch` combination.
#[must_use]
pub fn kv_footprint_grid(
    model: &ModelConfig,
    seq_lens: &[u64],
    batches: &[u64],
    dtype: DType,
) -> Vec<KvFootprint> {
    let model_bytes = model.weight_bytes(dtype);
    let mut grid = Vec::with_capacity(seq_lens.len() * batches.len());
    for &s in seq_lens {
        for &b in batches {
            let bytes = model.kv_cache_bytes(s, b, dtype);
            grid.push(KvFootprint {
                seq_len: s,
                batch: b,
                bytes,
                exceeds_model: bytes > model_bytes,
            });
        }
    }
    grid
}

/// Minimum number of GPUs of `gpu_memory` capacity needed to hold the
/// weights (the "at least five H100s" arithmetic of §I/§III).
///
/// # Panics
///
/// Panics if `gpu_memory` is zero.
#[must_use]
pub fn min_gpus_for_weights(model: &ModelConfig, dtype: DType, gpu_memory: Bytes) -> u64 {
    assert!(gpu_memory > Bytes::ZERO, "gpu memory must be positive");
    model.weight_bytes(dtype).get().div_ceil(gpu_memory.get())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;

    #[test]
    fn fig6_footprints_are_monotone_in_params() {
        let fps = weight_footprints(&families::all_paper_models(), DType::Fp16);
        for w in fps.windows(2) {
            assert!(w[1].params >= w[0].params);
            assert!(w[1].bytes >= w[0].bytes);
        }
    }

    #[test]
    fn fig7_kv_exceeds_llama13b_weights_at_large_corner() {
        // Fig. 7's point: at long sequences and large batches the KV cache
        // passes the model's own size (the dotted line).
        let m = families::llama2_13b();
        let grid = kv_footprint_grid(
            &m,
            &[2048, 4096, 8192, 16384, 32768],
            &[1, 8, 16, 32],
            DType::Fp16,
        );
        let corner = grid
            .iter()
            .find(|c| c.seq_len == 32768 && c.batch == 32)
            .unwrap();
        assert!(corner.exceeds_model);
        let small = grid
            .iter()
            .find(|c| c.seq_len == 2048 && c.batch == 1)
            .unwrap();
        assert!(!small.exceeds_model);
    }

    #[test]
    fn fig7_linear_scaling() {
        let m = families::llama2_13b();
        let g = kv_footprint_grid(&m, &[1024, 2048], &[2, 4], DType::Bf16);
        let b = |s, bt| {
            g.iter()
                .find(|c| c.seq_len == s && c.batch == bt)
                .unwrap()
                .bytes
                .get()
        };
        assert_eq!(b(2048, 2), 2 * b(1024, 2));
        assert_eq!(b(1024, 4), 2 * b(1024, 2));
    }

    #[test]
    fn gpt3_needs_five_h100s() {
        // §III: GPT-3 175B needs over 320 GB → at least five 80 GB H100s.
        let n = min_gpus_for_weights(&families::opt_175b(), DType::Fp16, Bytes::from_gib(80.0));
        assert_eq!(n, 5);
    }

    #[test]
    fn llama70b_needs_two_h100s() {
        let n = min_gpus_for_weights(&families::llama2_70b(), DType::Fp16, Bytes::from_gib(80.0));
        assert_eq!(n, 2);
    }
}
