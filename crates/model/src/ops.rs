//! Operator-level cost descriptors.
//!
//! The engine never executes real tensors; it executes *operators* that carry
//! exact FLOP and byte-traffic counts. Every transformer building block is
//! one [`OpKind`] with closed-form cost formulas.

use crate::dtype::DType;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Shape of a (possibly batched) matrix multiplication
/// `[batch] × (m×k) · (k×n)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Matmul {
    /// Rows of the left operand (tokens, usually).
    pub m: u64,
    /// Columns of the right operand.
    pub n: u64,
    /// Shared inner dimension.
    pub k: u64,
    /// Independent problem instances (e.g. `batch × heads` for attention).
    pub batch: u64,
}

impl Matmul {
    /// Creates a single (non-batched) matmul shape.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn new(m: u64, n: u64, k: u64) -> Self {
        Self::batched(m, n, k, 1)
    }

    /// Creates a batched matmul shape.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn batched(m: u64, n: u64, k: u64, batch: u64) -> Self {
        assert!(
            m > 0 && n > 0 && k > 0 && batch > 0,
            "matmul dims must be positive: {m}x{n}x{k}x{batch}"
        );
        Matmul { m, n, k, batch }
    }

    /// Multiply-accumulate FLOPs (2 per MAC).
    #[must_use]
    pub fn flops(&self) -> f64 {
        2.0 * self.m as f64 * self.n as f64 * self.k as f64 * self.batch as f64
    }

    /// Output elements.
    #[must_use]
    pub fn output_elems(&self) -> u64 {
        self.m * self.n * self.batch
    }
}

impl fmt::Display for Matmul {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.batch == 1 {
            write!(f, "{}x{}x{}", self.m, self.n, self.k)
        } else {
            write!(f, "{}x[{}x{}x{}]", self.batch, self.m, self.n, self.k)
        }
    }
}

/// Broad operator class, used for counter attribution and engine dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Weight GEMM (runs on AMX when available).
    Gemm,
    /// Attention score/context batched GEMM (activation × KV cache).
    Attention,
    /// Softmax / normalization.
    Normalization,
    /// Elementwise map (activations, residual adds, RoPE).
    Elementwise,
    /// Embedding gather and KV-cache bookkeeping.
    Memory,
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::Gemm => "gemm",
            OpClass::Attention => "attention",
            OpClass::Normalization => "normalization",
            OpClass::Elementwise => "elementwise",
            OpClass::Memory => "memory",
        };
        f.write_str(s)
    }
}

/// One operator instance in a phase graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OpKind {
    /// `activations (m×k) · weights (k×n)`; the weight matrix streams from
    /// memory (`weight_elems` elements).
    Linear {
        /// GEMM shape (`batch` = 1 for fused token batches).
        shape: Matmul,
        /// Elements in the weight matrix (+bias).
        weight_elems: u64,
    },
    /// Attention `Q·K^T` — reads the K cache.
    AttentionScore {
        /// Per-head shape, batched over `batch × kv_heads` problems.
        shape: Matmul,
        /// Bytes of K cache read.
        kv_read_bytes: u64,
    },
    /// Attention `P·V` — reads the V cache.
    AttentionContext {
        /// Per-head shape, batched.
        shape: Matmul,
        /// Bytes of V cache read.
        kv_read_bytes: u64,
    },
    /// Appending this step's K/V vectors to the cache.
    KvAppend {
        /// Bytes written.
        bytes: u64,
    },
    /// Row-wise softmax.
    Softmax {
        /// Number of rows.
        rows: u64,
        /// Row width.
        cols: u64,
    },
    /// LayerNorm / RMSNorm over `tokens` rows of width `dim`.
    Norm {
        /// Rows.
        tokens: u64,
        /// Width.
        dim: u64,
    },
    /// Elementwise map (GELU, SiLU·mul, residual add, RoPE rotation).
    Elementwise {
        /// Elements touched.
        elems: u64,
        /// FLOPs per element.
        flops_per_elem: f64,
        /// Operand streams read + written (2 for unary-in-place-out, 3 for binary).
        streams: u64,
    },
    /// Embedding-table gather for `tokens` tokens.
    Embedding {
        /// Tokens gathered.
        tokens: u64,
        /// Embedding width.
        d_model: u64,
    },
}

/// A costed operator with a name and a repeat count within its phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Operator {
    /// Stable name, e.g. `"ffn.up_proj"`.
    pub name: String,
    /// What the operator computes.
    pub kind: OpKind,
    /// Element type of activations (and weights, unless overridden).
    pub dtype: DType,
    /// Weight element type when it differs from `dtype` (weight-only
    /// quantization, §VII-B's "Efficient LLM inference on CPUs").
    pub weight_dtype: Option<DType>,
    /// Times this operator executes in the phase (usually `n_layers`).
    pub repeat: u64,
}

impl Operator {
    /// Creates an operator.
    ///
    /// # Panics
    ///
    /// Panics if `repeat` is zero.
    #[must_use]
    pub fn new(name: impl Into<String>, kind: OpKind, dtype: DType, repeat: u64) -> Self {
        assert!(repeat > 0, "operator must execute at least once");
        Operator {
            name: name.into(),
            kind,
            dtype,
            weight_dtype: None,
            repeat,
        }
    }

    /// Overrides the weight element type (weight-only quantization).
    #[must_use]
    pub fn with_weight_dtype(mut self, dtype: DType) -> Self {
        self.weight_dtype = Some(dtype);
        self
    }

    /// Effective weight element type.
    #[must_use]
    pub fn weight_dtype(&self) -> DType {
        self.weight_dtype.unwrap_or(self.dtype)
    }

    /// Broad class of this operator.
    #[must_use]
    pub fn class(&self) -> OpClass {
        match self.kind {
            OpKind::Linear { .. } => OpClass::Gemm,
            OpKind::AttentionScore { .. } | OpKind::AttentionContext { .. } => OpClass::Attention,
            OpKind::Softmax { .. } | OpKind::Norm { .. } => OpClass::Normalization,
            OpKind::Elementwise { .. } => OpClass::Elementwise,
            OpKind::KvAppend { .. } | OpKind::Embedding { .. } => OpClass::Memory,
        }
    }

    /// FLOPs for one execution.
    #[must_use]
    pub fn flops(&self) -> f64 {
        match &self.kind {
            OpKind::Linear { shape, .. }
            | OpKind::AttentionScore { shape, .. }
            | OpKind::AttentionContext { shape, .. } => shape.flops(),
            OpKind::KvAppend { .. } | OpKind::Embedding { .. } => 0.0,
            // exp + sum + divide ≈ 5 flops/element; two passes over the row.
            OpKind::Softmax { rows, cols } => 5.0 * (*rows as f64) * (*cols as f64),
            // mean/var/normalize ≈ 8 flops/element.
            OpKind::Norm { tokens, dim } => 8.0 * (*tokens as f64) * (*dim as f64),
            OpKind::Elementwise {
                elems,
                flops_per_elem,
                ..
            } => *flops_per_elem * (*elems as f64),
        }
    }

    /// Weight bytes streamed from memory for one execution.
    #[must_use]
    pub fn weight_bytes(&self) -> u64 {
        let wb = self.weight_dtype().bytes();
        match &self.kind {
            OpKind::Linear { weight_elems, .. } => weight_elems * wb,
            OpKind::Embedding { tokens, d_model } => {
                // Gather touches one table row per token.
                tokens * d_model * wb
            }
            _ => 0,
        }
    }

    /// Activation bytes (inputs read + outputs written) for one execution.
    #[must_use]
    pub fn act_bytes(&self) -> u64 {
        let b = self.dtype.bytes();
        match &self.kind {
            OpKind::Linear { shape, .. } => {
                (shape.m * shape.k + shape.m * shape.n) * shape.batch * b
            }
            OpKind::AttentionScore { shape, .. } => {
                // Read Q, write the probability logits.
                (shape.m * shape.k + shape.m * shape.n) * shape.batch * b
            }
            OpKind::AttentionContext { shape, .. } => {
                // Read probabilities, write context output.
                (shape.m * shape.k + shape.m * shape.n) * shape.batch * b
            }
            OpKind::KvAppend { .. } => 0,
            OpKind::Softmax { rows, cols } => 2 * rows * cols * b,
            OpKind::Norm { tokens, dim } => 2 * tokens * dim * b,
            OpKind::Elementwise { elems, streams, .. } => elems * streams * b,
            OpKind::Embedding { tokens, d_model } => tokens * d_model * b,
        }
    }

    /// KV-cache bytes read for one execution.
    #[must_use]
    pub fn kv_read_bytes(&self) -> u64 {
        match &self.kind {
            OpKind::AttentionScore { kv_read_bytes, .. }
            | OpKind::AttentionContext { kv_read_bytes, .. } => *kv_read_bytes,
            _ => 0,
        }
    }

    /// KV-cache bytes written for one execution.
    #[must_use]
    pub fn kv_write_bytes(&self) -> u64 {
        match &self.kind {
            OpKind::KvAppend { bytes } => *bytes,
            _ => 0,
        }
    }

    /// All bytes moved (weights + activations + KV) for one execution.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.weight_bytes() + self.act_bytes() + self.kv_read_bytes() + self.kv_write_bytes()
    }

    /// Arithmetic intensity in FLOP/byte for one execution.
    #[must_use]
    pub fn arithmetic_intensity(&self) -> f64 {
        let bytes = self.total_bytes();
        if bytes == 0 {
            0.0
        } else {
            self.flops() / bytes as f64
        }
    }

    /// The GEMM shape if this operator is a matmul of any flavor.
    #[must_use]
    pub fn matmul_shape(&self) -> Option<Matmul> {
        match &self.kind {
            OpKind::Linear { shape, .. }
            | OpKind::AttentionScore { shape, .. }
            | OpKind::AttentionContext { shape, .. } => Some(*shape),
            _ => None,
        }
    }
}

impl fmt::Display for Operator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} x{} ({})", self.name, self.repeat, self.class())
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact float assertions are deliberate: determinism is bit-level
mod tests {
    use super::*;

    #[test]
    fn matmul_flops() {
        let s = Matmul::new(128, 4096, 4096);
        assert_eq!(s.flops(), 2.0 * 128.0 * 4096.0 * 4096.0);
        let b = Matmul::batched(128, 128, 128, 32);
        assert_eq!(b.flops(), 32.0 * 2.0 * 128.0f64.powi(3));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_panics() {
        let _ = Matmul::new(0, 1, 1);
    }

    #[test]
    fn linear_weight_traffic_is_shape_independent_of_m() {
        // Decode's key property: weight bytes don't grow with batch.
        let w = 4096 * 4096;
        let op1 = Operator::new(
            "q",
            OpKind::Linear {
                shape: Matmul::new(1, 4096, 4096),
                weight_elems: w,
            },
            DType::Bf16,
            1,
        );
        let op32 = Operator::new(
            "q",
            OpKind::Linear {
                shape: Matmul::new(32, 4096, 4096),
                weight_elems: w,
            },
            DType::Bf16,
            1,
        );
        assert_eq!(op1.weight_bytes(), op32.weight_bytes());
        assert!(op32.flops() > op1.flops());
        assert!(op32.arithmetic_intensity() > op1.arithmetic_intensity());
    }

    #[test]
    fn class_mapping() {
        let lin = Operator::new(
            "l",
            OpKind::Linear {
                shape: Matmul::new(1, 2, 3),
                weight_elems: 6,
            },
            DType::Bf16,
            1,
        );
        assert_eq!(lin.class(), OpClass::Gemm);
        let sm = Operator::new("s", OpKind::Softmax { rows: 4, cols: 4 }, DType::Fp32, 2);
        assert_eq!(sm.class(), OpClass::Normalization);
        let kv = Operator::new("kv", OpKind::KvAppend { bytes: 64 }, DType::Bf16, 1);
        assert_eq!(kv.class(), OpClass::Memory);
        assert_eq!(kv.kv_write_bytes(), 64);
        assert_eq!(kv.flops(), 0.0);
    }

    #[test]
    fn attention_reads_kv() {
        let op = Operator::new(
            "score",
            OpKind::AttentionScore {
                shape: Matmul::batched(1, 512, 128, 32),
                kv_read_bytes: 512 * 128 * 32 * 2,
            },
            DType::Bf16,
            1,
        );
        assert_eq!(op.kv_read_bytes(), 512 * 128 * 32 * 2);
        assert!(op.total_bytes() > op.act_bytes());
    }
}
