//! # llmsim-model — LLM architecture descriptions and operator graphs
//!
//! Decoder-only transformer configurations (OPT and LLaMA-2 families, §II-A
//! of the paper), closed-form weight and KV-cache footprint math (§II-B), and
//! per-phase operator graphs carrying exact FLOP/byte costs that the engine
//! executes.
//!
//! # Examples
//!
//! ```
//! use llmsim_model::{families, graph, dtype::DType};
//!
//! let model = families::llama2_13b();
//! let prefill = graph::prefill_graph(&model, 8, 128, DType::Bf16);
//! let decode = graph::decode_step_graph(&model, 8, 160, DType::Bf16);
//!
//! // Prefill is compute-dense; decode is memory-dense.
//! assert!(prefill.totals().arithmetic_intensity()
//!     > 10.0 * decode.totals().arithmetic_intensity());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod dtype;
pub mod families;
pub mod footprint;
pub mod graph;
pub mod ops;
pub mod phases;

pub use config::{Family, FfnKind, ModelConfig};
pub use dtype::DType;
pub use graph::{decode_step_graph, prefill_graph, GraphTotals, OpGraph};
pub use ops::{Matmul, OpClass, OpKind, Operator};
pub use phases::Phase;
