//! Property-based tests of the model substrate: footprint scaling laws and
//! operator-graph invariants hold for every paper model and workload shape.

#![allow(clippy::float_cmp)] // exact float assertions are deliberate: determinism is bit-level

use llmsim_model::{decode_step_graph, families, prefill_graph, DType, OpClass};
use proptest::prelude::*;

fn any_model() -> impl Strategy<Value = llmsim_model::ModelConfig> {
    (0usize..8).prop_map(|i| families::all_paper_models().swap_remove(i))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// KV cache scales exactly linearly in sequence length and batch
    /// (the §II-B formula).
    #[test]
    fn kv_cache_bilinear(m in any_model(), s in 1u64..8192, b in 1u64..64) {
        let base = m.kv_cache_bytes(s, b, DType::Bf16).get();
        prop_assert_eq!(m.kv_cache_bytes(2 * s, b, DType::Bf16).get(), 2 * base);
        prop_assert_eq!(m.kv_cache_bytes(s, 2 * b, DType::Bf16).get(), 2 * base);
        // INT8 halves it; FP32 doubles it.
        prop_assert_eq!(m.kv_cache_bytes(s, b, DType::Int8).get(), base / 2);
        prop_assert_eq!(m.kv_cache_bytes(s, b, DType::Fp32).get(), base * 2);
    }

    /// Prefill FLOPs grow superlinearly in sequence length (the attention
    /// s² term) but linearly in batch.
    #[test]
    fn prefill_flop_scaling(m in any_model(), s in 16u64..512, b in 1u64..16) {
        let f1 = prefill_graph(&m, b, s, DType::Bf16).totals().flops;
        let f2 = prefill_graph(&m, b, 2 * s, DType::Bf16).totals().flops;
        prop_assert!(f2 > 2.0 * f1 * 0.999, "seq doubling: {f2} vs {f1}");
        let fb = prefill_graph(&m, 2 * b, s, DType::Bf16).totals().flops;
        // Batch doubling: attention also doubles (per-sequence), so exactly 2x
        // up to the constant lm-head/embedding terms.
        prop_assert!((fb / f1 - 2.0).abs() < 0.02, "batch doubling ratio {}", fb / f1);
    }

    /// Decode KV reads are exactly linear in context length and batch.
    #[test]
    fn decode_kv_read_linear(m in any_model(), t in 1u64..4096, b in 1u64..32) {
        let g1 = decode_step_graph(&m, b, t, DType::Bf16).totals().kv_read_bytes;
        let g2 = decode_step_graph(&m, b, 2 * t, DType::Bf16).totals().kv_read_bytes;
        prop_assert_eq!(g2, 2 * g1);
    }

    /// Every operator in every graph has non-negative costs and a
    /// consistent total-bytes decomposition.
    #[test]
    fn operator_cost_consistency(m in any_model(), s in 1u64..256, b in 1u64..16) {
        for g in [
            prefill_graph(&m, b, s, DType::Bf16),
            decode_step_graph(&m, b, s, DType::Bf16),
        ] {
            for op in &g.ops {
                prop_assert!(op.flops() >= 0.0);
                let total = op.total_bytes();
                let parts = op.weight_bytes() + op.act_bytes()
                    + op.kv_read_bytes() + op.kv_write_bytes();
                prop_assert_eq!(total, parts, "{}", op.name);
            }
            // Class totals partition the graph totals.
            let whole = g.totals().total_bytes();
            let sum: u64 = [
                OpClass::Gemm,
                OpClass::Attention,
                OpClass::Normalization,
                OpClass::Elementwise,
                OpClass::Memory,
            ]
            .iter()
            .map(|c| g.totals_for_class(*c).total_bytes())
            .sum();
            prop_assert_eq!(whole, sum);
        }
    }

    /// Weight-only quantization never changes FLOPs, activations or KV.
    #[test]
    fn weight_dtype_isolation(m in any_model(), s in 1u64..128, b in 1u64..8) {
        let g = decode_step_graph(&m, b, s, DType::Bf16);
        let q = g.clone().with_weight_dtype(DType::Int8);
        let (gt, qt) = (g.totals(), q.totals());
        prop_assert_eq!(gt.flops, qt.flops);
        prop_assert_eq!(gt.act_bytes, qt.act_bytes);
        prop_assert_eq!(gt.kv_read_bytes, qt.kv_read_bytes);
        prop_assert!(qt.weight_bytes < gt.weight_bytes);
    }

    /// Weight footprint is layer-dominated: doubling layers roughly doubles
    /// parameters (embeddings are the remainder).
    #[test]
    fn params_scale_with_layers(m in any_model()) {
        let mut double = m.clone();
        double.n_layers *= 2;
        let p1 = m.param_count();
        let p2 = double.param_count();
        prop_assert!(p2 > 2 * m.n_layers * m.params_per_layer());
        prop_assert!(p2 < 2 * p1);
    }
}
