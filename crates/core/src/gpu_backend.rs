//! The GPU execution model: A100/H100 resident inference, falling back to
//! FlexGen-style offloading (weights/KV/activations in host memory, streamed
//! over PCIe) when model state exceeds device memory — the machine model
//! behind Figs. 17–21.

use crate::backend::{Backend, CostModel};
use crate::calib;
use crate::error::SimError;
use crate::exec::PhaseAccum;
use crate::offload::{self, OffloadPlan};
use crate::report::InferenceReport;
use crate::request::Request;
use crate::roofline::{op_time, Resources};
use llmsim_hw::{Bytes, GbPerSec, GpuSpec, Seconds};
use llmsim_mem::analytic::{dram_traffic, instruction_count};
use llmsim_mem::{synthesize, CounterInputs};
use llmsim_model::{DType, ModelConfig, OpClass, OpGraph};

/// GPU inference backend with automatic offloading.
///
/// # Examples
///
/// ```
/// use llmsim_core::{GpuBackend, Request, Backend};
/// use llmsim_model::families;
///
/// let h100 = GpuBackend::paper_h100();
/// // OPT-13B fits; runs resident.
/// let fits = h100.run(&families::opt_13b(), &Request::paper_default(1))?;
/// assert!(fits.offload.is_none());
/// // OPT-66B (132 GB of BF16 weights) exceeds 80 GB; offloads.
/// let big = h100.run(&families::opt_66b(), &Request::paper_default(1))?;
/// assert!(big.offload.is_some());
/// # Ok::<(), llmsim_core::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GpuBackend {
    gpu: GpuSpec,
    dtype: DType,
    /// Host memory available for offloaded state.
    host_memory: Bytes,
    /// Tensor-parallel shard denominator: this backend executes a
    /// `1/tp_shard` Megatron shard on the *resident* path (1 = whole
    /// model). Sharding can make an otherwise-offloading model resident;
    /// if even the shard must offload, the offload path conservatively
    /// prices the whole model (multi-GPU offload is not modeled).
    tp_shard: u64,
}

impl GpuBackend {
    /// Creates a backend with `host_memory` bytes of CPU DRAM behind it.
    #[must_use]
    pub fn new(gpu: GpuSpec, dtype: DType, host_memory: Bytes) -> Self {
        GpuBackend {
            gpu,
            dtype,
            host_memory,
            tp_shard: 1,
        }
    }

    /// Turns this backend into one rank of a `degree`-way tensor-parallel
    /// group (see the `tp_shard` field for semantics). NVLink all-reduce
    /// time is excluded — wrap shards in [`crate::TensorParallel`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnsupportedConfig`] if `degree` is zero.
    pub fn with_tensor_degree(mut self, degree: u64) -> Result<Self, SimError> {
        if degree == 0 {
            return Err(SimError::UnsupportedConfig(
                "tensor-parallel degree must be at least 1".into(),
            ));
        }
        self.tp_shard = degree;
        Ok(self)
    }

    /// The paper's A100-40GB server (Table II) with 512 GB of host DRAM.
    #[must_use]
    pub fn paper_a100() -> Self {
        Self::new(
            llmsim_hw::presets::a100_40gb(),
            DType::Bf16,
            Bytes::from_gib(512.0),
        )
    }

    /// The paper's H100-80GB server (Table II) with 512 GB of host DRAM.
    #[must_use]
    pub fn paper_h100() -> Self {
        Self::new(
            llmsim_hw::presets::h100_80gb(),
            DType::Bf16,
            Bytes::from_gib(512.0),
        )
    }

    /// The GPU spec.
    #[must_use]
    pub fn gpu(&self) -> &GpuSpec {
        &self.gpu
    }

    /// Model state (weights + final KV + activations) for a request.
    #[must_use]
    pub fn footprint(&self, model: &ModelConfig, request: &Request) -> Bytes {
        let weights = Bytes::new(model.weight_bytes(self.dtype).get() / self.tp_shard);
        let kv = Bytes::new(
            model
                .kv_cache_bytes(request.final_context(), request.batch, self.dtype)
                .get()
                / self.tp_shard,
        );
        weights
            + kv
            + model.activation_bytes(
                request.batch * request.prompt_len,
                request.prompt_len,
                self.dtype,
            )
    }

    /// Whether this model/request runs device-resident.
    #[must_use]
    pub fn fits_resident(&self, model: &ModelConfig, request: &Request) -> bool {
        self.gpu.fits(self.footprint(model, request))
    }

    /// Whether `model`'s weights stay resident on the device across a
    /// serving session: weights must fit in device memory with a ~20%
    /// workspace reservation for the KV cache and activations (mirroring
    /// [`OffloadPlan::new`]'s pinning reserve). Request-independent — a
    /// serving replica decides residency once per model, not per request.
    #[must_use]
    pub fn serves_resident(&self, model: &ModelConfig) -> bool {
        let pinnable = (self.gpu.usable_memory().as_f64() * 0.8) as u64;
        Bytes::new(model.weight_bytes(self.dtype).get() / self.tp_shard) <= Bytes::new(pinnable)
    }

    /// Wall-clock cost of one prefill pass (`batch` prompts of
    /// `prompt_len`) — the primitive serving schedulers plan with.
    /// Resident models run at device rates; larger models pay the
    /// FlexGen-style streamed-weight pass cost.
    ///
    /// # Panics
    ///
    /// Panics if the arguments are zero or the model is invalid.
    #[must_use]
    pub fn prefill_time(&self, model: &ModelConfig, batch: u64, prompt_len: u64) -> Seconds {
        if self.serves_resident(model) {
            let mut g = llmsim_model::prefill_graph(model, batch, prompt_len, self.dtype);
            if self.tp_shard > 1 {
                g = g.with_tensor_parallel(self.tp_shard);
            }
            self.run_phase_resident(&g).time
        } else {
            let plan = OffloadPlan::new(&self.gpu, model, self.dtype);
            offload::pass_cost(
                &self.gpu, &plan, model, self.dtype, batch, prompt_len, prompt_len, false,
            )
            .total()
        }
    }

    /// Wall-clock cost of one decode step for `batch` sequences attending
    /// over `kv_len` context tokens (offloaded when the model does not
    /// serve resident).
    ///
    /// # Panics
    ///
    /// Panics if the arguments are zero or the model is invalid.
    #[must_use]
    pub fn decode_step_time(&self, model: &ModelConfig, batch: u64, kv_len: u64) -> Seconds {
        if self.serves_resident(model) {
            let mut g = llmsim_model::decode_step_graph(model, batch, kv_len, self.dtype);
            if self.tp_shard > 1 {
                g = g.with_tensor_parallel(self.tp_shard);
            }
            self.run_phase_resident(&g).time
        } else {
            let plan = OffloadPlan::new(&self.gpu, model, self.dtype);
            offload::pass_cost(&self.gpu, &plan, model, self.dtype, batch, 1, kv_len, true).total()
        }
    }

    /// Executes one phase graph device-resident.
    fn run_phase_resident(&self, graph: &OpGraph) -> PhaseAccum {
        let bandwidth = self.gpu.memory_bandwidth.scale(calib::GPU_BW_DERATE);
        let cache = self.gpu.l2_capacity;
        let mut acc = PhaseAccum::default();
        for op in &graph.ops {
            let rate = match op.class() {
                OpClass::Gemm | OpClass::Attention => {
                    let m_eff = op
                        .matmul_shape()
                        .map(|s| (s.m as f64 / calib::GPU_SKINNY_M_TILE).min(1.0))
                        .unwrap_or(1.0);
                    self.gpu.bf16_peak.scale(calib::GPU_GEMM_EFF * m_eff)
                }
                // Elementwise/normalization kernels are bandwidth-bound on
                // GPUs; give them a nominal high compute rate so the memory
                // term dominates.
                _ => self.gpu.bf16_peak.scale(0.1),
            };
            let streamed = Bytes::new(op.weight_bytes() + op.kv_read_bytes() + op.kv_write_bytes());
            let reused = Bytes::new(op.act_bytes());
            let dram = dram_traffic(streamed, reused, cache);
            let res = Resources {
                compute: rate,
                bandwidth,
                overhead: Seconds::new(calib::GPU_KERNEL_OVERHEAD_S),
            };
            let t = op_time(&res, op.flops(), dram);
            let r = op.repeat as f64;
            let instrs = instruction_count(op.flops(), 512.0, op.total_bytes()) * r;
            acc.add(
                t,
                r,
                op.flops() * r,
                dram.as_f64() * r,
                (op.weight_bytes() + op.kv_read_bytes()) as f64 * r,
                op.kv_write_bytes() as f64 * r,
                instrs,
            );
        }
        acc
    }
}

impl Backend for GpuBackend {
    fn name(&self) -> String {
        self.gpu.name.clone()
    }

    fn run(&self, model: &ModelConfig, request: &Request) -> Result<InferenceReport, SimError> {
        model.validate().map_err(SimError::InvalidRequest)?;
        if self.tp_shard > 1 {
            model
                .supports_tensor_parallel(self.tp_shard)
                .map_err(SimError::InvalidRequest)?;
        }
        let footprint = self.footprint(model, request);

        if self.fits_resident(model, request) {
            // --- resident path ---
            let mut prefill_graph =
                llmsim_model::prefill_graph(model, request.batch, request.prompt_len, self.dtype);
            if self.tp_shard > 1 {
                prefill_graph = prefill_graph.with_tensor_parallel(self.tp_shard);
            }
            let prefill = self.run_phase_resident(&prefill_graph);
            let mut decode = PhaseAccum::default();
            for step in 0..request.decode_steps() {
                let kv_len = request.prompt_len + 1 + step;
                let mut g =
                    llmsim_model::decode_step_graph(model, request.batch, kv_len, self.dtype);
                if self.tp_shard > 1 {
                    g = g.with_tensor_parallel(self.tp_shard);
                }
                decode.merge(&self.run_phase_resident(&g));
            }
            let ttft = prefill.time;
            let tpot = if request.decode_steps() == 0 {
                Seconds::ZERO
            } else {
                Seconds::new(decode.time.as_f64() / request.decode_steps() as f64)
            };
            let e2e = prefill.time + decode.time;
            let total_dram = prefill.dram_bytes + decode.dram_bytes;
            let counters = synthesize(&CounterInputs {
                instructions: prefill.instructions + decode.instructions,
                dram_read_bytes: total_dram * 0.85,
                dram_write_bytes: total_dram * 0.15,
                load_bytes: prefill.load_bytes + decode.load_bytes,
                store_bytes: prefill.store_bytes + decode.store_bytes,
                compute_busy: prefill.compute_busy + decode.compute_busy,
                elapsed: e2e,
                upi_bytes: 0.0,
                upi_capacity_bytes_per_sec: 0.0,
                remote_fraction: 0.0,
            });
            return Ok(InferenceReport {
                model: model.name.clone(),
                backend: self.name(),
                request: *request,
                ttft,
                tpot,
                e2e_latency: e2e,
                prefill: prefill.report(),
                decode: decode.report(),
                counters,
                offload: None,
            });
        }

        // --- offload path ---
        if footprint > self.host_memory {
            return Err(SimError::ModelTooLarge {
                backend: format!("{} + host", self.name()),
                required: footprint,
                available: self.host_memory,
            });
        }
        let plan = OffloadPlan::new(&self.gpu, model, self.dtype);
        offload::run_offloaded(self, &plan, model, request)
    }
}

impl CostModel for GpuBackend {
    fn prefill_time(&self, model: &ModelConfig, batch: u64, prompt_len: u64) -> Seconds {
        GpuBackend::prefill_time(self, model, batch, prompt_len)
    }

    fn decode_step_time(&self, model: &ModelConfig, batch: u64, kv_len: u64) -> Seconds {
        GpuBackend::decode_step_time(self, model, batch, kv_len)
    }

    fn weight_bytes(&self, model: &ModelConfig) -> Bytes {
        model.weight_bytes(self.dtype)
    }

    fn weight_load_bandwidth(&self) -> GbPerSec {
        // Weights reach the device over the host link whether the model
        // ends up resident or streamed.
        self.gpu.host_link.effective_bandwidth()
    }

    fn holds_resident(&self, model: &ModelConfig) -> bool {
        self.serves_resident(model)
    }

    fn kv_capacity_bytes(&self, models: &[ModelConfig]) -> Bytes {
        // Only resident weights occupy device memory — offloaded models'
        // weights stream from host and never crowd the on-device cache.
        models.iter().filter(|m| self.serves_resident(m)).fold(
            self.gpu.usable_memory(),
            |left, m| {
                left.saturating_sub(Bytes::new(m.weight_bytes(self.dtype).get() / self.tp_shard))
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmsim_model::families;

    #[test]
    fn small_models_run_resident_and_fast() {
        let a100 = GpuBackend::paper_a100();
        let r = a100
            .run(&families::opt_6_7b(), &Request::paper_default(1))
            .unwrap();
        assert!(r.offload.is_none());
        // A 6.7B model decodes well under 20 ms/token on an A100.
        assert!(r.tpot.as_f64() < 0.02, "{}", r.tpot);
    }

    #[test]
    fn a100_offloads_opt30b_h100_keeps_it_resident() {
        // §V-B: "while the H100 GPU could accommodate the entire OPT-30B
        // model ... the A100 GPU needs to offload".
        let req = Request::paper_default(1);
        let m = families::opt_30b();
        assert!(!GpuBackend::paper_a100().fits_resident(&m, &req));
        assert!(GpuBackend::paper_h100().fits_resident(&m, &req));
    }

    #[test]
    fn offloaded_run_reports_breakdown() {
        let a100 = GpuBackend::paper_a100();
        let r = a100
            .run(&families::opt_30b(), &Request::paper_default(1))
            .unwrap();
        let b = r.offload.expect("offloaded run must carry a breakdown");
        assert!(b.data_loading_fraction() > 0.5);
    }

    #[test]
    fn h100_outpaces_a100_resident() {
        let m = families::opt_13b();
        let req = Request::paper_default(1);
        let a = GpuBackend::paper_a100().run(&m, &req).unwrap();
        let h = GpuBackend::paper_h100().run(&m, &req).unwrap();
        assert!(h.e2e_latency < a.e2e_latency);
    }

    #[test]
    fn beyond_host_memory_errors() {
        let tiny_host = GpuBackend::new(
            llmsim_hw::presets::a100_40gb(),
            DType::Bf16,
            Bytes::from_gib(64.0),
        );
        let err = tiny_host
            .run(&families::opt_66b(), &Request::paper_default(1))
            .unwrap_err();
        assert!(matches!(err, SimError::ModelTooLarge { .. }));
    }
}
