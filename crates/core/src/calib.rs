//! Calibration constants of the performance model.
//!
//! Every constant here closes the gap between *theoretical* hardware limits
//! (Tables I/II, the ISA cycle models) and what measured software stacks
//! (IPEX on CPUs, PyTorch/FlexGen on GPUs) sustain. Each carries the paper
//! band or external measurement it is tuned against; the integration tests
//! in `tests/key_findings.rs` pin the resulting end-to-end ratios to the
//! paper's reported ranges, so any drift here is caught.

/// Parallel efficiency of multi-threaded kernels within one socket
/// (OpenMP fork/join, load imbalance). IPEX scales GEMMs near-linearly to a
/// socket; ~5 % is lost to synchronization.
pub const CPU_PARALLEL_EFF: f64 = 0.95;

/// Compute-throughput derate applied when a run spans two sockets: shared
/// activations bounce over UPI between layers and collective synchronization
/// stretches; the paper's Fig. 14/16 show 96 cores *slower* than 48 even for
/// the compute-bound prefill phase. 96 cores × 0.45 ≈ 0.9× the effective
/// throughput of 48 single-socket cores.
pub const CROSS_SOCKET_COMPUTE_DERATE: f64 = 0.45;

/// Fraction of STREAM bandwidth that decode-phase weight/KV streaming
/// sustains out of **HBM** (GEMV-like access needs deep miss concurrency;
/// calibrated so SPR-vs-GPU decode ratios match Fig. 17's OPT-13B points:
/// A100 2.9×, H100 3.7×).
pub const CPU_DECODE_BW_DERATE_HBM: f64 = 0.65;

/// Fraction of STREAM bandwidth decode streaming sustains out of **DDR**
/// (DDR channels saturate with far less concurrency, so GEMV gets closer
/// to STREAM).
pub const CPU_DECODE_BW_DERATE_DDR: f64 = 0.85;

/// Fraction of STREAM bandwidth that prefill-phase streaming sustains on
/// CPUs (blocked GEMM prefetches well).
pub const CPU_PREFILL_BW_DERATE: f64 = 0.85;

/// Per-operator dispatch overhead of the CPU inference stack (IPEX graph
/// executor), seconds. ~5–15 µs per fused op is typical; 8 µs keeps small
/// models' decode latency realistic.
pub const CPU_OP_OVERHEAD_S: f64 = 8e-6;

/// Fraction of peak tensor-core throughput large GEMMs reach on GPUs
/// (cuBLAS BF16 on A100/H100 sustains 65–80 % of dense peak).
pub const GPU_GEMM_EFF: f64 = 0.70;

/// Fraction of theoretical HBM bandwidth GPU memory-bound kernels sustain
/// (calibrated with CPU_DECODE_BW_DERATE against Fig. 17's small-model
/// latency gaps).
pub const GPU_BW_DERATE: f64 = 0.85;

/// Per-kernel launch overhead on the GPU, seconds.
pub const GPU_KERNEL_OVERHEAD_S: f64 = 4e-6;

/// Efficiency floor for skinny GPU GEMMs (m = batch during decode): tensor
/// cores need m ≥ 64 tiles; below that the achievable compute fraction
/// scales with m / 64.
pub const GPU_SKINNY_M_TILE: f64 = 64.0;

/// FlexGen CPU-delegated work per sequence, per layer, per decode step,
/// seconds: attention-score computation on the host plus per-sequence
/// sampling/bookkeeping. Calibrated against Fig. 18: the data-loading share
/// falls from ~95 % (b=1) to ~67 % (b=32) on A100/OPT-30B and from ~92 % to
/// ~59 % on H100/OPT-66B.
pub const OFFLOAD_CPU_S_PER_LAYER_PER_SEQ: f64 = 0.35e-3;

/// Fraction of compute time FlexGen's zig-zag block schedule can hide PCIe
/// transfer under (§V-B). Weight streaming per layer pipelines under the
/// *previous* layer's compute, so only a modest share overlaps; the Fig. 18
/// share of loading time falls with batch mainly because compute grows.
pub const OFFLOAD_OVERLAP_EFF: f64 = 0.30;

/// Software latency of one tensor-parallel all-reduce collective, seconds:
/// rank synchronization, kernel launch, and reduction arithmetic, on top of
/// the wire time priced from the link. Shared-memory (cross-socket) and
/// NCCL small-message all-reduce latencies both sit in the 10–30 µs band;
/// at two all-reduces per layer this is what makes §VI's decode scaling
/// sublinear even when the payloads are tiny.
pub const TP_ALLREDUCE_SW_S: f64 = 15e-6;

/// Architectural FLOPs retired per dynamic instruction for instruction-count
/// synthesis (Figs. 11/12): one `TDPBF16PS` = 16 384 FLOPs.
pub const AMX_FLOPS_PER_INSTR: f64 = 16_384.0;
/// One `VDPBF16PS` = 128 FLOPs.
pub const AVX512_BF16_FLOPS_PER_INSTR: f64 = 128.0;
/// One FP32 FMA vector instruction = 32 FLOPs.
pub const AVX512_F32_FLOPS_PER_INSTR: f64 = 32.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derates_are_fractions() {
        for &c in &[
            CPU_PARALLEL_EFF,
            CROSS_SOCKET_COMPUTE_DERATE,
            CPU_DECODE_BW_DERATE_HBM,
            CPU_DECODE_BW_DERATE_DDR,
            CPU_PREFILL_BW_DERATE,
            GPU_GEMM_EFF,
            GPU_BW_DERATE,
            OFFLOAD_OVERLAP_EFF,
        ] {
            assert!(c > 0.0 && c <= 1.0, "{c}");
        }
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn overheads_are_microseconds_scale() {
        assert!(CPU_OP_OVERHEAD_S < 1e-3);
        assert!(GPU_KERNEL_OVERHEAD_S < 1e-3);
        assert!(TP_ALLREDUCE_SW_S < 1e-3);
    }
}
