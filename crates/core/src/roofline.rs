//! Per-operator roofline timing.
//!
//! Every operator's execution time is
//! `max(compute_time, memory_time) + dispatch_overhead`: compute and memory
//! streams overlap (hardware prefetch / double buffering), and whichever
//! resource saturates determines the duration — the classical roofline
//! model applied operator-by-operator.

use llmsim_hw::{Bytes, FlopsPerSec, GbPerSec, Seconds};

/// Resources available to one operator execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Resources {
    /// Sustained compute rate for this operator (peak × shape efficiency ×
    /// parallel efficiency).
    pub compute: FlopsPerSec,
    /// Sustained memory bandwidth for this operator's DRAM traffic.
    pub bandwidth: GbPerSec,
    /// Fixed dispatch overhead per execution.
    pub overhead: Seconds,
}

/// Timing breakdown of one operator execution.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OpTime {
    /// Time the compute ports would need alone.
    pub compute_time: Seconds,
    /// Time the memory system would need alone.
    pub memory_time: Seconds,
    /// Dispatch overhead.
    pub overhead: Seconds,
}

impl OpTime {
    /// Total duration under compute/memory overlap.
    #[must_use]
    pub fn total(&self) -> Seconds {
        self.compute_time.max(self.memory_time) + self.overhead
    }

    /// Whether the operator is memory-bound.
    #[must_use]
    pub fn memory_bound(&self) -> bool {
        self.memory_time > self.compute_time
    }
}

/// Applies the roofline to one operator: `flops` of arithmetic and
/// `dram_bytes` of DRAM traffic.
#[must_use]
pub fn op_time(resources: &Resources, flops: f64, dram_bytes: Bytes) -> OpTime {
    let compute_time = if flops == 0.0 {
        Seconds::ZERO
    } else {
        resources
            .compute
            .execution_time(llmsim_hw::Flops::new(flops))
    };
    let memory_time = resources.bandwidth.transfer_time(dram_bytes);
    OpTime {
        compute_time,
        memory_time,
        overhead: resources.overhead,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn res() -> Resources {
        Resources {
            compute: FlopsPerSec::from_tflops(100.0),
            bandwidth: GbPerSec::new(500.0),
            overhead: Seconds::from_micros(5.0),
        }
    }

    #[test]
    fn compute_bound_region() {
        // 1 TFLOP, 1 GB → compute 10 ms vs memory 2 ms.
        let t = op_time(&res(), 1e12, Bytes::new(1_000_000_000));
        assert!(!t.memory_bound());
        assert!((t.total().as_f64() - (0.01 + 5e-6)).abs() < 1e-9);
    }

    #[test]
    fn memory_bound_region() {
        // 0.01 TFLOP, 10 GB → compute 0.1 ms vs memory 20 ms.
        let t = op_time(&res(), 1e10, Bytes::new(10_000_000_000));
        assert!(t.memory_bound());
        assert!((t.total().as_f64() - (0.02 + 5e-6)).abs() < 1e-9);
    }

    #[test]
    fn zero_work_costs_only_overhead() {
        let t = op_time(&res(), 0.0, Bytes::ZERO);
        assert_eq!(t.total(), Seconds::from_micros(5.0));
    }

    #[test]
    fn more_bandwidth_never_hurts() {
        let slow = op_time(&res(), 1e11, Bytes::new(5_000_000_000)).total();
        let mut fast_res = res();
        fast_res.bandwidth = GbPerSec::new(1000.0);
        let fast = op_time(&fast_res, 1e11, Bytes::new(5_000_000_000)).total();
        assert!(fast <= slow);
    }
}
