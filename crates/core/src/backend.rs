//! The backend abstraction: anything that can serve an inference request.

use crate::error::SimError;
use crate::report::InferenceReport;
use crate::request::Request;
use llmsim_hw::{Bytes, GbPerSec, Seconds};
use llmsim_model::ModelConfig;

/// A hardware execution model that can simulate serving a request.
///
/// Implemented by [`crate::CpuBackend`] (ICL/SPR with NUMA configuration)
/// and [`crate::GpuBackend`] (A100/H100 with automatic FlexGen-style
/// offloading when the model exceeds device memory).
pub trait Backend {
    /// Human-readable description, e.g. `"SPR Max 9468 (quad_flat, 48c)"`.
    fn name(&self) -> String;

    /// Simulates serving `request` with `model`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the request is malformed or the model state
    /// cannot be placed on this backend at all.
    fn run(&self, model: &ModelConfig, request: &Request) -> Result<InferenceReport, SimError>;
}

/// Phase-granular cost primitives a serving scheduler plans with.
///
/// [`crate::serving`] and the cluster-level simulator schedule work from
/// two primitives — one prefill pass and one decode step — rather than
/// whole-request runs. Routers and autoscalers additionally need the
/// state sizes behind those costs: the weight footprint (cold-start
/// warmup is weights ÷ load bandwidth) and whether the model's weights
/// sit resident in the backend's fast local memory or must be streamed
/// every pass (the Fig. 17/19 fits-vs-offloads crossover, which is what
/// makes heterogeneous routing profitable).
///
/// Implemented by [`crate::CpuBackend`] (always resident when it fits)
/// and [`crate::GpuBackend`] (resident below device memory, FlexGen-style
/// offloaded above it).
pub trait CostModel: Backend {
    /// Wall-clock cost of one prefill pass: `batch` prompts of
    /// `prompt_len` tokens.
    fn prefill_time(&self, model: &ModelConfig, batch: u64, prompt_len: u64) -> Seconds;

    /// Wall-clock cost of one decode step for `batch` sequences attending
    /// over `kv_len` context tokens.
    fn decode_step_time(&self, model: &ModelConfig, batch: u64, kv_len: u64) -> Seconds;

    /// Bytes of weight state this backend keeps for `model`.
    fn weight_bytes(&self, model: &ModelConfig) -> Bytes;

    /// Sustained bandwidth at which a cold replica pages weights in — the
    /// denominator of the cluster simulator's warmup time.
    fn weight_load_bandwidth(&self) -> GbPerSec;

    /// Whether `model`'s weights stay resident in this backend's fast
    /// local memory (false = streamed/offloaded every pass).
    fn holds_resident(&self, model: &ModelConfig) -> bool;

    /// Bytes left for KV-cache state after the fleet's weight footprint
    /// is placed: the memory pool serving reads KV from, minus the weight
    /// bytes of every model in `models` that lives in that pool. Zero
    /// (saturating) when the weights alone overflow it — such a backend
    /// can hold no paged cache at all.
    fn kv_capacity_bytes(&self, models: &[ModelConfig]) -> Bytes;
}

/// A thin owner of a boxed backend with convenience sweep helpers.
pub struct Simulator {
    backend: Box<dyn Backend>,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Simulator({})", self.backend.name())
    }
}

impl Simulator {
    /// Wraps a backend.
    #[must_use]
    pub fn new(backend: Box<dyn Backend>) -> Self {
        Simulator { backend }
    }

    /// The wrapped backend's name.
    #[must_use]
    pub fn backend_name(&self) -> String {
        self.backend.name()
    }

    /// Runs one request.
    ///
    /// # Errors
    ///
    /// Propagates the backend's [`SimError`].
    pub fn run(&self, model: &ModelConfig, request: &Request) -> Result<InferenceReport, SimError> {
        self.backend.run(model, request)
    }

    /// Runs the same model across a batch-size sweep.
    ///
    /// # Errors
    ///
    /// Fails on the first erroring batch size.
    pub fn batch_sweep(
        &self,
        model: &ModelConfig,
        batches: &[u64],
        prompt_len: u64,
        gen_len: u64,
    ) -> Result<Vec<InferenceReport>, SimError> {
        batches
            .iter()
            .map(|&b| self.run(model, &Request::try_new(b, prompt_len, gen_len)?))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::PhaseReport;
    use llmsim_hw::Seconds;
    use llmsim_mem::HwCounters;

    /// A constant-latency fake backend for trait-level tests.
    struct Fixed;

    impl Backend for Fixed {
        fn name(&self) -> String {
            "fixed".into()
        }

        fn run(&self, model: &ModelConfig, request: &Request) -> Result<InferenceReport, SimError> {
            Ok(InferenceReport {
                model: model.name.clone(),
                backend: self.name(),
                request: *request,
                ttft: Seconds::new(0.1),
                tpot: Seconds::new(0.01),
                e2e_latency: Seconds::new(0.1 + 0.01 * request.decode_steps() as f64),
                prefill: PhaseReport::default(),
                decode: PhaseReport::default(),
                counters: HwCounters::default(),
                offload: None,
            })
        }
    }

    #[test]
    fn simulator_delegates_and_sweeps() {
        let sim = Simulator::new(Box::new(Fixed));
        assert_eq!(sim.backend_name(), "fixed");
        let m = llmsim_model::families::opt_1_3b();
        let reports = sim.batch_sweep(&m, &[1, 2, 4], 128, 32).unwrap();
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[2].request.batch, 4);
        assert!(format!("{sim:?}").contains("fixed"));
    }
}
