//! Engine error types.

use llmsim_hw::Bytes;
use std::error::Error;
use std::fmt;

/// Errors returned by the simulation engine.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The model + KV cache does not fit the backend's memory at all
    /// (even offloading has to fit in host memory).
    ModelTooLarge {
        /// Backend description.
        backend: String,
        /// Bytes required.
        required: Bytes,
        /// Bytes available.
        available: Bytes,
    },
    /// The request is malformed (zero batch, zero lengths, …).
    InvalidRequest(String),
    /// The hardware/backend combination is unsupported.
    UnsupportedConfig(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ModelTooLarge { backend, required, available } => write!(
                f,
                "model state of {required} exceeds the {available} available on {backend}"
            ),
            SimError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            SimError::UnsupportedConfig(msg) => write!(f, "unsupported configuration: {msg}"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::ModelTooLarge {
            backend: "NVIDIA A100".into(),
            required: Bytes::from_gib(60.0),
            available: Bytes::from_gib(38.0),
        };
        let s = e.to_string();
        assert!(s.contains("A100") && s.contains("60.00 GiB"), "{s}");
        assert!(SimError::InvalidRequest("x".into()).to_string().contains("invalid"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<SimError>();
    }
}
