//! Engine error types.

use llmsim_hw::Bytes;
use std::error::Error;
use std::fmt;

/// Errors returned by the simulation engine.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The model + KV cache does not fit the backend's memory at all
    /// (even offloading has to fit in host memory).
    ModelTooLarge {
        /// Backend description.
        backend: String,
        /// Bytes required.
        required: Bytes,
        /// Bytes available.
        available: Bytes,
    },
    /// The request is malformed (zero batch, zero lengths, …).
    InvalidRequest(String),
    /// The hardware/backend combination is unsupported.
    UnsupportedConfig(String),
    /// A request missed its SLO deadline and was cancelled.
    DeadlineExceeded {
        /// Request id.
        id: u64,
        /// The deadline budget that was violated, in seconds.
        deadline_s: f64,
        /// Time the request had actually consumed when cancelled.
        elapsed_s: f64,
    },
    /// Admission control shed the request: the bounded queue was full.
    QueueFull {
        /// Request id.
        id: u64,
        /// Configured queue capacity.
        capacity: usize,
    },
    /// An injected backend fault (core/socket loss, OOM) killed the
    /// request after its retry budget ran out.
    BackendFault {
        /// Request id.
        id: u64,
        /// Human-readable fault kind (e.g. `"backend fault"`,
        /// `"out of memory"`).
        kind: String,
        /// Simulation time of the fatal fault, in seconds.
        at_s: f64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ModelTooLarge {
                backend,
                required,
                available,
            } => write!(
                f,
                "model state of {required} exceeds the {available} available on {backend}"
            ),
            SimError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            SimError::UnsupportedConfig(msg) => write!(f, "unsupported configuration: {msg}"),
            SimError::DeadlineExceeded {
                id,
                deadline_s,
                elapsed_s,
            } => write!(
                f,
                "request {id} exceeded its {deadline_s:.3} s deadline \
                 (elapsed {elapsed_s:.3} s) and was cancelled"
            ),
            SimError::QueueFull { id, capacity } => write!(
                f,
                "request {id} was shed: admission queue at capacity ({capacity})"
            ),
            SimError::BackendFault { id, kind, at_s } => write!(
                f,
                "request {id} failed at t={at_s:.3} s after exhausting retries: {kind}"
            ),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::ModelTooLarge {
            backend: "NVIDIA A100".into(),
            required: Bytes::from_gib(60.0),
            available: Bytes::from_gib(38.0),
        };
        let s = e.to_string();
        assert!(s.contains("A100") && s.contains("60.00 GiB"), "{s}");
        assert!(SimError::InvalidRequest("x".into())
            .to_string()
            .contains("invalid"));
    }

    #[test]
    fn resilience_variants_display() {
        let d = SimError::DeadlineExceeded {
            id: 7,
            deadline_s: 0.5,
            elapsed_s: 0.8,
        };
        let s = d.to_string();
        assert!(
            s.contains('7') && s.contains("0.500") && s.contains("0.800"),
            "{s}"
        );

        let q = SimError::QueueFull {
            id: 3,
            capacity: 16,
        }
        .to_string();
        assert!(
            q.contains('3') && q.contains("16") && q.contains("shed"),
            "{q}"
        );

        let b = SimError::BackendFault {
            id: 9,
            kind: "out of memory".into(),
            at_s: 1.25,
        }
        .to_string();
        assert!(
            b.contains('9') && b.contains("out of memory") && b.contains("1.250"),
            "{b}"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<SimError>();
    }
}
