//! # llmsim-core — the LLM inference performance engine
//!
//! Executes [`llmsim_model`] operator graphs on [`llmsim_hw`] machine
//! descriptions through a calibrated per-operator roofline, producing the
//! paper's metric set (TTFT, TPOT, E2E latency, token/s, hardware counters).
//!
//! Backends:
//! - [`CpuBackend`] — ICL/SPR CPUs with AMX/AVX-512 engine selection, NUMA
//!   memory/clustering modes, and core-count scaling (Figs. 8–16).
//! - [`GpuBackend`] — A100/H100, device-resident when the model fits,
//!   FlexGen-style PCIe offloading otherwise (Figs. 17–21).
//!
//! # Examples
//!
//! ```
//! use llmsim_core::{Backend, CpuBackend, GpuBackend, Request};
//! use llmsim_model::families;
//!
//! // Key Finding #4's crossover: the CPU beats an offloading A100 on
//! // OPT-30B, but loses to a resident A100 on OPT-13B.
//! let cpu = CpuBackend::paper_spr();
//! let gpu = GpuBackend::paper_a100();
//! let req = Request::paper_default(1);
//!
//! let small_cpu = cpu.run(&families::opt_13b(), &req)?;
//! let small_gpu = gpu.run(&families::opt_13b(), &req)?;
//! assert!(small_gpu.e2e_latency < small_cpu.e2e_latency);
//!
//! let big_cpu = cpu.run(&families::opt_30b(), &req)?;
//! let big_gpu = gpu.run(&families::opt_30b(), &req)?;
//! assert!(big_cpu.e2e_latency < big_gpu.e2e_latency);
//! # Ok::<(), llmsim_core::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod calib;
pub mod cpu_backend;
pub mod error;
mod exec;
pub mod gpu_backend;
pub mod hybrid_backend;
pub mod offload;
pub mod offload_pipeline;
pub mod report;
pub mod request;
pub mod resilience;
pub mod roofline;
pub mod serving;
pub mod tp;
pub mod trace;

pub use backend::{Backend, CostModel, Simulator};
pub use cpu_backend::CpuBackend;
pub use error::SimError;
pub use gpu_backend::GpuBackend;
pub use hybrid_backend::HybridBackend;
pub use offload::OffloadPlan;
pub use report::{InferenceReport, OffloadBreakdown, PhaseReport};
pub use request::Request;
pub use resilience::{
    simulate_resilient, AdmissionPolicy, DegradationPolicy, FailureKind, FaultModel,
    ResilienceConfig, ResilienceReport, ResilientOutcome, RetryPolicy, SimRng, SloPolicy,
    TerminalState, TimeoutPhase,
};
pub use serving::{SchedulingPolicy, ServingConfig, ServingReport, ServingRequest};
pub use tp::TensorParallel;
pub use trace::{NullSink, SpanFormat, SpanOutcome, SpanRecord, SpanSink, StreamSink, VecSink};
