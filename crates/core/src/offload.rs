//! FlexGen-style offloading execution model (§III, §V, Fig. 18).
//!
//! When model state exceeds device memory, weights (and the KV cache) live
//! in host DRAM. Every token step streams each layer's weights over the
//! host link; FlexGen's zig-zag block schedule pipelines the next layer's
//! transfer under the current layer's compute, and delegates attention over
//! the host-resident KV cache to the CPU.
//!
//! The model exposes exactly the quantities Fig. 18 plots: raw transfer
//! time, exposed (un-hidden) transfer time, GPU compute, and CPU compute.

use crate::backend::Backend as _;
use crate::calib;
use crate::error::SimError;
use crate::gpu_backend::GpuBackend;
use crate::report::{InferenceReport, OffloadBreakdown, PhaseReport};
use crate::request::Request;
use llmsim_hw::{Bytes, GpuSpec, Seconds};
use llmsim_mem::{synthesize, CounterInputs};
use llmsim_model::{DType, ModelConfig};

/// Placement decisions for an offloaded run.
#[derive(Debug, Clone)]
pub struct OffloadPlan {
    /// Weight bytes streamed from host per full forward pass.
    pub streamed_weight_bytes: Bytes,
    /// Weight bytes pinned in device memory (what fits after reserving
    /// activation workspace).
    pub resident_weight_bytes: Bytes,
    /// Whether attention over the KV cache runs on the host CPU
    /// (FlexGen's default when the KV cache is host-resident).
    pub cpu_attention: bool,
}

impl OffloadPlan {
    /// Plans placement: pin as many weights as fit in device memory after a
    /// workspace reservation; stream the rest every pass. The KV cache stays
    /// on the host (it grows without bound), so attention is CPU-delegated.
    #[must_use]
    pub fn new(gpu: &GpuSpec, model: &ModelConfig, dtype: DType) -> Self {
        let weights = model.weight_bytes(dtype);
        // Reserve ~20% of device memory for activations/workspace.
        let pinnable = Bytes::new((gpu.usable_memory().as_f64() * 0.8) as u64);
        let resident = weights.min(pinnable);
        OffloadPlan {
            streamed_weight_bytes: weights.saturating_sub(resident),
            resident_weight_bytes: resident,
            cpu_attention: true,
        }
    }

    /// Fraction of weights that must be streamed each pass.
    #[must_use]
    pub fn streamed_fraction(&self) -> f64 {
        let total = self.streamed_weight_bytes + self.resident_weight_bytes;
        if total == Bytes::ZERO {
            return 0.0;
        }
        self.streamed_weight_bytes.as_f64() / total.as_f64()
    }
}

/// Costs of one full forward pass (all layers) under offloading.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PassCost {
    raw_transfer: Seconds,
    exposed_transfer: Seconds,
    gpu_compute: Seconds,
    cpu_compute: Seconds,
}

impl PassCost {
    pub(crate) fn total(&self) -> Seconds {
        self.exposed_transfer + self.gpu_compute + self.cpu_compute
    }
}

/// Computes one token-step (or prefill pass) cost.
///
/// `tokens_per_seq` is the tokens computed per sequence this pass
/// (`prompt_len` for prefill, 1 for decode); `kv_len` the context attended.
#[allow(clippy::too_many_arguments)]
pub(crate) fn pass_cost(
    gpu: &GpuSpec,
    plan: &OffloadPlan,
    model: &ModelConfig,
    dtype: DType,
    batch: u64,
    tokens_per_seq: u64,
    kv_len: u64,
    decode: bool,
) -> PassCost {
    // --- host-link transfer: streamed weights + activations each pass ---
    let act_bytes = Bytes::new(2 * batch * tokens_per_seq * model.d_model * dtype.bytes());
    let raw_transfer = gpu
        .host_link
        .transfer_time(plan.streamed_weight_bytes + act_bytes)
        // One kickoff per layer, not one per pass.
        + gpu.host_link.latency.scale(model.n_layers as f64);

    // --- GPU compute: the dense GEMM work at resident-GPU rates ---
    let tokens = batch * tokens_per_seq;
    let gemm_flops = 2.0 * model.param_count() as f64 * tokens as f64;
    let m_eff = ((tokens as f64) / calib::GPU_SKINNY_M_TILE).min(1.0);
    let rate = gpu.bf16_peak.scale(calib::GPU_GEMM_EFF * m_eff.max(0.05));
    let weight_read = gpu
        .memory_bandwidth
        .scale(calib::GPU_BW_DERATE)
        .transfer_time(model.weight_bytes(dtype));
    let gpu_compute = rate
        .execution_time(llmsim_hw::Flops::new(gemm_flops))
        .max(weight_read)
        + Seconds::new(calib::GPU_KERNEL_OVERHEAD_S * 8.0 * model.n_layers as f64);

    // --- CPU-delegated attention + per-sequence bookkeeping ---
    // Prefill attention runs on the GPU (K/V are freshly produced there);
    // decode attention reads the host-resident KV cache, so FlexGen
    // delegates it to the CPU.
    let cpu_compute = if plan.cpu_attention && decode {
        let per_seq = calib::OFFLOAD_CPU_S_PER_LAYER_PER_SEQ * model.n_layers as f64;
        // KV streaming on the host side is folded into the per-seq constant;
        // scale mildly with context so long sequences still cost more.
        let ctx_scale = 1.0 + (kv_len as f64 / 4096.0);
        Seconds::new(per_seq * batch as f64 * ctx_scale)
    } else {
        Seconds::ZERO
    };

    // --- zig-zag overlap: part of the transfer hides under compute ---
    let hideable = (gpu_compute + cpu_compute).scale(calib::OFFLOAD_OVERLAP_EFF);
    let exposed_transfer = raw_transfer.saturating_sub(hideable.min(raw_transfer));
    PassCost {
        raw_transfer,
        exposed_transfer,
        gpu_compute,
        cpu_compute,
    }
}

/// Runs an offloaded inference and assembles the report.
///
/// # Errors
///
/// Currently infallible beyond request validation (done by the caller), but
/// returns `Result` to match the backend contract.
pub(crate) fn run_offloaded(
    backend: &GpuBackend,
    plan: &OffloadPlan,
    model: &ModelConfig,
    request: &Request,
) -> Result<InferenceReport, SimError> {
    let gpu = backend.gpu();
    let dtype = DType::Bf16;

    // Prefill pass.
    let prefill = pass_cost(
        gpu,
        plan,
        model,
        dtype,
        request.batch,
        request.prompt_len,
        request.prompt_len,
        false,
    );

    // Decode steps.
    let mut decode_time = Seconds::ZERO;
    let mut breakdown = OffloadBreakdown {
        exposed_transfer: prefill.exposed_transfer,
        raw_transfer: prefill.raw_transfer,
        gpu_compute: prefill.gpu_compute,
        cpu_compute: prefill.cpu_compute,
    };
    for step in 0..request.decode_steps() {
        let kv_len = request.prompt_len + 1 + step;
        let c = pass_cost(gpu, plan, model, dtype, request.batch, 1, kv_len, true);
        decode_time += c.total();
        breakdown.exposed_transfer += c.exposed_transfer;
        breakdown.raw_transfer += c.raw_transfer;
        breakdown.gpu_compute += c.gpu_compute;
        breakdown.cpu_compute += c.cpu_compute;
    }

    let ttft = prefill.total();
    let tpot = if request.decode_steps() == 0 {
        Seconds::ZERO
    } else {
        Seconds::new(decode_time.as_f64() / request.decode_steps() as f64)
    };
    let e2e = ttft + decode_time;

    // Counters: the dominant "memory" activity is PCIe traffic; synthesize
    // GPU-side counters coarsely (the paper reports no GPU µarch counters).
    let pass_count = 1 + request.decode_steps();
    let streamed_total = plan.streamed_weight_bytes.as_f64() * pass_count as f64;
    let instructions = 2.0 * model.param_count() as f64 * request.generated_tokens() as f64 / 512.0;
    let counters = synthesize(&CounterInputs {
        instructions,
        dram_read_bytes: streamed_total,
        dram_write_bytes: streamed_total * 0.05,
        load_bytes: streamed_total,
        store_bytes: streamed_total * 0.05,
        compute_busy: breakdown.gpu_compute,
        elapsed: e2e,
        upi_bytes: 0.0,
        upi_capacity_bytes_per_sec: 0.0,
        remote_fraction: 0.0,
    });

    Ok(InferenceReport {
        model: model.name.clone(),
        backend: format!("{} (offload)", backend.name()),
        request: *request,
        ttft,
        tpot,
        e2e_latency: e2e,
        prefill: PhaseReport {
            time: ttft,
            flops: 2.0 * model.param_count() as f64 * (request.batch * request.prompt_len) as f64,
            dram_bytes: plan.streamed_weight_bytes.as_f64(),
            memory_bound_fraction: prefill.exposed_transfer.ratio(ttft),
        },
        decode: PhaseReport {
            time: decode_time,
            flops: 2.0
                * model.param_count() as f64
                * (request.batch * request.decode_steps()) as f64,
            dram_bytes: plan.streamed_weight_bytes.as_f64() * request.decode_steps() as f64,
            memory_bound_fraction: breakdown
                .exposed_transfer
                .saturating_sub(prefill.exposed_transfer)
                .ratio(decode_time),
        },
        counters,
        offload: Some(breakdown),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Backend;
    use llmsim_model::families;

    #[test]
    fn plan_pins_what_fits() {
        let a100 = llmsim_hw::presets::a100_40gb();
        let m = families::opt_30b();
        let plan = OffloadPlan::new(&a100, &m, DType::Bf16);
        assert!(plan.resident_weight_bytes > Bytes::ZERO);
        assert!(plan.streamed_weight_bytes > Bytes::ZERO);
        assert!(
            plan.streamed_fraction() > 0.4,
            "{}",
            plan.streamed_fraction()
        );
        assert!(plan.cpu_attention);
    }

    #[test]
    fn data_loading_dominates_at_batch_1() {
        // Fig. 18: A100/OPT-30B spends up to ~95% on data loading at b=1.
        let a100 = GpuBackend::paper_a100();
        let r = a100
            .run(&families::opt_30b(), &Request::paper_default(1))
            .unwrap();
        let f = r.offload.unwrap().data_loading_fraction();
        assert!(f > 0.85, "{f}");
    }

    #[test]
    fn data_loading_fraction_falls_with_batch() {
        // Fig. 18: the loading share falls toward ~67% (A100/OPT-30B) /
        // ~59% (H100/OPT-66B) at b=32.
        let a100 = GpuBackend::paper_a100();
        let h100 = GpuBackend::paper_h100();
        let frac = |backend: &GpuBackend, m: &ModelConfig, b: u64| {
            backend
                .run(m, &Request::paper_default(b))
                .unwrap()
                .offload
                .unwrap()
                .data_loading_fraction()
        };
        let m30 = families::opt_30b();
        let m66 = families::opt_66b();
        let a1 = frac(&a100, &m30, 1);
        let a32 = frac(&a100, &m30, 32);
        assert!(a32 < a1, "A100: {a32} !< {a1}");
        assert!((0.55..0.85).contains(&a32), "A100 b32 {a32}");
        let h1 = frac(&h100, &m66, 1);
        let h32 = frac(&h100, &m66, 32);
        assert!(h32 < h1);
        assert!((0.45..0.8).contains(&h32), "H100 b32 {h32}");
    }

    #[test]
    fn offloaded_tpot_is_transfer_dominated_seconds_scale() {
        // 48 GB of streamed OPT-30B weights over ~25 GB/s ≈ 2 s/token.
        let a100 = GpuBackend::paper_a100();
        let r = a100
            .run(&families::opt_30b(), &Request::paper_default(1))
            .unwrap();
        assert!(r.tpot.as_f64() > 0.5, "{}", r.tpot);
    }
}
