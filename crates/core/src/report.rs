//! Inference run reports: the §II-C / §IV-A metric set.

use crate::request::Request;
use llmsim_hw::Seconds;
use llmsim_mem::HwCounters;
use std::fmt;

// The fleet-metric helpers live with the resilience layer; re-exported
// here so report consumers get one import path for both single-run and
// fleet statistics.
pub use crate::resilience::percentile;

/// Where each phase ran and what it cost (populated for offloaded GPU runs;
/// the Fig. 18 breakdown).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OffloadBreakdown {
    /// Time spent moving data over the host link that could not be hidden.
    pub exposed_transfer: Seconds,
    /// Raw (un-overlapped) transfer time.
    pub raw_transfer: Seconds,
    /// Device compute time.
    pub gpu_compute: Seconds,
    /// Host-delegated compute time (FlexGen runs attention on the CPU).
    pub cpu_compute: Seconds,
}

impl OffloadBreakdown {
    /// Fraction of total execution spent on data loading (Fig. 18's y-axis).
    #[must_use]
    pub fn data_loading_fraction(&self) -> f64 {
        let total = self.total();
        if total == Seconds::ZERO {
            return 0.0;
        }
        self.exposed_transfer.ratio(total)
    }

    /// Total wall-clock of the breakdown.
    #[must_use]
    pub fn total(&self) -> Seconds {
        self.exposed_transfer + self.gpu_compute + self.cpu_compute
    }
}

/// Timing of one phase.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseReport {
    /// Wall-clock time of the phase.
    pub time: Seconds,
    /// Arithmetic performed.
    pub flops: f64,
    /// DRAM traffic generated.
    pub dram_bytes: f64,
    /// Fraction of the phase that was memory-bound (time-weighted).
    pub memory_bound_fraction: f64,
}

/// Full report of one simulated inference run.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceReport {
    /// Model name.
    pub model: String,
    /// Backend description (e.g. `"SPR Max 9468 quad_flat 48c"`).
    pub backend: String,
    /// The request that was served.
    pub request: Request,
    /// Time to first token (= prefill time).
    pub ttft: Seconds,
    /// Average time per output token over the decode phase.
    pub tpot: Seconds,
    /// End-to-end latency.
    pub e2e_latency: Seconds,
    /// Prefill phase details.
    pub prefill: PhaseReport,
    /// Decode phase details (all steps).
    pub decode: PhaseReport,
    /// Synthesized hardware counters for the whole run.
    pub counters: HwCounters,
    /// Offload breakdown, when the backend streamed weights over a host link.
    pub offload: Option<OffloadBreakdown>,
}

impl InferenceReport {
    /// End-to-end generation throughput: generated tokens / E2E latency
    /// (the paper's token/s metric).
    #[must_use]
    pub fn e2e_throughput(&self) -> f64 {
        self.request.generated_tokens() as f64 / self.e2e_latency.as_f64()
    }

    /// Prefill throughput: prompt tokens processed per second.
    #[must_use]
    pub fn prefill_throughput(&self) -> f64 {
        (self.request.batch * self.request.prompt_len) as f64 / self.ttft.as_f64()
    }

    /// Decode throughput: tokens generated per second during decode.
    #[must_use]
    pub fn decode_throughput(&self) -> f64 {
        if self.request.decode_steps() == 0 {
            return 0.0;
        }
        (self.request.batch * self.request.decode_steps()) as f64 / self.decode.time.as_f64()
    }
}

impl fmt::Display for InferenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {} [{}]: TTFT {}, TPOT {}, E2E {}, {:.1} tok/s",
            self.model,
            self.backend,
            self.request,
            self.ttft,
            self.tpot,
            self.e2e_latency,
            self.e2e_throughput()
        )
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact float assertions are deliberate: determinism is bit-level
mod tests {
    use super::*;

    fn report() -> InferenceReport {
        InferenceReport {
            model: "OPT-13B".into(),
            backend: "test".into(),
            request: Request::new(4, 128, 32),
            ttft: Seconds::new(0.1),
            tpot: Seconds::new(0.05),
            e2e_latency: Seconds::new(0.1 + 31.0 * 0.05),
            prefill: PhaseReport {
                time: Seconds::new(0.1),
                ..Default::default()
            },
            decode: PhaseReport {
                time: Seconds::new(31.0 * 0.05),
                ..Default::default()
            },
            counters: HwCounters::default(),
            offload: None,
        }
    }

    #[test]
    fn throughput_definitions() {
        let r = report();
        let e2e = r.e2e_throughput();
        assert!((e2e - (4.0 * 32.0) / 1.65).abs() < 1e-9);
        assert!((r.prefill_throughput() - (4.0 * 128.0) / 0.1).abs() < 1e-9);
        assert!((r.decode_throughput() - (4.0 * 31.0) / 1.55).abs() < 1e-9);
    }

    #[test]
    fn offload_fraction() {
        let b = OffloadBreakdown {
            exposed_transfer: Seconds::new(0.9),
            raw_transfer: Seconds::new(1.0),
            gpu_compute: Seconds::new(0.05),
            cpu_compute: Seconds::new(0.05),
        };
        assert!((b.data_loading_fraction() - 0.9).abs() < 1e-12);
        assert_eq!(OffloadBreakdown::default().data_loading_fraction(), 0.0);
    }

    #[test]
    fn display_mentions_key_metrics() {
        let s = report().to_string();
        assert!(
            s.contains("TTFT") && s.contains("TPOT") && s.contains("tok/s"),
            "{s}"
        );
    }
}
