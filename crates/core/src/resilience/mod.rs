//! Resilience layer for the serving simulator: fault injection, SLO
//! deadlines, admission control with load shedding, retry with exponential
//! backoff, and graceful degradation under memory pressure.
//!
//! The plain [`crate::serving`] simulator models throughput on a healthy
//! machine: every request eventually completes. Real CPU serving fleets do
//! not look like that — nodes stall (transient frequency dips, noisy
//! neighbours), cores and sockets drop out mid-batch, and unbounded
//! KV-cache growth runs the box out of memory. Serving systems
//! differentiate on how their *schedulers* behave under those conditions
//! (LLMServingSim, Cho et al. 2024; the NPU-serving scheduling study of
//! Zhu et al. 2025), so this module wraps the same iteration-level cost
//! primitives with a failure model and the standard production defenses:
//!
//! * **Fault injection** ([`FaultModel`]) — deterministic, seeded draws
//!   for transient slowdowns, core/socket loss mid-batch, and simulated
//!   OOM when KV-cache growth exceeds a memory budget derived from the
//!   `llmsim-hw` presets.
//! * **SLO deadlines** ([`SloPolicy`]) — per-request TTFT and end-to-end
//!   budgets with timeout-based cancellation (expired queue entries are
//!   dropped before they waste prefill compute).
//! * **Admission control** ([`AdmissionPolicy`]) — a bounded queue that
//!   sheds load at arrival time instead of letting latency collapse.
//! * **Retry** ([`RetryPolicy`]) — exponential backoff with deterministic
//!   jitter and a global retry budget that prevents retry storms.
//! * **Graceful degradation** ([`DegradationPolicy`]) — under memory
//!   pressure, preempt-and-requeue the lowest-priority sequence
//!   (recompute semantics, vLLM-style) instead of failing the batch.
//!
//! Every admitted request reaches exactly one [`TerminalState`], and with
//! all features disabled ([`ResilienceConfig::passthrough`]) the engine
//! reproduces [`crate::serving::simulate`] byte-for-byte — tested by the
//! conservation and equivalence property tests.

mod engine;
mod metrics;

pub use engine::simulate_resilient;
pub use metrics::{percentile, ResilienceReport};

#[cfg(test)]
mod rng_tests {
    use super::SimRng;

    #[test]
    fn derived_streams_are_stable_and_independent() {
        let a1: Vec<u64> = {
            let mut r = SimRng::derive(7, 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let a2: Vec<u64> = {
            let mut r = SimRng::derive(7, 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a1, a2, "same (seed, stream) must replay identically");
        let b: Vec<u64> = {
            let mut r = SimRng::derive(7, 4);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a1, b, "distinct streams must decorrelate");
    }

    #[test]
    fn exp_draws_are_positive_finite_for_finite_means() {
        let mut r = SimRng::new(11);
        for _ in 0..256 {
            let x = r.exp_s(30.0);
            assert!(x.is_finite() && x > 0.0);
        }
        assert!(SimRng::new(0).exp_s(f64::INFINITY).is_infinite());
    }
}

use crate::serving::ServingConfig;
use llmsim_hw::{Bytes, CpuSpec};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Deterministic xorshift-free SplitMix64 stream used for every random
/// draw the resilient engine makes. One seed → one byte-identical run.
///
/// Public so higher layers (the `llmsim-cluster` fault scheduler) can
/// reuse the exact same deterministic stream instead of growing a second
/// RNG convention. Use [`SimRng::derive`] to split independent substreams
/// (e.g. one per replica) from a single run seed: the substream for a
/// given index is the same no matter how many other substreams exist or
/// in which order they are drawn from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// A stream seeded with `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SimRng { state: seed }
    }

    /// An independent substream for `stream` derived from `seed`.
    ///
    /// The derivation hashes `(seed, stream)` through one SplitMix64
    /// round, so substreams for distinct indices are decorrelated and —
    /// crucial for the cluster fault scheduler — the substream for index
    /// `i` does not depend on any other index being instantiated.
    #[must_use]
    pub fn derive(seed: u64, stream: u64) -> Self {
        let mut base = SimRng::new(seed ^ stream.wrapping_mul(0xA24B_AED4_963E_E407));
        let derived = base.next_u64();
        SimRng::new(derived)
    }

    /// Next raw draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Exponential draw with mean `mean_s` seconds (inter-fault gaps).
    ///
    /// Returns infinity when `mean_s` is infinite (a disabled fault
    /// process never fires) and clamps the uniform draw away from zero so
    /// the result is always finite and positive for finite means.
    pub fn exp_s(&mut self, mean_s: f64) -> f64 {
        if mean_s.is_infinite() {
            return f64::INFINITY;
        }
        let u = self.next_f64().max(f64::MIN_POSITIVE);
        -mean_s * u.ln()
    }
}

/// The injected-failure model: all probabilities are per scheduler
/// iteration (one prefill pass, one fused chunk, or one decode step), all
/// draws come from one seeded stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultModel {
    /// Seed for every stochastic draw the engine makes.
    pub seed: u64,
    /// Probability an iteration runs degraded (frequency dip, noisy
    /// neighbour, page-cache pressure).
    pub slowdown_prob: f64,
    /// Cost multiplier applied to a degraded iteration (≥ 1).
    pub slowdown_factor: f64,
    /// Probability an iteration suffers a backend fault (core/socket loss):
    /// the iteration's work is lost and the victims must retry.
    pub fault_prob: f64,
    /// Given a fault, probability it takes the whole batch down (socket
    /// loss) rather than a single victim sequence (core loss).
    pub whole_batch_fault_prob: f64,
    /// KV-cache memory budget; `None` disables the simulated-OOM path.
    /// Derive it from an `llmsim-hw` preset via [`FaultModel::kv_budget_for`].
    pub kv_budget: Option<Bytes>,
}

impl FaultModel {
    /// A fault-free model (the passthrough baseline).
    #[must_use]
    pub fn none(seed: u64) -> Self {
        FaultModel {
            seed,
            slowdown_prob: 0.0,
            slowdown_factor: 1.0,
            fault_prob: 0.0,
            whole_batch_fault_prob: 0.0,
            kv_budget: None,
        }
    }

    /// A model injecting faults at `fault_prob` per iteration with mild
    /// transient slowdowns, the shape the `ext_resilience` experiment sweeps.
    #[must_use]
    pub fn with_rates(seed: u64, fault_prob: f64, slowdown_prob: f64) -> Self {
        FaultModel {
            seed,
            slowdown_prob,
            slowdown_factor: 3.0,
            fault_prob,
            whole_batch_fault_prob: 0.25,
            kv_budget: None,
        }
    }

    /// Sets the KV budget.
    #[must_use]
    pub fn with_kv_budget(mut self, budget: Bytes) -> Self {
        self.kv_budget = Some(budget);
        self
    }

    /// The KV-cache budget a `frac` share of `cpu`'s total memory allows —
    /// the bridge from the Table-I hardware presets to the OOM model.
    ///
    /// # Panics
    ///
    /// Panics if `frac` is not in `(0, 1]`.
    #[must_use]
    pub fn kv_budget_for(cpu: &CpuSpec, frac: f64) -> Bytes {
        assert!(
            frac > 0.0 && frac <= 1.0,
            "memory fraction must be in (0,1]"
        );
        Bytes::new((cpu.total_memory_capacity().get() as f64 * frac) as u64)
    }

    /// Validates probability ranges.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range probabilities or a slowdown factor below 1.
    pub fn validate(&self) {
        for (name, p) in [
            ("slowdown_prob", self.slowdown_prob),
            ("fault_prob", self.fault_prob),
            ("whole_batch_fault_prob", self.whole_batch_fault_prob),
        ] {
            assert!(
                (0.0..=1.0).contains(&p),
                "{name} must be a probability, got {p}"
            );
        }
        assert!(self.slowdown_factor >= 1.0, "slowdown factor must be >= 1");
    }
}

/// Per-request service-level objectives; `None` disables a deadline.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SloPolicy {
    /// Time-to-first-token budget, seconds from arrival.
    pub ttft_deadline_s: Option<f64>,
    /// End-to-end budget, seconds from arrival.
    pub e2e_deadline_s: Option<f64>,
}

impl SloPolicy {
    /// No deadlines (the passthrough baseline).
    #[must_use]
    pub fn unlimited() -> Self {
        SloPolicy::default()
    }

    /// An interactive-chat SLO: first token within `ttft_s`, full answer
    /// within `e2e_s`.
    #[must_use]
    pub fn interactive(ttft_s: f64, e2e_s: f64) -> Self {
        SloPolicy {
            ttft_deadline_s: Some(ttft_s),
            e2e_deadline_s: Some(e2e_s),
        }
    }
}

/// Bounded-queue admission control; `None` capacity admits everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AdmissionPolicy {
    /// Maximum requests waiting for a batch slot; arrivals beyond it are
    /// shed with [`TerminalState::Rejected`].
    pub queue_capacity: Option<usize>,
}

impl AdmissionPolicy {
    /// Unbounded queue (the passthrough baseline).
    #[must_use]
    pub fn unbounded() -> Self {
        AdmissionPolicy::default()
    }

    /// Queue bounded at `capacity`.
    #[must_use]
    pub fn bounded(capacity: usize) -> Self {
        AdmissionPolicy {
            queue_capacity: Some(capacity),
        }
    }
}

/// Retry with exponential backoff, deterministic jitter, and a global
/// retry budget (the standard anti-retry-storm trio).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Attempts allowed per request beyond the first.
    pub max_retries: u32,
    /// First backoff, seconds.
    pub base_backoff_s: f64,
    /// Backoff growth per attempt (≥ 1).
    pub multiplier: f64,
    /// Uniform jitter: backoff is scaled by `1 + jitter_frac · U[0,1)`.
    pub jitter_frac: f64,
    /// Total retries allowed across the whole run; `None` is unlimited.
    /// A budget keeps correlated faults from amplifying offered load.
    pub retry_budget: Option<u64>,
}

impl RetryPolicy {
    /// No retries: every backend fault is terminal.
    #[must_use]
    pub fn disabled() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_backoff_s: 0.0,
            multiplier: 1.0,
            jitter_frac: 0.0,
            retry_budget: Some(0),
        }
    }

    /// A production-shaped default: 3 attempts, 50 ms base, doubling, 20%
    /// jitter, budget of one retry per two offered requests (set by caller).
    #[must_use]
    pub fn standard(retry_budget: Option<u64>) -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff_s: 0.05,
            multiplier: 2.0,
            jitter_frac: 0.2,
            retry_budget,
        }
    }
}

/// What to do when the KV budget is exhausted mid-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DegradationPolicy {
    /// Fail the most recently admitted sequence with a (retryable) OOM.
    FailNewest,
    /// Preempt the most recently admitted sequence and requeue it with
    /// recompute semantics (its KV is dropped and rebuilt on readmission) —
    /// graceful degradation: the batch survives, the victim is delayed.
    PreemptAndRequeue,
}

impl fmt::Display for DegradationPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradationPolicy::FailNewest => f.write_str("fail-newest"),
            DegradationPolicy::PreemptAndRequeue => f.write_str("preempt-requeue"),
        }
    }
}

/// Full configuration of the resilient serving engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResilienceConfig {
    /// Batching policy and cap (shared with the plain simulator).
    pub serving: ServingConfig,
    /// Injected-failure model.
    pub faults: FaultModel,
    /// Per-request deadlines.
    pub slo: SloPolicy,
    /// Queue bound.
    pub admission: AdmissionPolicy,
    /// Backoff/retry behaviour.
    pub retry: RetryPolicy,
    /// Memory-pressure response.
    pub degradation: DegradationPolicy,
}

impl ResilienceConfig {
    /// A configuration with every resilience feature disabled: the engine
    /// must reproduce [`crate::serving::simulate`] exactly under it.
    #[must_use]
    pub fn passthrough(serving: ServingConfig, seed: u64) -> Self {
        ResilienceConfig {
            serving,
            faults: FaultModel::none(seed),
            slo: SloPolicy::unlimited(),
            admission: AdmissionPolicy::unbounded(),
            retry: RetryPolicy::disabled(),
            degradation: DegradationPolicy::PreemptAndRequeue,
        }
    }
}

/// Why a request failed terminally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum FailureKind {
    /// A core/socket-loss fault hit the request and its retries ran out
    /// (or retries were disabled / the global budget was spent).
    BackendFault,
    /// The KV budget could not fit the request even alone, or the
    /// degradation policy chose to fail it.
    OutOfMemory,
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureKind::BackendFault => f.write_str("backend fault"),
            FailureKind::OutOfMemory => f.write_str("out of memory"),
        }
    }
}

/// Where a deadline cancellation caught the request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum TimeoutPhase {
    /// Expired while still waiting for a batch slot.
    Queued,
    /// Missed its TTFT budget during/after prefill.
    Prefill,
    /// Missed its end-to-end budget while decoding.
    Decode,
}

impl fmt::Display for TimeoutPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimeoutPhase::Queued => f.write_str("queued"),
            TimeoutPhase::Prefill => f.write_str("prefill"),
            TimeoutPhase::Decode => f.write_str("decode"),
        }
    }
}

/// The exactly-one terminal state every request reaches.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum TerminalState {
    /// Finished every token without interference.
    Completed,
    /// Was preempted under memory pressure at least once, then finished.
    PreemptedThenCompleted,
    /// Shed at arrival by admission control.
    Rejected,
    /// Cancelled by an SLO deadline.
    TimedOut(TimeoutPhase),
    /// Gave up after faults/OOM exhausted its retries.
    Failed(FailureKind),
}

impl TerminalState {
    /// Did the request deliver its full generation?
    #[must_use]
    pub fn is_success(&self) -> bool {
        matches!(
            self,
            TerminalState::Completed | TerminalState::PreemptedThenCompleted
        )
    }
}

impl fmt::Display for TerminalState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TerminalState::Completed => f.write_str("completed"),
            TerminalState::PreemptedThenCompleted => f.write_str("preempted-then-completed"),
            TerminalState::Rejected => f.write_str("rejected"),
            TerminalState::TimedOut(p) => write!(f, "timed-out({p})"),
            TerminalState::Failed(k) => write!(f, "failed({k})"),
        }
    }
}

/// Per-request outcome under the resilient engine — the terminal-state
/// extension of [`crate::serving::RequestOutcome`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResilientOutcome {
    /// Request id.
    pub id: u64,
    /// How the request ended.
    pub state: TerminalState,
    /// Wait from arrival to first token of the *successful* attempt
    /// (mirrors the plain simulator's definition), clamped at 0.
    pub queue_delay_s: f64,
    /// Arrival → first token, if any token was ever delivered.
    pub ttft_s: Option<f64>,
    /// Arrival → terminal event (completion, shed, cancel, or failure).
    pub e2e_s: f64,
    /// Retry attempts consumed.
    pub retries: u32,
    /// Preemptions survived.
    pub preemptions: u32,
}

impl ResilientOutcome {
    /// The [`crate::SimError`] a non-successful outcome corresponds to, for
    /// callers that surface per-request failures as errors. `None` for
    /// successful outcomes.
    #[must_use]
    pub fn as_error(&self, cfg: &ResilienceConfig) -> Option<crate::SimError> {
        match self.state {
            TerminalState::Completed | TerminalState::PreemptedThenCompleted => None,
            TerminalState::Rejected => Some(crate::SimError::QueueFull {
                id: self.id,
                capacity: cfg.admission.queue_capacity.unwrap_or(usize::MAX),
            }),
            TerminalState::TimedOut(phase) => {
                let deadline_s = match phase {
                    TimeoutPhase::Queued | TimeoutPhase::Prefill => cfg
                        .slo
                        .ttft_deadline_s
                        .or(cfg.slo.e2e_deadline_s)
                        .unwrap_or(f64::INFINITY),
                    TimeoutPhase::Decode => cfg.slo.e2e_deadline_s.unwrap_or(f64::INFINITY),
                };
                Some(crate::SimError::DeadlineExceeded {
                    id: self.id,
                    deadline_s,
                    elapsed_s: self.e2e_s,
                })
            }
            TerminalState::Failed(kind) => Some(crate::SimError::BackendFault {
                id: self.id,
                kind: kind.to_string(),
                at_s: self.e2e_s,
            }),
        }
    }
}
