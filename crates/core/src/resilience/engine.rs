//! The resilient serving engine: the iteration-level and chunked-prefill
//! scheduler loops of [`crate::serving`], mirrored operation-for-operation
//! and extended with fault injection, deadlines, admission control, retry,
//! and preemption hooks.
//!
//! Exactness contract: under [`super::ResilienceConfig::passthrough`]
//! every hook is inert, the engine performs the *same floating-point
//! operations in the same order* as the plain simulator, and per-request
//! latencies are bit-identical. The equivalence property tests in
//! `crates/core/tests/resilience.rs` enforce this.

use super::metrics::ResilienceReport;
use super::{
    DegradationPolicy, FailureKind, FaultModel, ResilienceConfig, ResilientOutcome, SimRng,
    TerminalState, TimeoutPhase,
};
use crate::cpu_backend::CpuBackend;
use crate::serving::{SchedulingPolicy, ServingRequest};
use llmsim_model::ModelConfig;
use std::collections::VecDeque;

/// A request flowing through the resilient scheduler; survives retries and
/// preemptions.
#[derive(Debug, Clone, Copy)]
struct Job {
    id: u64,
    arrival_s: f64,
    prompt_len: u64,
    gen_len: u64,
    /// Tokens produced by the current attempt (kept across preemptions —
    /// recompute rebuilds their KV without re-emitting — reset by retries).
    produced: u64,
    first_token_s: Option<f64>,
    retries: u32,
    preemptions: u32,
}

impl Job {
    fn new(r: &ServingRequest) -> Self {
        Job {
            id: r.id,
            arrival_s: r.arrival_s,
            prompt_len: r.prompt_len,
            gen_len: r.gen_len,
            produced: 0,
            first_token_s: None,
            retries: 0,
            preemptions: 0,
        }
    }

    /// Tokens a (re)prefill must process: the prompt plus, after a
    /// preemption, every token already generated (recompute semantics).
    fn prefill_len(&self) -> u64 {
        self.prompt_len + self.produced
    }
}

/// A job in the running batch.
#[derive(Debug, Clone, Copy)]
struct ActiveJob {
    job: Job,
    context: u64,
    remaining: u64,
    /// When the job joined the current batch (the baseline's
    /// joined-this-iteration guard; distinct from `first_token_s`, which a
    /// preempted job keeps from its first attempt).
    joined_s: f64,
    /// Monotone admission counter; the degradation policy evicts the
    /// highest (most recently admitted = lowest priority).
    join_seq: u64,
}

/// A job waiting to (re)arrive: an original arrival or a scheduled retry.
#[derive(Debug, Clone, Copy)]
struct Pending {
    at_s: f64,
    seq: u64,
    job: Job,
}

/// `pending` is kept sorted descending by `(at_s, seq)` so the earliest
/// event pops from the back in O(1).
fn push_pending(pending: &mut Vec<Pending>, p: Pending) {
    let pos = pending.partition_point(|q| match q.at_s.total_cmp(&p.at_s) {
        std::cmp::Ordering::Greater => true,
        std::cmp::Ordering::Less => false,
        std::cmp::Ordering::Equal => q.seq > p.seq,
    });
    pending.insert(pos, p);
}

/// What the fault draw decided for one scheduler iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultDraw {
    None,
    /// Socket loss: the whole iteration's work is gone, every participant
    /// is a victim.
    WholeBatch,
    /// Core loss: one victim, chosen by the `index`-th participant.
    Single(usize),
}

/// Deterministic per-iteration fault source.
#[derive(Debug)]
struct Injector {
    model: FaultModel,
    rng: SimRng,
    slowdowns: u64,
    faults: u64,
}

impl Injector {
    fn new(model: FaultModel) -> Self {
        let rng = SimRng::new(model.seed);
        Injector {
            model,
            rng,
            slowdowns: 0,
            faults: 0,
        }
    }

    /// Perturbs one iteration's cost and decides its fault, drawing the
    /// same stream positions regardless of probabilities so the pattern
    /// under one seed is comparable across fault-rate settings.
    fn perturb(&mut self, raw_cost: f64, participants: usize) -> (f64, FaultDraw) {
        let u_slow = self.rng.next_f64();
        let u_fault = self.rng.next_f64();
        let cost = if u_slow < self.model.slowdown_prob {
            self.slowdowns += 1;
            raw_cost * self.model.slowdown_factor
        } else {
            raw_cost
        };
        if participants > 0 && u_fault < self.model.fault_prob {
            self.faults += 1;
            let u_scope = self.rng.next_f64();
            if u_scope < self.model.whole_batch_fault_prob {
                (cost, FaultDraw::WholeBatch)
            } else {
                (
                    cost,
                    FaultDraw::Single((self.rng.next_u64() % participants as u64) as usize),
                )
            }
        } else {
            (cost, FaultDraw::None)
        }
    }
}

/// Everything the scheduler loops share: terminal bookkeeping, admission,
/// expiry, retry scheduling, and the memory model.
struct Engine<'a> {
    backend: &'a CpuBackend,
    model: &'a ModelConfig,
    cfg: ResilienceConfig,
    injector: Injector,
    pending: Vec<Pending>,
    queue: VecDeque<Job>,
    outcomes: Vec<ResilientOutcome>,
    generated: u64,
    goodput_tokens: u64,
    retries_total: u64,
    preemptions_total: u64,
    retry_budget_left: Option<u64>,
    retry_seq: u64,
    join_seq: u64,
    kv_bytes_per_token: u64,
}

impl<'a> Engine<'a> {
    fn new(
        backend: &'a CpuBackend,
        model: &'a ModelConfig,
        cfg: ResilienceConfig,
        requests: &[ServingRequest],
    ) -> Self {
        let mut pending = Vec::with_capacity(requests.len());
        // Arrival order with ascending seq; stored descending so the
        // earliest arrival pops from the back.
        for (i, r) in requests.iter().enumerate().rev() {
            pending.push(Pending {
                at_s: r.arrival_s,
                seq: i as u64,
                job: Job::new(r),
            });
        }
        let kv_bytes_per_token = model.kv_bytes_per_token(backend.kv_dtype());
        Engine {
            backend,
            model,
            cfg,
            injector: Injector::new(cfg.faults),
            pending,
            queue: VecDeque::new(),
            outcomes: Vec::with_capacity(requests.len()),
            generated: 0,
            goodput_tokens: 0,
            retries_total: 0,
            preemptions_total: 0,
            retry_budget_left: cfg.retry.retry_budget,
            retry_seq: requests.len() as u64,
            join_seq: 0,
            kv_bytes_per_token,
        }
    }

    /// Records the single terminal state of a job.
    fn finish(&mut self, job: &Job, state: TerminalState, at_s: f64) {
        let e2e_s = (at_s - job.arrival_s).max(0.0);
        if state.is_success() {
            self.goodput_tokens += job.gen_len;
        }
        self.outcomes.push(ResilientOutcome {
            id: job.id,
            state,
            queue_delay_s: match job.first_token_s {
                Some(t) => (t - job.arrival_s).max(0.0),
                None => e2e_s,
            },
            ttft_s: job.first_token_s.map(|t| t - job.arrival_s),
            e2e_s,
            retries: job.retries,
            preemptions: job.preemptions,
        });
    }

    /// The instant a still-queued job becomes hopeless: its earliest
    /// applicable deadline (TTFT counts — a queued job has produced
    /// nothing).
    fn queue_deadline(&self, job: &Job) -> Option<f64> {
        let slo = &self.cfg.slo;
        let dl = match (slo.ttft_deadline_s, slo.e2e_deadline_s) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => return None,
        };
        // A preempted job already delivered its first token, so only the
        // end-to-end budget still binds while it waits again.
        if job.first_token_s.is_some() {
            return slo.e2e_deadline_s.map(|b| job.arrival_s + b);
        }
        Some(job.arrival_s + dl)
    }

    /// Moves every arrival/retry due by `now` into the bounded queue,
    /// shedding on saturation and cancelling already-expired entries.
    fn drain_arrivals(&mut self, now: f64) {
        while self.pending.last().is_some_and(|p| p.at_s <= now) {
            let Some(p) = self.pending.pop() else { break };
            if let Some(dl) = self.queue_deadline(&p.job) {
                if p.at_s > dl {
                    // A retry scheduled past its own deadline: cancel at
                    // the deadline instant, not the re-arrival.
                    self.finish(
                        &p.job.clone(),
                        TerminalState::TimedOut(TimeoutPhase::Queued),
                        dl,
                    );
                    continue;
                }
            }
            if let Some(cap) = self.cfg.admission.queue_capacity {
                if self.queue.len() >= cap {
                    self.finish(&p.job.clone(), TerminalState::Rejected, p.at_s);
                    continue;
                }
            }
            self.queue.push_back(p.job);
        }
    }

    /// Cancels queued jobs whose deadline passed while they waited.
    fn expire_queued(&mut self, now: f64) {
        if self.cfg.slo.ttft_deadline_s.is_none() && self.cfg.slo.e2e_deadline_s.is_none() {
            return;
        }
        let mut kept = VecDeque::with_capacity(self.queue.len());
        while let Some(job) = self.queue.pop_front() {
            match self.queue_deadline(&job) {
                Some(dl) if now > dl => {
                    self.finish(&job, TerminalState::TimedOut(TimeoutPhase::Queued), dl);
                }
                _ => kept.push_back(job),
            }
        }
        self.queue = kept;
    }

    /// Routes a faulted/OOM-failed job: schedule a backoff retry if policy
    /// and budget allow, otherwise record the terminal failure.
    fn fail_or_retry(&mut self, mut job: Job, now: f64, kind: FailureKind) {
        let can_retry = job.retries < self.cfg.retry.max_retries
            && self.retry_budget_left.is_none_or(|b| b > 0);
        if !can_retry {
            self.finish(&job, TerminalState::Failed(kind), now);
            return;
        }
        if let Some(b) = self.retry_budget_left.as_mut() {
            *b -= 1;
        }
        job.retries += 1;
        self.retries_total += 1;
        // The retry is a fresh attempt: progress and first-token credit are
        // gone (the client re-issues the stream).
        job.produced = 0;
        job.first_token_s = None;
        let r = &self.cfg.retry;
        let mut backoff = r.base_backoff_s * r.multiplier.powi(job.retries as i32 - 1);
        backoff *= 1.0 + r.jitter_frac * self.injector.rng.next_f64();
        let seq = self.retry_seq;
        self.retry_seq += 1;
        push_pending(
            &mut self.pending,
            Pending {
                at_s: now + backoff,
                seq,
                job,
            },
        );
    }

    /// Requeues a preempted job at the head of the queue (it holds an
    /// admission slot already; capacity does not apply twice).
    fn requeue_preempted(&mut self, mut job: Job) {
        job.preemptions += 1;
        self.preemptions_total += 1;
        self.queue.push_front(job);
    }

    /// KV bytes the batch (plus `extra_tokens` of partially-built prefill
    /// state) holds right now.
    fn kv_demand(&self, active: &[ActiveJob], extra_tokens: u64) -> u64 {
        let tokens: u64 = active.iter().map(|a| a.context).sum::<u64>() + extra_tokens;
        tokens * self.kv_bytes_per_token
    }

    /// Whether admitting `job` next to the running batch (plus
    /// `extra_tokens` of other already-admitted prefill state) stays
    /// within the KV budget. Prevents admit→evict thrash: an evicted job
    /// waits in the queue until memory actually frees. Always true without
    /// a budget, keeping passthrough exact.
    fn admission_fits(&self, active: &[ActiveJob], extra_tokens: u64, job: &Job) -> bool {
        let Some(budget) = self.cfg.faults.kv_budget else {
            return true;
        };
        self.kv_demand(active, extra_tokens + job.prefill_len()) <= budget.get()
    }

    /// Applies the degradation policy until the batch fits the KV budget.
    /// Returns `true` while the batch still has members.
    fn enforce_memory(&mut self, active: &mut Vec<ActiveJob>, extra_tokens: u64, now: f64) {
        let Some(budget) = self.cfg.faults.kv_budget else {
            return;
        };
        while !active.is_empty() && self.kv_demand(active, extra_tokens) > budget.get() {
            let Some(victim_pos) = active
                .iter()
                .enumerate()
                .max_by_key(|(_, a)| a.join_seq)
                .map(|(i, _)| i)
            else {
                break; // unreachable: the loop guard keeps `active` non-empty
            };
            let victim = active.remove(victim_pos);
            if active.is_empty() && self.kv_demand(&[], extra_tokens) == 0 {
                // The victim alone exceeds the budget: no schedule can run
                // it, so retrying or requeueing would thrash forever.
                let lone_demand = victim.context * self.kv_bytes_per_token;
                if lone_demand > budget.get() {
                    self.finish(
                        &victim.job,
                        TerminalState::Failed(FailureKind::OutOfMemory),
                        now,
                    );
                    continue;
                }
            }
            match self.cfg.degradation {
                DegradationPolicy::PreemptAndRequeue => self.requeue_preempted(victim.job),
                DegradationPolicy::FailNewest => {
                    self.fail_or_retry(victim.job, now, FailureKind::OutOfMemory);
                }
            }
        }
    }

    /// Post-prefill SLO gate for a job that just (re)joined the batch.
    /// Returns `false` if the job was cancelled.
    fn passes_join_slo(&mut self, a: &ActiveJob, now: f64) -> bool {
        if let (Some(dl), Some(t)) = (self.cfg.slo.ttft_deadline_s, a.job.first_token_s) {
            if t - a.job.arrival_s > dl {
                self.finish(&a.job, TerminalState::TimedOut(TimeoutPhase::Prefill), now);
                return false;
            }
        }
        if let Some(dl) = self.cfg.slo.e2e_deadline_s {
            if now - a.job.arrival_s > dl {
                self.finish(&a.job, TerminalState::TimedOut(TimeoutPhase::Prefill), now);
                return false;
            }
        }
        true
    }

    /// Post-iteration end-to-end SLO gate for decoding jobs. Returns
    /// `false` if the job was cancelled.
    fn passes_decode_slo(&mut self, a: &ActiveJob, now: f64) -> bool {
        if let Some(dl) = self.cfg.slo.e2e_deadline_s {
            if now - a.job.arrival_s > dl {
                self.finish(&a.job, TerminalState::TimedOut(TimeoutPhase::Decode), now);
                return false;
            }
        }
        true
    }

    fn into_report(
        self,
        policy: SchedulingPolicy,
        makespan_s: f64,
        max_stall: f64,
    ) -> ResilienceReport {
        ResilienceReport {
            policy,
            outcomes: self.outcomes,
            makespan_s,
            generated_tokens: self.generated,
            goodput_tokens: self.goodput_tokens,
            max_decode_stall_s: max_stall,
            retries: self.retries_total,
            preemptions: self.preemptions_total,
            faults_injected: self.injector.faults,
            slowdowns_injected: self.injector.slowdowns,
        }
    }
}

/// Simulates serving `requests` (sorted by arrival) on `backend` under the
/// full resilience configuration.
///
/// With [`ResilienceConfig::passthrough`] the per-request latencies are
/// identical to [`crate::serving::simulate`] for the same policy.
///
/// # Errors
///
/// Returns [`crate::SimError::UnsupportedConfig`] for
/// [`SchedulingPolicy::Static`]: whole-batch scheduling has no iteration
/// boundaries to inject faults or preempt at.
///
/// # Panics
///
/// Panics on the same malformed inputs as [`crate::serving::simulate`]
/// (empty/unsorted requests, zero lengths, zero batch or chunk) and on
/// out-of-range fault probabilities.
pub fn simulate_resilient(
    backend: &CpuBackend,
    model: &ModelConfig,
    cfg: &ResilienceConfig,
    requests: &[ServingRequest],
) -> Result<ResilienceReport, crate::SimError> {
    assert!(!requests.is_empty(), "need at least one request");
    assert!(cfg.serving.max_batch > 0, "max batch must be positive");
    assert!(
        requests
            .windows(2)
            .all(|w| w[0].arrival_s <= w[1].arrival_s),
        "requests must be sorted by arrival"
    );
    assert!(
        requests.iter().all(|r| r.prompt_len > 0 && r.gen_len > 0),
        "request lengths must be positive"
    );
    cfg.faults.validate();
    match cfg.serving.policy {
        SchedulingPolicy::Static => Err(crate::SimError::UnsupportedConfig(
            "resilient serving needs iteration-level scheduling (static batches have no \
             iteration boundaries to inject faults or preempt at)"
                .to_owned(),
        )),
        SchedulingPolicy::IterationLevel => Ok(run_iteration_level(Engine::new(
            backend, model, *cfg, requests,
        ))),
        SchedulingPolicy::ChunkedPrefill { chunk_tokens } => {
            assert!(chunk_tokens > 0, "chunk size must be positive");
            Ok(run_chunked(
                Engine::new(backend, model, *cfg, requests),
                chunk_tokens,
            ))
        }
    }
}

/// The resilient mirror of `serving::simulate_iteration`.
fn run_iteration_level(mut eng: Engine<'_>) -> ResilienceReport {
    let max_batch = eng.cfg.serving.max_batch as usize;
    let mut active: Vec<ActiveJob> = Vec::new();
    let mut now = 0.0f64;
    let mut max_stall = 0.0f64;

    while !eng.pending.is_empty() || !eng.queue.is_empty() || !active.is_empty() {
        eng.drain_arrivals(now);
        eng.expire_queued(now);

        // Admission, mirroring the baseline: queued (arrived) jobs fill the
        // batch; when the server is completely idle, exactly one future
        // arrival is pulled forward.
        let mut admitted: Vec<Job> = Vec::new();
        let mut admitted_tokens = 0u64;
        while active.len() + admitted.len() < max_batch {
            if let Some(job) = eng.queue.front() {
                // When the server is busy, only admit what fits the KV
                // budget; an empty server must admit (a lone oversized job
                // is failed terminally by the memory check).
                let must_admit = active.is_empty() && admitted.is_empty();
                if !must_admit && !eng.admission_fits(&active, admitted_tokens, job) {
                    break;
                }
                let Some(job) = eng.queue.pop_front() else {
                    break;
                };
                admitted_tokens += job.prefill_len();
                admitted.push(job);
            } else if active.is_empty() && admitted.is_empty() {
                match eng.pending.pop() {
                    Some(p) => admitted.push(p.job),
                    None => break,
                }
            } else {
                break;
            }
        }

        if !admitted.is_empty() {
            let start = now.max(admitted.iter().map(|j| j.arrival_s).fold(0.0, f64::max));
            let max_prompt = admitted.iter().map(Job::prefill_len).max().unwrap_or(1);
            let raw = eng
                .backend
                .prefill_time(eng.model, admitted.len() as u64, max_prompt)
                .as_f64();
            let (cost, fault) = eng.injector.perturb(raw, admitted.len());
            if !active.is_empty() {
                max_stall = max_stall.max(cost);
            }
            now = start + cost;
            if fault == FaultDraw::None {
                for mut job in admitted {
                    if job.produced == 0 {
                        // Prefill emits the first token (baseline semantics);
                        // a preempted job only recomputes and emits nothing.
                        eng.generated += 1;
                        job.produced = 1;
                        job.first_token_s = Some(now);
                    }
                    let a = ActiveJob {
                        context: job.prefill_len(),
                        remaining: job.gen_len - job.produced,
                        joined_s: now,
                        join_seq: eng.join_seq,
                        job,
                    };
                    eng.join_seq += 1;
                    if eng.passes_join_slo(&a, now) {
                        active.push(a);
                    }
                }
            } else {
                // A fault during the prefill pass loses the whole pass
                // (socket blip); running decodes only lose time.
                for job in admitted {
                    eng.fail_or_retry(job, now, FailureKind::BackendFault);
                }
            }
        }
        if active.is_empty() {
            continue;
        }

        // Memory pressure is checked where it bites: before the decode
        // step grows every context by one token.
        eng.enforce_memory(&mut active, 0, now);
        if active.is_empty() {
            continue;
        }

        // One decode iteration for the whole running batch.
        let b = active.len() as u64;
        let kv = active.iter().map(|a| a.context).max().unwrap_or(1);
        let raw = eng.backend.decode_step_time(eng.model, b, kv).as_f64();
        let (step, fault) = eng.injector.perturb(raw, active.len());
        max_stall = max_stall.max(step);
        now += step;

        let mut still_running = Vec::with_capacity(active.len());
        match fault {
            FaultDraw::WholeBatch => {
                for a in active.drain(..) {
                    eng.fail_or_retry(a.job, now, FailureKind::BackendFault);
                }
            }
            FaultDraw::Single(victim) => {
                for (i, mut a) in active.drain(..).enumerate() {
                    if i == victim {
                        eng.fail_or_retry(a.job, now, FailureKind::BackendFault);
                        continue;
                    }
                    if advance_decode(&mut eng, &mut a, now) {
                        still_running.push(a);
                    }
                }
            }
            FaultDraw::None => {
                for mut a in active.drain(..) {
                    if advance_decode(&mut eng, &mut a, now) {
                        still_running.push(a);
                    }
                }
            }
        }
        active = still_running;
    }
    eng.into_report(SchedulingPolicy::IterationLevel, now, max_stall)
}

/// One job's decode-step bookkeeping: token progress, completion, and the
/// end-to-end deadline gate. Returns `true` if the job keeps running.
fn advance_decode(eng: &mut Engine<'_>, a: &mut ActiveJob, now: f64) -> bool {
    if a.remaining > 0 {
        a.remaining -= 1;
        a.context += 1;
        a.job.produced += 1;
        eng.generated += 1;
    }
    if a.remaining == 0 {
        let state = if a.job.preemptions > 0 {
            TerminalState::PreemptedThenCompleted
        } else {
            TerminalState::Completed
        };
        eng.finish(&a.job, state, now);
        return false;
    }
    eng.passes_decode_slo(a, now)
}

/// A job whose prompt is mid-chunked-prefill.
#[derive(Debug, Clone, Copy)]
struct Prefilling {
    job: Job,
    remaining_prompt: u64,
}

/// The resilient mirror of `serving::simulate_chunked`.
fn run_chunked(mut eng: Engine<'_>, chunk_tokens: u64) -> ResilienceReport {
    let max_batch = eng.cfg.serving.max_batch as usize;
    let mut active: Vec<ActiveJob> = Vec::new();
    let mut prefilling: Option<Prefilling> = None;
    let mut now = 0.0f64;
    let mut max_stall = 0.0f64;

    while !eng.pending.is_empty()
        || !eng.queue.is_empty()
        || !active.is_empty()
        || prefilling.is_some()
    {
        eng.drain_arrivals(now);
        eng.expire_queued(now);

        // Admit one request into the prefilling slot when there is room,
        // pulling a future arrival forward only when decode is idle
        // (baseline semantics).
        if prefilling.is_none() && active.len() < max_batch {
            if let Some(job) = eng.queue.front() {
                // Same KV-aware gate as the iteration-level loop: a busy
                // server keeps an oversized head-of-queue waiting.
                if active.is_empty() || eng.admission_fits(&active, 0, job) {
                    if let Some(job) = eng.queue.pop_front() {
                        now = now.max(job.arrival_s);
                        prefilling = Some(Prefilling {
                            remaining_prompt: job.prefill_len(),
                            job,
                        });
                    }
                }
            } else if active.is_empty() {
                if let Some(p) = eng.pending.pop() {
                    now = now.max(p.job.arrival_s);
                    prefilling = Some(Prefilling {
                        remaining_prompt: p.job.prefill_len(),
                        job: p.job,
                    });
                }
            }
        }
        if prefilling.is_none() && active.is_empty() {
            continue; // next arrival is handled at admission
        }

        // Memory check counts the partially-built prefill KV too.
        let prefill_tokens = prefilling
            .as_ref()
            .map_or(0, |p| p.job.prefill_len() - p.remaining_prompt);
        eng.enforce_memory(&mut active, prefill_tokens, now);
        if prefilling.is_none() && active.is_empty() {
            continue;
        }

        // One fused iteration: a prompt chunk (if any) plus one decode
        // step, with the baseline's piggyback surcharge.
        let decode_b = active.len() as u64;
        let (raw, chunk) = match (&prefilling, decode_b) {
            (Some(p), b) => {
                let chunk = p.remaining_prompt.min(chunk_tokens);
                let chunk_cost = eng.backend.prefill_time(eng.model, 1, chunk).as_f64();
                let piggyback = if b > 0 {
                    0.25 * eng
                        .backend
                        .decode_step_time(eng.model, b, 1 + p.job.prefill_len())
                        .as_f64()
                } else {
                    0.0
                };
                (chunk_cost + piggyback, chunk)
            }
            (None, b) => {
                let kv = active.iter().map(|a| a.context).max().unwrap_or(1);
                (
                    eng.backend
                        .decode_step_time(eng.model, b.max(1), kv)
                        .as_f64(),
                    0,
                )
            }
        };
        let participants = active.len() + usize::from(prefilling.is_some());
        let (iter_cost, fault) = eng.injector.perturb(raw, participants);
        if !active.is_empty() {
            max_stall = max_stall.max(iter_cost);
        }
        now += iter_cost;

        // Resolve the fault before any progress is applied: victims lose
        // the iteration (a faulted chunk is not retained).
        let mut chunk_lost = false;
        match fault {
            FaultDraw::WholeBatch => {
                if let Some(p) = prefilling.take() {
                    eng.fail_or_retry(p.job, now, FailureKind::BackendFault);
                }
                for a in active.drain(..) {
                    eng.fail_or_retry(a.job, now, FailureKind::BackendFault);
                }
                continue;
            }
            FaultDraw::Single(victim) => {
                // Participant order: the prefilling slot first, then the
                // batch in admission order.
                let prefill_victim = if victim == 0 { prefilling.take() } else { None };
                if let Some(p) = prefill_victim {
                    eng.fail_or_retry(p.job, now, FailureKind::BackendFault);
                    chunk_lost = true;
                } else {
                    let idx = victim - usize::from(prefilling.is_some());
                    let a = active.remove(idx);
                    eng.fail_or_retry(a.job, now, FailureKind::BackendFault);
                }
            }
            FaultDraw::None => {}
        }

        // Chunk progress and prefill completion → join the decode batch.
        if !chunk_lost {
            if let Some(p) = prefilling.as_mut() {
                p.remaining_prompt -= chunk;
            }
            if let Some(p) = prefilling {
                if p.remaining_prompt == 0 {
                    let mut job = p.job;
                    if job.produced == 0 {
                        eng.generated += 1;
                        job.produced = 1;
                        job.first_token_s = Some(now);
                    }
                    let a = ActiveJob {
                        context: job.prefill_len(),
                        remaining: job.gen_len - job.produced,
                        joined_s: now,
                        join_seq: eng.join_seq,
                        job,
                    };
                    eng.join_seq += 1;
                    if eng.passes_join_slo(&a, now) {
                        active.push(a);
                    }
                    prefilling = None;
                }
            }
        }

        // A still-prefilling job past its deadline is hopeless: cancel
        // before it wastes more chunks.
        if let Some(p) = prefilling {
            if let Some(dl) = eng.queue_deadline(&p.job) {
                if now > dl {
                    eng.finish(&p.job, TerminalState::TimedOut(TimeoutPhase::Prefill), now);
                    prefilling = None;
                }
            }
        }

        // Decode progress for everyone active before this iteration.
        let mut still = Vec::with_capacity(active.len());
        for mut a in active.drain(..) {
            if a.joined_s >= now {
                // Joined at the end of this iteration; decodes next time.
                still.push(a);
                continue;
            }
            if advance_decode(&mut eng, &mut a, now) {
                still.push(a);
            }
        }
        active = still;
    }
    eng.into_report(
        SchedulingPolicy::ChunkedPrefill { chunk_tokens },
        now,
        max_stall,
    )
}
