//! Fleet-level metrics for a resilient serving run: goodput vs raw
//! throughput, latency percentiles, SLO attainment, shed/retry rates.

use super::{ResilientOutcome, TerminalState};
use crate::serving::SchedulingPolicy;
use serde::Serialize;

/// Linear-interpolation percentile over an unsorted sample.
///
/// `p` is in percent (`50.0` = median). Returns `NaN` for an empty sample,
/// matching the "no data" semantics of the latency columns. Delegates to
/// [`llmsim_report::percentile`] — the workspace's single percentile
/// implementation — so fleet metrics and figure series agree exactly.
#[must_use]
pub fn percentile(values: &[f64], p: f64) -> f64 {
    llmsim_report::percentile(values, p)
}

/// Everything a resilient serving run produced, with the fleet metrics the
/// resilience experiments report.
#[derive(Debug, Clone, Serialize)]
pub struct ResilienceReport {
    /// Scheduling policy the run used.
    pub policy: SchedulingPolicy,
    /// Per-request terminal outcomes, in terminal-event order.
    pub outcomes: Vec<ResilientOutcome>,
    /// Wall-clock span of the whole run.
    pub makespan_s: f64,
    /// Every token emitted, including tokens of requests that later failed
    /// or timed out (what the hardware paid for).
    pub generated_tokens: u64,
    /// Tokens delivered to successful requests (what clients got).
    pub goodput_tokens: u64,
    /// Longest gap between consecutive token emissions for a decoding
    /// request (head-of-line stall, as in the plain simulator).
    pub max_decode_stall_s: f64,
    /// Retries scheduled across the run.
    pub retries: u64,
    /// Preemption events (evict-and-requeue) across the run.
    pub preemptions: u64,
    /// Injected hard faults (core/socket loss events).
    pub faults_injected: u64,
    /// Injected transient slowdown iterations.
    pub slowdowns_injected: u64,
}

impl ResilienceReport {
    /// Raw token throughput: every emitted token over the makespan.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        self.generated_tokens as f64 / self.makespan_s
    }

    /// Goodput: only tokens of successfully completed requests count.
    /// The gap to [`Self::throughput`] is work wasted on requests that
    /// were later cancelled, failed, or recomputed.
    #[must_use]
    pub fn goodput(&self) -> f64 {
        self.goodput_tokens as f64 / self.makespan_s
    }

    /// Tokens the hardware produced that no successful request consumed.
    #[must_use]
    pub fn wasted_tokens(&self) -> u64 {
        self.generated_tokens.saturating_sub(self.goodput_tokens)
    }

    /// Requests that reached a successful terminal state.
    #[must_use]
    pub fn n_success(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.state.is_success())
            .count()
    }

    /// Requests shed by admission control.
    #[must_use]
    pub fn n_rejected(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.state == TerminalState::Rejected)
            .count()
    }

    /// Requests cancelled by an SLO deadline (any phase).
    #[must_use]
    pub fn n_timed_out(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o.state, TerminalState::TimedOut(_)))
            .count()
    }

    /// Requests that exhausted retries and failed hard.
    #[must_use]
    pub fn n_failed(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o.state, TerminalState::Failed(_)))
            .count()
    }

    /// Fraction of all requests shed by admission control.
    #[must_use]
    pub fn shed_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.n_rejected() as f64 / self.outcomes.len() as f64
    }

    /// Fraction of all requests that completed AND met the given targets
    /// (`None` target = that dimension always passes). Rejected, timed-out
    /// and failed requests count against attainment.
    #[must_use]
    pub fn slo_attainment(&self, ttft_target_s: Option<f64>, e2e_target_s: Option<f64>) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        let met = self
            .outcomes
            .iter()
            .filter(|o| {
                o.state.is_success()
                    && ttft_target_s.is_none_or(|t| o.ttft_s.is_some_and(|v| v <= t))
                    && e2e_target_s.is_none_or(|t| o.e2e_s <= t)
            })
            .count();
        met as f64 / self.outcomes.len() as f64
    }

    /// TTFT percentile (`p` in percent) over successful requests.
    #[must_use]
    pub fn ttft_percentile(&self, p: f64) -> f64 {
        let v: Vec<f64> = self
            .outcomes
            .iter()
            .filter(|o| o.state.is_success())
            .filter_map(|o| o.ttft_s)
            .collect();
        percentile(&v, p)
    }

    /// End-to-end latency percentile (`p` in percent) over successful
    /// requests.
    #[must_use]
    pub fn e2e_percentile(&self, p: f64) -> f64 {
        let v: Vec<f64> = self
            .outcomes
            .iter()
            .filter(|o| o.state.is_success())
            .map(|o| o.e2e_s)
            .collect();
        percentile(&v, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_interpolates() {
        let v = [4.0, 1.0, 3.0, 2.0];
        assert!((percentile(&v, 0.0) - 1.0).abs() < 1e-12);
        assert!((percentile(&v, 100.0) - 4.0).abs() < 1e-12);
        assert!((percentile(&v, 50.0) - 2.5).abs() < 1e-12);
        assert!(percentile(&[], 50.0).is_nan());
        assert!((percentile(&[7.0], 99.0) - 7.0).abs() < 1e-12);
    }
}
