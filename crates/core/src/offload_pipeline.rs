//! A discrete-event simulation of the FlexGen zig-zag layer pipeline.
//!
//! [`crate::offload`] costs offloaded passes with a closed-form overlap
//! factor. This module simulates the actual pipeline — per-layer weight
//! transfers racing per-layer compute under a bounded prefetch depth — and
//! is used to *validate* that closed form: tests check the event-driven
//! exposed-transfer time brackets the analytic one, and that deeper
//! prefetch monotonically improves overlap (the zig-zag design argument).

use llmsim_hw::{Bytes, GpuSpec, Seconds};
use llmsim_model::{DType, ModelConfig};

/// Configuration of the layer pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// How many layers ahead the transfer engine may run (1 = strict
    /// double buffering; 0 = fully serialized, no overlap).
    pub prefetch_depth: u32,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig { prefetch_depth: 1 }
    }
}

/// Timeline of one offloaded forward pass.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineTimeline {
    /// Per-layer compute start times (seconds).
    pub compute_start: Vec<f64>,
    /// Per-layer compute end times.
    pub compute_end: Vec<f64>,
    /// Total wall-clock of the pass.
    pub makespan: Seconds,
    /// Sum of raw per-layer transfer times.
    pub raw_transfer: Seconds,
    /// Wall-clock the compute engine spent idle waiting on transfers.
    pub exposed_transfer: Seconds,
}

/// Simulates one forward pass: `n_layers` layers, each needing its weight
/// slice transferred (unless resident) before its compute can start.
///
/// Two engines run concurrently: the DMA engine transfers layer weights in
/// order, at most `prefetch_depth` layers ahead of compute; the compute
/// engine processes layers in order.
///
/// # Panics
///
/// Panics if `model.n_layers` is zero (model validation guarantees not).
#[must_use]
pub fn simulate_pass(
    gpu: &GpuSpec,
    model: &ModelConfig,
    dtype: DType,
    resident_fraction: f64,
    per_layer_compute: Seconds,
    config: &PipelineConfig,
) -> PipelineTimeline {
    let layers = model.n_layers as usize;
    assert!(layers > 0, "model must have layers");
    let per_layer_bytes = Bytes::new(model.params_per_layer() * dtype.bytes());
    // The resident fraction pins the *first* layers (FlexGen pins from the
    // bottom); those transfer in zero time.
    let resident_layers = ((layers as f64) * resident_fraction.clamp(0.0, 1.0)).floor() as usize;
    let transfer_one = gpu.host_link.transfer_time(per_layer_bytes).as_f64();
    let compute_one = per_layer_compute.as_f64();

    let mut transfer_end = vec![0.0f64; layers];
    let mut compute_start = vec![0.0f64; layers];
    let mut compute_end = vec![0.0f64; layers];
    let mut dma_free = 0.0f64;
    let mut compute_free = 0.0f64;
    let mut raw_transfer = 0.0f64;

    for l in 0..layers {
        // DMA engine: may start once it's free and compute is within
        // `prefetch_depth` layers (bounded lookahead = bounded GPU staging
        // buffers).
        if l < resident_layers {
            transfer_end[l] = 0.0;
        } else {
            let gate = if config.prefetch_depth == 0 {
                // No overlap: transfer waits for the previous layer's compute.
                if l == 0 {
                    0.0
                } else {
                    compute_end[l - 1]
                }
            } else {
                let window = l.saturating_sub(config.prefetch_depth as usize);
                if l == 0 || window == 0 {
                    0.0
                } else {
                    compute_end[window - 1]
                }
            };
            let start = dma_free.max(gate);
            transfer_end[l] = start + transfer_one;
            dma_free = transfer_end[l];
            raw_transfer += transfer_one;
        }
        // Compute engine: needs its weights and the previous layer done.
        let ready = transfer_end[l].max(compute_free);
        compute_start[l] = ready;
        compute_end[l] = ready + compute_one;
        compute_free = compute_end[l];
    }

    let makespan = compute_end[layers - 1];
    let total_compute = compute_one * layers as f64;
    PipelineTimeline {
        compute_start,
        compute_end,
        makespan: Seconds::new(makespan),
        raw_transfer: Seconds::new(raw_transfer),
        exposed_transfer: Seconds::new((makespan - total_compute).max(0.0)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmsim_model::families;

    fn setup() -> (GpuSpec, ModelConfig) {
        (llmsim_hw::presets::a100_40gb(), families::opt_30b())
    }

    #[test]
    fn transfer_bound_pass_is_dma_limited() {
        let (gpu, m) = setup();
        // Tiny compute per layer → makespan ≈ total transfer time.
        let t = simulate_pass(
            &gpu,
            &m,
            DType::Bf16,
            0.0,
            Seconds::from_micros(10.0),
            &PipelineConfig::default(),
        );
        let per_layer = gpu
            .host_link
            .transfer_time(Bytes::new(m.params_per_layer() * 2))
            .as_f64();
        let expect = per_layer * m.n_layers as f64;
        assert!(
            (t.makespan.as_f64() - expect) / expect < 0.02,
            "{} vs {expect}",
            t.makespan
        );
        assert!(t.exposed_transfer.as_f64() > 0.9 * t.raw_transfer.as_f64());
    }

    #[test]
    fn compute_bound_pass_hides_all_but_first_transfer() {
        let (gpu, m) = setup();
        // Compute per layer far above transfer → only layer 0's transfer
        // is exposed.
        let per_layer = gpu
            .host_link
            .transfer_time(Bytes::new(m.params_per_layer() * 2))
            .as_f64();
        let compute = Seconds::new(per_layer * 5.0);
        let t = simulate_pass(
            &gpu,
            &m,
            DType::Bf16,
            0.0,
            compute,
            &PipelineConfig::default(),
        );
        assert!(
            t.exposed_transfer.as_f64() < 1.5 * per_layer,
            "exposed {} vs per-layer {per_layer}",
            t.exposed_transfer
        );
    }

    #[test]
    fn prefetch_depth_monotonically_helps() {
        let (gpu, m) = setup();
        let compute = Seconds::from_millis(25.0);
        let mut last = f64::INFINITY;
        for depth in [0u32, 1, 2, 4] {
            let t = simulate_pass(
                &gpu,
                &m,
                DType::Bf16,
                0.0,
                compute,
                &PipelineConfig {
                    prefetch_depth: depth,
                },
            );
            assert!(
                t.makespan.as_f64() <= last + 1e-12,
                "depth {depth}: {} > {last}",
                t.makespan
            );
            last = t.makespan.as_f64();
        }
    }

    #[test]
    fn resident_layers_cut_raw_transfer_proportionally() {
        let (gpu, m) = setup();
        let compute = Seconds::from_millis(5.0);
        let full = simulate_pass(
            &gpu,
            &m,
            DType::Bf16,
            0.0,
            compute,
            &PipelineConfig::default(),
        );
        let half = simulate_pass(
            &gpu,
            &m,
            DType::Bf16,
            0.5,
            compute,
            &PipelineConfig::default(),
        );
        let ratio = half.raw_transfer.as_f64() / full.raw_transfer.as_f64();
        assert!((ratio - 0.5).abs() < 0.05, "{ratio}");
        assert!(half.makespan < full.makespan);
    }

    #[test]
    fn event_driven_brackets_closed_form_overlap() {
        // The closed-form model in `offload.rs` assumes a fixed
        // OFFLOAD_OVERLAP_EFF share of compute hides transfer. The
        // event-driven pipeline's hidden share must land in a plausible
        // band around it for decode-like ratios (compute ≪ transfer).
        let (gpu, m) = setup();
        let per_layer_transfer = gpu
            .host_link
            .transfer_time(Bytes::new(m.params_per_layer() * 2))
            .as_f64();
        // Decode-like: compute is ~20% of transfer per layer.
        let compute = Seconds::new(per_layer_transfer * 0.2);
        let t = simulate_pass(
            &gpu,
            &m,
            DType::Bf16,
            0.0,
            compute,
            &PipelineConfig::default(),
        );
        let hidden =
            t.raw_transfer.as_f64() + compute.as_f64() * m.n_layers as f64 - t.makespan.as_f64();
        let hidden_share_of_compute = hidden / (compute.as_f64() * m.n_layers as f64);
        // Strict double buffering hides transfer under (most) compute.
        assert!(
            (0.5..=1.0).contains(&hidden_share_of_compute),
            "hidden share {hidden_share_of_compute}"
        );
    }

    #[test]
    fn timeline_is_causally_ordered() {
        let (gpu, m) = setup();
        let t = simulate_pass(
            &gpu,
            &m,
            DType::Bf16,
            0.25,
            Seconds::from_millis(1.0),
            &PipelineConfig::default(),
        );
        for l in 0..m.n_layers as usize {
            assert!(t.compute_end[l] > t.compute_start[l]);
            if l > 0 {
                assert!(t.compute_start[l] >= t.compute_end[l - 1]);
            }
        }
    }
}
