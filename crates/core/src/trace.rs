//! Per-request span tracing: the observability layer of the simulators.
//!
//! Both the single-server serving simulator ([`crate::serving`]) and the
//! fleet engine (`llmsim-cluster`) compute every phase boundary of a
//! request's life — arrival, queue wait, dispatch, prefill, decode,
//! completion — and historically discarded them after folding the
//! aggregates into a report. A [`SpanRecord`] keeps the full breakdown,
//! and a [`SpanSink`] decides what happens to it: [`NullSink`] drops spans
//! without assembling them (the default — simulation output is
//! bit-identical with tracing off), [`VecSink`] collects them in memory
//! for the TSV/JSONL writers in `llmsim-report`.
//!
//! Invariant the trace tooling relies on: for a completed span,
//! `queue_delay_s + prefill_s() + decode_s == e2e_s()` up to float
//! rounding, and those reconcile with the engine's reported per-request
//! latencies. Tests in `llmsim-cluster` and `llmsim-bench` assert both.

use llmsim_report::spanlog::{self, Cell, TabularLog};

/// Terminal state of a traced request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanOutcome {
    /// Served to completion.
    Completed,
    /// Turned away before dispatch (admission/routing rejection).
    Rejected,
    /// Lost to injected backend faults after its retries ran out (the
    /// fleet engine's crash/retry chains terminate here).
    Failed,
}

impl SpanOutcome {
    /// Stable lowercase label used in trace files.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SpanOutcome::Completed => "completed",
            SpanOutcome::Rejected => "rejected",
            SpanOutcome::Failed => "failed",
        }
    }
}

/// The phase-by-phase life of one request.
///
/// Times are absolute simulation seconds; durations are seconds. Fields
/// that do not exist for a rejected request (dispatch, prefill, decode,
/// completion) are `NaN`, which the log writers render as `NaN` (TSV) or
/// `null` (JSONL).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanRecord {
    /// Workload/request id.
    pub id: u64,
    /// Index of the model served (into the engine's model list; 0 for the
    /// single-model serving simulator).
    pub model: usize,
    /// Replica that served the request (`None` when rejected, and for the
    /// single-server simulator which has exactly one "replica").
    pub replica: Option<usize>,
    /// How the request terminated.
    pub outcome: SpanOutcome,
    /// Arrival time at the router/queue.
    pub arrival_s: f64,
    /// Arrival → dispatch wait (queue + any cold-start warmup). Zero or
    /// positive for completed spans, `NaN` for rejected ones.
    pub queue_delay_s: f64,
    /// Moment the request entered service (prefill start).
    pub dispatch_s: f64,
    /// Moment the prefill pass finished (= first token).
    pub prefill_end_s: f64,
    /// Aggregated decode time over all generated tokens after the first.
    pub decode_s: f64,
    /// Decode steps taken (`gen_len - 1` for a completed request).
    pub decode_steps: u64,
    /// Moment the final token was produced.
    pub completion_s: f64,
    /// Sequences sharing the batch at the moment of dispatch (including
    /// this one).
    pub batch_at_dispatch: u64,
    /// Prompt tokens whose KV was served from a shared prefix cache
    /// (skipping their prefill). Zero whenever paged-KV modeling is off.
    pub prefix_hit_tokens: u64,
    /// Times this request was preempted off a batch slot (KV blocks
    /// exhausted) and recomputed. Zero whenever paged-KV modeling is off.
    pub preemptions: u64,
}

impl SpanRecord {
    /// A rejected-request span: only identity and arrival are known.
    #[must_use]
    pub fn rejected(id: u64, model: usize, arrival_s: f64) -> Self {
        SpanRecord {
            id,
            model,
            replica: None,
            outcome: SpanOutcome::Rejected,
            arrival_s,
            queue_delay_s: f64::NAN,
            dispatch_s: f64::NAN,
            prefill_end_s: f64::NAN,
            decode_s: f64::NAN,
            decode_steps: 0,
            completion_s: f64::NAN,
            batch_at_dispatch: 0,
            prefix_hit_tokens: 0,
            preemptions: 0,
        }
    }

    /// A failed-request span: the request was admitted but every attempt
    /// was destroyed by backend faults. Only identity, arrival, and the
    /// time of the terminal failure are known; `completion_s` records the
    /// failure instant so `e2e_s()` reports time-to-failure.
    #[must_use]
    pub fn failed(id: u64, model: usize, arrival_s: f64, failed_at_s: f64) -> Self {
        SpanRecord {
            completion_s: failed_at_s,
            outcome: SpanOutcome::Failed,
            ..SpanRecord::rejected(id, model, arrival_s)
        }
    }

    /// Prefill duration (`NaN` for rejected spans).
    #[must_use]
    pub fn prefill_s(&self) -> f64 {
        self.prefill_end_s - self.dispatch_s
    }

    /// Arrival-to-first-token latency (`NaN` for rejected spans).
    #[must_use]
    pub fn ttft_s(&self) -> f64 {
        self.prefill_end_s - self.arrival_s
    }

    /// Arrival-to-last-token latency (`NaN` for rejected spans).
    #[must_use]
    pub fn e2e_s(&self) -> f64 {
        self.completion_s - self.arrival_s
    }

    /// Column names of the tabular span schema, in field order.
    #[must_use]
    pub fn columns() -> Vec<String> {
        [
            "id",
            "model",
            "replica",
            "outcome",
            "arrival_s",
            "queue_delay_s",
            "dispatch_s",
            "prefill_end_s",
            "decode_s",
            "decode_steps",
            "completion_s",
            "batch_at_dispatch",
            "prefix_hit_tokens",
            "preemptions",
        ]
        .map(String::from)
        .to_vec()
    }

    /// This span as one row of the tabular schema.
    #[must_use]
    pub fn cells(&self) -> Vec<Cell> {
        vec![
            Cell::Int(self.id as i64),
            Cell::Int(self.model as i64),
            match self.replica {
                Some(r) => Cell::Int(r as i64),
                None => Cell::Num(f64::NAN),
            },
            Cell::Str(self.outcome.label().to_string()),
            Cell::Num(self.arrival_s),
            Cell::Num(self.queue_delay_s),
            Cell::Num(self.dispatch_s),
            Cell::Num(self.prefill_end_s),
            Cell::Num(self.decode_s),
            Cell::Int(self.decode_steps as i64),
            Cell::Num(self.completion_s),
            Cell::Int(self.batch_at_dispatch as i64),
            Cell::Int(self.prefix_hit_tokens as i64),
            Cell::Int(self.preemptions as i64),
        ]
    }
}

/// Builds a [`TabularLog`] from spans (render with
/// [`TabularLog::to_tsv`] / [`TabularLog::to_jsonl`]).
#[must_use]
pub fn span_log(spans: &[SpanRecord]) -> TabularLog {
    let mut log = TabularLog::new(SpanRecord::columns());
    for s in spans {
        log.row(s.cells());
    }
    log
}

/// Receives spans as the engines resolve requests.
///
/// The engines consult [`SpanSink::enabled`] before assembling a record,
/// so a disabled sink costs nothing on the hot path, and recording never
/// feeds back into scheduling: a simulation with any sink produces the
/// same report as one with [`NullSink`], bit for bit.
pub trait SpanSink {
    /// Called once per request, at the moment its timeline is fully known
    /// (dispatch for completed requests, arrival for rejections).
    fn record(&mut self, span: SpanRecord);

    /// Whether records should be assembled at all. Defaults to `true`.
    fn enabled(&self) -> bool {
        true
    }

    /// Expected number of records, called by the engines before the first
    /// [`record`](SpanSink::record). Buffering sinks reserve from it;
    /// the default ignores it.
    fn hint_len(&mut self, _expected: usize) {}

    /// Flush hook, called by the engines exactly once after the last
    /// record. File-backed sinks write out any buffered tail here —
    /// without this hook an early return on the caller's side would
    /// silently drop everything still sitting in the sink's buffer.
    /// Must be safe to call more than once; the default does nothing.
    fn finish(&mut self) {}
}

/// Discards spans without assembling them — the zero-cost default.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl SpanSink for NullSink {
    fn record(&mut self, _span: SpanRecord) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// Collects spans in memory, in emission order (deterministic: the
/// engines resolve requests in event order).
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    /// Spans recorded so far.
    pub spans: Vec<SpanRecord>,
}

impl VecSink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> Self {
        VecSink::default()
    }

    /// An empty sink with room for `expected` spans (what
    /// [`SpanSink::hint_len`] also provides when the engine knows the
    /// request count up front).
    #[must_use]
    pub fn with_capacity(expected: usize) -> Self {
        VecSink {
            spans: Vec::with_capacity(expected),
        }
    }

    /// Renders the collected spans as TSV, rows sorted by request id so
    /// the artifact is stable under event-order-preserving refactors.
    #[must_use]
    pub fn to_tsv(&self) -> String {
        let mut sorted = self.spans.clone();
        sorted.sort_by_key(|s| s.id);
        span_log(&sorted).to_tsv()
    }

    /// Renders the collected spans as JSONL, rows sorted by request id.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut sorted = self.spans.clone();
        sorted.sort_by_key(|s| s.id);
        span_log(&sorted).to_jsonl()
    }
}

impl SpanSink for VecSink {
    fn record(&mut self, span: SpanRecord) {
        self.spans.push(span);
    }

    fn hint_len(&mut self, expected: usize) {
        // Reserve up front: a million-request replay used to reallocate
        // the span vector ~20 times, each a full copy of every record.
        self.spans
            .reserve(expected.saturating_sub(self.spans.len()));
    }
}

/// Wire format of a [`StreamSink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanFormat {
    /// Tab-separated values with a header line.
    Tsv,
    /// JSON Lines, one object per span.
    Jsonl,
}

/// Streams spans to a writer as they are emitted, with bounded buffering.
///
/// Unlike [`VecSink`], which holds every record until the run ends, a
/// `StreamSink` renders each span into an internal text buffer the moment
/// it is recorded and flushes that buffer to the writer whenever it
/// crosses the configured threshold — a traced million-request replay
/// holds kilobytes, not gigabytes. Rows appear in *emission order* (the
/// engines' deterministic event order); the bytes are identical to
/// rendering the same spans through [`span_log`] (proptested in
/// `llmsim-cluster`), because both go through the same line renderers in
/// `llmsim_report::spanlog`.
///
/// I/O errors do not panic (this is library code): the first error is
/// stored, subsequent records are dropped, and [`StreamSink::finish_into`]
/// surfaces it. The engines call [`SpanSink::finish`] after the final
/// record, which flushes the tail; call `finish_into` to get the writer
/// back and check for errors.
#[derive(Debug)]
pub struct StreamSink<W: std::io::Write> {
    writer: W,
    format: SpanFormat,
    columns: Vec<String>,
    buf: String,
    /// Flush to the writer once the buffer holds this many bytes.
    flush_at_bytes: usize,
    header_pending: bool,
    records: u64,
    error: Option<std::io::Error>,
}

impl<W: std::io::Write> StreamSink<W> {
    const DEFAULT_BUFFER_BYTES: usize = 64 * 1024;

    /// A TSV streaming sink over `writer` (64 KiB buffer).
    #[must_use]
    pub fn tsv(writer: W) -> Self {
        StreamSink::new(writer, SpanFormat::Tsv)
    }

    /// A JSONL streaming sink over `writer` (64 KiB buffer).
    #[must_use]
    pub fn jsonl(writer: W) -> Self {
        StreamSink::new(writer, SpanFormat::Jsonl)
    }

    /// A streaming sink over `writer` in `format` (64 KiB buffer).
    #[must_use]
    pub fn new(writer: W, format: SpanFormat) -> Self {
        StreamSink {
            writer,
            format,
            columns: SpanRecord::columns(),
            buf: String::with_capacity(Self::DEFAULT_BUFFER_BYTES + 1024),
            flush_at_bytes: Self::DEFAULT_BUFFER_BYTES,
            header_pending: format == SpanFormat::Tsv,
            records: 0,
            error: None,
        }
    }

    /// Overrides the buffer threshold (clamped to ≥ 1: every record
    /// flushes immediately at 1, useful in tests).
    #[must_use]
    pub fn with_buffer_bytes(mut self, flush_at_bytes: usize) -> Self {
        self.flush_at_bytes = flush_at_bytes.max(1);
        self
    }

    /// Spans recorded so far (including any lost to a write error).
    #[must_use]
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The first I/O error encountered, if any.
    #[must_use]
    pub fn io_error(&self) -> Option<&std::io::Error> {
        self.error.as_ref()
    }

    fn flush_buf(&mut self) {
        if self.error.is_some() {
            return;
        }
        if self.header_pending {
            // An empty traced run still yields a valid header-only TSV,
            // matching `span_log(&[]).to_tsv()`.
            let mut header = self.columns.join("\t");
            header.push('\n');
            if let Err(e) = self.writer.write_all(header.as_bytes()) {
                self.error = Some(e);
                return;
            }
            self.header_pending = false;
        }
        if !self.buf.is_empty() {
            let res = self.writer.write_all(self.buf.as_bytes());
            self.buf.clear();
            if let Err(e) = res {
                self.error = Some(e);
                return;
            }
        }
        if let Err(e) = self.writer.flush() {
            self.error = Some(e);
        }
    }

    /// Flushes the tail and returns the writer.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error the sink encountered (records after it
    /// were dropped).
    pub fn finish_into(mut self) -> Result<W, std::io::Error> {
        self.flush_buf();
        match self.error.take() {
            None => Ok(self.writer),
            Some(e) => Err(e),
        }
    }
}

impl<W: std::io::Write> SpanSink for StreamSink<W> {
    fn record(&mut self, span: SpanRecord) {
        self.records += 1;
        if self.error.is_some() {
            return;
        }
        let cells = span.cells();
        match self.format {
            SpanFormat::Tsv => self.buf.push_str(&spanlog::tsv_line(&cells)),
            SpanFormat::Jsonl => self
                .buf
                .push_str(&spanlog::jsonl_line(&self.columns, &cells)),
        }
        self.buf.push('\n');
        if self.buf.len() >= self.flush_at_bytes {
            self.flush_buf();
        }
    }

    fn finish(&mut self) {
        self.flush_buf();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmsim_report::spanlog::validate_tsv;

    fn completed_span(id: u64) -> SpanRecord {
        SpanRecord {
            id,
            model: 0,
            replica: Some(1),
            outcome: SpanOutcome::Completed,
            arrival_s: 1.0,
            queue_delay_s: 0.5,
            dispatch_s: 1.5,
            prefill_end_s: 2.0,
            decode_s: 3.0,
            decode_steps: 15,
            completion_s: 5.0,
            batch_at_dispatch: 2,
            prefix_hit_tokens: 0,
            preemptions: 0,
        }
    }

    #[test]
    fn derived_durations_reconcile() {
        let s = completed_span(0);
        assert!((s.prefill_s() - 0.5).abs() < 1e-12);
        assert!((s.ttft_s() - 1.0).abs() < 1e-12);
        assert!((s.e2e_s() - 4.0).abs() < 1e-12);
        assert!(
            (s.queue_delay_s + s.prefill_s() + s.decode_s - s.e2e_s()).abs() < 1e-12,
            "phases must sum to e2e"
        );
    }

    #[test]
    fn rejected_span_has_nan_phases() {
        let s = SpanRecord::rejected(3, 1, 2.5);
        assert_eq!(s.outcome, SpanOutcome::Rejected);
        assert!(s.queue_delay_s.is_nan() && s.e2e_s().is_nan());
        assert_eq!(s.replica, None);
    }

    #[test]
    fn vec_sink_renders_valid_sorted_tsv() {
        let mut sink = VecSink::new();
        sink.record(completed_span(2));
        sink.record(SpanRecord::rejected(0, 0, 0.1));
        let tsv = sink.to_tsv();
        assert_eq!(validate_tsv(&tsv), Ok(2));
        let first_data_line = tsv.lines().nth(1).unwrap();
        assert!(first_data_line.starts_with("0\t"), "rows sorted by id");
        assert!(tsv.starts_with("id\tmodel\treplica\toutcome\t"));
        // JSONL mirrors the same rows.
        assert_eq!(sink.to_jsonl().lines().count(), 2);
    }

    #[test]
    fn null_sink_reports_disabled() {
        assert!(!NullSink.enabled());
        assert!(VecSink::new().enabled());
    }

    #[test]
    fn stream_sink_tsv_matches_buffered_render() {
        let spans = vec![
            completed_span(2),
            SpanRecord::rejected(0, 1, 0.1),
            SpanRecord::failed(5, 0, 0.2, 3.5),
        ];
        // Tiny buffer forces a flush per record — the worst case for
        // byte-identity with the one-shot buffered render.
        let mut sink = StreamSink::tsv(Vec::new()).with_buffer_bytes(1);
        sink.hint_len(spans.len());
        for s in &spans {
            sink.record(*s);
        }
        sink.finish();
        assert_eq!(sink.records(), 3);
        let bytes = sink.finish_into().unwrap();
        assert_eq!(String::from_utf8(bytes).unwrap(), span_log(&spans).to_tsv());
    }

    #[test]
    fn stream_sink_jsonl_matches_buffered_render() {
        let spans = vec![SpanRecord::rejected(7, 2, 1.25), completed_span(1)];
        let mut sink = StreamSink::jsonl(Vec::new());
        for s in &spans {
            sink.record(*s);
        }
        let bytes = sink.finish_into().unwrap();
        assert_eq!(
            String::from_utf8(bytes).unwrap(),
            span_log(&spans).to_jsonl()
        );
    }

    #[test]
    fn stream_sink_empty_tsv_is_header_only() {
        let sink = StreamSink::tsv(Vec::new());
        let bytes = sink.finish_into().unwrap();
        assert_eq!(String::from_utf8(bytes).unwrap(), span_log(&[]).to_tsv());
    }

    #[test]
    fn stream_sink_surfaces_io_errors_without_panicking() {
        struct Failing;
        impl std::io::Write for Failing {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut sink = StreamSink::tsv(Failing).with_buffer_bytes(1);
        sink.record(completed_span(0));
        sink.record(completed_span(1)); // dropped, error already latched
        assert!(sink.io_error().is_some());
        assert_eq!(sink.records(), 2);
        assert!(sink.finish_into().is_err());
    }

    #[test]
    fn finish_is_idempotent() {
        let mut sink = StreamSink::tsv(Vec::new());
        sink.record(completed_span(0));
        sink.finish();
        sink.finish();
        let bytes = sink.finish_into().unwrap();
        assert_eq!(
            String::from_utf8(bytes).unwrap(),
            span_log(&[completed_span(0)]).to_tsv()
        );
    }
}
