//! Per-request span tracing: the observability layer of the simulators.
//!
//! Both the single-server serving simulator ([`crate::serving`]) and the
//! fleet engine (`llmsim-cluster`) compute every phase boundary of a
//! request's life — arrival, queue wait, dispatch, prefill, decode,
//! completion — and historically discarded them after folding the
//! aggregates into a report. A [`SpanRecord`] keeps the full breakdown,
//! and a [`SpanSink`] decides what happens to it: [`NullSink`] drops spans
//! without assembling them (the default — simulation output is
//! bit-identical with tracing off), [`VecSink`] collects them in memory
//! for the TSV/JSONL writers in `llmsim-report`.
//!
//! Invariant the trace tooling relies on: for a completed span,
//! `queue_delay_s + prefill_s() + decode_s == e2e_s()` up to float
//! rounding, and those reconcile with the engine's reported per-request
//! latencies. Tests in `llmsim-cluster` and `llmsim-bench` assert both.

use llmsim_report::spanlog::{Cell, TabularLog};

/// Terminal state of a traced request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanOutcome {
    /// Served to completion.
    Completed,
    /// Turned away before dispatch (admission/routing rejection).
    Rejected,
    /// Lost to injected backend faults after its retries ran out (the
    /// fleet engine's crash/retry chains terminate here).
    Failed,
}

impl SpanOutcome {
    /// Stable lowercase label used in trace files.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SpanOutcome::Completed => "completed",
            SpanOutcome::Rejected => "rejected",
            SpanOutcome::Failed => "failed",
        }
    }
}

/// The phase-by-phase life of one request.
///
/// Times are absolute simulation seconds; durations are seconds. Fields
/// that do not exist for a rejected request (dispatch, prefill, decode,
/// completion) are `NaN`, which the log writers render as `NaN` (TSV) or
/// `null` (JSONL).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanRecord {
    /// Workload/request id.
    pub id: u64,
    /// Index of the model served (into the engine's model list; 0 for the
    /// single-model serving simulator).
    pub model: usize,
    /// Replica that served the request (`None` when rejected, and for the
    /// single-server simulator which has exactly one "replica").
    pub replica: Option<usize>,
    /// How the request terminated.
    pub outcome: SpanOutcome,
    /// Arrival time at the router/queue.
    pub arrival_s: f64,
    /// Arrival → dispatch wait (queue + any cold-start warmup). Zero or
    /// positive for completed spans, `NaN` for rejected ones.
    pub queue_delay_s: f64,
    /// Moment the request entered service (prefill start).
    pub dispatch_s: f64,
    /// Moment the prefill pass finished (= first token).
    pub prefill_end_s: f64,
    /// Aggregated decode time over all generated tokens after the first.
    pub decode_s: f64,
    /// Decode steps taken (`gen_len - 1` for a completed request).
    pub decode_steps: u64,
    /// Moment the final token was produced.
    pub completion_s: f64,
    /// Sequences sharing the batch at the moment of dispatch (including
    /// this one).
    pub batch_at_dispatch: u64,
}

impl SpanRecord {
    /// A rejected-request span: only identity and arrival are known.
    #[must_use]
    pub fn rejected(id: u64, model: usize, arrival_s: f64) -> Self {
        SpanRecord {
            id,
            model,
            replica: None,
            outcome: SpanOutcome::Rejected,
            arrival_s,
            queue_delay_s: f64::NAN,
            dispatch_s: f64::NAN,
            prefill_end_s: f64::NAN,
            decode_s: f64::NAN,
            decode_steps: 0,
            completion_s: f64::NAN,
            batch_at_dispatch: 0,
        }
    }

    /// A failed-request span: the request was admitted but every attempt
    /// was destroyed by backend faults. Only identity, arrival, and the
    /// time of the terminal failure are known; `completion_s` records the
    /// failure instant so `e2e_s()` reports time-to-failure.
    #[must_use]
    pub fn failed(id: u64, model: usize, arrival_s: f64, failed_at_s: f64) -> Self {
        SpanRecord {
            completion_s: failed_at_s,
            outcome: SpanOutcome::Failed,
            ..SpanRecord::rejected(id, model, arrival_s)
        }
    }

    /// Prefill duration (`NaN` for rejected spans).
    #[must_use]
    pub fn prefill_s(&self) -> f64 {
        self.prefill_end_s - self.dispatch_s
    }

    /// Arrival-to-first-token latency (`NaN` for rejected spans).
    #[must_use]
    pub fn ttft_s(&self) -> f64 {
        self.prefill_end_s - self.arrival_s
    }

    /// Arrival-to-last-token latency (`NaN` for rejected spans).
    #[must_use]
    pub fn e2e_s(&self) -> f64 {
        self.completion_s - self.arrival_s
    }

    /// Column names of the tabular span schema, in field order.
    #[must_use]
    pub fn columns() -> Vec<String> {
        [
            "id",
            "model",
            "replica",
            "outcome",
            "arrival_s",
            "queue_delay_s",
            "dispatch_s",
            "prefill_end_s",
            "decode_s",
            "decode_steps",
            "completion_s",
            "batch_at_dispatch",
        ]
        .map(String::from)
        .to_vec()
    }

    /// This span as one row of the tabular schema.
    #[must_use]
    pub fn cells(&self) -> Vec<Cell> {
        vec![
            Cell::Int(self.id as i64),
            Cell::Int(self.model as i64),
            match self.replica {
                Some(r) => Cell::Int(r as i64),
                None => Cell::Num(f64::NAN),
            },
            Cell::Str(self.outcome.label().to_string()),
            Cell::Num(self.arrival_s),
            Cell::Num(self.queue_delay_s),
            Cell::Num(self.dispatch_s),
            Cell::Num(self.prefill_end_s),
            Cell::Num(self.decode_s),
            Cell::Int(self.decode_steps as i64),
            Cell::Num(self.completion_s),
            Cell::Int(self.batch_at_dispatch as i64),
        ]
    }
}

/// Builds a [`TabularLog`] from spans (render with
/// [`TabularLog::to_tsv`] / [`TabularLog::to_jsonl`]).
#[must_use]
pub fn span_log(spans: &[SpanRecord]) -> TabularLog {
    let mut log = TabularLog::new(SpanRecord::columns());
    for s in spans {
        log.row(s.cells());
    }
    log
}

/// Receives spans as the engines resolve requests.
///
/// The engines consult [`SpanSink::enabled`] before assembling a record,
/// so a disabled sink costs nothing on the hot path, and recording never
/// feeds back into scheduling: a simulation with any sink produces the
/// same report as one with [`NullSink`], bit for bit.
pub trait SpanSink {
    /// Called once per request, at the moment its timeline is fully known
    /// (dispatch for completed requests, arrival for rejections).
    fn record(&mut self, span: SpanRecord);

    /// Whether records should be assembled at all. Defaults to `true`.
    fn enabled(&self) -> bool {
        true
    }
}

/// Discards spans without assembling them — the zero-cost default.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl SpanSink for NullSink {
    fn record(&mut self, _span: SpanRecord) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// Collects spans in memory, in emission order (deterministic: the
/// engines resolve requests in event order).
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    /// Spans recorded so far.
    pub spans: Vec<SpanRecord>,
}

impl VecSink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> Self {
        VecSink::default()
    }

    /// Renders the collected spans as TSV, rows sorted by request id so
    /// the artifact is stable under event-order-preserving refactors.
    #[must_use]
    pub fn to_tsv(&self) -> String {
        let mut sorted = self.spans.clone();
        sorted.sort_by_key(|s| s.id);
        span_log(&sorted).to_tsv()
    }

    /// Renders the collected spans as JSONL, rows sorted by request id.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut sorted = self.spans.clone();
        sorted.sort_by_key(|s| s.id);
        span_log(&sorted).to_jsonl()
    }
}

impl SpanSink for VecSink {
    fn record(&mut self, span: SpanRecord) {
        self.spans.push(span);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmsim_report::spanlog::validate_tsv;

    fn completed_span(id: u64) -> SpanRecord {
        SpanRecord {
            id,
            model: 0,
            replica: Some(1),
            outcome: SpanOutcome::Completed,
            arrival_s: 1.0,
            queue_delay_s: 0.5,
            dispatch_s: 1.5,
            prefill_end_s: 2.0,
            decode_s: 3.0,
            decode_steps: 15,
            completion_s: 5.0,
            batch_at_dispatch: 2,
        }
    }

    #[test]
    fn derived_durations_reconcile() {
        let s = completed_span(0);
        assert!((s.prefill_s() - 0.5).abs() < 1e-12);
        assert!((s.ttft_s() - 1.0).abs() < 1e-12);
        assert!((s.e2e_s() - 4.0).abs() < 1e-12);
        assert!(
            (s.queue_delay_s + s.prefill_s() + s.decode_s - s.e2e_s()).abs() < 1e-12,
            "phases must sum to e2e"
        );
    }

    #[test]
    fn rejected_span_has_nan_phases() {
        let s = SpanRecord::rejected(3, 1, 2.5);
        assert_eq!(s.outcome, SpanOutcome::Rejected);
        assert!(s.queue_delay_s.is_nan() && s.e2e_s().is_nan());
        assert_eq!(s.replica, None);
    }

    #[test]
    fn vec_sink_renders_valid_sorted_tsv() {
        let mut sink = VecSink::new();
        sink.record(completed_span(2));
        sink.record(SpanRecord::rejected(0, 0, 0.1));
        let tsv = sink.to_tsv();
        assert_eq!(validate_tsv(&tsv), Ok(2));
        let first_data_line = tsv.lines().nth(1).unwrap();
        assert!(first_data_line.starts_with("0\t"), "rows sorted by id");
        assert!(tsv.starts_with("id\tmodel\treplica\toutcome\t"));
        // JSONL mirrors the same rows.
        assert_eq!(sink.to_jsonl().lines().count(), 2);
    }

    #[test]
    fn null_sink_reports_disabled() {
        assert!(!NullSink.enabled());
        assert!(VecSink::new().enabled());
    }
}
