//! Shared phase-execution accumulation used by the CPU and GPU backends.

use crate::report::PhaseReport;
use crate::roofline::OpTime;
use llmsim_hw::Seconds;

/// Running totals while executing a phase's operators.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct PhaseAccum {
    pub time: Seconds,
    pub flops: f64,
    pub dram_bytes: f64,
    pub load_bytes: f64,
    pub store_bytes: f64,
    pub instructions: f64,
    pub compute_busy: Seconds,
    pub memory_bound_time: Seconds,
}

impl PhaseAccum {
    /// Adds one operator execution (already multiplied by its repeat count
    /// by the caller).
    #[allow(clippy::too_many_arguments)]
    pub fn add(
        &mut self,
        t: OpTime,
        repeat: f64,
        flops: f64,
        dram_bytes: f64,
        load_bytes: f64,
        store_bytes: f64,
        instructions: f64,
    ) {
        let total = t.total().scale(repeat);
        self.time += total;
        self.flops += flops;
        self.dram_bytes += dram_bytes;
        self.load_bytes += load_bytes;
        self.store_bytes += store_bytes;
        self.instructions += instructions;
        self.compute_busy += t.compute_time.scale(repeat);
        if t.memory_bound() {
            self.memory_bound_time += total;
        }
    }

    /// Merges another accumulator (e.g. one decode step into the phase).
    pub fn merge(&mut self, other: &PhaseAccum) {
        self.time += other.time;
        self.flops += other.flops;
        self.dram_bytes += other.dram_bytes;
        self.load_bytes += other.load_bytes;
        self.store_bytes += other.store_bytes;
        self.instructions += other.instructions;
        self.compute_busy += other.compute_busy;
        self.memory_bound_time += other.memory_bound_time;
    }

    /// Converts to the public phase report.
    pub fn report(&self) -> PhaseReport {
        PhaseReport {
            time: self.time,
            flops: self.flops,
            dram_bytes: self.dram_bytes,
            memory_bound_fraction: self.memory_bound_time.ratio(self.time),
        }
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact float assertions are deliberate: determinism is bit-level
mod tests {
    use super::*;

    #[test]
    fn add_and_merge_accumulate() {
        let mut a = PhaseAccum::default();
        let t = OpTime {
            compute_time: Seconds::new(0.002),
            memory_time: Seconds::new(0.001),
            overhead: Seconds::ZERO,
        };
        a.add(t, 2.0, 100.0, 64.0, 64.0, 0.0, 10.0);
        assert!((a.time.as_f64() - 0.004).abs() < 1e-12);
        assert_eq!(a.flops, 100.0);
        assert_eq!(a.memory_bound_time, Seconds::ZERO); // compute-bound

        let mut b = PhaseAccum::default();
        let tm = OpTime {
            compute_time: Seconds::new(0.001),
            memory_time: Seconds::new(0.003),
            overhead: Seconds::ZERO,
        };
        b.add(tm, 1.0, 0.0, 128.0, 128.0, 0.0, 5.0);
        a.merge(&b);
        assert!((a.time.as_f64() - 0.007).abs() < 1e-12);
        let rep = a.report();
        assert!((rep.memory_bound_fraction - 0.003 / 0.007).abs() < 1e-9);
    }
}
