//! The CPU execution model: ICL (AVX-512) and SPR Max (AMX + HBM) under any
//! NUMA configuration and core count — the machine model behind Figs. 8–16.

use crate::backend::{Backend, CostModel};
use crate::calib;
use crate::error::SimError;
use crate::exec::PhaseAccum;
use crate::report::InferenceReport;
use crate::request::Request;
use crate::roofline::{op_time, Resources};
use llmsim_hw::cpu::ComputeEngine;
use llmsim_hw::topology::MemoryMode;
use llmsim_hw::{Bytes, CpuSpec, GbPerSec, NumaConfig, Seconds};
use llmsim_isa::timing::{gemm_efficiency, EngineKind, GemmShape};
use llmsim_mem::analytic::{dram_traffic, instruction_count};
use llmsim_mem::numa::{EffectiveMemory, MemSystem};
use llmsim_mem::{synthesize, CounterInputs};
use llmsim_model::{DType, ModelConfig, OpClass, OpGraph, Operator, Phase};

/// CPU inference backend.
///
/// # Examples
///
/// ```
/// use llmsim_core::{CpuBackend, Request, Backend};
/// use llmsim_model::families;
///
/// let spr = CpuBackend::paper_spr();
/// let icl = CpuBackend::paper_icl();
/// let req = Request::paper_default(8);
/// let m = families::opt_6_7b();
/// let fast = spr.run(&m, &req)?;
/// let slow = icl.run(&m, &req)?;
/// assert!(fast.e2e_latency < slow.e2e_latency);
/// # Ok::<(), llmsim_core::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CpuBackend {
    mem: MemSystem,
    cores: u32,
    dtype: DType,
    /// Weight stream dtype (differs from `dtype` under weight-only
    /// quantization).
    weight_dtype: DType,
    /// Fraction of the KV cache attended per decode step (1.0 = full
    /// attention; <1.0 models H2O-style heavy-hitter compression).
    kv_keep_ratio: f64,
    /// Optional software effect: per-sequence per-layer decode attention
    /// overhead (unfused kernels); zero by default.
    attn_overhead_per_seq_layer: Seconds,
    /// Tensor-parallel shard denominator: this backend executes a
    /// `1/tp_shard` Megatron-style shard of every model (1 = whole model).
    /// Interconnect cost is *not* included here — [`crate::TensorParallel`]
    /// wraps shards and prices the all-reduces.
    tp_shard: u64,
}

impl CpuBackend {
    /// Creates a backend.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnsupportedConfig`] if `cores` is zero or exceeds
    /// the machine, or the NUMA mode needs hardware the CPU lacks.
    pub fn new(cpu: CpuSpec, numa: NumaConfig, cores: u32, dtype: DType) -> Result<Self, SimError> {
        if cores == 0 || cores > cpu.topology.total_cores() {
            return Err(SimError::UnsupportedConfig(format!(
                "{}: cannot run on {cores} cores (machine has {})",
                cpu.name,
                cpu.topology.total_cores()
            )));
        }
        if numa.memory == MemoryMode::HbmOnly && !cpu.has_hbm() {
            return Err(SimError::UnsupportedConfig(format!(
                "{}: HBM-only mode requires HBM",
                cpu.name
            )));
        }
        Ok(CpuBackend {
            mem: MemSystem::new(cpu, numa),
            cores,
            dtype,
            weight_dtype: dtype,
            kv_keep_ratio: 1.0,
            attn_overhead_per_seq_layer: Seconds::ZERO,
            tp_shard: 1,
        })
    }

    /// Turns this backend into one rank of a `degree`-way tensor-parallel
    /// group: every graph it executes is the per-rank Megatron shard
    /// (heads and FFN columns split, norms replicated), and capacity
    /// checks size the shard, not the whole model. All-reduce time is
    /// deliberately excluded — wrap shards in [`crate::TensorParallel`]
    /// to price the interconnect.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnsupportedConfig`] if `degree` is zero.
    pub fn with_tensor_degree(mut self, degree: u64) -> Result<Self, SimError> {
        if degree == 0 {
            return Err(SimError::UnsupportedConfig(
                "tensor-parallel degree must be at least 1".into(),
            ));
        }
        self.tp_shard = degree;
        Ok(self)
    }

    /// Enables weight-only quantization: weights stream in `dtype` (e.g.
    /// [`DType::Int8`]) while activations, KV cache and compute stay in the
    /// backend's base dtype — the §VII-B technique of Shen et al.,
    /// "Efficient LLM inference on CPUs".
    #[must_use]
    pub fn with_weight_dtype(mut self, dtype: DType) -> Self {
        self.weight_dtype = dtype;
        self
    }

    /// Enables H2O-style KV-cache compression (the paper's ref. \[58\]): only
    /// `keep_ratio` of the cached tokens are attended per decode step.
    ///
    /// # Panics
    ///
    /// Panics if `keep_ratio` is not in `(0, 1]`.
    #[must_use]
    pub fn with_kv_keep_ratio(mut self, keep_ratio: f64) -> Self {
        assert!(
            keep_ratio > 0.0 && keep_ratio <= 1.0,
            "keep ratio must be in (0,1]"
        );
        self.kv_keep_ratio = keep_ratio;
        self
    }

    /// Adds a per-sequence, per-layer decode attention overhead — a
    /// *software* effect (unfused attention kernels iterate sequences) that
    /// the default roofline omits. Used by the Fig. 21 sensitivity ablation;
    /// see DESIGN.md §"Known limitations".
    #[must_use]
    pub fn with_attention_overhead(mut self, per_seq_layer: Seconds) -> Self {
        self.attn_overhead_per_seq_layer = per_seq_layer;
        self
    }

    /// The paper's tuned SPR configuration: Xeon Max 9468, `quad_flat`,
    /// 48 cores, BF16 (Key Findings #2/#3).
    #[must_use]
    pub fn paper_spr() -> Self {
        Self::new(
            llmsim_hw::presets::spr_max_9468(),
            NumaConfig::QUAD_FLAT,
            48,
            DType::Bf16,
        )
        .expect("paper SPR configuration is valid")
    }

    /// The paper's ICL configuration: Xeon 8352Y, 32 cores, BF16.
    #[must_use]
    pub fn paper_icl() -> Self {
        Self::new(
            llmsim_hw::presets::icl_8352y(),
            NumaConfig::QUAD_FLAT,
            32,
            DType::Bf16,
        )
        .expect("paper ICL configuration is valid")
    }

    /// The CPU spec this backend models.
    #[must_use]
    pub fn cpu(&self) -> &CpuSpec {
        self.mem.cpu()
    }

    /// Active cores.
    #[must_use]
    pub fn cores(&self) -> u32 {
        self.cores
    }

    /// NUMA configuration.
    #[must_use]
    pub fn numa(&self) -> NumaConfig {
        self.mem.numa()
    }

    /// Element type of activations and the KV cache (weight-only
    /// quantization does not change it).
    #[must_use]
    pub fn kv_dtype(&self) -> DType {
        self.dtype
    }

    /// Total resident state for `model` serving `request` (weights + final
    /// KV cache + peak activations). Under tensor parallelism this is one
    /// rank's shard: weights and KV divide by the degree (activations are
    /// conservatively kept whole — residual streams are replicated).
    #[must_use]
    pub fn footprint(&self, model: &ModelConfig, request: &Request) -> Bytes {
        let weights = Bytes::new(model.weight_bytes(self.weight_dtype).get() / self.tp_shard);
        let kv = Bytes::new(
            model
                .kv_cache_bytes(request.final_context(), request.batch, self.dtype)
                .get()
                / self.tp_shard,
        );
        let act = model.activation_bytes(
            request.batch * request.prompt_len,
            request.prompt_len,
            self.dtype,
        );
        weights + kv + act
    }

    /// Wall-clock cost of one prefill pass (`batch` prompts of
    /// `prompt_len`), without building a full report — the primitive the
    /// serving simulator schedules with.
    ///
    /// # Panics
    ///
    /// Panics if the arguments are zero or the model is invalid.
    #[must_use]
    pub fn prefill_time(&self, model: &ModelConfig, batch: u64, prompt_len: u64) -> Seconds {
        let footprint = self.footprint(model, &Request::new(batch, prompt_len, 1));
        let eff_mem = self.mem.effective(self.cores, footprint);
        let mut g = llmsim_model::prefill_graph(model, batch, prompt_len, self.dtype);
        if self.tp_shard > 1 {
            g = g.with_tensor_parallel(self.tp_shard);
        }
        if self.weight_dtype != self.dtype {
            g = g.with_weight_dtype(self.weight_dtype);
        }
        self.run_phase(&g, &eff_mem).time
    }

    /// Wall-clock cost of one decode step for `batch` sequences attending
    /// over `kv_len` context tokens.
    ///
    /// # Panics
    ///
    /// Panics if the arguments are zero or the model is invalid.
    #[must_use]
    pub fn decode_step_time(&self, model: &ModelConfig, batch: u64, kv_len: u64) -> Seconds {
        let whole =
            model.weight_bytes(self.weight_dtype) + model.kv_cache_bytes(kv_len, batch, self.dtype);
        let footprint = Bytes::new(whole.get() / self.tp_shard);
        let eff_mem = self.mem.effective(self.cores, footprint);
        let mut g = llmsim_model::decode_step_graph(model, batch, kv_len, self.dtype);
        if self.tp_shard > 1 {
            g = g.with_tensor_parallel(self.tp_shard);
        }
        if self.weight_dtype != self.dtype {
            g = g.with_weight_dtype(self.weight_dtype);
        }
        if self.kv_keep_ratio < 1.0 {
            g = g.with_kv_keep_ratio(self.kv_keep_ratio);
        }
        let overhead = self
            .attn_overhead_per_seq_layer
            .scale((batch * model.n_layers) as f64);
        self.run_phase(&g, &eff_mem).time + overhead
    }

    /// Selects the matrix engine, its shape efficiency, and the dynamic
    /// instruction width (FLOPs per retired instruction) for an operator.
    fn compute_rate(&self, op: &Operator) -> (llmsim_hw::FlopsPerSec, f64) {
        let cpu = self.cpu();
        let sockets = cpu.topology.sockets_spanned(self.cores);
        let cross_socket = if sockets > 1 {
            calib::CROSS_SOCKET_COMPUTE_DERATE
        } else {
            1.0
        };
        let parallel = calib::CPU_PARALLEL_EFF * cross_socket;

        match op.class() {
            OpClass::Gemm | OpClass::Attention => {
                let shape = op
                    .matmul_shape()
                    .map(|s| GemmShape::batched(s.m, s.n, s.k, s.batch))
                    .unwrap_or_else(|| GemmShape::new(1, 1, 1));
                if cpu.has_amx() && self.dtype.amx_native() {
                    let eff = gemm_efficiency(EngineKind::AmxBf16, shape);
                    let peak = cpu.peak_flops(ComputeEngine::Amx, self.cores);
                    (peak.scale(eff * parallel), calib::AMX_FLOPS_PER_INSTR)
                } else {
                    let eff = gemm_efficiency(EngineKind::Avx512Bf16, shape);
                    let peak = cpu.peak_flops(ComputeEngine::Avx512, self.cores);
                    (
                        peak.scale(eff * parallel),
                        calib::AVX512_BF16_FLOPS_PER_INSTR,
                    )
                }
            }
            OpClass::Normalization | OpClass::Elementwise | OpClass::Memory => {
                // Vector (non-matrix) code path: FP32 AVX-512 at a modest
                // fraction of peak (these ops are short and latency-bound).
                let peak = cpu.peak_flops(ComputeEngine::Avx512, self.cores);
                (
                    peak.scale(0.25 * parallel),
                    calib::AVX512_F32_FLOPS_PER_INSTR,
                )
            }
        }
    }

    /// Executes one phase graph and accumulates totals.
    fn run_phase(&self, graph: &OpGraph, eff_mem: &EffectiveMemory) -> PhaseAccum {
        let cpu = self.cpu();
        let bw_derate = match graph.phase {
            Phase::Prefill => calib::CPU_PREFILL_BW_DERATE,
            // Traffic-weighted between the HBM and DDR streaming derates
            // (≈ the harmonic-exact value for the mixes that occur).
            Phase::Decode => {
                eff_mem.hbm_traffic_fraction * calib::CPU_DECODE_BW_DERATE_HBM
                    + (1.0 - eff_mem.hbm_traffic_fraction) * calib::CPU_DECODE_BW_DERATE_DDR
            }
        };
        let bandwidth = eff_mem.bandwidth.scale(bw_derate);
        let cache_capacity = cpu
            .caches
            .total_capacity(self.cores.min(cpu.topology.cores_per_socket));

        let mut acc = PhaseAccum::default();
        for op in &graph.ops {
            let (rate, flops_per_instr) = self.compute_rate(op);
            let streamed = Bytes::new(op.weight_bytes() + op.kv_read_bytes() + op.kv_write_bytes());
            let reused = Bytes::new(op.act_bytes());
            let dram = dram_traffic(streamed, reused, cache_capacity);
            let resources = Resources {
                compute: rate,
                bandwidth,
                overhead: Seconds::new(calib::CPU_OP_OVERHEAD_S),
            };
            let t = op_time(&resources, op.flops(), dram);
            let r = op.repeat as f64;
            let instrs = instruction_count(op.flops(), flops_per_instr, op.total_bytes()) * r;
            let loads = (op.weight_bytes() + op.kv_read_bytes()) as f64 * r
                + op.act_bytes() as f64 * 0.6 * r;
            let stores = op.kv_write_bytes() as f64 * r + op.act_bytes() as f64 * 0.4 * r;
            acc.add(
                t,
                r,
                op.flops() * r,
                dram.as_f64() * r,
                loads,
                stores,
                instrs,
            );
        }
        acc
    }
}

impl Backend for CpuBackend {
    fn name(&self) -> String {
        format!("{} ({}, {}c)", self.cpu().name, self.numa(), self.cores)
    }

    fn run(&self, model: &ModelConfig, request: &Request) -> Result<InferenceReport, SimError> {
        model.validate().map_err(SimError::InvalidRequest)?;
        if self.tp_shard > 1 {
            model
                .supports_tensor_parallel(self.tp_shard)
                .map_err(SimError::InvalidRequest)?;
        }
        let footprint = self.footprint(model, request);
        let cpu = self.cpu();
        let available = match self.numa().memory {
            MemoryMode::HbmOnly => cpu.hbm.as_ref().map_or(Bytes::ZERO, |h| h.capacity),
            _ => cpu.total_memory_capacity(),
        };
        if footprint > available {
            return Err(SimError::ModelTooLarge {
                backend: self.name(),
                required: footprint,
                available,
            });
        }

        let eff_mem = self.mem.effective(self.cores, footprint);

        // --- prefill ---
        let mut prefill_graph =
            llmsim_model::prefill_graph(model, request.batch, request.prompt_len, self.dtype);
        if self.tp_shard > 1 {
            prefill_graph = prefill_graph.with_tensor_parallel(self.tp_shard);
        }
        if self.weight_dtype != self.dtype {
            prefill_graph = prefill_graph.with_weight_dtype(self.weight_dtype);
        }
        let prefill = self.run_phase(&prefill_graph, &eff_mem);

        // --- decode: one step per generated token after the first ---
        let mut decode = PhaseAccum::default();
        let step_overhead = self
            .attn_overhead_per_seq_layer
            .scale((request.batch * model.n_layers) as f64);
        for step in 0..request.decode_steps() {
            let kv_len = request.prompt_len + 1 + step;
            let mut g = llmsim_model::decode_step_graph(model, request.batch, kv_len, self.dtype);
            if self.tp_shard > 1 {
                g = g.with_tensor_parallel(self.tp_shard);
            }
            if self.weight_dtype != self.dtype {
                g = g.with_weight_dtype(self.weight_dtype);
            }
            if self.kv_keep_ratio < 1.0 {
                g = g.with_kv_keep_ratio(self.kv_keep_ratio);
            }
            let mut step_acc = self.run_phase(&g, &eff_mem);
            step_acc.time += step_overhead;
            step_acc.compute_busy += step_overhead;
            decode.merge(&step_acc);
        }

        let ttft = prefill.time;
        let decode_steps = request.decode_steps();
        let tpot = if decode_steps == 0 {
            Seconds::ZERO
        } else {
            Seconds::new(decode.time.as_f64() / decode_steps as f64)
        };
        let e2e = prefill.time + decode.time;

        // --- counters ---
        // Config-dependent traffic inflation visible to the *counters*
        // (timing already absorbs these through the bandwidth derates):
        // HBM-cache misses move data twice (DDR→HBM fill, HBM→core), and
        // SNC remote accesses generate snoop traffic.
        let cache_mode_inflation = match self.numa().memory {
            // 5% metadata/fill floor even at full residency, plus the
            // double-movement cost of misses.
            MemoryMode::Cache => 0.05 + 0.3 * (1.0 - eff_mem.hbm_traffic_fraction.min(1.0)),
            _ => 0.0,
        };
        let snc_inflation = 0.1 * eff_mem.snc_remote_fraction;
        let traffic_factor = 1.0 + cache_mode_inflation + snc_inflation;
        let raw_dram = prefill.dram_bytes + decode.dram_bytes;
        let total_dram = raw_dram * traffic_factor;
        let upi_capacity = cpu.upi.effective_bandwidth().bytes_per_sec();
        let remote_fraction = eff_mem
            .snc_remote_fraction
            .max(eff_mem.cross_socket_fraction);
        let counters = synthesize(&CounterInputs {
            instructions: prefill.instructions + decode.instructions,
            dram_read_bytes: total_dram * 0.85,
            dram_write_bytes: total_dram * 0.15,
            load_bytes: prefill.load_bytes + decode.load_bytes,
            store_bytes: prefill.store_bytes + decode.store_bytes,
            compute_busy: prefill.compute_busy + decode.compute_busy,
            elapsed: e2e,
            // UPI carries the cross-socket share of the *raw* demand:
            // SNC snoops and HBM-cache fills are intra-socket traffic, so
            // applying `traffic_factor` here double-counted them and
            // over-reported `upi_utilization` under SNC/cache modes.
            upi_bytes: raw_dram * eff_mem.cross_socket_fraction,
            upi_capacity_bytes_per_sec: upi_capacity,
            remote_fraction,
        });

        Ok(InferenceReport {
            model: model.name.clone(),
            backend: self.name(),
            request: *request,
            ttft,
            tpot,
            e2e_latency: e2e,
            prefill: prefill.report(),
            decode: decode.report(),
            counters,
            offload: None,
        })
    }
}

impl CostModel for CpuBackend {
    fn prefill_time(&self, model: &ModelConfig, batch: u64, prompt_len: u64) -> Seconds {
        CpuBackend::prefill_time(self, model, batch, prompt_len)
    }

    fn decode_step_time(&self, model: &ModelConfig, batch: u64, kv_len: u64) -> Seconds {
        CpuBackend::decode_step_time(self, model, batch, kv_len)
    }

    fn weight_bytes(&self, model: &ModelConfig) -> Bytes {
        model.weight_bytes(self.weight_dtype)
    }

    fn weight_load_bandwidth(&self) -> GbPerSec {
        // Cold starts stream weights into local DRAM; the DDR pool bounds
        // them (HBM fills go through DDR first on SPR Max).
        let sockets = self.cpu().topology.sockets_spanned(self.cores);
        self.cpu().ddr.bandwidth_per_socket.scale(sockets as f64)
    }

    fn holds_resident(&self, model: &ModelConfig) -> bool {
        // A CPU either holds the weights in DRAM or cannot serve at all;
        // there is no streaming tier behind it.
        let available = match self.numa().memory {
            MemoryMode::HbmOnly => self.cpu().hbm.as_ref().map_or(Bytes::ZERO, |h| h.capacity),
            _ => self.cpu().total_memory_capacity(),
        };
        Bytes::new(model.weight_bytes(self.weight_dtype).get() / self.tp_shard) <= available
    }

    fn kv_capacity_bytes(&self, models: &[ModelConfig]) -> Bytes {
        // Weights and KV share one memory pool on a CPU (the NUMA-mode
        // capacity); whatever the fleet's weights leave behind is cache.
        // Under TP each rank stores only its weight shard.
        let available = match self.numa().memory {
            MemoryMode::HbmOnly => self.cpu().hbm.as_ref().map_or(Bytes::ZERO, |h| h.capacity),
            _ => self.cpu().total_memory_capacity(),
        };
        models.iter().fold(available, |left, m| {
            left.saturating_sub(Bytes::new(
                m.weight_bytes(self.weight_dtype).get() / self.tp_shard,
            ))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmsim_model::families;

    #[test]
    fn spr_beats_icl_on_every_paper_model() {
        // Fig. 8 / Key Finding #1 direction.
        let spr = CpuBackend::paper_spr();
        let icl = CpuBackend::paper_icl();
        for m in families::all_paper_models() {
            for batch in [1, 8, 32] {
                let req = Request::paper_default(batch);
                let fast = spr.run(&m, &req).unwrap();
                let slow = icl.run(&m, &req).unwrap();
                assert!(
                    fast.e2e_latency < slow.e2e_latency,
                    "{} b={batch}: SPR {} vs ICL {}",
                    m.name,
                    fast.e2e_latency,
                    slow.e2e_latency
                );
                assert!(fast.e2e_throughput() > slow.e2e_throughput());
            }
        }
    }

    #[test]
    fn decode_is_memory_bound_prefill_compute_heavier() {
        let spr = CpuBackend::paper_spr();
        let r = spr
            .run(&families::llama2_13b(), &Request::paper_default(8))
            .unwrap();
        assert!(
            r.decode.memory_bound_fraction > 0.9,
            "{}",
            r.decode.memory_bound_fraction
        );
        assert!(r.prefill.memory_bound_fraction < r.decode.memory_bound_fraction);
    }

    #[test]
    fn ttft_scales_with_prompt_length() {
        let spr = CpuBackend::paper_spr();
        let m = families::llama2_7b();
        let short = spr.run(&m, &Request::new(1, 128, 32)).unwrap();
        let long = spr.run(&m, &Request::new(1, 1024, 32)).unwrap();
        assert!(long.ttft.as_f64() > 2.0 * short.ttft.as_f64());
    }

    #[test]
    fn batching_improves_throughput_without_free_latency() {
        let spr = CpuBackend::paper_spr();
        let m = families::opt_13b();
        let b1 = spr.run(&m, &Request::paper_default(1)).unwrap();
        let b32 = spr.run(&m, &Request::paper_default(32)).unwrap();
        assert!(b32.e2e_throughput() > 3.0 * b1.e2e_throughput());
        assert!(b32.e2e_latency > b1.e2e_latency);
    }

    #[test]
    fn mpki_falls_and_utilization_rises_with_batch() {
        // Figs. 11/12 trends.
        let spr = CpuBackend::paper_spr();
        let m = families::llama2_13b();
        let b1 = spr.run(&m, &Request::paper_default(1)).unwrap();
        let b32 = spr.run(&m, &Request::paper_default(32)).unwrap();
        assert!(b32.counters.llc_mpki < b1.counters.llc_mpki);
        assert!(b32.counters.core_utilization > b1.counters.core_utilization);
        assert!(b32.counters.loads > b1.counters.loads);
    }

    #[test]
    fn cores_past_one_socket_hurt() {
        // Fig. 14/16 / Key Finding #3.
        let cpu = llmsim_hw::presets::spr_max_9468();
        let mk = |c| CpuBackend::new(cpu.clone(), NumaConfig::QUAD_FLAT, c, DType::Bf16).unwrap();
        let m = families::llama2_7b();
        let req = Request::paper_default(8);
        let t48 = mk(48).run(&m, &req).unwrap();
        let t96 = mk(96).run(&m, &req).unwrap();
        let t12 = mk(12).run(&m, &req).unwrap();
        assert!(t48.e2e_latency < t12.e2e_latency);
        assert!(
            t48.e2e_latency < t96.e2e_latency,
            "48c {} vs 96c {}",
            t48.e2e_latency,
            t96.e2e_latency
        );
        assert!(t96.counters.upi_utilization > t48.counters.upi_utilization);
    }

    #[test]
    fn upi_bytes_exclude_snc_and_cache_inflation() {
        // Regression for the counter-accounting bug: `upi_bytes` used the
        // SNC/cache-inflated `total_dram`, double-counting intra-socket
        // snoop and HBM-fill traffic on the cross-socket link. UPI bytes
        // must equal the *raw* DRAM demand times the cross-socket
        // fraction (0.5 for an unmanaged two-socket span), regardless of
        // the clustering/memory mode.
        let cpu = llmsim_hw::presets::spr_max_9468();
        let cap = cpu.upi.effective_bandwidth().bytes_per_sec();
        // Compute-bound prefill at a 64-core (1.33-socket) span keeps the
        // byte rate below the UPI clamp so the equality is observable.
        let req = Request::new(4, 2048, 1);
        let m = families::llama2_13b();
        let run = |numa| {
            CpuBackend::new(cpu.clone(), numa, 64, DType::Bf16)
                .unwrap()
                .run(&m, &req)
                .unwrap()
        };
        for numa in [NumaConfig::SNC_FLAT, NumaConfig::QUAD_CACHE] {
            let r = run(numa);
            let raw = r.prefill.dram_bytes + r.decode.dram_bytes;
            let util = r.counters.upi_utilization;
            assert!(util > 0.0 && util < 0.95, "{numa}: unclamped util {util}");
            let expected = raw * 0.5 / (cap * r.e2e_latency.as_f64());
            assert!(
                (util - expected).abs() <= 1e-9 * expected,
                "{numa}: upi_utilization {util} vs raw-traffic expectation {expected}"
            );
        }
        // §VI shape: the same model/request moves the same raw bytes in
        // every NUMA mode, so UPI *bytes* (util × elapsed × capacity)
        // must agree between QUAD_FLAT and SNC_FLAT even though SNC's
        // snoop inflation shows up in the DRAM counters.
        let quad = run(NumaConfig::QUAD_FLAT);
        let snc = run(NumaConfig::SNC_FLAT);
        let quad_bytes = quad.counters.upi_utilization * quad.e2e_latency.as_f64() * cap;
        let snc_bytes = snc.counters.upi_utilization * snc.e2e_latency.as_f64() * cap;
        assert!(
            (quad_bytes - snc_bytes).abs() <= 1e-9 * quad_bytes,
            "UPI bytes must be NUMA-mode invariant: {quad_bytes} vs {snc_bytes}"
        );
        assert!(
            snc.counters.llc_misses > quad.counters.llc_misses,
            "SNC snoop inflation must still show in the DRAM-derived counters"
        );
    }

    #[test]
    fn quad_flat_is_best_numa_config() {
        // Fig. 13 / Key Finding #2.
        let cpu = llmsim_hw::presets::spr_max_9468();
        let m = families::llama2_13b();
        let req = Request::paper_default(8);
        let run = |numa| {
            CpuBackend::new(cpu.clone(), numa, 48, DType::Bf16)
                .unwrap()
                .run(&m, &req)
                .unwrap()
        };
        let best = run(NumaConfig::QUAD_FLAT);
        for other in [
            NumaConfig::QUAD_CACHE,
            NumaConfig::SNC_FLAT,
            NumaConfig::SNC_CACHE,
        ] {
            let r = run(other);
            assert!(
                best.e2e_latency <= r.e2e_latency,
                "{other}: {} vs quad_flat {}",
                r.e2e_latency,
                best.e2e_latency
            );
        }
    }

    #[test]
    fn oversized_model_errors_cleanly() {
        let spr = CpuBackend::paper_spr();
        // OPT-175B BF16 = 350 GB weights; with a KV cache pushing past
        // 640 GB of machine memory it must be rejected.
        let m = families::opt_175b();
        let err = spr.run(&m, &Request::new(32, 16384, 32)).unwrap_err();
        assert!(matches!(err, SimError::ModelTooLarge { .. }), "{err}");
    }

    #[test]
    fn int8_weight_quantization_doubles_decode_speed() {
        // Weight-only INT8 halves the decode phase's dominant traffic.
        let bf16 = CpuBackend::paper_spr();
        let int8 = CpuBackend::paper_spr().with_weight_dtype(DType::Int8);
        let m = families::llama2_13b();
        let req = Request::paper_default(1);
        let a = bf16.run(&m, &req).unwrap();
        let b = int8.run(&m, &req).unwrap();
        let gain = a.tpot.as_f64() / b.tpot.as_f64();
        assert!((1.6..2.1).contains(&gain), "decode gain {gain}");
        // Compute-bound prefill at batch 32 barely moves.
        let req32 = Request::paper_default(32);
        let a32 = bf16.run(&m, &req32).unwrap();
        let b32 = int8.run(&m, &req32).unwrap();
        let pgain = a32.ttft.as_f64() / b32.ttft.as_f64();
        assert!((0.95..1.2).contains(&pgain), "prefill gain {pgain}");
    }

    #[test]
    fn attention_overhead_scales_with_batch() {
        let base = CpuBackend::paper_spr();
        let slow = CpuBackend::paper_spr().with_attention_overhead(Seconds::from_micros(750.0));
        let m = families::llama2_70b();
        let b1 = Request::paper_default(1);
        let b16 = Request::paper_default(16);
        let d1 =
            slow.run(&m, &b1).unwrap().tpot.as_f64() - base.run(&m, &b1).unwrap().tpot.as_f64();
        let d16 =
            slow.run(&m, &b16).unwrap().tpot.as_f64() - base.run(&m, &b16).unwrap().tpot.as_f64();
        // 80 layers × 0.75 ms × batch.
        assert!((d1 - 0.06).abs() < 0.01, "{d1}");
        assert!((d16 - 0.96).abs() < 0.05, "{d16}");
    }

    #[test]
    fn invalid_core_count_rejected() {
        let cpu = llmsim_hw::presets::spr_max_9468();
        assert!(CpuBackend::new(cpu.clone(), NumaConfig::QUAD_FLAT, 0, DType::Bf16).is_err());
        assert!(CpuBackend::new(cpu, NumaConfig::QUAD_FLAT, 97, DType::Bf16).is_err());
    }
}
