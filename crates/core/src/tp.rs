//! Tensor-parallel execution across sockets (UPI) or GPUs (NVLink) — the
//! §VI cross-socket scaling model, promoted to a first-class backend.
//!
//! [`TensorParallel`] wraps `degree` identical *shard* backends (each
//! configured with `with_tensor_degree`, so it executes the per-rank
//! Megatron shard: heads and FFN columns split, norms replicated) and adds
//! the cost the shards cannot see: **two all-reduces per decoder layer**
//! (after the attention output projection and after the FFN down
//! projection), each moving `tokens × d_model` activations over the
//! inter-socket or inter-GPU link.
//!
//! This is exactly the §VI mechanism. Prefill all-reduces carry
//! `batch × prompt_len` rows and are bandwidth-bound; decode all-reduces
//! carry `batch` rows, so their cost is dominated by the per-collective
//! software latency ([`calib::TP_ALLREDUCE_SW_S`]) and link latency — a
//! fixed per-layer tax that makes 2-socket decode scaling sublinear even
//! though each socket touches half the weights.
//!
//! ```
//! use llmsim_core::{Backend, CpuBackend, Request, TensorParallel};
//! use llmsim_model::families;
//!
//! let one = CpuBackend::paper_spr();
//! let two = TensorParallel::across_sockets(CpuBackend::paper_spr(), 2)?;
//! let req = Request::paper_default(1);
//! let m = families::opt_13b();
//! let a = one.run(&m, &req)?;
//! let b = two.run(&m, &req)?;
//! let speedup = a.tpot.as_f64() / b.tpot.as_f64();
//! // Faster than one socket, slower than the ideal 2x: UPI-bound.
//! assert!(speedup > 1.0 && speedup < 2.0, "{speedup}");
//! # Ok::<(), llmsim_core::SimError>(())
//! ```

use crate::backend::{Backend, CostModel};
use crate::calib;
use crate::error::SimError;
use crate::report::InferenceReport;
use crate::request::Request;
use llmsim_hw::{presets, Bytes, GbPerSec, LinkSpec, Seconds};
use llmsim_model::{DType, ModelConfig};

/// A `degree`-way tensor-parallel group over identical shard backends.
///
/// `degree == 1` is a transparent pass-through: every method delegates to
/// the inner backend untouched, so a degree-1 group is byte-identical to
/// the plain backend (proptested in `tests/tp.rs`).
#[derive(Debug, Clone)]
pub struct TensorParallel<B> {
    /// One rank's backend, already configured to execute a `1/degree`
    /// shard of every graph.
    shard: B,
    degree: u64,
    /// The link every all-reduce crosses (UPI between sockets, NVLink
    /// between GPUs).
    link: LinkSpec,
    /// Element type of the all-reduced activations.
    act_dtype: DType,
}

impl<B> TensorParallel<B> {
    /// Wraps an already-sharded backend. `shard` must execute `1/degree`
    /// of every model (see `CpuBackend::with_tensor_degree` /
    /// `GpuBackend::with_tensor_degree`); this wrapper only adds the
    /// collective cost.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnsupportedConfig`] if `degree` is zero.
    pub fn new(shard: B, degree: u64, link: LinkSpec, act_dtype: DType) -> Result<Self, SimError> {
        if degree == 0 {
            return Err(SimError::UnsupportedConfig(
                "tensor-parallel degree must be at least 1".into(),
            ));
        }
        Ok(TensorParallel {
            shard,
            degree,
            link,
            act_dtype,
        })
    }

    /// The group's parallel degree.
    #[must_use]
    pub fn degree(&self) -> u64 {
        self.degree
    }

    /// The link all-reduces are priced on.
    #[must_use]
    pub fn link(&self) -> &LinkSpec {
        &self.link
    }

    /// Wall-clock time of the all-reduces accompanying one forward pass
    /// over `tokens` token-rows (2 per layer, ring algorithm: each rank
    /// moves `2(p−1)/p` of the payload over the link).
    #[must_use]
    pub fn allreduce_time(&self, model: &ModelConfig, tokens: u64) -> Seconds {
        if self.degree <= 1 {
            return Seconds::ZERO;
        }
        let p = self.degree as f64;
        let payload = (tokens * model.d_model * self.act_dtype.bytes()) as f64;
        let wire = self
            .link
            .transfer_time(Bytes::new((payload * 2.0 * (p - 1.0) / p) as u64));
        let per_collective = Seconds::new(calib::TP_ALLREDUCE_SW_S) + wire;
        per_collective.scale(2.0 * model.n_layers as f64)
    }

    /// Bytes one rank pushes over the link for one forward pass over
    /// `tokens` token-rows (used for counter synthesis).
    fn allreduce_bytes(&self, model: &ModelConfig, tokens: u64) -> f64 {
        if self.degree <= 1 {
            return 0.0;
        }
        let p = self.degree as f64;
        let payload = (tokens * model.d_model * self.act_dtype.bytes()) as f64;
        payload * 2.0 * (p - 1.0) / p * 2.0 * model.n_layers as f64
    }
}

impl TensorParallel<crate::CpuBackend> {
    /// Splits a CPU backend across `degree` sockets over UPI — the §VI
    /// configuration. `socket` should be a *single-socket* backend (e.g.
    /// `CpuBackend::paper_spr()`, 48 cores); the group then models
    /// `degree` such sockets each running a shard.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnsupportedConfig`] if `degree` is zero.
    pub fn across_sockets(socket: crate::CpuBackend, degree: u64) -> Result<Self, SimError> {
        let act_dtype = socket.kv_dtype();
        let shard = socket.with_tensor_degree(degree)?;
        TensorParallel::new(shard, degree, presets::upi_link(), act_dtype)
    }
}

impl TensorParallel<crate::GpuBackend> {
    /// Splits a GPU backend across `degree` devices over NVLink. Sharding
    /// can make an otherwise-offloading model device-resident (the usual
    /// reason to TP on GPUs).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnsupportedConfig`] if `degree` is zero.
    pub fn across_gpus(gpu: crate::GpuBackend, degree: u64) -> Result<Self, SimError> {
        let shard = gpu.with_tensor_degree(degree)?;
        TensorParallel::new(shard, degree, presets::nvlink_c2c(), DType::Bf16)
    }
}

impl<B: Backend> Backend for TensorParallel<B> {
    fn name(&self) -> String {
        if self.degree <= 1 {
            self.shard.name()
        } else {
            format!("tp{}[{}]", self.degree, self.shard.name())
        }
    }

    fn run(&self, model: &ModelConfig, request: &Request) -> Result<InferenceReport, SimError> {
        if self.degree <= 1 {
            return self.shard.run(model, request);
        }
        model
            .supports_tensor_parallel(self.degree)
            .map_err(SimError::InvalidRequest)?;
        let mut rep = self.shard.run(model, request)?;

        let prefill_tokens = request.batch * request.prompt_len;
        let pre_ar = self.allreduce_time(model, prefill_tokens);
        let step_ar = self.allreduce_time(model, request.batch);
        let steps = request.decode_steps();
        let dec_ar = step_ar.scale(steps as f64);

        rep.backend = self.name();
        rep.ttft += pre_ar;
        if steps > 0 {
            rep.tpot += step_ar;
        }
        rep.e2e_latency = rep.e2e_latency + pre_ar + dec_ar;
        rep.prefill.time += pre_ar;
        rep.decode.time += dec_ar;

        // The shard saw no cross-rank traffic; the group's link
        // utilization comes entirely from the all-reduces.
        let ar_bytes = self.allreduce_bytes(model, prefill_tokens)
            + self.allreduce_bytes(model, request.batch) * steps as f64;
        let cap = self.link.effective_bandwidth().bytes_per_sec();
        let elapsed = rep.e2e_latency.as_f64();
        rep.counters.upi_utilization = if cap > 0.0 && elapsed > 0.0 {
            (ar_bytes / (cap * elapsed)).clamp(0.0, 1.0)
        } else {
            0.0
        };
        Ok(rep)
    }
}

impl<B: CostModel> CostModel for TensorParallel<B> {
    fn prefill_time(&self, model: &ModelConfig, batch: u64, prompt_len: u64) -> Seconds {
        let t = self.shard.prefill_time(model, batch, prompt_len);
        if self.degree <= 1 {
            return t;
        }
        t + self.allreduce_time(model, batch * prompt_len)
    }

    fn decode_step_time(&self, model: &ModelConfig, batch: u64, kv_len: u64) -> Seconds {
        let t = self.shard.decode_step_time(model, batch, kv_len);
        if self.degree <= 1 {
            return t;
        }
        t + self.allreduce_time(model, batch)
    }

    fn weight_bytes(&self, model: &ModelConfig) -> Bytes {
        // The group as a whole still stores (and cold-loads) every weight.
        self.shard.weight_bytes(model)
    }

    fn weight_load_bandwidth(&self) -> GbPerSec {
        // Each rank pages its own shard concurrently.
        if self.degree <= 1 {
            self.shard.weight_load_bandwidth()
        } else {
            self.shard.weight_load_bandwidth().scale(self.degree as f64)
        }
    }

    fn holds_resident(&self, model: &ModelConfig) -> bool {
        // Residency is decided per rank: each holds 1/degree of the
        // weights (the shard backend already sizes that).
        self.shard.holds_resident(model)
    }

    fn kv_capacity_bytes(&self, models: &[ModelConfig]) -> Bytes {
        // KV is head-sharded: each rank stores 1/degree of every
        // sequence's cache, so group capacity is the sum over ranks.
        let per_rank = self.shard.kv_capacity_bytes(models);
        if self.degree <= 1 {
            per_rank
        } else {
            Bytes::new(per_rank.get().saturating_mul(self.degree))
        }
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact float assertions are deliberate: determinism is bit-level
mod tests {
    use super::*;
    use crate::{CpuBackend, GpuBackend};
    use llmsim_model::families;

    #[test]
    fn two_socket_decode_is_sublinear_and_upi_bound() {
        // §VI's shape: TP-2 beats one socket but falls short of 2x, and
        // far short of it at batch 1 where the per-layer all-reduce
        // latency dominates the halved weight stream.
        let one = CpuBackend::paper_spr();
        let two = TensorParallel::across_sockets(CpuBackend::paper_spr(), 2).unwrap();
        let m = families::opt_13b();
        for batch in [1u64, 8] {
            let req = Request::paper_default(batch);
            let a = one.run(&m, &req).unwrap();
            let b = two.run(&m, &req).unwrap();
            let decode_speedup = a.tpot.as_f64() / b.tpot.as_f64();
            assert!(
                decode_speedup > 1.0 && decode_speedup < 2.0,
                "b={batch}: decode speedup {decode_speedup}"
            );
            let prefill_speedup = a.ttft.as_f64() / b.ttft.as_f64();
            assert!(
                prefill_speedup > 1.0 && prefill_speedup < 2.0,
                "b={batch}: prefill speedup {prefill_speedup}"
            );
            // The single socket never crosses UPI; the group does.
            assert_eq!(a.counters.upi_utilization, 0.0);
            assert!(b.counters.upi_utilization > 0.0);
        }
    }

    #[test]
    fn deeper_tp_keeps_shrinking_decode_latency() {
        let m = families::llama2_70b();
        let req = Request::paper_default(4);
        let t2 = TensorParallel::across_sockets(CpuBackend::paper_spr(), 2)
            .unwrap()
            .run(&m, &req)
            .unwrap();
        let t4 = TensorParallel::across_sockets(CpuBackend::paper_spr(), 4)
            .unwrap()
            .run(&m, &req)
            .unwrap();
        assert!(t4.tpot < t2.tpot);
        // But efficiency decays: 4 ranks don't reach 2x the 2-rank speed.
        assert!(t4.tpot.as_f64() > t2.tpot.as_f64() / 2.0);
    }

    #[test]
    fn cost_model_times_match_report_phases() {
        let tp = TensorParallel::across_sockets(CpuBackend::paper_spr(), 2).unwrap();
        let m = families::opt_13b();
        let req = Request::new(4, 512, 16);
        let rep = tp.run(&m, &req).unwrap();
        let prefill = tp.prefill_time(&m, req.batch, req.prompt_len);
        assert!((rep.ttft.as_f64() - prefill.as_f64()).abs() < 1e-12);
    }

    #[test]
    fn tp_makes_offloading_gpu_model_resident() {
        // OPT-66B BF16 (132 GB) offloads on one A100-40GB but shards to
        // residency across four, which is worth an order of magnitude.
        let one = GpuBackend::paper_a100();
        let four = TensorParallel::across_gpus(GpuBackend::paper_a100(), 4).unwrap();
        let m = families::opt_66b();
        let req = Request::paper_default(1);
        let a = one.run(&m, &req).unwrap();
        let b = four.run(&m, &req).unwrap();
        assert!(a.offload.is_some());
        assert!(b.offload.is_none());
        assert!(b.e2e_latency.as_f64() < a.e2e_latency.as_f64() / 4.0);
    }

    #[test]
    fn indivisible_model_is_rejected() {
        let tp = TensorParallel::across_sockets(CpuBackend::paper_spr(), 3).unwrap();
        // 50 280 vocab / 32 heads: degree 3 divides neither.
        let err = tp
            .run(&families::opt_6_7b(), &Request::paper_default(1))
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidRequest(_)), "{err}");
    }

    #[test]
    fn degree_one_is_plain_backend() {
        let plain = CpuBackend::paper_spr();
        let tp = TensorParallel::across_sockets(CpuBackend::paper_spr(), 1).unwrap();
        let m = families::llama2_13b();
        let req = Request::paper_default(8);
        let a = plain.run(&m, &req).unwrap();
        let b = tp.run(&m, &req).unwrap();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert_eq!(plain.name(), tp.name());
    }
}
