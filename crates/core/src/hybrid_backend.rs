//! CPU-GPU hybrid execution — §VI's second proposed optimization, built as
//! a real [`Backend`].
//!
//! The split follows the paper's reasoning: the *prefill* phase is
//! compute-bound and belongs on the GPU even when weights must stream over
//! PCIe (they stream once per pass), while the *decode* phase is
//! memory-bound and belongs on the AMX+HBM CPU, which holds the weights
//! resident. The KV cache produced by the GPU prefill crosses the PCIe
//! link once during the handoff.

use crate::backend::Backend;
use crate::cpu_backend::CpuBackend;
use crate::error::SimError;
use crate::gpu_backend::GpuBackend;
use crate::report::InferenceReport;
use crate::request::Request;
use llmsim_hw::Seconds;
use llmsim_model::{DType, ModelConfig};

/// A backend that prefills on a GPU and decodes on a CPU (§VI).
///
/// # Examples
///
/// ```
/// use llmsim_core::{Backend, CpuBackend, GpuBackend, HybridBackend, Request};
/// use llmsim_model::families;
///
/// let hybrid = HybridBackend::new(CpuBackend::paper_spr(), GpuBackend::paper_h100());
/// // Long prompts are where the split pays off on offloaded models.
/// let r = hybrid.run(&families::opt_66b(), &Request::new(4, 1024, 32))?;
/// assert!(r.ttft < r.e2e_latency);
/// # Ok::<(), llmsim_core::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct HybridBackend {
    cpu: CpuBackend,
    gpu: GpuBackend,
}

impl HybridBackend {
    /// Creates a hybrid from its two halves.
    #[must_use]
    pub fn new(cpu: CpuBackend, gpu: GpuBackend) -> Self {
        HybridBackend { cpu, gpu }
    }

    /// The paper-tuned pairing: SPR quad_flat/48c + H100.
    #[must_use]
    pub fn paper_spr_h100() -> Self {
        Self::new(CpuBackend::paper_spr(), GpuBackend::paper_h100())
    }

    /// Time to move the prefill-produced KV cache (and last activations)
    /// from GPU to CPU over the host link.
    fn handoff_time(&self, model: &ModelConfig, request: &Request) -> Seconds {
        let kv = model.kv_cache_bytes(request.prompt_len, request.batch, DType::Bf16);
        let acts = llmsim_hw::Bytes::new(request.batch * model.d_model * 2);
        self.gpu.gpu().host_link.transfer_time(kv + acts)
    }
}

impl Backend for HybridBackend {
    fn name(&self) -> String {
        format!(
            "hybrid({} prefill + {} decode)",
            self.gpu.name(),
            self.cpu.name()
        )
    }

    fn run(&self, model: &ModelConfig, request: &Request) -> Result<InferenceReport, SimError> {
        // Run both halves on the full request and stitch: GPU report donates
        // its prefill, CPU report donates its decode.
        let gpu_run = self.gpu.run(model, request)?;
        let cpu_run = self.cpu.run(model, request)?;
        let handoff = self.handoff_time(model, request);

        // The paper's proposal assumes the split helps; a real scheduler
        // would fall back when it doesn't. Model that scheduler: pick the
        // cheaper prefill side.
        let (ttft, prefill) = if gpu_run.ttft + handoff < cpu_run.ttft {
            (gpu_run.ttft + handoff, gpu_run.prefill)
        } else {
            (cpu_run.ttft, cpu_run.prefill)
        };
        let e2e = ttft + cpu_run.decode.time;
        Ok(InferenceReport {
            model: model.name.clone(),
            backend: self.name(),
            request: *request,
            ttft,
            tpot: cpu_run.tpot,
            e2e_latency: e2e,
            prefill,
            decode: cpu_run.decode,
            counters: cpu_run.counters,
            offload: gpu_run.offload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmsim_model::families;

    #[test]
    fn hybrid_never_loses_to_pure_cpu() {
        // The fallback scheduler guarantees it; check across shapes.
        let hybrid = HybridBackend::paper_spr_h100();
        let cpu = CpuBackend::paper_spr();
        for m in [families::opt_13b(), families::opt_66b()] {
            for (b, s) in [(1u64, 128u64), (4, 1024), (16, 512)] {
                let req = Request::new(b, s, 16);
                let h = hybrid.run(&m, &req).unwrap();
                let c = cpu.run(&m, &req).unwrap();
                assert!(
                    h.e2e_latency.as_f64() <= c.e2e_latency.as_f64() * 1.000001,
                    "{} b={b} s={s}: hybrid {} vs cpu {}",
                    m.name,
                    h.e2e_latency,
                    c.e2e_latency
                );
            }
        }
    }

    #[test]
    fn hybrid_wins_on_long_prompt_offloaded_models() {
        // §VI's claim: GPU prefill + CPU decode beats both pure systems for
        // large models with long prompts.
        let hybrid = HybridBackend::paper_spr_h100();
        let cpu = CpuBackend::paper_spr();
        let gpu = GpuBackend::paper_h100();
        let m = families::opt_66b();
        let req = Request::new(4, 1024, 32);
        let h = hybrid.run(&m, &req).unwrap();
        let c = cpu.run(&m, &req).unwrap();
        let g = gpu.run(&m, &req).unwrap();
        assert!(
            h.e2e_latency.as_f64() < 0.95 * c.e2e_latency.as_f64(),
            "vs CPU"
        );
        assert!(h.e2e_latency < g.e2e_latency, "vs GPU");
        // TTFT specifically improves (the §VI user-experience argument).
        assert!(h.ttft < c.ttft);
    }

    #[test]
    fn decode_metrics_come_from_the_cpu_side() {
        let hybrid = HybridBackend::paper_spr_h100();
        let cpu = CpuBackend::paper_spr();
        let m = families::opt_66b();
        let req = Request::new(2, 512, 8);
        let h = hybrid.run(&m, &req).unwrap();
        let c = cpu.run(&m, &req).unwrap();
        assert!((h.tpot.as_f64() - c.tpot.as_f64()).abs() < 1e-12);
    }

    #[test]
    fn name_mentions_both_halves() {
        let n = HybridBackend::paper_spr_h100().name();
        assert!(n.contains("H100") && n.contains("9468"), "{n}");
    }
}
