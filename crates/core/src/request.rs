//! Inference request description.

use crate::error::SimError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One batched generation request: `batch` prompts of `prompt_len` tokens,
/// each generating `gen_len` output tokens.
///
/// The paper's standard workload is `prompt_len = 128`, `gen_len = 32`,
/// with batch swept 1–32 (§IV-A); [`Request::paper_default`] builds it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Request {
    /// Concurrent sequences.
    pub batch: u64,
    /// Input prompt length per sequence.
    pub prompt_len: u64,
    /// Output tokens generated per sequence (includes the prefill token).
    pub gen_len: u64,
}

impl Request {
    /// Creates a request.
    ///
    /// # Panics
    ///
    /// Panics if any field is zero; use [`Request::try_new`] for fallible
    /// construction.
    #[must_use]
    pub fn new(batch: u64, prompt_len: u64, gen_len: u64) -> Self {
        Self::try_new(batch, prompt_len, gen_len).expect("invalid request")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidRequest`] if any field is zero.
    pub fn try_new(batch: u64, prompt_len: u64, gen_len: u64) -> Result<Self, SimError> {
        if batch == 0 || prompt_len == 0 || gen_len == 0 {
            return Err(SimError::InvalidRequest(format!(
                "batch ({batch}), prompt_len ({prompt_len}) and gen_len ({gen_len}) must be positive"
            )));
        }
        Ok(Request {
            batch,
            prompt_len,
            gen_len,
        })
    }

    /// The paper's standard configuration: input 128, output 32.
    #[must_use]
    pub fn paper_default(batch: u64) -> Self {
        Request::new(batch, 128, 32)
    }

    /// Total generated tokens (`batch × gen_len`).
    #[must_use]
    pub fn generated_tokens(&self) -> u64 {
        self.batch * self.gen_len
    }

    /// Decode steps after the prefill produced the first token.
    #[must_use]
    pub fn decode_steps(&self) -> u64 {
        self.gen_len - 1
    }

    /// Final context length per sequence.
    #[must_use]
    pub fn final_context(&self) -> u64 {
        self.prompt_len + self.gen_len
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "b={} in={} out={}",
            self.batch, self.prompt_len, self.gen_len
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_methodology() {
        let r = Request::paper_default(8);
        assert_eq!((r.batch, r.prompt_len, r.gen_len), (8, 128, 32));
        assert_eq!(r.generated_tokens(), 256);
        assert_eq!(r.decode_steps(), 31);
        assert_eq!(r.final_context(), 160);
    }

    #[test]
    fn zero_fields_rejected() {
        assert!(Request::try_new(0, 128, 32).is_err());
        assert!(Request::try_new(1, 0, 32).is_err());
        assert!(Request::try_new(1, 128, 0).is_err());
    }
}
