//! A continuous-batching serving simulator — the §VII-C extension.
//!
//! The paper's related work contrasts *static* batching (FasterTransformer:
//! a batch runs to completion before the next is admitted) with
//! *iteration-level* scheduling (Orca/vLLM: requests join and leave the
//! running batch at token-step granularity). This module simulates both
//! policies on top of the CPU backend's phase-cost primitives and reports
//! per-request latency plus system throughput.

use crate::backend::CostModel;
use crate::trace::{NullSink, SpanOutcome, SpanRecord, SpanSink};
use llmsim_model::ModelConfig;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// One request arriving at a serving system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServingRequest {
    /// Caller-assigned id.
    pub id: u64,
    /// Arrival time offset from simulation start, seconds.
    pub arrival_s: f64,
    /// Prompt length.
    pub prompt_len: u64,
    /// Tokens to generate.
    pub gen_len: u64,
}

/// Batching policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulingPolicy {
    /// Whole batches run to completion (FasterTransformer-style). Short
    /// requests wait for the batch's longest generation.
    Static,
    /// Requests join/leave at token-step granularity (Orca-style
    /// iteration-level scheduling).
    IterationLevel,
    /// Iteration-level with Sarathi-style chunked prefill: new prompts are
    /// processed `chunk_tokens` at a time, fused with ongoing decode
    /// iterations, bounding the decode stall a long prompt can cause.
    ChunkedPrefill {
        /// Prompt tokens processed per fused iteration.
        chunk_tokens: u64,
    },
}

impl fmt::Display for SchedulingPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulingPolicy::Static => f.write_str("static"),
            SchedulingPolicy::IterationLevel => f.write_str("iteration-level"),
            SchedulingPolicy::ChunkedPrefill { chunk_tokens } => {
                write!(f, "chunked-prefill({chunk_tokens})")
            }
        }
    }
}

/// Serving-system configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServingConfig {
    /// Maximum concurrent sequences in one batch.
    pub max_batch: u64,
    /// Batching policy.
    pub policy: SchedulingPolicy,
}

/// Per-request outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestOutcome {
    /// Request id.
    pub id: u64,
    /// Queue wait before the prefill started, seconds.
    pub queue_delay_s: f64,
    /// Time from arrival to first token, seconds.
    pub ttft_s: f64,
    /// Time from arrival to final token, seconds.
    pub e2e_s: f64,
}

/// Whole-run serving metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingReport {
    /// Policy used.
    pub policy: SchedulingPolicy,
    /// Per-request outcomes, in completion order.
    pub outcomes: Vec<RequestOutcome>,
    /// Wall-clock of the whole run, seconds.
    pub makespan_s: f64,
    /// Total tokens generated.
    pub generated_tokens: u64,
    /// Longest gap between consecutive tokens experienced by any decoding
    /// request (the TBT stall Sarathi-Serve targets), seconds.
    pub max_decode_stall_s: f64,
}

impl ServingReport {
    /// System throughput: generated tokens / makespan.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        self.generated_tokens as f64 / self.makespan_s
    }

    /// Mean time-to-first-token across requests.
    #[must_use]
    pub fn mean_ttft(&self) -> f64 {
        // lint:ordered: outcomes is a Vec in deterministic completion order
        self.outcomes.iter().map(|o| o.ttft_s).sum::<f64>() / self.outcomes.len() as f64
    }

    /// A latency percentile over E2E times (`p` in percent; `NaN` when
    /// there are no outcomes or `p` is outside 0..=100). Delegates to
    /// [`llmsim_report::percentile`] so serving, resilience and cluster
    /// metrics all share one linear-interpolation percentile definition.
    #[must_use]
    pub fn e2e_percentile(&self, p: f64) -> f64 {
        let v: Vec<f64> = self.outcomes.iter().map(|o| o.e2e_s).collect();
        llmsim_report::percentile(&v, p)
    }
}

/// Simulates serving `requests` (sorted by arrival) on `backend`.
///
/// # Panics
///
/// Panics if `requests` is empty, unsorted, has zero-length fields, or
/// `config.max_batch` is zero.
#[must_use]
pub fn simulate<B: CostModel + ?Sized>(
    backend: &B,
    model: &ModelConfig,
    config: &ServingConfig,
    requests: &[ServingRequest],
) -> ServingReport {
    simulate_traced(backend, model, config, requests, &mut NullSink)
}

/// [`simulate`] with per-request span tracing: every request's phase
/// timeline (queue, prefill, decode, completion) is emitted to `sink` as
/// a [`SpanRecord`]. Tracing is observational only — the returned report
/// is identical to [`simulate`]'s, bit for bit.
///
/// # Panics
///
/// Panics under the same conditions as [`simulate`].
#[must_use]
pub fn simulate_traced<B: CostModel + ?Sized>(
    backend: &B,
    model: &ModelConfig,
    config: &ServingConfig,
    requests: &[ServingRequest],
    sink: &mut dyn SpanSink,
) -> ServingReport {
    assert!(!requests.is_empty(), "need at least one request");
    assert!(config.max_batch > 0, "max batch must be positive");
    assert!(
        requests
            .windows(2)
            .all(|w| w[0].arrival_s <= w[1].arrival_s),
        "requests must be sorted by arrival"
    );
    assert!(
        requests.iter().all(|r| r.prompt_len > 0 && r.gen_len > 0),
        "request lengths must be positive"
    );
    sink.hint_len(requests.len());
    let report = match config.policy {
        SchedulingPolicy::Static => simulate_static(backend, model, config, requests, sink),
        SchedulingPolicy::IterationLevel => {
            simulate_iteration(backend, model, config, requests, sink)
        }
        SchedulingPolicy::ChunkedPrefill { chunk_tokens } => {
            assert!(chunk_tokens > 0, "chunk size must be positive");
            simulate_chunked(backend, model, config, requests, chunk_tokens, sink)
        }
    };
    sink.finish();
    report
}

fn simulate_static<B: CostModel + ?Sized>(
    backend: &B,
    model: &ModelConfig,
    config: &ServingConfig,
    requests: &[ServingRequest],
    sink: &mut dyn SpanSink,
) -> ServingReport {
    let mut now = 0.0f64;
    let mut outcomes = Vec::with_capacity(requests.len());
    let mut generated = 0u64;
    let mut max_stall = 0.0f64;
    let mut i = 0usize;
    while i < requests.len() {
        let end = (i + config.max_batch as usize).min(requests.len());
        let batch = &requests[i..end];
        // The batch starts when the server is free and every member arrived.
        let start = now.max(batch.iter().map(|r| r.arrival_s).fold(0.0, f64::max));
        let b = batch.len() as u64;
        // Padding semantics: everyone pays the longest prompt and the
        // longest generation in the batch.
        let max_prompt = batch.iter().map(|r| r.prompt_len).max().unwrap_or(1);
        let max_gen = batch.iter().map(|r| r.gen_len).max().unwrap_or(1);
        let prefill = backend.prefill_time(model, b, max_prompt).as_f64();
        let first_token = start + prefill;
        let mut t = first_token;
        let mut finish = vec![first_token; batch.len()];
        for step in 0..max_gen.saturating_sub(1) {
            let kv = max_prompt + 1 + step;
            let dt = backend.decode_step_time(model, b, kv).as_f64();
            max_stall = max_stall.max(dt);
            t += dt;
            for (j, r) in batch.iter().enumerate() {
                // Token 1 came from prefill; decode step `s` yields token
                // `s + 2`, so a request finishes after step `gen_len - 2`.
                if r.gen_len >= 2 && step == r.gen_len - 2 {
                    finish[j] = t;
                }
            }
        }
        for (j, r) in batch.iter().enumerate() {
            let done = finish[j].max(first_token);
            outcomes.push(RequestOutcome {
                id: r.id,
                queue_delay_s: start - r.arrival_s,
                ttft_s: first_token - r.arrival_s,
                e2e_s: done - r.arrival_s,
            });
            generated += r.gen_len;
            if sink.enabled() {
                sink.record(SpanRecord {
                    id: r.id,
                    model: 0,
                    replica: None,
                    outcome: SpanOutcome::Completed,
                    arrival_s: r.arrival_s,
                    queue_delay_s: start - r.arrival_s,
                    dispatch_s: start,
                    prefill_end_s: first_token,
                    decode_s: done - first_token,
                    decode_steps: r.gen_len - 1,
                    completion_s: done,
                    batch_at_dispatch: b,
                    prefix_hit_tokens: 0,
                    preemptions: 0,
                });
            }
        }
        now = t;
        i = end;
    }
    let makespan = outcomes
        .iter()
        .map(|o| o.e2e_s)
        .zip(requests)
        .map(|(e, r)| e + r.arrival_s)
        .fold(0.0, f64::max);
    ServingReport {
        policy: SchedulingPolicy::Static,
        outcomes,
        makespan_s: makespan,
        generated_tokens: generated,
        max_decode_stall_s: max_stall,
    }
}

#[derive(Debug, Clone, Copy)]
struct Active {
    id: u64,
    arrival_s: f64,
    context: u64,
    remaining: u64,
    first_token_s: f64,
    /// When this request's prefill began (span bookkeeping only).
    dispatch_s: f64,
    /// Batch width the moment the prefill began (span bookkeeping only).
    batch_at_dispatch: u64,
    /// Decode steps taken so far (span bookkeeping only).
    decode_steps: u64,
}

/// Span of a completed [`Active`] request. `decode_s` is defined as
/// completion minus first token so the three phases always sum to the
/// reported e2e latency, even when a request rides along in iterations it
/// generates nothing in.
fn span_of(a: &Active, completion_s: f64) -> SpanRecord {
    SpanRecord {
        id: a.id,
        model: 0,
        replica: None,
        outcome: SpanOutcome::Completed,
        arrival_s: a.arrival_s,
        queue_delay_s: a.dispatch_s - a.arrival_s,
        dispatch_s: a.dispatch_s,
        prefill_end_s: a.first_token_s,
        decode_s: completion_s - a.first_token_s,
        decode_steps: a.decode_steps,
        completion_s,
        batch_at_dispatch: a.batch_at_dispatch,
        prefix_hit_tokens: 0,
        preemptions: 0,
    }
}

fn simulate_iteration<B: CostModel + ?Sized>(
    backend: &B,
    model: &ModelConfig,
    config: &ServingConfig,
    requests: &[ServingRequest],
    sink: &mut dyn SpanSink,
) -> ServingReport {
    let mut waiting: VecDeque<ServingRequest> = requests.iter().copied().collect();
    let mut active: Vec<Active> = Vec::new();
    let mut outcomes = Vec::with_capacity(requests.len());
    let mut generated = 0u64;
    let mut now = 0.0f64;
    let mut max_stall = 0.0f64;

    while !waiting.is_empty() || !active.is_empty() {
        // Admit arrived requests up to the batch cap; a full prefill pass
        // stalls ongoing decodes for its whole duration (the problem
        // chunked prefill solves).
        let mut admitted: Vec<ServingRequest> = Vec::new();
        while active.len() + admitted.len() < config.max_batch as usize {
            let admit = waiting
                .front()
                .is_some_and(|r| r.arrival_s <= now || active.is_empty() && admitted.is_empty());
            if !admit {
                break;
            }
            let Some(r) = waiting.pop_front() else { break };
            admitted.push(r);
        }
        if !admitted.is_empty() {
            let start = now.max(admitted.iter().map(|r| r.arrival_s).fold(0.0, f64::max));
            let max_prompt = admitted.iter().map(|r| r.prompt_len).max().unwrap_or(1);
            let t_prefill = backend
                .prefill_time(model, admitted.len() as u64, max_prompt)
                .as_f64();
            if !active.is_empty() {
                max_stall = max_stall.max(t_prefill);
            }
            let admitted_b = admitted.len() as u64;
            let already_running = active.len() as u64;
            now = start + t_prefill;
            for r in admitted {
                generated += 1; // prefill produced the first token
                let a = Active {
                    id: r.id,
                    arrival_s: r.arrival_s,
                    context: r.prompt_len + 1,
                    remaining: r.gen_len - 1,
                    first_token_s: now,
                    dispatch_s: start,
                    batch_at_dispatch: already_running + admitted_b,
                    decode_steps: 0,
                };
                // A single-token request is fully served by its prefill —
                // retiring it here (instead of letting it ride one decode
                // iteration) keeps e2e equal to what the phase costs say,
                // and in agreement with the cluster engine's charging.
                if a.remaining == 0 {
                    outcomes.push(RequestOutcome {
                        id: a.id,
                        queue_delay_s: (a.first_token_s - a.arrival_s).max(0.0),
                        ttft_s: a.first_token_s - a.arrival_s,
                        e2e_s: now - a.arrival_s,
                    });
                    if sink.enabled() {
                        sink.record(span_of(&a, now));
                    }
                } else {
                    active.push(a);
                }
            }
        }
        if active.is_empty() {
            continue;
        }
        // One decode iteration for the whole running batch.
        let b = active.len() as u64;
        let kv = active.iter().map(|a| a.context).max().unwrap_or(1);
        // Requests with nothing left to generate complete immediately.
        let mut still_running = Vec::with_capacity(active.len());
        let step = backend.decode_step_time(model, b, kv).as_f64();
        max_stall = max_stall.max(step);
        now += step;
        for mut a in active.drain(..) {
            if a.remaining > 0 {
                a.remaining -= 1;
                a.context += 1;
                a.decode_steps += 1;
                generated += 1;
            }
            if a.remaining == 0 {
                outcomes.push(RequestOutcome {
                    id: a.id,
                    queue_delay_s: (a.first_token_s - a.arrival_s).max(0.0),
                    ttft_s: a.first_token_s - a.arrival_s,
                    e2e_s: now - a.arrival_s,
                });
                if sink.enabled() {
                    sink.record(span_of(&a, now));
                }
            } else {
                still_running.push(a);
            }
        }
        active = still_running;
    }
    ServingReport {
        policy: SchedulingPolicy::IterationLevel,
        outcomes,
        makespan_s: now,
        generated_tokens: generated,
        max_decode_stall_s: max_stall,
    }
}

/// A request whose prompt is still being chunk-prefilled.
#[derive(Debug, Clone, Copy)]
struct Prefilling {
    req: ServingRequest,
    remaining_prompt: u64,
    /// When the first chunk began (span bookkeeping only).
    dispatch_s: f64,
}

fn simulate_chunked<B: CostModel + ?Sized>(
    backend: &B,
    model: &ModelConfig,
    config: &ServingConfig,
    requests: &[ServingRequest],
    chunk_tokens: u64,
    sink: &mut dyn SpanSink,
) -> ServingReport {
    let mut waiting: VecDeque<ServingRequest> = requests.iter().copied().collect();
    let mut active: Vec<Active> = Vec::new();
    let mut prefilling: Option<Prefilling> = None;
    let mut outcomes = Vec::with_capacity(requests.len());
    let mut generated = 0u64;
    let mut now = 0.0f64;
    let mut max_stall = 0.0f64;

    while !waiting.is_empty() || !active.is_empty() || prefilling.is_some() {
        // Admit one request into the prefilling slot when there is room.
        if prefilling.is_none() && active.len() < config.max_batch as usize {
            if let Some(r) = waiting.front().copied() {
                if r.arrival_s <= now || active.is_empty() {
                    waiting.pop_front();
                    now = now.max(r.arrival_s);
                    prefilling = Some(Prefilling {
                        req: r,
                        remaining_prompt: r.prompt_len,
                        dispatch_s: now,
                    });
                }
            }
        }
        if prefilling.is_none() && active.is_empty() {
            continue; // jump handled at admission
        }

        // One fused iteration: a prompt chunk (if any) plus one decode step
        // for the running batch. Decode tokens piggyback on the chunk's
        // GEMMs, paying a modest interference surcharge.
        let decode_b = active.len() as u64;
        let iter_cost = match (&mut prefilling, decode_b) {
            (Some(p), b) => {
                let chunk = p.remaining_prompt.min(chunk_tokens);
                let chunk_cost = backend.prefill_time(model, 1, chunk).as_f64();
                let piggyback = if b > 0 {
                    0.25 * backend
                        .decode_step_time(model, b, 1 + p.req.prompt_len)
                        .as_f64()
                } else {
                    0.0
                };
                p.remaining_prompt -= chunk;
                chunk_cost + piggyback
            }
            (None, b) => {
                let kv = active.iter().map(|a| a.context).max().unwrap_or(1);
                backend.decode_step_time(model, b.max(1), kv).as_f64()
            }
        };
        if !active.is_empty() {
            max_stall = max_stall.max(iter_cost);
        }
        now += iter_cost;

        // Prefill completion → join the decode batch with its first token.
        if let Some(p) = prefilling {
            if p.remaining_prompt == 0 {
                generated += 1;
                let a = Active {
                    id: p.req.id,
                    arrival_s: p.req.arrival_s,
                    context: p.req.prompt_len + 1,
                    remaining: p.req.gen_len - 1,
                    first_token_s: now,
                    dispatch_s: p.dispatch_s,
                    batch_at_dispatch: active.len() as u64 + 1,
                    decode_steps: 0,
                };
                // Single-token requests finish with their prefill (see
                // the iteration-level scheduler).
                if a.remaining == 0 {
                    outcomes.push(RequestOutcome {
                        id: a.id,
                        queue_delay_s: (a.first_token_s - a.arrival_s).max(0.0),
                        ttft_s: a.first_token_s - a.arrival_s,
                        e2e_s: now - a.arrival_s,
                    });
                    if sink.enabled() {
                        sink.record(span_of(&a, now));
                    }
                } else {
                    active.push(a);
                }
                prefilling = None;
            }
        }

        // Decode progress for everyone who was active this iteration.
        let mut still = Vec::with_capacity(active.len());
        for mut a in active.drain(..) {
            if a.first_token_s >= now {
                // Joined at the end of this iteration; decodes next time.
                still.push(a);
                continue;
            }
            if a.remaining > 0 {
                a.remaining -= 1;
                a.context += 1;
                a.decode_steps += 1;
                generated += 1;
            }
            if a.remaining == 0 {
                outcomes.push(RequestOutcome {
                    id: a.id,
                    queue_delay_s: (a.first_token_s - a.arrival_s).max(0.0),
                    ttft_s: a.first_token_s - a.arrival_s,
                    e2e_s: now - a.arrival_s,
                });
                if sink.enabled() {
                    sink.record(span_of(&a, now));
                }
            } else {
                still.push(a);
            }
        }
        active = still;
    }
    ServingReport {
        policy: SchedulingPolicy::ChunkedPrefill { chunk_tokens },
        outcomes,
        makespan_s: now,
        generated_tokens: generated,
        max_decode_stall_s: max_stall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu_backend::CpuBackend;
    use llmsim_model::families;

    fn requests(n: u64, gap: f64) -> Vec<ServingRequest> {
        (0..n)
            .map(|i| ServingRequest {
                id: i,
                arrival_s: i as f64 * gap,
                // Heterogeneous lengths: the regime where iteration-level
                // scheduling wins.
                prompt_len: 64 + 64 * (i % 3),
                gen_len: 8 + 24 * (i % 4),
            })
            .collect()
    }

    fn backend() -> CpuBackend {
        CpuBackend::paper_spr()
    }

    #[test]
    fn all_requests_complete_under_both_policies() {
        let model = families::opt_6_7b();
        let reqs = requests(12, 0.05);
        for policy in [SchedulingPolicy::Static, SchedulingPolicy::IterationLevel] {
            let cfg = ServingConfig {
                max_batch: 4,
                policy,
            };
            let rep = simulate(&backend(), &model, &cfg, &reqs);
            assert_eq!(rep.outcomes.len(), 12, "{policy}");
            let expected: u64 = reqs.iter().map(|r| r.gen_len).sum();
            assert_eq!(rep.generated_tokens, expected, "{policy}");
            assert!(rep
                .outcomes
                .iter()
                .all(|o| o.e2e_s >= o.ttft_s && o.ttft_s > 0.0));
        }
    }

    #[test]
    fn iteration_level_beats_static_on_heterogeneous_lengths() {
        // The Orca/vLLM claim (§VII-C): token-level admission avoids
        // padding to the batch's longest generation.
        let model = families::opt_6_7b();
        let reqs = requests(16, 0.02);
        let static_rep = simulate(
            &backend(),
            &model,
            &ServingConfig {
                max_batch: 4,
                policy: SchedulingPolicy::Static,
            },
            &reqs,
        );
        let orca_rep = simulate(
            &backend(),
            &model,
            &ServingConfig {
                max_batch: 4,
                policy: SchedulingPolicy::IterationLevel,
            },
            &reqs,
        );
        assert!(
            orca_rep.throughput() > static_rep.throughput(),
            "orca {} vs static {}",
            orca_rep.throughput(),
            static_rep.throughput()
        );
        assert!(orca_rep.makespan_s < static_rep.makespan_s);
    }

    #[test]
    fn percentiles_are_ordered() {
        let model = families::opt_1_3b();
        let rep = simulate(
            &backend(),
            &model,
            &ServingConfig {
                max_batch: 8,
                policy: SchedulingPolicy::IterationLevel,
            },
            &requests(20, 0.01),
        );
        let p50 = rep.e2e_percentile(50.0);
        let p99 = rep.e2e_percentile(99.0);
        assert!(p50 <= p99);
        assert!(rep.mean_ttft() > 0.0);
    }

    #[test]
    fn chunked_prefill_bounds_decode_stalls() {
        // The Sarathi-Serve claim: a long prompt arriving mid-decode stalls
        // running requests for a full prefill under plain iteration-level
        // scheduling, but only for one chunk under chunked prefill.
        let model = families::opt_6_7b();
        let reqs = vec![
            ServingRequest {
                id: 0,
                arrival_s: 0.0,
                prompt_len: 64,
                gen_len: 48,
            },
            ServingRequest {
                id: 1,
                arrival_s: 0.05,
                prompt_len: 2048,
                gen_len: 8,
            },
        ];
        let run = |policy| {
            simulate(
                &backend(),
                &model,
                &ServingConfig {
                    max_batch: 4,
                    policy,
                },
                &reqs,
            )
        };
        let plain = run(SchedulingPolicy::IterationLevel);
        let chunked = run(SchedulingPolicy::ChunkedPrefill { chunk_tokens: 128 });
        assert!(
            chunked.max_decode_stall_s < 0.5 * plain.max_decode_stall_s,
            "chunked {} vs plain {}",
            chunked.max_decode_stall_s,
            plain.max_decode_stall_s
        );
        // Both complete everything.
        assert_eq!(chunked.outcomes.len(), 2);
        assert_eq!(chunked.generated_tokens, plain.generated_tokens);
    }

    #[test]
    fn chunked_prefill_completes_heterogeneous_load() {
        let model = families::opt_1_3b();
        let reqs = requests(10, 0.03);
        let rep = simulate(
            &backend(),
            &model,
            &ServingConfig {
                max_batch: 4,
                policy: SchedulingPolicy::ChunkedPrefill { chunk_tokens: 64 },
            },
            &reqs,
        );
        assert_eq!(rep.outcomes.len(), 10);
        let expected: u64 = reqs.iter().map(|r| r.gen_len).sum();
        assert_eq!(rep.generated_tokens, expected);
        assert!(rep.max_decode_stall_s > 0.0);
    }

    #[test]
    #[should_panic(expected = "chunk size")]
    fn zero_chunk_panics() {
        let model = families::opt_1_3b();
        let reqs = requests(2, 0.1);
        let _ = simulate(
            &backend(),
            &model,
            &ServingConfig {
                max_batch: 2,
                policy: SchedulingPolicy::ChunkedPrefill { chunk_tokens: 0 },
            },
            &reqs,
        );
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_arrivals_panic() {
        let model = families::opt_1_3b();
        let reqs = vec![
            ServingRequest {
                id: 0,
                arrival_s: 1.0,
                prompt_len: 8,
                gen_len: 2,
            },
            ServingRequest {
                id: 1,
                arrival_s: 0.5,
                prompt_len: 8,
                gen_len: 2,
            },
        ];
        let _ = simulate(
            &backend(),
            &model,
            &ServingConfig {
                max_batch: 2,
                policy: SchedulingPolicy::Static,
            },
            &reqs,
        );
    }

    #[test]
    fn spans_reconcile_with_outcomes_across_policies() {
        let model = families::opt_6_7b();
        let reqs = requests(10, 0.03);
        for policy in [
            SchedulingPolicy::Static,
            SchedulingPolicy::IterationLevel,
            SchedulingPolicy::ChunkedPrefill { chunk_tokens: 64 },
        ] {
            let cfg = ServingConfig {
                max_batch: 4,
                policy,
            };
            let mut sink = crate::trace::VecSink::new();
            let traced = simulate_traced(&backend(), &model, &cfg, &reqs, &mut sink);
            // Tracing is observational: same report as the untraced run.
            assert_eq!(
                traced,
                simulate(&backend(), &model, &cfg, &reqs),
                "{policy}"
            );
            assert_eq!(sink.spans.len(), reqs.len(), "{policy}");
            for o in &traced.outcomes {
                let s = sink
                    .spans
                    .iter()
                    .find(|s| s.id == o.id)
                    .expect("every outcome has a span");
                assert!((s.ttft_s() - o.ttft_s).abs() < 1e-9, "{policy}");
                assert!((s.e2e_s() - o.e2e_s).abs() < 1e-9, "{policy}");
                let phase_sum = s.queue_delay_s + s.prefill_s() + s.decode_s;
                assert!(
                    (phase_sum - s.e2e_s()).abs() < 1e-9,
                    "{policy}: phases {phase_sum} != e2e {}",
                    s.e2e_s()
                );
                assert!(s.batch_at_dispatch >= 1 && s.batch_at_dispatch <= 4);
            }
        }
    }

    #[test]
    fn bigger_batch_cap_raises_throughput() {
        let model = families::opt_6_7b();
        let reqs = requests(24, 0.005);
        let tput = |cap| {
            simulate(
                &backend(),
                &model,
                &ServingConfig {
                    max_batch: cap,
                    policy: SchedulingPolicy::IterationLevel,
                },
                &reqs,
            )
            .throughput()
        };
        assert!(tput(8) > tput(1), "batching should help");
    }
}
