//! Byte-identity of degree-1 tensor parallelism.
//!
//! A `TensorParallel` group of one rank adds no collectives, shards
//! nothing, and must therefore be indistinguishable — to the last bit of
//! every float and the last byte of every string — from the plain backend
//! it wraps. Same contract (and same test pattern) as the KV-off and
//! fast-vs-legacy engine proptests in `llmsim-cluster`.

use llmsim_core::{Backend, CostModel, CpuBackend, GpuBackend, Request, TensorParallel};
use llmsim_model::families;
use proptest::prelude::*;

fn arb_request() -> impl Strategy<Value = Request> {
    (1u64..17, 16u64..1025, 1u64..65)
        .prop_map(|(batch, prompt_len, gen_len)| Request::new(batch, prompt_len, gen_len))
}

fn arb_model() -> impl Strategy<Value = llmsim_model::ModelConfig> {
    (0usize..4).prop_map(|i| match i {
        0 => families::opt_6_7b(),
        1 => families::opt_13b(),
        2 => families::llama2_7b(),
        _ => families::llama2_13b(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn tp1_cpu_run_is_byte_identical(req in arb_request(), m in arb_model()) {
        let plain = CpuBackend::paper_spr();
        let tp = TensorParallel::across_sockets(CpuBackend::paper_spr(), 1).unwrap();
        let a = plain.run(&m, &req).unwrap();
        let b = tp.run(&m, &req).unwrap();
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn tp1_cpu_cost_model_is_byte_identical(
        req in arb_request(),
        m in arb_model(),
        kv_len in 16u64..2049,
    ) {
        let plain = CpuBackend::paper_spr();
        let tp = TensorParallel::across_sockets(CpuBackend::paper_spr(), 1).unwrap();
        let p0 = plain.prefill_time(&m, req.batch, req.prompt_len);
        let p1 = tp.prefill_time(&m, req.batch, req.prompt_len);
        prop_assert_eq!(p0.as_f64().to_bits(), p1.as_f64().to_bits());
        let d0 = plain.decode_step_time(&m, req.batch, kv_len);
        let d1 = tp.decode_step_time(&m, req.batch, kv_len);
        prop_assert_eq!(d0.as_f64().to_bits(), d1.as_f64().to_bits());
        prop_assert_eq!(plain.weight_bytes(&m), tp.weight_bytes(&m));
        prop_assert_eq!(
            plain.weight_load_bandwidth().as_f64().to_bits(),
            tp.weight_load_bandwidth().as_f64().to_bits()
        );
        prop_assert_eq!(plain.holds_resident(&m), tp.holds_resident(&m));
        let models = [m.clone()];
        prop_assert_eq!(
            plain.kv_capacity_bytes(&models),
            tp.kv_capacity_bytes(&models)
        );
    }

    #[test]
    fn tp1_gpu_run_is_byte_identical(req in arb_request(), m in arb_model()) {
        let plain = GpuBackend::paper_a100();
        let tp = TensorParallel::across_gpus(GpuBackend::paper_a100(), 1).unwrap();
        let a = plain.run(&m, &req).unwrap();
        let b = tp.run(&m, &req).unwrap();
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}
