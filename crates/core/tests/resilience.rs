//! Resilience-layer integration tests: exact passthrough equivalence with
//! the plain serving simulator, byte-level determinism under a fixed seed,
//! and the terminal-state conservation invariants.

use llmsim_core::resilience::{
    simulate_resilient, AdmissionPolicy, DegradationPolicy, FaultModel, ResilienceConfig,
    RetryPolicy, SloPolicy, TerminalState,
};
use llmsim_core::serving::{self, SchedulingPolicy, ServingConfig, ServingRequest};
use llmsim_core::{CpuBackend, SimError};
use llmsim_model::families;
use proptest::prelude::*;

fn backend() -> CpuBackend {
    CpuBackend::paper_spr()
}

fn requests(n: u64, gap: f64) -> Vec<ServingRequest> {
    (0..n)
        .map(|i| ServingRequest {
            id: i,
            arrival_s: i as f64 * gap,
            prompt_len: 64 + 64 * (i % 3),
            gen_len: 8 + 24 * (i % 4),
        })
        .collect()
}

/// Workload shapes drawn by the property tests: up to 10 heterogeneous
/// requests with irregular arrivals.
fn arb_requests() -> impl Strategy<Value = Vec<ServingRequest>> {
    (1usize..10, 1u64..200, 1u64..40, 0u64..1000).prop_map(|(n, p0, g0, gap_ms)| {
        (0..n as u64)
            .map(|i| ServingRequest {
                id: i,
                arrival_s: i as f64 * gap_ms as f64 / 1000.0,
                prompt_len: p0 + 17 * (i % 5),
                gen_len: g0 + 7 * (i % 3),
            })
            .collect()
    })
}

fn policies() -> [SchedulingPolicy; 2] {
    [
        SchedulingPolicy::IterationLevel,
        SchedulingPolicy::ChunkedPrefill { chunk_tokens: 64 },
    ]
}

/// A stressed configuration exercising every resilience feature at once.
fn stressed_config(policy: SchedulingPolicy, seed: u64) -> ResilienceConfig {
    ResilienceConfig {
        serving: ServingConfig {
            max_batch: 4,
            policy,
        },
        faults: FaultModel::with_rates(seed, 0.05, 0.05),
        slo: SloPolicy::interactive(5.0, 60.0),
        admission: AdmissionPolicy::bounded(6),
        retry: RetryPolicy::standard(Some(16)),
        degradation: DegradationPolicy::PreemptAndRequeue,
    }
}

#[test]
fn passthrough_matches_plain_simulator_exactly() {
    // The acceptance bar: fault rate 0 + no deadlines reproduces the plain
    // simulator bit-for-bit, per request AND per aggregate.
    let model = families::opt_6_7b();
    let reqs = requests(14, 0.04);
    for policy in policies() {
        let serving_cfg = ServingConfig {
            max_batch: 4,
            policy,
        };
        let plain = serving::simulate(&backend(), &model, &serving_cfg, &reqs);
        let resilient = simulate_resilient(
            &backend(),
            &model,
            &ResilienceConfig::passthrough(serving_cfg, 1234),
            &reqs,
        )
        .expect("iteration-level policies are supported");

        assert_eq!(plain.outcomes.len(), resilient.outcomes.len(), "{policy}");
        for (p, r) in plain.outcomes.iter().zip(&resilient.outcomes) {
            assert_eq!(p.id, r.id, "{policy}: completion order must match");
            assert_eq!(r.state, TerminalState::Completed, "{policy}");
            assert_eq!(
                p.queue_delay_s.to_bits(),
                r.queue_delay_s.to_bits(),
                "{policy}"
            );
            assert_eq!(
                p.ttft_s.to_bits(),
                r.ttft_s.expect("completed").to_bits(),
                "{policy}"
            );
            assert_eq!(p.e2e_s.to_bits(), r.e2e_s.to_bits(), "{policy}");
        }
        assert_eq!(
            plain.makespan_s.to_bits(),
            resilient.makespan_s.to_bits(),
            "{policy}"
        );
        assert_eq!(
            plain.generated_tokens, resilient.generated_tokens,
            "{policy}"
        );
        assert_eq!(
            plain.max_decode_stall_s.to_bits(),
            resilient.max_decode_stall_s.to_bits(),
            "{policy}"
        );
        assert_eq!(resilient.faults_injected, 0, "{policy}");
        assert_eq!(resilient.retries, 0, "{policy}");
        assert_eq!(resilient.preemptions, 0, "{policy}");
    }
}

#[test]
fn static_policy_is_rejected() {
    let model = families::opt_1_3b();
    let cfg = ResilienceConfig::passthrough(
        ServingConfig {
            max_batch: 4,
            policy: SchedulingPolicy::Static,
        },
        1,
    );
    let err = simulate_resilient(&backend(), &model, &cfg, &requests(2, 0.1))
        .expect_err("static batching has no iteration boundaries");
    assert!(matches!(err, SimError::UnsupportedConfig(_)), "{err}");
}

#[test]
fn same_seed_is_byte_identical_different_seeds_diverge() {
    let model = families::opt_1_3b();
    let reqs = requests(16, 0.02);
    for policy in policies() {
        let run = |seed| {
            simulate_resilient(&backend(), &model, &stressed_config(policy, seed), &reqs)
                .expect("supported policy")
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a.outcomes.len(), b.outcomes.len(), "{policy}");
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(x.id, y.id, "{policy}");
            assert_eq!(x.state, y.state, "{policy}");
            assert_eq!(
                x.queue_delay_s.to_bits(),
                y.queue_delay_s.to_bits(),
                "{policy}"
            );
            assert_eq!(
                x.ttft_s.map(f64::to_bits),
                y.ttft_s.map(f64::to_bits),
                "{policy}"
            );
            assert_eq!(x.e2e_s.to_bits(), y.e2e_s.to_bits(), "{policy}");
            assert_eq!(
                (x.retries, x.preemptions),
                (y.retries, y.preemptions),
                "{policy}"
            );
        }
        assert_eq!(a.makespan_s.to_bits(), b.makespan_s.to_bits(), "{policy}");
        assert_eq!(a.faults_injected, b.faults_injected, "{policy}");

        // Different seeds must explore different fault patterns. Compare a
        // digest of the full outcome vector, not just counters.
        let digest = |r: &llmsim_core::ResilienceReport| {
            r.outcomes
                .iter()
                .map(|o| (o.id, format!("{:?}", o.state), o.e2e_s.to_bits()))
                .collect::<Vec<_>>()
        };
        let c = run(43);
        assert_ne!(digest(&a), digest(&c), "{policy}: seeds 42 and 43 collided");
    }
}

#[test]
fn faults_reduce_goodput_below_throughput() {
    let model = families::opt_1_3b();
    let reqs = requests(16, 0.02);
    let cfg = stressed_config(SchedulingPolicy::IterationLevel, 7);
    let rep = simulate_resilient(&backend(), &model, &cfg, &reqs).expect("supported");
    assert!(
        rep.faults_injected > 0,
        "stress seed must actually inject faults"
    );
    assert!(rep.goodput() <= rep.throughput());
    assert_eq!(
        rep.wasted_tokens(),
        rep.generated_tokens - rep.goodput_tokens
    );
    // Fleet percentiles are ordered whenever at least one request succeeds.
    if rep.n_success() > 0 {
        assert!(rep.e2e_percentile(50.0) <= rep.e2e_percentile(99.0));
        assert!(rep.ttft_percentile(50.0) <= rep.ttft_percentile(99.0));
    }
}

#[test]
fn deadline_cancellation_and_queue_shedding_trigger() {
    let model = families::opt_6_7b();
    // A thundering herd at t=0 against a tiny queue and tight deadlines.
    let reqs: Vec<ServingRequest> = (0..24)
        .map(|i| ServingRequest {
            id: i,
            arrival_s: 0.0,
            prompt_len: 256,
            gen_len: 48,
        })
        .collect();
    let cfg = ResilienceConfig {
        serving: ServingConfig {
            max_batch: 2,
            policy: SchedulingPolicy::IterationLevel,
        },
        faults: FaultModel::none(3),
        slo: SloPolicy::interactive(1.0, 8.0),
        admission: AdmissionPolicy::bounded(4),
        retry: RetryPolicy::disabled(),
        degradation: DegradationPolicy::PreemptAndRequeue,
    };
    let rep = simulate_resilient(&backend(), &model, &cfg, &reqs).expect("supported");
    assert!(
        rep.n_rejected() > 0,
        "a 4-deep queue cannot absorb 24 simultaneous arrivals"
    );
    assert!(rep.n_timed_out() > 0, "tight SLOs must cancel stragglers");
    assert!(rep.shed_rate() > 0.0 && rep.shed_rate() < 1.0);
    assert!(rep.slo_attainment(Some(1.0), Some(8.0)) < 1.0);
    // Every non-success maps onto an informative SimError.
    for o in rep.outcomes.iter().filter(|o| !o.state.is_success()) {
        let err = o.as_error(&cfg).expect("non-success maps to an error");
        assert!(!err.to_string().is_empty());
    }
}

#[test]
fn kv_budget_forces_preemptions_that_still_complete() {
    let model = families::opt_1_3b();
    let reqs = requests(8, 0.01);
    // Budget sized to hold roughly two of the four batch slots' contexts.
    let per_token = model.kv_bytes_per_token(backend().kv_dtype());
    let budget = llmsim_hw::Bytes::new(per_token * 600);
    let cfg = ResilienceConfig {
        serving: ServingConfig {
            max_batch: 4,
            policy: SchedulingPolicy::IterationLevel,
        },
        faults: FaultModel::none(11).with_kv_budget(budget),
        slo: SloPolicy::unlimited(),
        admission: AdmissionPolicy::unbounded(),
        retry: RetryPolicy::disabled(),
        degradation: DegradationPolicy::PreemptAndRequeue,
    };
    let rep = simulate_resilient(&backend(), &model, &cfg, &reqs).expect("supported");
    assert!(rep.preemptions > 0, "the budget must actually bite");
    let preempted_ok = rep
        .outcomes
        .iter()
        .filter(|o| o.state == TerminalState::PreemptedThenCompleted)
        .count();
    assert!(preempted_ok > 0, "preempted requests recover via recompute");
    // No faults and no deadlines: everything still completes.
    assert_eq!(rep.n_success(), reqs.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Conservation: every request reaches exactly one terminal state, no
    /// outcome has a negative queue delay or e2e, and successful requests
    /// deliver their full generation — under every policy combination.
    #[test]
    fn every_request_reaches_exactly_one_terminal_state(
        reqs in arb_requests(),
        seed in 0u64..1000,
        policy_ix in 0usize..2,
        degradation_ix in 0usize..2,
    ) {
        let model = families::opt_1_3b();
        let mut cfg = stressed_config(policies()[policy_ix], seed);
        cfg.degradation = if degradation_ix == 0 {
            DegradationPolicy::PreemptAndRequeue
        } else {
            DegradationPolicy::FailNewest
        };
        let rep = simulate_resilient(&backend(), &model, &cfg, &reqs)
            .expect("supported policy");

        prop_assert_eq!(rep.outcomes.len(), reqs.len());
        let mut seen: Vec<u64> = rep.outcomes.iter().map(|o| o.id).collect();
        seen.sort_unstable();
        let mut expected: Vec<u64> = reqs.iter().map(|r| r.id).collect();
        expected.sort_unstable();
        prop_assert_eq!(seen, expected);

        for o in &rep.outcomes {
            prop_assert!(o.queue_delay_s >= 0.0, "negative queue delay: {:?}", o);
            prop_assert!(o.e2e_s >= 0.0, "negative e2e: {:?}", o);
            if let Some(t) = o.ttft_s {
                prop_assert!(o.e2e_s >= t - 1e-12, "e2e below ttft: {:?}", o);
            }
            if o.state.is_success() {
                prop_assert!(o.ttft_s.is_some(), "success without a first token: {:?}", o);
            }
        }
        let goodput: u64 = rep
            .outcomes
            .iter()
            .filter(|o| o.state.is_success())
            .map(|o| reqs.iter().find(|r| r.id == o.id).expect("known id").gen_len)
            .sum();
        prop_assert_eq!(goodput, rep.goodput_tokens);
        prop_assert!(rep.makespan_s >= 0.0);
    }

    /// The zero-fault resilient scheduler reproduces the plain simulator on
    /// arbitrary workloads, not just the hand-picked ones.
    #[test]
    fn passthrough_equivalence_holds_on_arbitrary_workloads(
        reqs in arb_requests(),
        policy_ix in 0usize..2,
    ) {
        let model = families::opt_1_3b();
        let serving_cfg = ServingConfig { max_batch: 3, policy: policies()[policy_ix] };
        let plain = serving::simulate(&backend(), &model, &serving_cfg, &reqs);
        let resilient = simulate_resilient(
            &backend(),
            &model,
            &ResilienceConfig::passthrough(serving_cfg, 99),
            &reqs,
        )
        .expect("supported policy");
        prop_assert_eq!(plain.outcomes.len(), resilient.outcomes.len());
        for (p, r) in plain.outcomes.iter().zip(&resilient.outcomes) {
            prop_assert_eq!(p.id, r.id);
            prop_assert_eq!(p.ttft_s.to_bits(), r.ttft_s.expect("completed").to_bits());
            prop_assert_eq!(p.e2e_s.to_bits(), r.e2e_s.to_bits());
        }
        prop_assert_eq!(plain.makespan_s.to_bits(), resilient.makespan_s.to_bits());
        prop_assert_eq!(plain.generated_tokens, resilient.generated_tokens);
    }
}
