//! Known-good fixture: near-misses for every rule. Linted as if at
//! `crates/core/src/fixture.rs` (the strictest scope) and expected to
//! produce zero findings.

use std::collections::BTreeMap; // the deterministic sibling of "HashMap"
use std::time::Duration; // mentions of "Instant" in comments are fine

/// "HashMap", "thread_rng", "panic!" in strings must not trigger.
pub const DOC: &str = "HashMap thread_rng panic! .unwrap() Instant";

pub struct Timings {
    pub prefill_time_s: f64,
    pub decode_time_cycles: u64,
    pub bandwidth_bps: f64,
    pub latency_s: f64,
    pub time_scale: f64,
    pub timestamp: f64,
}

pub fn mean_gap_s(arrivals: &BTreeMap<u64, f64>, budget: Duration) -> f64 {
    let sum: f64 = arrivals.values().sum();
    let n = arrivals.len().max(1) as f64;
    (sum / n).min(budget.as_secs_f64())
}

pub fn pick(x: Option<u64>) -> u64 {
    // unwrap_or / expect_err lookalikes are not P001 violations.
    x.unwrap_or(0)
}

pub fn seeded_stream(seed: u64) -> u64 {
    // Seeded PRNG idiom: explicit u64 seed, no ambient entropy.
    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
