//! Known-bad fixture for U001: raw numeric quantities without unit
//! suffixes. Linted as if at `crates/hw/src/fixture.rs`.

pub struct LinkSpec {
    pub latency: f64,
    pub bandwidth: f64,
    pub setup_time: u64,
}

pub fn total_time(spec: &LinkSpec) -> f64 {
    let queue_time: f64 = 0.5;
    spec.latency + queue_time
}
