//! Known-bad fixture for D003: ambient entropy. Linted as if at
//! `crates/workload/src/fixture.rs`.

pub fn draws() -> (u64, u64, u64) {
    let mut rng = thread_rng();
    let a = rng.next_u64();
    let b: u64 = rand::random();
    let state = std::collections::hash_map::RandomState::new();
    let _ = state;
    (a, b, 0)
}
