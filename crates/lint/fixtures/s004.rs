//! Known-bad fixture for S004 (wildcard-arm drift). Linted as if it lived
//! in an engine crate. One finding expected: the `_ =>` arm over
//! `SimError`. The match over a `bool` is closed and must stay clean.

pub enum SimError {
    Timeout,
    Crash { code: u32 },
}

pub fn classify(err: &SimError) -> u8 {
    match err {
        SimError::Timeout => 1,
        SimError::Crash { .. } => 2,
        _ => 0,
    }
}

pub fn fine(flag: bool) -> u8 {
    match flag {
        true => 1,
        _ => 0,
    }
}
