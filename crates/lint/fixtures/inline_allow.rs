//! Fixture for inline suppression: each violation carries a
//! `lint:allow` directive with a written justification, so the file must
//! lint clean — while the same file with directives stripped must not.

use std::collections::HashMap; // lint:allow(D001): lookup-only map, never iterated; keys are unique u64 ids

pub struct Memo {
    // lint:allow(D001): lookup-only map, never iterated
    pub cache: HashMap<u64, f64>,
}

pub fn front(q: &mut std::collections::VecDeque<u64>) -> u64 {
    // lint:allow(P001): caller checked non-empty on the previous line
    q.pop_front().unwrap()
}
