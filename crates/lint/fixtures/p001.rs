//! Known-bad fixture for P001: panicking calls in non-test library code.
//! Linted as if at `crates/model/src/fixture.rs`.

pub fn lookup(xs: &[u64], name: Option<&str>) -> u64 {
    let first = xs.first().unwrap();
    let n = name.expect("name is present");
    if n.is_empty() {
        panic!("empty name");
    }
    *first
}
