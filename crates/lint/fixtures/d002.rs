//! Known-bad fixture for D002: wall-clock reads outside the bench
//! driver. Linted as if at `crates/cluster/src/fixture.rs`.

use std::time::Instant;

pub fn measure() -> f64 {
    let t0 = Instant::now();
    let epoch = std::time::SystemTime::now();
    let _ = epoch;
    t0.elapsed().as_secs_f64()
}
