//! Known-bad fixture for S003 (unordered float reductions). Linted as if
//! it lived in a sim-state crate. Three findings expected: a turbofished
//! float `.sum()`, a `.map(..).sum()` whose closure yields a float-unit
//! quantity, and a float-seeded `.fold()`. The annotated sum, the
//! order-insensitive max fold, and the integer sum must stay clean.

pub struct Sample {
    pub wait_s: f64,
}

pub fn bad_turbofish(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>()
}

pub fn bad_mapped(xs: &[Sample]) -> f64 {
    xs.iter().map(|sample| sample.wait_s).sum()
}

pub fn bad_fold(xs: &[f64]) -> f64 {
    xs.iter().fold(0.0, |acc, x| acc + x)
}

pub fn fine_annotated(xs: &[f64]) -> f64 {
    // lint:ordered: xs arrives pre-sorted by the caller
    xs.iter().sum::<f64>()
}

pub fn fine_max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::MIN, f64::max)
}

pub fn fine_int(xs: &[u64]) -> u64 {
    xs.iter().sum::<u64>()
}
