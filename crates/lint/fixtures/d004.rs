//! Known-bad fixture for D004: an ad-hoc float reduction inside a spawn
//! closure. Linted as if at `crates/isa/src/fixture.rs`.

pub fn fan_out(parts: &[f64]) -> f64 {
    let total = std::sync::Mutex::new(0.0f64);
    std::thread::scope(|s| {
        for p in parts {
            s.spawn(|| {
                // Completion-order accumulation: float addition is not
                // associative, so the result bits depend on scheduling.
                *total.lock().expect("lock") += *p;
            });
        }
    });
    total.into_inner().expect("lock")
}
