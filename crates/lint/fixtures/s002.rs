//! Known-bad fixture for S002 (unit-of-measure inference). Three findings
//! expected: seconds+milliseconds, bytes-vs-tokens comparison, and
//! hertz-minus-seconds. Like-unit arithmetic and division (which destroys
//! units by design) must stay clean.

pub fn mixed(start_s: f64, elapsed_ms: f64, cap_bytes: u64, used_tokens: u64) -> f64 {
    let deadline = start_s + elapsed_ms;
    let over = cap_bytes < used_tokens;
    if over {
        return 0.0;
    }
    deadline
}

pub fn also_mixed(rate_hz: f64, period_s: f64) -> f64 {
    rate_hz - period_s
}

pub fn fine(start_s: f64, step_s: f64, total_bytes: f64, window_s: f64) -> f64 {
    let end_s = start_s + step_s;
    end_s + total_bytes / window_s
}
