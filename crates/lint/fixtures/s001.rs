//! Known-bad fixture for S001 (counter coverage). Linted as if it lived
//! in a sim-state crate. Two findings expected:
//!   * `dropped` is zero-initialized but never folded in `merge_minis`
//!     (struct-literal keys are writes, not reads), and
//!   * `busy_s` is merged but never rendered.
//! `served` is covered on both paths and `label` is non-numeric, so
//! neither may be flagged.

pub struct MiniReport {
    pub served: u64,
    pub dropped: u64,
    pub busy_s: f64,
    pub label: String,
}

pub fn merge_minis(reports: Vec<MiniReport>) -> MiniReport {
    let mut merged = MiniReport {
        served: 0,
        dropped: 0,
        busy_s: 0.0,
        label: String::new(),
    };
    for r in reports {
        merged.served += r.served;
        merged.busy_s += r.busy_s;
    }
    merged
}

impl MiniReport {
    pub fn render(&self) -> String {
        format!("served={} dropped={}", self.served, self.dropped)
    }
}
