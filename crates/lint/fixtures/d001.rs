//! Known-bad fixture for D001: hash collections in a simulation-state
//! crate. Linted as if at `crates/core/src/fixture.rs`.

use std::collections::HashMap;
use std::collections::HashSet;

pub struct State {
    pub by_id: HashMap<u64, f64>,
    pub seen: HashSet<u64>,
}
