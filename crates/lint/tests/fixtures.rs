//! Rule self-tests against the known-bad fixture snippets, plus the two
//! meta-guarantees the CI gate relies on: the linter's own output is
//! byte-deterministic, and the workspace itself lints clean under the
//! checked-in allowlist.

use llmsim_lint::allowlist::Allowlist;
use llmsim_lint::findings::{to_tsv, Finding};
use llmsim_lint::source::SourceFile;
use llmsim_lint::walk::collect_workspace;
use llmsim_lint::{lint_file, lint_sources};
use std::path::Path;

/// Lints a fixture as if it lived at `path` in the workspace.
fn lint_fixture(path: &str, text: &str) -> Vec<Finding> {
    lint_file(&SourceFile::new(path, text))
}

fn count(findings: &[Finding], rule: &str) -> usize {
    findings.iter().filter(|f| f.rule == rule).count()
}

#[test]
fn d001_fixture_triggers() {
    let f = lint_fixture(
        "crates/core/src/fixture.rs",
        include_str!("../fixtures/d001.rs"),
    );
    assert_eq!(count(&f, "D001"), 4, "{f:?}"); // 2×HashMap + 2×HashSet
}

#[test]
fn d002_fixture_triggers() {
    let f = lint_fixture(
        "crates/cluster/src/fixture.rs",
        include_str!("../fixtures/d002.rs"),
    );
    assert_eq!(count(&f, "D002"), 3, "{f:?}");
    // The same text inside the bench driver is legal.
    let bench = lint_fixture(
        "crates/bench/src/fixture.rs",
        include_str!("../fixtures/d002.rs"),
    );
    assert_eq!(count(&bench, "D002"), 0);
}

#[test]
fn d003_fixture_triggers() {
    let f = lint_fixture(
        "crates/workload/src/fixture.rs",
        include_str!("../fixtures/d003.rs"),
    );
    assert_eq!(count(&f, "D003"), 3, "{f:?}"); // thread_rng, rand::random, RandomState
}

#[test]
fn d004_fixture_triggers() {
    let f = lint_fixture(
        "crates/isa/src/fixture.rs",
        include_str!("../fixtures/d004.rs"),
    );
    assert_eq!(count(&f, "D004"), 1, "{f:?}");
}

#[test]
fn p001_fixture_triggers() {
    let f = lint_fixture(
        "crates/model/src/fixture.rs",
        include_str!("../fixtures/p001.rs"),
    );
    assert_eq!(count(&f, "P001"), 3, "{f:?}"); // unwrap, expect, panic!
}

#[test]
fn u001_fixture_triggers() {
    let f = lint_fixture(
        "crates/hw/src/fixture.rs",
        include_str!("../fixtures/u001.rs"),
    );
    // latency, bandwidth, setup_time, queue_time fields/bindings + the
    // total_time fn return.
    assert_eq!(count(&f, "U001"), 5, "{f:?}");
}

#[test]
fn s001_fixture_triggers_exactly_on_uncovered_counters() {
    let text = include_str!("../fixtures/s001.rs");
    let report = lint_sources(
        [("crates/cluster/src/fixture.rs", text)],
        &Allowlist::default(),
    );
    let s001: Vec<&Finding> = report
        .findings
        .iter()
        .filter(|f| f.rule == "S001")
        .collect();
    assert_eq!(s001.len(), 2, "{s001:?}");
    let mut matched: Vec<&str> = s001.iter().map(|f| f.matched.as_str()).collect();
    matched.sort_unstable();
    assert_eq!(matched, vec!["busy_s", "dropped"]);
    assert!(
        s001.iter().any(|f| f.message.contains("merge path")),
        "{s001:?}"
    );
    assert!(
        s001.iter().any(|f| f.message.contains("render path")),
        "{s001:?}"
    );

    // Outside the sim-state crates the same source is not S001's business.
    let elsewhere = lint_sources(
        [("crates/lint/src/fixture.rs", text)],
        &Allowlist::default(),
    );
    assert_eq!(
        elsewhere
            .findings
            .iter()
            .filter(|f| f.rule == "S001")
            .count(),
        0
    );
}

#[test]
fn s002_fixture_triggers() {
    let f = lint_fixture(
        "crates/core/src/fixture.rs",
        include_str!("../fixtures/s002.rs"),
    );
    // s+ms add, bytes-vs-tokens compare, hz-minus-s.
    assert_eq!(count(&f, "S002"), 3, "{f:?}");
}

#[test]
fn s003_fixture_triggers() {
    let f = lint_fixture(
        "crates/core/src/fixture.rs",
        include_str!("../fixtures/s003.rs"),
    );
    // Turbofished float sum, mapped float sum, float-seeded fold. The
    // annotated sum, the max fold and the integer sum stay clean.
    assert_eq!(count(&f, "S003"), 3, "{f:?}");
}

#[test]
fn s004_fixture_triggers() {
    let f = lint_fixture(
        "crates/cluster/src/fixture.rs",
        include_str!("../fixtures/s004.rs"),
    );
    assert_eq!(count(&f, "S004"), 1, "{f:?}");
    // The same text outside the engine crates is out of scope.
    let elsewhere = lint_fixture(
        "crates/workload/src/fixture.rs",
        include_str!("../fixtures/s004.rs"),
    );
    assert_eq!(count(&elsewhere, "S004"), 0);
}

#[test]
fn clean_fixture_is_clean_in_the_strictest_scope() {
    let f = lint_fixture(
        "crates/core/src/fixture.rs",
        include_str!("../fixtures/clean.rs"),
    );
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn inline_allow_fixture_is_suppressed_not_clean() {
    let text = include_str!("../fixtures/inline_allow.rs");
    let report = lint_sources(
        [("crates/core/src/fixture.rs", text)],
        &Allowlist::default(),
    );
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert_eq!(report.suppressed.len(), 3, "{:?}", report.suppressed);

    // Stripping the directives must resurface every finding: the fixture
    // is bad code, the directives are what make it pass.
    let stripped: String = text
        .lines()
        .map(|l| match l.find("// lint:allow") {
            Some(at) => format!("{}\n", &l[..at]),
            None => format!("{l}\n"),
        })
        .collect::<Vec<_>>()
        .concat();
    let bare = lint_sources(
        [("crates/core/src/fixture.rs", stripped.as_str())],
        &Allowlist::default(),
    );
    assert_eq!(bare.findings.len(), 3, "{:?}", bare.findings);
}

fn repo_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root resolves")
}

/// The CI gate, duplicated as a test: the workspace must lint clean under
/// the checked-in allowlist, and no allowlist entry may be stale.
#[test]
fn workspace_is_clean_under_checked_in_allowlist() {
    let root = repo_root();
    let allow_text = std::fs::read_to_string(root.join("lint.allow")).expect("lint.allow exists");
    let allow = Allowlist::parse(&allow_text).expect("lint.allow parses");
    let files = collect_workspace(&root).expect("walk succeeds");
    let report = lint_sources(
        files.iter().map(|f| (f.rel_path.as_str(), f.text.as_str())),
        &allow,
    );
    assert!(
        report.findings.is_empty(),
        "non-allowlisted findings:\n{}",
        llmsim_lint::findings::to_text(&report.findings)
    );
    assert!(
        report.stale_allows.is_empty(),
        "stale allowlist entries: {:?}",
        report.stale_allows
    );
}

/// S001 findings over the real cluster sources, for the mutation tests.
fn s001_over(shard_text: &str, metrics_text: &str) -> Vec<Finding> {
    lint_sources(
        [
            ("crates/cluster/src/shard.rs", shard_text),
            ("crates/cluster/src/metrics.rs", metrics_text),
        ],
        &Allowlist::default(),
    )
    .findings
    .into_iter()
    .filter(|f| f.rule == "S001")
    .collect()
}

/// Drops every line containing `needle`, asserting at least one is hit.
fn delete_lines(text: &str, needle: &str) -> String {
    let out: String = text
        .lines()
        .filter(|l| !l.contains(needle))
        .map(|l| format!("{l}\n"))
        .collect();
    assert_ne!(
        out.len(),
        text.len(),
        "mutation {needle:?} must delete a line"
    );
    out
}

/// The acceptance check for S001, run against the *real* sources: delete
/// any one counter fold from `merge_reports` (or a counter read from
/// `render`) and the gate must fail with exactly that field named. This
/// is what makes counter coverage a regression test rather than a style
/// opinion — a future `FleetReport` field that never reaches the fold is
/// caught before it ships a zero.
#[test]
fn seeded_mutation_dropping_a_counter_from_merge_reports_fails_s001() {
    let root = repo_root();
    let shard = std::fs::read_to_string(root.join("crates/cluster/src/shard.rs"))
        .expect("shard.rs readable");
    let metrics = std::fs::read_to_string(root.join("crates/cluster/src/metrics.rs"))
        .expect("metrics.rs readable");

    assert!(
        s001_over(&shard, &metrics).is_empty(),
        "unmutated sources must be S001-clean"
    );

    let counters = [
        "generated_tokens",
        "goodput_tokens",
        "wasted_tokens",
        "retries",
        "hedges",
        "crashes",
        "prefix_hit_tokens",
        "preemptions",
        "scale_ups",
        "scale_downs",
        "events_processed",
        "peak_in_flight",
        "pipeline_groups",
        "pipeline_handoffs",
    ];
    for field in counters {
        let mutated = delete_lines(&shard, &format!("merged.{field} += report.{field};"));
        let f = s001_over(&mutated, &metrics);
        assert_eq!(f.len(), 1, "dropping {field} fold: {f:?}");
        assert_eq!(f[0].matched, field);
        assert!(f[0].message.contains("merge path"), "{}", f[0].message);
    }

    // makespan_s folds via `.max`, not `+=` — same contract.
    let mutated = delete_lines(&shard, "merged.makespan_s");
    let f = s001_over(&mutated, &metrics);
    assert_eq!(f.len(), 1, "dropping makespan fold: {f:?}");
    assert_eq!(f[0].matched, "makespan_s");

    // And the render path: un-rendering a counter is flagged too.
    let mutated_metrics = delete_lines(&metrics, "self.events_processed,");
    let f = s001_over(&shard, &mutated_metrics);
    assert_eq!(f.len(), 1, "un-rendering events_processed: {f:?}");
    assert_eq!(f[0].matched, "events_processed");
    assert!(f[0].message.contains("render path"), "{}", f[0].message);
}

/// Findings output must be byte-identical across runs (and across file
/// discovery order — `lint_sources` re-sorts internally).
#[test]
fn findings_are_byte_deterministic() {
    let root = repo_root();
    let files = collect_workspace(&root).expect("walk succeeds");
    let allow = Allowlist::default();
    let forward = lint_sources(
        files.iter().map(|f| (f.rel_path.as_str(), f.text.as_str())),
        &allow,
    );
    let reversed = lint_sources(
        files
            .iter()
            .rev()
            .map(|f| (f.rel_path.as_str(), f.text.as_str())),
        &allow,
    );
    assert_eq!(to_tsv(&forward.findings), to_tsv(&reversed.findings));
    assert!(to_tsv(&forward.findings).starts_with("rule\tpath\tline\tcol\tmatch\tmessage\n"));
}
