//! The parser's survival contract: it must terminate without panicking on
//! *anything* — arbitrary printable bytes, mid-token truncations of real
//! workspace sources, and unbalanced delimiter soup. A linter that
//! crashes on the code it gates is worse than no linter: it turns every
//! unrelated syntax experiment into a CI failure.

use llmsim_lint::lint_file;
use llmsim_lint::source::SourceFile;
use llmsim_lint::walk::collect_workspace;
use proptest::prelude::*;
use std::path::Path;

fn lint_text(text: &str) {
    // Tokenize + parse + every rule, exactly as the gate would.
    let file = SourceFile::new("crates/core/src/fuzz.rs", text);
    let _ = lint_file(&file);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parser_never_panics_on_arbitrary_source(src in "[ -~\n]{0,400}") {
        lint_text(&src);
    }

    // The vendored strategy's char class cannot contain `]`; unbalanced
    // closers are still exercised by the arbitrary-source test above.
    #[test]
    fn parser_never_panics_on_delimiter_soup(src in "[[(){}<>,;:=.|&+*/ \n_-]{0,300}") {
        lint_text(&src);
    }
}

/// Every real workspace file, cut at arbitrary char boundaries: truncated
/// input (half an expression, an unclosed brace, a dangling `match`) must
/// still parse to *something* without panicking.
#[test]
fn parser_survives_truncated_real_sources() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root resolves");
    let files = collect_workspace(&root).expect("walk succeeds");
    assert!(!files.is_empty());
    for f in &files {
        let n = f.text.len();
        for cut in [n / 7, n / 3, n / 2, (n * 5) / 7, n.saturating_sub(1), n] {
            let mut c = cut.min(n);
            while c > 0 && !f.text.is_char_boundary(c) {
                c -= 1;
            }
            let file = SourceFile::new(&f.rel_path, &f.text[..c]);
            let _ = lint_file(&file);
        }
    }
}
