//! P001 — no `unwrap()`/`expect()`/`panic!` in non-test library code.
//!
//! Library code returns `SimError` (or a module error type); panicking is
//! reserved for documented constructor contracts and invariants that are
//! provably unreachable — and each of those must carry its argument in
//! the allowlist or an inline `lint:allow(P001)` with a reason. Tests,
//! examples, benches and binary entry points are exempt: a test *should*
//! fail loudly, and a CLI's last resort is a message to the user.

use super::{finding_at, Rule, DRIVER_CRATE};
use crate::findings::Finding;
use crate::source::SourceFile;
use crate::tokenizer::TokenKind;

/// Rule instance.
pub struct P001;

impl Rule for P001 {
    fn id(&self) -> &'static str {
        "P001"
    }

    fn title(&self) -> &'static str {
        "no unwrap()/expect()/panic! in non-test library code"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if file.crate_name == DRIVER_CRATE || file.is_bin {
            return;
        }
        let toks = &file.tokens;
        for (ix, tok) in toks.iter().enumerate() {
            if tok.kind != TokenKind::Ident || file.in_test(ix) {
                continue;
            }
            match tok.text.as_str() {
                "unwrap" | "expect" => {
                    let method_call = ix > 0
                        && toks[ix - 1].text == "."
                        && toks.get(ix + 1).is_some_and(|t| t.text == "(");
                    if method_call {
                        out.push(finding_at(
                            self.id(),
                            file,
                            tok,
                            format!(
                                ".{}() panics at runtime; return a SimError/module error, or allowlist with the invariant argument",
                                tok.text
                            ),
                        ));
                    }
                }
                "panic" if toks.get(ix + 1).is_some_and(|t| t.text == "!") => {
                    out.push(finding_at(
                        self.id(),
                        file,
                        tok,
                        "panic! in library code; return a SimError/module error, or allowlist with the documented-contract argument".to_string(),
                    ));
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        P001.check(&SourceFile::new(path, src), &mut out);
        out
    }

    const BAD: &str = "
        pub fn f(x: Option<u32>) -> u32 {
            let a = x.unwrap();
            let b = x.expect(\"present\");
            if a + b == 0 { panic!(\"zero\"); }
            a
        }
    ";

    #[test]
    fn flags_all_three_forms_in_lib_code() {
        let out = run("crates/core/src/x.rs", BAD);
        let matched: Vec<&str> = out.iter().map(|f| f.matched.as_str()).collect();
        assert_eq!(matched, vec!["unwrap", "expect", "panic"]);
    }

    #[test]
    fn tests_bins_and_bench_are_exempt() {
        let in_test = format!("#[cfg(test)]\nmod tests {{ {BAD} }}");
        assert!(run("crates/core/src/x.rs", &in_test).is_empty());
        assert!(run("src/main.rs", BAD).is_empty());
        assert!(run("crates/bench/src/experiments/fig.rs", BAD).is_empty());
        assert!(run("crates/core/src/bin/tool.rs", BAD).is_empty());
    }

    #[test]
    fn lookalikes_do_not_trigger() {
        let src = "
            pub fn f(x: Option<u32>) -> u32 {
                let a = x.unwrap_or(0);
                let b = x.unwrap_or_else(|| 1);
                let c = r.expect_err(\"must fail\");
                a + b + c.min(unwrap_helper())
            }
            fn unwrap_helper() -> u32 { 0 }
        ";
        assert!(run("crates/core/src/x.rs", src).is_empty());
    }
}
