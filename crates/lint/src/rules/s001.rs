//! S001 — counter coverage: every numeric field of a report/metrics
//! struct must be *read* on its merge and render paths.
//!
//! The bug class this catches mechanically was found by hand twice:
//! a counter added to `FleetReport` but forgotten in `merge_reports`
//! silently reports zero for sharded runs, and one forgotten in
//! `render` is invisible to operators. The rule works on the parse
//! tree, not tokens, so a struct-literal initializer key
//! (`FleetReport { retries: 0, … }`) does **not** count as coverage —
//! only a field-access read (`report.retries`) does. Reads are chased
//! transitively through same-crate helper calls, so `render` referencing
//! `generated_tokens` via `self.throughput_tok_s()` counts.
//!
//! Scope: structs named `*Report` / `*Stats` with numeric fields, in
//! sim-state crates. A struct is checked against a path only if the
//! crate actually has such a path for it — a merge path is any non-test
//! fn whose name contains `merge` and whose signature or impl type
//! mentions the struct; a render path is any fn named `render` likewise.
//! Structs embedded in another tracked struct (e.g. `ReplicaStats`
//! inside `FleetReport`) inherit the container's paths: a wholesale
//! read of the container field (`merged.replicas.extend(…)`) covers
//! their merge, but render must still read each field individually.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use super::{WorkspaceRule, SIM_STATE_CRATES};
use crate::findings::Finding;
use crate::parser::Expr;
use crate::source::SourceFile;

/// Rule instance.
pub struct S001;

/// Exact primitive numeric types a tracked counter may have.
const NUMERIC: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

/// One non-test function, digested for reachability analysis.
struct FnInfo {
    /// Function name.
    name: String,
    /// Words that "mention" a type: signature tokens plus the impl type.
    mentions: BTreeSet<String>,
    /// Every identifier the body references (callees for the BFS).
    idents: BTreeSet<String>,
    /// Field names the body *reads* (`x.field`; struct-literal keys are
    /// deliberately absent).
    field_reads: BTreeSet<String>,
}

/// One tracked struct.
struct Target {
    /// Struct name.
    name: String,
    /// File it is defined in (index into the crate's file list).
    file_ix: usize,
    /// Numeric fields: (name, line, col).
    numeric_fields: Vec<(String, u32, u32)>,
    /// All field (name, type) pairs — for containment detection.
    all_fields: Vec<(String, String)>,
}

/// Digests every non-test fn of `file` into `fns`.
fn collect_fns(file: &SourceFile, fns: &mut Vec<FnInfo>) {
    file.tree.for_each_fn(&mut |f, self_ty| {
        if file.in_test(f.tok_ix) {
            return;
        }
        let mut mentions: BTreeSet<String> = f.sig.split_whitespace().map(str::to_string).collect();
        if let Some(ty) = self_ty {
            mentions.insert(ty.to_string());
        }
        let mut idents = BTreeSet::new();
        let mut field_reads = BTreeSet::new();
        for stmt in &f.body {
            stmt.walk(&mut |e| match e {
                Expr::Ident { name, .. } => {
                    idents.insert(name.clone());
                }
                Expr::Path { segs, .. } => {
                    idents.extend(segs.iter().cloned());
                }
                Expr::Method { name, .. } => {
                    idents.insert(name.clone());
                }
                Expr::Field { name, .. } => {
                    field_reads.insert(name.clone());
                }
                _ => {}
            });
        }
        fns.push(FnInfo {
            name: f.name.clone(),
            mentions,
            idents,
            field_reads,
        });
    });
}

/// Field reads reachable from `roots` through same-crate calls.
fn reachable_reads(
    fns: &[FnInfo],
    by_name: &BTreeMap<&str, Vec<usize>>,
    roots: &[usize],
) -> BTreeSet<String> {
    let mut seen: BTreeSet<usize> = roots.iter().copied().collect();
    let mut queue: VecDeque<usize> = roots.iter().copied().collect();
    let mut reads = BTreeSet::new();
    while let Some(ix) = queue.pop_front() {
        reads.extend(fns[ix].field_reads.iter().cloned());
        for id in &fns[ix].idents {
            if let Some(callees) = by_name.get(id.as_str()) {
                for &c in callees {
                    if seen.insert(c) {
                        queue.push_back(c);
                    }
                }
            }
        }
    }
    reads
}

/// Sorted, comma-joined fn names — deterministic no matter the file
/// iteration order.
fn name_list(fns: &[FnInfo], ixs: &[usize]) -> String {
    let mut names: Vec<&str> = ixs.iter().map(|&i| fns[i].name.as_str()).collect();
    names.sort_unstable();
    names.dedup();
    names.join(", ")
}

impl WorkspaceRule for S001 {
    fn id(&self) -> &'static str {
        "S001"
    }

    fn title(&self) -> &'static str {
        "every numeric report/stats field must be read on its merge and render paths"
    }

    fn check_workspace(&self, files: &[SourceFile], out: &mut Vec<Finding>) {
        // Group file indexes by crate; only sim-state crates are tracked.
        let mut crates: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (ix, f) in files.iter().enumerate() {
            if SIM_STATE_CRATES.contains(&f.crate_name.as_str()) {
                crates.entry(&f.crate_name).or_default().push(ix);
            }
        }

        for file_ixs in crates.values() {
            // -- index: every non-test fn in the crate, by name ----------
            let mut fns: Vec<FnInfo> = Vec::new();
            for &fix in file_ixs {
                collect_fns(&files[fix], &mut fns);
            }
            let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
            for (i, f) in fns.iter().enumerate() {
                by_name.entry(f.name.as_str()).or_default().push(i);
            }

            // -- targets: *Report / *Stats structs with numeric fields ---
            let mut targets: Vec<Target> = Vec::new();
            for &fix in file_ixs {
                let file = &files[fix];
                file.tree.for_each_struct(&mut |s| {
                    if !(s.name.ends_with("Report") || s.name.ends_with("Stats"))
                        || file.in_test(s.tok_ix)
                    {
                        return;
                    }
                    let numeric_fields: Vec<(String, u32, u32)> = s
                        .fields
                        .iter()
                        .filter(|f| NUMERIC.contains(&f.ty.as_str()))
                        .map(|f| (f.name.clone(), f.line, f.col))
                        .collect();
                    if numeric_fields.is_empty() {
                        return;
                    }
                    targets.push(Target {
                        name: s.name.clone(),
                        file_ix: fix,
                        numeric_fields,
                        all_fields: s
                            .fields
                            .iter()
                            .map(|f| (f.name.clone(), f.ty.clone()))
                            .collect(),
                    });
                });
            }

            // -- per-target paths ----------------------------------------
            let merge_fns_of = |name: &str| -> Vec<usize> {
                fns.iter()
                    .enumerate()
                    .filter(|(_, f)| f.name.contains("merge") && f.mentions.contains(name))
                    .map(|(i, _)| i)
                    .collect()
            };
            let render_fns_of = |name: &str| -> Vec<usize> {
                fns.iter()
                    .enumerate()
                    .filter(|(_, f)| f.name == "render" && f.mentions.contains(name))
                    .map(|(i, _)| i)
                    .collect()
            };

            for target in &targets {
                let own_merge = merge_fns_of(&target.name);
                let own_render = render_fns_of(&target.name);

                // Containers embedding this target (field whose type
                // mentions the target name), with their own paths.
                struct Container {
                    field: String,
                    merge: Vec<usize>,
                    render: Vec<usize>,
                }
                let containers: Vec<Container> = targets
                    .iter()
                    .filter(|c| !std::ptr::eq(*c, target))
                    .flat_map(|c| {
                        c.all_fields
                            .iter()
                            .filter(|(_, ty)| ty.split_whitespace().any(|w| w == target.name))
                            .map(|(fname, _)| Container {
                                field: fname.clone(),
                                merge: merge_fns_of(&c.name),
                                render: render_fns_of(&c.name),
                            })
                            .collect::<Vec<_>>()
                    })
                    .collect();

                // Effective path roots.
                let mut merge_roots = own_merge.clone();
                let mut render_roots = own_render.clone();
                for c in &containers {
                    merge_roots.extend(&c.merge);
                    render_roots.extend(&c.render);
                }
                merge_roots.sort_unstable();
                merge_roots.dedup();
                render_roots.sort_unstable();
                render_roots.dedup();

                let merge_reads = reachable_reads(&fns, &by_name, &merge_roots);
                let render_reads = reachable_reads(&fns, &by_name, &render_roots);
                // A wholesale read of the container field on the merge
                // path (`merged.replicas.extend(…)`) conserves every
                // embedded counter at once.
                let merged_wholesale = containers
                    .iter()
                    .any(|c| !c.merge.is_empty() && merge_reads.contains(&c.field));

                let file = &files[target.file_ix];
                for (fname, line, col) in &target.numeric_fields {
                    if !merge_roots.is_empty() && !merged_wholesale && !merge_reads.contains(fname)
                    {
                        out.push(Finding {
                            rule: self.id(),
                            path: file.path.clone(),
                            line: *line,
                            col: *col,
                            matched: fname.clone(),
                            message: format!(
                                "numeric field `{}` of `{}` is never read on its merge path ({}) — a counter dropped from the fold reports zero for sharded runs",
                                fname,
                                target.name,
                                name_list(&fns, &merge_roots),
                            ),
                        });
                    }
                    if !render_roots.is_empty() && !render_reads.contains(fname) {
                        out.push(Finding {
                            rule: self.id(),
                            path: file.path.clone(),
                            line: *line,
                            col: *col,
                            matched: fname.clone(),
                            message: format!(
                                "numeric field `{}` of `{}` is never read on its render path ({}) — an unrendered counter is invisible to operators",
                                fname,
                                target.name,
                                name_list(&fns, &render_roots),
                            ),
                        });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(sources: &[(&str, &str)]) -> Vec<Finding> {
        let files: Vec<SourceFile> = sources.iter().map(|(p, s)| SourceFile::new(p, s)).collect();
        let mut out = Vec::new();
        S001.check_workspace(&files, &mut out);
        out
    }

    const MINI: &str = "
        pub struct MiniReport {
            pub label: String,
            pub a_tokens: u64,
            pub b_tokens: u64,
        }
        pub fn merge_minis(reports: &[MiniReport]) -> MiniReport {
            let mut m = MiniReport { label: String::new(), a_tokens: 0, b_tokens: 0 };
            for r in reports {
                m.a_tokens += r.a_tokens;
            }
            m
        }
        impl MiniReport {
            pub fn render(&self) -> String {
                format!(\"{} {}\", self.a_tokens, self.b_tokens)
            }
        }
    ";

    #[test]
    fn missed_merge_field_is_flagged_and_literal_keys_do_not_count() {
        let out = run(&[("crates/cluster/src/mini.rs", MINI)]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].matched, "b_tokens");
        assert!(out[0].message.contains("merge path (merge_minis)"));
    }

    #[test]
    fn missed_render_field_is_flagged() {
        let src = MINI.replace(", self.b_tokens", "");
        let src = src.replace("{} {}", "{}");
        let out = run(&[("crates/cluster/src/mini.rs", &src)]);
        let rendered: Vec<&Finding> = out
            .iter()
            .filter(|f| f.message.contains("render path"))
            .collect();
        assert_eq!(rendered.len(), 1, "{out:?}");
        assert_eq!(rendered[0].matched, "b_tokens");
    }

    #[test]
    fn transitive_reads_through_helpers_count() {
        let src = "
            pub struct SumReport { pub total_tokens: u64 }
            fn tally(r: &SumReport) -> u64 { r.total_tokens }
            pub fn merge_sums(rs: &[SumReport]) -> u64 {
                rs.iter().map(tally).sum()
            }
        ";
        assert!(run(&[("crates/cluster/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn embedded_structs_inherit_container_paths() {
        let src = "
            pub struct InnerStats { pub hits: u64, pub misses: u64 }
            pub struct OuterReport { pub total: u64, pub inners: Vec<InnerStats> }
            pub fn merge_outers(rs: Vec<OuterReport>) -> OuterReport {
                let mut m = OuterReport { total: 0, inners: Vec::new() };
                for r in rs {
                    m.total += r.total;
                    m.inners.extend(r.inners);
                }
                m
            }
            impl OuterReport {
                pub fn render(&self) -> String {
                    let mut s = format!(\"total={}\", self.total);
                    for i in &self.inners {
                        s += &format!(\" {}:{}\", i.hits, i.misses);
                    }
                    s
                }
            }
        ";
        assert!(
            run(&[("crates/cluster/src/x.rs", src)]).is_empty(),
            "wholesale extend covers embedded merge; per-field render covers render"
        );

        // Drop `i.misses` from render: only the render finding appears
        // (merge stays covered by the wholesale `.inners` read).
        let broken = src.replace(" {}:{}\", i.hits, i.misses", " {}\", i.hits");
        let out = run(&[("crates/cluster/src/x.rs", &broken)]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].matched, "misses");
        assert!(out[0].message.contains("render path"));
    }

    #[test]
    fn structs_without_merge_or_render_paths_are_skipped() {
        let src = "pub struct LooseStats { pub count: u64 }";
        assert!(run(&[("crates/core/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn non_sim_state_crates_and_test_code_are_skipped() {
        assert!(run(&[("crates/bench/src/x.rs", MINI)]).is_empty());
        let test_wrapped = format!("#[cfg(test)]\nmod tests {{ {MINI} }}");
        assert!(run(&[("crates/cluster/src/x.rs", &test_wrapped)]).is_empty());
    }

    #[test]
    fn paths_split_across_files_still_resolve() {
        let metrics = "
            pub struct TwoFileReport { pub events: u64 }
            impl TwoFileReport {
                pub fn render(&self) -> String { format!(\"{}\", self.events) }
            }
        ";
        let shard = "
            use crate::metrics::TwoFileReport;
            pub fn merge_reports(rs: Vec<TwoFileReport>) -> TwoFileReport {
                let mut m = TwoFileReport { events: 0 };
                for r in rs { m.events += r.events; }
                m
            }
        ";
        let clean = run(&[
            ("crates/cluster/src/metrics.rs", metrics),
            ("crates/cluster/src/shard.rs", shard),
        ]);
        assert!(clean.is_empty(), "{clean:?}");

        // Delete the merge line: the gate must fail, whichever file
        // order the sources arrive in.
        let broken = shard.replace(
            "for r in rs { m.events += r.events; }",
            "for r in rs { let _ = r; }",
        );
        for flip in [false, true] {
            let mut srcs = vec![
                ("crates/cluster/src/metrics.rs", metrics),
                ("crates/cluster/src/shard.rs", broken.as_str()),
            ];
            if flip {
                srcs.reverse();
            }
            let out = run(&srcs);
            assert_eq!(out.len(), 1, "{out:?}");
            assert_eq!(out[0].matched, "events");
        }
    }
}
