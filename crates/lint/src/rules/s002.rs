//! S002 — no mixed-unit arithmetic or comparison.
//!
//! The paper's §III memory arithmetic and §IV counter models only hold if
//! seconds stay seconds and bytes stay bytes. This rule infers units from
//! the workspace's suffix convention (`_s`, `_bytes`, `_tokens`, `_hz`,
//! …; see [`super::units`]) and flags any `+`, `-`, or comparison whose
//! operands carry *different* units — adding a millisecond field to a
//! second field, or comparing token counts against byte counts, is a
//! silent factor-of-N accounting bug. Multiplication and division are
//! exempt (they legitimately change dimension), as is arithmetic where
//! either side's unit is unknown.

use super::Rule;
use crate::findings::Finding;
use crate::parser::Expr;
use crate::rules::units::unit_of;
use crate::source::SourceFile;

/// Operators that require like units on both sides.
const UNIT_STRICT_OPS: &[&str] = &["+", "-", "<", "<=", ">", ">=", "==", "!="];

/// Rule instance.
pub struct S002;

impl Rule for S002 {
    fn id(&self) -> &'static str {
        "S002"
    }

    fn title(&self) -> &'static str {
        "no mixed-unit arithmetic: +/-/comparisons need like suffix units"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        file.tree.for_each_fn(&mut |f, _| {
            for stmt in &f.body {
                stmt.walk(&mut |e| {
                    let Expr::Binary {
                        op,
                        lhs,
                        rhs,
                        line,
                        col,
                    } = e
                    else {
                        return;
                    };
                    if !UNIT_STRICT_OPS.contains(&op.as_str()) || file.line_in_test(*line) {
                        return;
                    }
                    let (Some(lu), Some(ru)) = (unit_of(lhs), unit_of(rhs)) else {
                        return;
                    };
                    if lu != ru {
                        out.push(Finding {
                            rule: self.id(),
                            path: file.path.clone(),
                            line: *line,
                            col: *col,
                            matched: op.clone(),
                            message: format!(
                                "mixed-unit `{op}`: left operand carries unit `{lu}`, right carries `{ru}` — convert one side explicitly or rename the identifier if the suffix is wrong"
                            ),
                        });
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        S002.check(&SourceFile::new(path, src), &mut out);
        out
    }

    #[test]
    fn flags_mixed_addition_and_comparison() {
        let src = "
            fn bad(warm_s: f64, cold_ms: f64, sent_bytes: u64, got_tokens: u64) -> bool {
                let total = warm_s + cold_ms;
                total > 0.0 && sent_bytes < got_tokens
            }
        ";
        let out = run("crates/core/src/x.rs", src);
        assert_eq!(out.len(), 2, "{out:?}");
        assert_eq!(out[0].matched, "+");
        assert!(out[0].message.contains("`s`") && out[0].message.contains("`ms`"));
        assert_eq!(out[1].matched, "<");
    }

    #[test]
    fn like_units_and_unknown_units_pass() {
        let src = "
            fn good(ttft_s: f64, tpot_s: f64, n: u64, makespan_s: f64) -> f64 {
                let per_req_s = ttft_s + tpot_s * n as f64;
                if per_req_s > makespan_s { per_req_s } else { makespan_s }
            }
        ";
        assert!(run("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn division_changes_dimension_legitimately() {
        let src = "fn rate(done_tokens: u64, busy_s: f64) -> f64 { done_tokens as f64 / busy_s }";
        assert!(run("crates/cluster/src/x.rs", src).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { let x = warm_s + cold_ms; }
            }
        ";
        assert!(run("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn bare_single_segment_names_carry_no_unit() {
        // `s` (a scope handle) and `ms` alone must not be read as units.
        let src = "fn f(s: u64, ms: u64) -> u64 { s + ms }";
        assert!(run("crates/core/src/x.rs", src).is_empty());
    }
}
