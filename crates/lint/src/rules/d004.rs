//! D004 — no ad-hoc compound-assign reductions inside spawn closures in
//! the threaded crates (`isa`, `cluster`).
//!
//! The multi-core GEMM fan-out in `isa::parallel` and the sharded replay
//! in `cluster::shard` are bit-deterministic because workers only write
//! disjoint state and per-worker results merge *after* the join, in
//! worker order (`sum_stats`, `merged_stats`, `merge_reports`). A `+=`
//! on shared state inside a spawned closure reintroduces completion-order
//! dependence — float addition is not associative, so even a
//! mutex-protected accumulation changes bits run to run. Accumulate per
//! worker, merge deterministically after joining.

use super::{finding_at, Rule};
use crate::findings::Finding;
use crate::source::SourceFile;

/// Compound assignments that perform a reduction.
const REDUCTIONS: &[&str] = &["+=", "-=", "*="];

/// Rule instance.
pub struct D004;

impl Rule for D004 {
    fn id(&self) -> &'static str {
        "D004"
    }

    fn title(&self) -> &'static str {
        "no ad-hoc += reductions inside isa/cluster spawn closures (merge after join)"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if !matches!(file.crate_name.as_str(), "isa" | "cluster") {
            return;
        }
        let toks = &file.tokens;
        let mut i = 0usize;
        while i < toks.len() {
            let is_spawn_call =
                toks[i].text == "spawn" && toks.get(i + 1).is_some_and(|t| t.text == "(");
            if !is_spawn_call || file.in_test(i) {
                i += 1;
                continue;
            }
            // Walk the spawn(...) argument list to its closing paren.
            let mut depth = 0i32;
            let mut j = i + 1;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    op if REDUCTIONS.contains(&op) => {
                        out.push(finding_at(
                            self.id(),
                            file,
                            &toks[j],
                            format!(
                                "`{op}` inside a spawn closure accumulates in completion order; collect per-worker results and merge deterministically after the join (sum_stats / merged_stats / merge_reports)"
                            ),
                        ));
                    }
                    _ => {}
                }
                j += 1;
            }
            i = j + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        D004.check(&SourceFile::new(path, src), &mut out);
        out
    }

    const BAD: &str = "
        fn fan_out(total: &std::sync::Mutex<f64>) {
            std::thread::scope(|s| {
                s.spawn(|| {
                    let part = work();
                    *total.lock().unwrap() += part;
                });
            });
        }
    ";

    #[test]
    fn flags_reduction_inside_spawn_closure() {
        let out = run("crates/isa/src/parallel.rs", BAD);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].matched, "+=");
        assert!(out[0].message.contains("merge deterministically"));
    }

    #[test]
    fn cluster_scoped_threads_are_in_scope() {
        let out = run("crates/cluster/src/shard.rs", BAD);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].matched, "+=");
    }

    #[test]
    fn unthreaded_crates_are_out_of_scope() {
        assert!(run("crates/core/src/x.rs", BAD).is_empty());
        assert!(run("crates/workload/src/x.rs", BAD).is_empty());
    }

    #[test]
    fn accumulation_outside_spawn_is_fine() {
        let src = "
            fn serial() -> f64 {
                let mut acc = 0.0;
                for x in results() { acc += x; }
                acc
            }
        ";
        assert!(run("crates/isa/src/parallel.rs", src).is_empty());
    }

    #[test]
    fn per_worker_local_state_merged_after_join_is_the_blessed_shape() {
        let src = "
            fn good() {
                let units = std::thread::scope(|s| {
                    let h = s.spawn(|| run_band());
                    h.join()
                });
                let merged = sum_stats(&units);
            }
        ";
        assert!(run("crates/isa/src/parallel.rs", src).is_empty());
    }
}
