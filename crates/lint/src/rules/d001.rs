//! D001 — no `HashMap`/`HashSet` in simulation-state crates.
//!
//! `std::collections::HashMap` seeds its hasher from process-random
//! `RandomState`: iteration order differs run to run, so any `HashMap`
//! that is ever iterated (directly, via `Debug`, or by draining) in a
//! crate that holds simulation state is a latent reproducibility bug.
//! `BTreeMap`/`BTreeSet` give deterministic order at the same API shape.
//! A map that is provably never iterated may be allowlisted — with the
//! ordering-insensitivity argument written into the allowlist reason.

use super::{finding_at, Rule, SIM_STATE_CRATES};
use crate::findings::Finding;
use crate::source::SourceFile;
use crate::tokenizer::TokenKind;

/// Rule instance.
pub struct D001;

impl Rule for D001 {
    fn id(&self) -> &'static str {
        "D001"
    }

    fn title(&self) -> &'static str {
        "no HashMap/HashSet in simulation-state crates (randomized iteration order)"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if !SIM_STATE_CRATES.contains(&file.crate_name.as_str()) {
            return;
        }
        for (ix, tok) in file.tokens.iter().enumerate() {
            if tok.kind != TokenKind::Ident || file.in_test(ix) {
                continue;
            }
            let replacement = match tok.text.as_str() {
                "HashMap" => "BTreeMap",
                "HashSet" => "BTreeSet",
                _ => continue,
            };
            out.push(finding_at(
                self.id(),
                file,
                tok,
                format!(
                    "{} has process-random iteration order; use {} (or allowlist with a written ordering-insensitivity argument)",
                    tok.text, replacement
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        D001.check(&SourceFile::new(path, src), &mut out);
        out
    }

    #[test]
    fn flags_hash_collections_in_sim_state_crates() {
        let src = "use std::collections::{HashMap, HashSet};\n";
        for krate in ["core", "cluster", "isa", "workload", "mem"] {
            let out = run(&format!("crates/{krate}/src/x.rs"), src);
            assert_eq!(out.len(), 2, "{krate}");
            assert!(out[0].message.contains("BTreeMap"));
        }
    }

    #[test]
    fn other_crates_and_tests_are_exempt() {
        let src = "use std::collections::HashMap;\n";
        assert!(run("crates/report/src/x.rs", src).is_empty());
        assert!(run("src/main.rs", src).is_empty());
        let test_src = "#[cfg(test)]\nmod tests { use std::collections::HashSet; }\n";
        assert!(run("crates/core/src/x.rs", test_src).is_empty());
    }

    #[test]
    fn strings_and_comments_do_not_trigger() {
        let src = "// HashMap\nlet s = \"HashMap\";\n";
        assert!(run("crates/core/src/x.rs", src).is_empty());
    }
}
