//! S003 — float reductions in sim-state crates must declare their
//! iteration order.
//!
//! Float addition is not associative: `.sum::<f64>()` over an iterator
//! gives bit-different totals if the source order ever changes, which is
//! how "deterministic per seed" quietly stops being true. Any float
//! `.sum()` / seeded `.fold()` in a sim-state crate must carry a
//! `// lint:ordered: REASON` annotation stating *why* the source order
//! is deterministic (a `Vec` in insertion order, a sorted slice, …).
//! Min/max folds are exempt — those are order-insensitive.

use super::{Rule, SIM_STATE_CRATES};
use crate::findings::Finding;
use crate::parser::Expr;
use crate::rules::units::{is_float_unit, unit_of};
use crate::source::SourceFile;

/// Rule instance.
pub struct S003;

/// Final expression of a closure body (blocks yield their last statement).
fn closure_tail(body: &Expr) -> &Expr {
    match body {
        Expr::Block(stmts) => stmts.last().unwrap_or(body),
        other => other,
    }
}

/// Whether a `.map(|x| …)` receiver projects to a float-unit quantity.
fn maps_to_float_quantity(base: &Expr) -> bool {
    let Expr::Method { name, args, .. } = base else {
        return false;
    };
    if name != "map" {
        return false;
    }
    let Some(Expr::Closure(body)) = args.first() else {
        return false;
    };
    unit_of(closure_tail(body)).is_some_and(is_float_unit)
}

/// Whether a fold seed expression is float-typed.
fn float_seed(seed: &Expr) -> bool {
    match seed {
        Expr::Number { text } => {
            text.contains('.') || text.ends_with("f32") || text.ends_with("f64")
        }
        Expr::Path { segs, .. } => segs.first().is_some_and(|s| s == "f32" || s == "f64"),
        Expr::Unary(inner) | Expr::Cast(inner) => float_seed(inner),
        _ => false,
    }
}

/// Whether a fold combiner is an order-insensitive min/max selector.
fn min_max_combiner(comb: &Expr) -> bool {
    let name = match comb {
        Expr::Ident { name, .. } => name.as_str(),
        Expr::Path { segs, .. } => segs.last().map_or("", String::as_str),
        _ => return false,
    };
    name.ends_with("min") || name.ends_with("max")
}

impl Rule for S003 {
    fn id(&self) -> &'static str {
        "S003"
    }

    fn title(&self) -> &'static str {
        "float sum/fold in sim-state crates needs a lint:ordered annotation"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if !SIM_STATE_CRATES.contains(&file.crate_name.as_str()) {
            return;
        }
        file.tree.for_each_fn(&mut |f, _| {
            for stmt in &f.body {
                stmt.walk(&mut |e| {
                    let Expr::Method {
                        base,
                        name,
                        turbofish,
                        args,
                        line,
                        col,
                    } = e
                    else {
                        return;
                    };
                    let is_float_reduction = match name.as_str() {
                        "sum" => {
                            turbofish.iter().any(|t| t == "f32" || t == "f64")
                                || maps_to_float_quantity(base)
                        }
                        "fold" => {
                            args.first().is_some_and(float_seed)
                                && !args.get(1).is_some_and(min_max_combiner)
                        }
                        _ => false,
                    };
                    if !is_float_reduction
                        || file.line_in_test(*line)
                        || file.ordered_at(*line)
                    {
                        return;
                    }
                    out.push(Finding {
                        rule: self.id(),
                        path: file.path.clone(),
                        line: *line,
                        col: *col,
                        matched: name.clone(),
                        message: format!(
                            "float `.{name}()` reduction: float addition is order-sensitive; add `// lint:ordered: <why the source iteration order is deterministic>` on this line (or the line above)"
                        ),
                    });
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        S003.check(&SourceFile::new(path, src), &mut out);
        out
    }

    #[test]
    fn flags_turbofish_and_mapped_float_sums_and_float_folds() {
        let src = "
            fn totals(xs: &[Obs]) -> f64 {
                let a = xs.iter().map(|o| o.ttft_s).sum::<f64>();
                let b: f64 = xs.iter().map(|o| o.tpot_s).sum();
                let peak = xs.iter().fold(0.0f32, |m, x| m.mul_add(1.0, x.v));
                a + b + peak as f64
            }
        ";
        let out = run("crates/cluster/src/x.rs", src);
        assert_eq!(out.len(), 3, "{out:?}");
        assert_eq!(out[0].matched, "sum");
        assert_eq!(out[2].matched, "fold");
    }

    #[test]
    fn ordered_annotation_suppresses() {
        let src = "
            fn total(xs: &[Obs]) -> f64 {
                // lint:ordered: replicas vec is in replica-id order
                xs.iter().map(|o| o.busy_s).sum::<f64>()
            }
        ";
        assert!(run("crates/cluster/src/x.rs", src).is_empty());
    }

    #[test]
    fn min_max_folds_and_integer_sums_pass() {
        let src = "
            fn f(xs: &[f64], ns: &[u64]) -> (f64, u64) {
                let lo = xs.iter().fold(f64::INFINITY, f64::min);
                let hi = xs.iter().copied().fold(0.0, f64::max);
                let n: u64 = ns.iter().sum();
                (lo + hi, n)
            }
        ";
        assert!(run("crates/cluster/src/x.rs", src).is_empty());
    }

    #[test]
    fn non_sim_state_crates_and_tests_are_exempt() {
        let src = "fn t(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }";
        assert!(run("crates/bench/src/x.rs", src).is_empty());
        let test_src = "
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { let s: f64 = xs.iter().map(|o| o.gap_s).sum::<f64>(); }
            }
        ";
        assert!(run("crates/cluster/src/x.rs", test_src).is_empty());
    }
}
