//! The rule catalog and the shared vocabulary rules are written in.
//!
//! Rules are deliberately *lexical*: they match identifier/operator
//! patterns on the token stream, never type information. That keeps the
//! linter dependency-free and fast, at the cost of needing the explicit
//! suppression channels ([`crate::allowlist`], inline `lint:allow`) for
//! the rare justified exception — which is a feature: every exception to
//! a determinism invariant should have a written argument next to it.

mod d001;
mod d002;
mod d003;
mod d004;
mod p001;
mod u001;

use crate::findings::Finding;
use crate::source::SourceFile;
use crate::tokenizer::Token;

pub use d001::D001;
pub use d002::D002;
pub use d003::D003;
pub use d004::D004;
pub use p001::P001;
pub use u001::U001;

/// A single static-analysis rule.
pub trait Rule: Sync {
    /// Stable rule id (`D001`, …) used in findings, the allowlist and
    /// inline suppressions.
    fn id(&self) -> &'static str;
    /// One-line description for `--rules` output.
    fn title(&self) -> &'static str;
    /// Appends findings for `file`.
    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>);
}

/// The full rule catalog, in id order.
#[must_use]
pub fn catalog() -> Vec<&'static dyn Rule> {
    vec![&D001, &D002, &D003, &D004, &P001, &U001]
}

/// Crates that hold simulation state: a nondeterministic container or
/// ambient input here changes simulation *results*, not just logs.
pub(crate) const SIM_STATE_CRATES: &[&str] = &["cluster", "core", "isa", "mem", "workload"];

/// The wall-clock/benchmark driver crate, exempt from D002/P001: it
/// measures real elapsed time by design and fails fast on impossible
/// configurations.
pub(crate) const DRIVER_CRATE: &str = "bench";

/// Builds a finding at `tok`.
pub(crate) fn finding_at(
    rule: &'static str,
    file: &SourceFile,
    tok: &Token,
    message: String,
) -> Finding {
    Finding {
        rule,
        path: file.path.clone(),
        line: tok.line,
        col: tok.col,
        matched: tok.text.clone(),
        message,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_sorted_and_unique() {
        let ids: Vec<&str> = catalog().iter().map(|r| r.id()).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(ids, sorted);
        assert_eq!(ids, vec!["D001", "D002", "D003", "D004", "P001", "U001"]);
        for r in catalog() {
            assert!(!r.title().is_empty());
        }
    }
}
