//! The rule catalog and the shared vocabulary rules are written in.
//!
//! Two rule families live here. The D/P/U rules are *lexical*: they match
//! identifier/operator patterns on the token stream. The S rules are
//! *semantic*: they walk the simplified parse tree ([`crate::parser`]) to
//! reason about dataflow the token stream can't express — counter
//! coverage across merge/render paths (S001), unit propagation through
//! expressions (S002), float-reduction ordering (S003), and match-arm
//! drift (S004). Neither family uses type information from the compiler,
//! which keeps the linter dependency-free and fast, at the cost of
//! needing the explicit suppression channels ([`crate::allowlist`],
//! inline `lint:allow`, `lint:ordered`) for the rare justified
//! exception — which is a feature: every exception to a determinism
//! invariant should have a written argument next to it.

mod d001;
mod d002;
mod d003;
mod d004;
mod p001;
mod s001;
mod s002;
mod s003;
mod s004;
mod u001;
mod units;

use crate::findings::Finding;
use crate::source::SourceFile;
use crate::tokenizer::Token;

pub use d001::D001;
pub use d002::D002;
pub use d003::D003;
pub use d004::D004;
pub use p001::P001;
pub use s001::S001;
pub use s002::S002;
pub use s003::S003;
pub use s004::S004;
pub use u001::U001;

/// A single static-analysis rule checked one file at a time.
pub trait Rule: Sync {
    /// Stable rule id (`D001`, …) used in findings, the allowlist and
    /// inline suppressions.
    fn id(&self) -> &'static str;
    /// One-line description for `--rules` output.
    fn title(&self) -> &'static str;
    /// Appends findings for `file`.
    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>);
}

/// A rule that needs the whole workspace at once (cross-file dataflow,
/// e.g. a struct defined in one file and merged in another). Findings
/// must not depend on the order of `files` — the determinism contract
/// (same input, byte-identical output) is proptested over permutations.
pub trait WorkspaceRule: Sync {
    /// Stable rule id (`S001`, …).
    fn id(&self) -> &'static str;
    /// One-line description for `--rules` output.
    fn title(&self) -> &'static str;
    /// Appends findings computed over every workspace file.
    fn check_workspace(&self, files: &[SourceFile], out: &mut Vec<Finding>);
}

/// The full per-file rule catalog, in id order.
#[must_use]
pub fn catalog() -> Vec<&'static dyn Rule> {
    vec![
        &D001, &D002, &D003, &D004, &P001, &S002, &S003, &S004, &U001,
    ]
}

/// The workspace-rule catalog, in id order.
#[must_use]
pub fn workspace_catalog() -> Vec<&'static dyn WorkspaceRule> {
    vec![&S001]
}

/// Crates that hold simulation state: a nondeterministic container or
/// ambient input here changes simulation *results*, not just logs.
pub(crate) const SIM_STATE_CRATES: &[&str] = &["cluster", "core", "isa", "mem", "workload"];

/// The wall-clock/benchmark driver crate, exempt from D002/P001: it
/// measures real elapsed time by design and fails fast on impossible
/// configurations.
pub(crate) const DRIVER_CRATE: &str = "bench";

/// Builds a finding at `tok`.
pub(crate) fn finding_at(
    rule: &'static str,
    file: &SourceFile,
    tok: &Token,
    message: String,
) -> Finding {
    Finding {
        rule,
        path: file.path.clone(),
        line: tok.line,
        col: tok.col,
        matched: tok.text.clone(),
        message,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_sorted_and_unique() {
        let ids: Vec<&str> = catalog().iter().map(|r| r.id()).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(ids, sorted);
        assert_eq!(
            ids,
            vec!["D001", "D002", "D003", "D004", "P001", "S002", "S003", "S004", "U001"]
        );
        for r in catalog() {
            assert!(!r.title().is_empty());
        }
    }

    #[test]
    fn workspace_catalog_is_sorted_and_disjoint_from_per_file_ids() {
        let ids: Vec<&str> = workspace_catalog().iter().map(|r| r.id()).collect();
        assert_eq!(ids, vec!["S001"]);
        for w in workspace_catalog() {
            assert!(!w.title().is_empty());
            assert!(!catalog().iter().any(|r| r.id() == w.id()));
        }
    }
}
