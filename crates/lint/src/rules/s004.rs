//! S004 — no wildcard arms over the engine's evolving sum types.
//!
//! `SimError`, `FaultKind`, and the event types grow a variant almost
//! every PR (chaos kinds, pipeline handoffs, KV preemptions). A `_ =>`
//! arm in a match over one of these silently swallows every future
//! variant — the compiler's exhaustiveness check, the one tool that
//! forces each call site to decide what a new fault means, is opted out.
//! In the engine crates every such match must name its variants (binding
//! arms like `other =>` are fine: they still read as deliberate).

use super::Rule;
use crate::findings::Finding;
use crate::parser::Expr;
use crate::source::SourceFile;

/// Crates whose dispatch logic must stay exhaustive.
const ENGINE_CRATES: &[&str] = &["cluster", "core"];

/// Sum types that grow variants regularly.
const DRIFT_TYPES: &[&str] = &["SimError", "FaultKind", "Event", "EventKind"];

/// Rule instance.
pub struct S004;

/// Collects identifier names mentioned by an expression (for scrutinees).
fn expr_idents(e: &Expr, out: &mut Vec<String>) {
    e.walk(&mut |n| match n {
        Expr::Ident { name, .. } => out.push(name.clone()),
        Expr::Path { segs, .. } => out.extend(segs.iter().cloned()),
        Expr::Method { name, .. } | Expr::Field { name, .. } => out.push(name.clone()),
        _ => {}
    });
}

impl Rule for S004 {
    fn id(&self) -> &'static str {
        "S004"
    }

    fn title(&self) -> &'static str {
        "no `_ =>` arms over SimError/FaultKind/Event in engine crates"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if !ENGINE_CRATES.contains(&file.crate_name.as_str()) {
            return;
        }
        file.tree.for_each_fn(&mut |f, _| {
            for stmt in &f.body {
                stmt.walk(&mut |e| {
                    let Expr::Match(m) = e else {
                        return;
                    };
                    let mut mentioned = Vec::new();
                    expr_idents(&m.scrutinee, &mut mentioned);
                    for arm in &m.arms {
                        mentioned.extend(arm.pat_idents.iter().cloned());
                    }
                    let Some(ty) = DRIFT_TYPES
                        .iter()
                        .find(|t| mentioned.iter().any(|id| id == *t))
                    else {
                        return;
                    };
                    for arm in &m.arms {
                        if !arm.wildcard || file.line_in_test(arm.line) {
                            continue;
                        }
                        out.push(Finding {
                            rule: self.id(),
                            path: file.path.clone(),
                            line: arm.line,
                            col: arm.col,
                            matched: "_".into(),
                            message: format!(
                                "`_ =>` arm in a match over `{ty}`: new variants get swallowed silently — name the variants (or bind `other =>` and handle it explicitly)"
                            ),
                        });
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        S004.check(&SourceFile::new(path, src), &mut out);
        out
    }

    #[test]
    fn flags_wildcard_over_drift_type() {
        let src = "
            fn classify(e: &SimError) -> u32 {
                match e {
                    SimError::QueueFull { .. } => 1,
                    _ => 0,
                }
            }
        ";
        let out = run("crates/cluster/src/x.rs", src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].matched, "_");
        assert!(out[0].message.contains("SimError"));
    }

    #[test]
    fn named_arms_and_binding_arms_pass() {
        let src = "
            fn classify(k: FaultKind) -> u32 {
                match k {
                    FaultKind::Crash => 1,
                    FaultKind::Slowdown { .. } => 2,
                    other => cost_of(other),
                }
            }
        ";
        assert!(run("crates/cluster/src/x.rs", src).is_empty());
    }

    #[test]
    fn matches_over_other_types_may_use_wildcards() {
        let src = "
            fn bucket(n: u64) -> &'static str {
                match n {
                    0 => \"idle\",
                    _ => \"busy\",
                }
            }
        ";
        assert!(run("crates/cluster/src/x.rs", src).is_empty());
    }

    #[test]
    fn non_engine_crates_are_exempt() {
        let src = "
            fn classify(e: &SimError) -> u32 {
                match e { SimError::QueueFull { .. } => 1, _ => 0 }
            }
        ";
        assert!(run("crates/workload/src/x.rs", src).is_empty());
    }
}
