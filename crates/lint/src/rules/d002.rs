//! D002 — no wall-clock reads outside the bench driver.
//!
//! `std::time::Instant::now()` / `SystemTime::now()` import ambient,
//! non-reproducible state. The simulator's only clock is simulated time
//! (`Seconds` advanced by the event engine); wall-clock time belongs
//! exclusively to `crates/bench`, which measures the *host*, not the
//! simulation.

use super::{finding_at, Rule, DRIVER_CRATE};
use crate::findings::Finding;
use crate::source::SourceFile;
use crate::tokenizer::TokenKind;

/// Identifiers that read (or anchor to) the wall clock.
const WALL_CLOCK: &[&str] = &["Instant", "SystemTime", "UNIX_EPOCH"];

/// Rule instance.
pub struct D002;

impl Rule for D002 {
    fn id(&self) -> &'static str {
        "D002"
    }

    fn title(&self) -> &'static str {
        "no wall-clock reads (Instant/SystemTime) outside the bench driver"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if file.crate_name == DRIVER_CRATE {
            return;
        }
        for tok in &file.tokens {
            if tok.kind != TokenKind::Ident {
                continue;
            }
            if WALL_CLOCK.contains(&tok.text.as_str()) {
                out.push(finding_at(
                    self.id(),
                    file,
                    tok,
                    format!(
                        "{} reads the wall clock; simulation code must use simulated time (Seconds) — wall-clock measurement belongs in crates/bench",
                        tok.text
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        D002.check(&SourceFile::new(path, src), &mut out);
        out
    }

    #[test]
    fn flags_wall_clock_types_everywhere_but_bench() {
        let src = "use std::time::{Instant, SystemTime};\nlet t = Instant::now();\n";
        assert_eq!(run("crates/core/src/x.rs", src).len(), 3);
        assert_eq!(run("src/lib.rs", src).len(), 3);
        assert!(run("crates/bench/src/bin/bench_kernels.rs", src).is_empty());
    }

    #[test]
    fn applies_even_in_test_code() {
        // A test that reads the wall clock is a flaky test.
        let src = "#[cfg(test)]\nmod tests { fn t() { let _ = std::time::Instant::now(); } }\n";
        assert_eq!(run("crates/core/src/x.rs", src).len(), 1);
    }

    #[test]
    fn duration_is_fine() {
        let src = "use std::time::Duration;\nlet d = Duration::from_secs(1);\n";
        assert!(run("crates/core/src/x.rs", src).is_empty());
    }
}
