//! U001 — unit-suffix convention for raw numeric quantities.
//!
//! A bare `latency: f64` is a bug generator: seconds? milliseconds?
//! cycles? The workspace convention is that a *raw numeric* field,
//! parameter, binding or function return carrying a physical quantity
//! names its unit as a suffix (`_s`, `_ms`, `_cycles`, `_bytes`, `_bps`,
//! `_tok`, …) — or uses one of the `hw::units` newtypes (`Seconds`,
//! `Bytes`, …), which carry the unit in the type and are exempt here by
//! construction (the rule only fires on primitive numeric types).
//!
//! The rule flags declarations whose identifier's last snake-case segment
//! is a bare quantity word (`latency`, `bandwidth`, `time`) and whose
//! declared type or return type is a primitive number.

use super::{finding_at, Rule};
use crate::findings::Finding;
use crate::source::SourceFile;
use crate::tokenizer::TokenKind;

/// Quantity words that must not terminate an identifier naming a raw
/// number.
const BARE_QUANTITIES: &[&str] = &["latency", "bandwidth", "time"];

/// Primitive numeric types (a unit newtype would not match, which is the
/// point: `Seconds` already says the unit).
const NUMERIC: &[&str] = &[
    "f32", "f64", "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128",
    "isize",
];

/// Whether `ident`'s final snake-case segment is a bare quantity word.
fn is_bare_quantity(ident: &str) -> bool {
    ident
        .rsplit('_')
        .next()
        .is_some_and(|last| BARE_QUANTITIES.contains(&last))
}

/// Rule instance.
pub struct U001;

impl Rule for U001 {
    fn id(&self) -> &'static str {
        "U001"
    }

    fn title(&self) -> &'static str {
        "raw numeric latency/bandwidth/time identifiers must carry a unit suffix"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        let toks = &file.tokens;
        for (ix, tok) in toks.iter().enumerate() {
            if tok.kind != TokenKind::Ident || file.in_test(ix) {
                continue;
            }

            // `name: f64` — field, parameter or binding declaration.
            if is_bare_quantity(&tok.text)
                && toks.get(ix + 1).is_some_and(|t| t.text == ":")
                && toks
                    .get(ix + 2)
                    .is_some_and(|t| NUMERIC.contains(&t.text.as_str()))
            {
                out.push(finding_at(
                    self.id(),
                    file,
                    tok,
                    format!(
                        "raw {} `{}` does not name its unit; add a unit suffix (e.g. `{}_s`, `{}_cycles`) or use a unit newtype",
                        toks[ix + 2].text, tok.text, tok.text, tok.text
                    ),
                ));
                continue;
            }

            // `fn name(...) -> f64` — function returning a raw number.
            if tok.text == "fn" {
                let Some(name) = toks.get(ix + 1) else {
                    continue;
                };
                if name.kind != TokenKind::Ident || !is_bare_quantity(&name.text) {
                    continue;
                }
                if let Some(ret_ix) = return_type_ix(toks, ix + 2) {
                    if NUMERIC.contains(&toks[ret_ix].text.as_str()) {
                        out.push(finding_at(
                            self.id(),
                            file,
                            name,
                            format!(
                                "fn `{}` returns a raw {} without naming its unit; add a unit suffix or return a unit newtype",
                                name.text, toks[ret_ix].text
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// Starting after a function name, finds the token index of the first
/// return-type token (just past a top-level `->`), or `None` if the
/// signature ends (at `{`, `;` or `where`) without one.
fn return_type_ix(toks: &[crate::tokenizer::Token], from: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut i = from;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "(" | "[" | "<" => depth += 1,
            ")" | "]" | ">" => depth -= 1,
            "->" if depth == 0 => return Some(i + 1),
            "{" | ";" | "where" if depth <= 0 => return None,
            _ => {}
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        U001.check(&SourceFile::new("crates/core/src/x.rs", src), &mut out);
        out
    }

    #[test]
    fn flags_bare_quantity_fields_params_and_bindings() {
        let src = "
            pub struct R {
                pub latency: f64,
                pub cycle_time: u64,
            }
            fn f(bandwidth: f32) {
                let queue_time: f64 = 0.0;
            }
        ";
        let matched: Vec<String> = run(src).into_iter().map(|f| f.matched).collect();
        assert_eq!(
            matched,
            vec!["latency", "cycle_time", "bandwidth", "queue_time"]
        );
    }

    #[test]
    fn flags_fn_returning_raw_number() {
        let src = "pub fn decode_latency(&self, b: u64) -> f64 { 0.0 }";
        let out = run(src);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].matched, "decode_latency");
    }

    #[test]
    fn unit_suffixes_and_newtypes_are_fine() {
        let src = "
            pub struct R {
                pub latency_s: f64,
                pub time: Seconds,
                pub bandwidth_bps: f64,
                pub decode_time_cycles: u64,
            }
            fn prefill_time(&self) -> Seconds { Seconds::new(0.0) }
            fn warmup_time_s(&self) -> f64 { 0.0 }
        ";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn unrelated_words_containing_time_are_fine() {
        let src = "
            pub struct R {
                pub timestamp: f64,
                pub time_scale: f64,
                pub lifetime: u64,
                pub timing: f64,
            }
        ";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn struct_init_and_paths_do_not_trigger() {
        // `time:` followed by a value expression, and `time::` paths.
        let src = "
            fn g() {
                let r = R { time: elapsed, latency: x };
                let d = std::time::Duration::from_secs(1);
            }
        ";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests { struct T { latency: f64 } }";
        assert!(run(src).is_empty());
    }
}
