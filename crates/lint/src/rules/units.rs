//! Unit-of-measure inference over the simplified expression tree.
//!
//! The workspace's naming convention makes quantities self-describing:
//! `makespan_s`, `upi_bytes`, `goodput_tokens`, `clock_hz`. This module
//! turns that convention into a checkable type system — an expression's
//! unit is inferred from identifier suffixes and propagated through the
//! operators that preserve it. Shared by S002 (mixed-unit arithmetic)
//! and S003 (float-quantity reductions).

use crate::parser::Expr;

/// Canonical unit inferred from a snake-case suffix. Different magnitudes
/// of the same dimension are distinct on purpose: adding `_ms` to `_s`
/// is exactly the bug class this exists to catch.
pub(crate) fn canonical_unit(suffix: &str) -> Option<&'static str> {
    Some(match suffix {
        "s" | "sec" | "secs" | "seconds" => "s",
        "ms" => "ms",
        "us" => "us",
        "ns" => "ns",
        "bytes" => "bytes",
        "kb" => "kb",
        "mb" => "mb",
        "gb" => "gb",
        "kib" => "kib",
        "mib" => "mib",
        "gib" => "gib",
        "tok" | "toks" | "tokens" => "tokens",
        "cycles" => "cycles",
        "hz" => "hz",
        "khz" => "khz",
        "mhz" => "mhz",
        "ghz" => "ghz",
        "bps" => "bps",
        "kbps" => "kbps",
        "mbps" => "mbps",
        "gbps" => "gbps",
        "flops" => "flops",
        _ => return None,
    })
}

/// Units that denote float-valued physical quantities (time and rates) —
/// the classes whose reductions S003 cares about.
pub(crate) fn is_float_unit(unit: &str) -> bool {
    matches!(
        unit,
        "s" | "ms"
            | "us"
            | "ns"
            | "hz"
            | "khz"
            | "mhz"
            | "ghz"
            | "bps"
            | "kbps"
            | "mbps"
            | "gbps"
            | "flops"
    )
}

/// Unit carried by a snake-case name, judged by its final segment. A
/// name must have at least two segments (`gap_s` yes, bare `s` no) so
/// loop variables and closure parameters never acquire units.
pub(crate) fn name_unit(name: &str) -> Option<&'static str> {
    let lower = name.to_ascii_lowercase();
    let (head, last) = lower.rsplit_once('_')?;
    if head.is_empty() {
        return None;
    }
    canonical_unit(last)
}

/// Methods that return a value in the same unit as their receiver.
const UNIT_PRESERVING: &[&str] = &[
    "max", "min", "abs", "clamp", "clone", "copied", "round", "floor", "ceil",
];

/// Infers the unit of `e`, or `None` when it is unit-less or unknowable.
pub(crate) fn unit_of(e: &Expr) -> Option<&'static str> {
    match e {
        Expr::Ident { name, .. } | Expr::Field { name, .. } => name_unit(name),
        Expr::Path { segs, .. } => name_unit(segs.last()?),
        Expr::Method { base, name, .. } => {
            if UNIT_PRESERVING.contains(&name.as_str()) {
                unit_of(base)
            } else {
                name_unit(name)
            }
        }
        Expr::Call { callee, .. } => unit_of(callee),
        Expr::Index { base, .. } => unit_of(base),
        Expr::Unary(inner) | Expr::Cast(inner) => unit_of(inner),
        Expr::Binary { op, lhs, rhs, .. } if op == "+" || op == "-" => {
            let (l, r) = (unit_of(lhs), unit_of(rhs));
            if l == r {
                l
            } else {
                None
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::tokenizer::tokenize;

    fn expr_unit(src: &str) -> Option<&'static str> {
        let t = parse(&tokenize(&format!("fn f() {{ {src} }}")).tokens);
        let mut unit = None;
        t.for_each_fn(&mut |f, _| {
            if let Some(e) = f.body.first() {
                unit = unit_of(e);
            }
        });
        unit
    }

    #[test]
    fn suffixes_give_units() {
        assert_eq!(expr_unit("gap_s"), Some("s"));
        assert_eq!(expr_unit("self.upi_bytes"), Some("bytes"));
        assert_eq!(expr_unit("TP_ALLREDUCE_SW_S"), Some("s"));
        assert_eq!(expr_unit("goodput_tokens"), Some("tokens"));
        assert_eq!(expr_unit("s"), None, "single segment carries no unit");
        assert_eq!(expr_unit("index"), None);
    }

    #[test]
    fn operators_propagate_units() {
        assert_eq!(expr_unit("ttft_s + tpot_s"), Some("s"));
        assert_eq!(expr_unit("-(warm_s)"), Some("s"));
        assert_eq!(expr_unit("cold_s as f32"), Some("s"));
        assert_eq!(expr_unit("a_s.max(b_s)"), Some("s"));
        assert_eq!(expr_unit("mean_gap_s(xs)"), Some("s"));
        assert_eq!(expr_unit("a_s * b_s"), None, "products change dimension");
        assert_eq!(expr_unit("a_s / b_s"), None);
    }
}
