//! D003 — no unseeded randomness, anywhere.
//!
//! Ambient entropy (`thread_rng`, `rand::random`, OS RNGs) breaks the
//! same-seed-same-bytes contract outright, and `std`'s `RandomState` is
//! the mechanism behind D001's randomized iteration order. Every random
//! stream in this workspace must be derived from an explicit `u64` seed
//! (see `vendor/rand`'s seeded PRNGs). This rule has no crate or test
//! exemption: a nondeterministic test is a flaky test.

use super::{finding_at, Rule};
use crate::findings::Finding;
use crate::source::SourceFile;
use crate::tokenizer::TokenKind;

/// Identifiers that reach for ambient entropy on their own.
const AMBIENT: &[&str] = &[
    "thread_rng",
    "RandomState",
    "OsRng",
    "from_entropy",
    "getrandom",
];

/// Rule instance.
pub struct D003;

impl Rule for D003 {
    fn id(&self) -> &'static str {
        "D003"
    }

    fn title(&self) -> &'static str {
        "no unseeded randomness (thread_rng, rand::random, RandomState, OsRng)"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        let toks = &file.tokens;
        for (ix, tok) in toks.iter().enumerate() {
            if tok.kind != TokenKind::Ident {
                continue;
            }
            if AMBIENT.contains(&tok.text.as_str()) {
                out.push(finding_at(
                    self.id(),
                    file,
                    tok,
                    format!(
                        "{} draws ambient entropy; derive every random stream from an explicit u64 seed",
                        tok.text
                    ),
                ));
                continue;
            }
            // `rand::random` — the only banned name that needs its path
            // qualifier to avoid flagging unrelated `random` identifiers.
            if tok.text == "rand"
                && toks.get(ix + 1).is_some_and(|t| t.text == "::")
                && toks.get(ix + 2).is_some_and(|t| t.text == "random")
            {
                out.push(finding_at(
                    self.id(),
                    file,
                    tok,
                    "rand::random seeds from the OS; derive every random stream from an explicit u64 seed".to_string(),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        D003.check(&SourceFile::new("crates/workload/src/x.rs", src), &mut out);
        out
    }

    #[test]
    fn flags_ambient_entropy_sources() {
        let src =
            "let a = thread_rng();\nlet b: u32 = rand::random();\nlet s = RandomState::new();\n";
        let out = run(src);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].matched, "thread_rng");
        assert_eq!(out[1].matched, "rand");
    }

    #[test]
    fn seeded_randomness_is_fine() {
        let src = "let rng = SmallRng::seed_from_u64(42);\nlet x = rng.random_range(0..10);\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn bare_random_identifier_is_not_rand_random() {
        let src = "fn random(x: u64) -> u64 { x }\nlet y = random(3);\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn applies_in_tests_too() {
        let src = "#[cfg(test)]\nmod tests { fn t() { let _ = thread_rng(); } }\n";
        assert_eq!(run(src).len(), 1);
    }
}
