//! Deterministic discovery of the lint scope: every `.rs` file under
//! `crates/*/src` and the root `src/`, in sorted path order.
//!
//! Vendored stand-in crates (`vendor/`), fixtures, and target directories
//! are deliberately out of scope: the gate protects the code we author,
//! not the API-compatible stubs we bundle for the offline build.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A discovered source file: workspace-relative path plus contents.
#[derive(Debug, Clone)]
pub struct WorkspaceFile {
    /// `/`-separated path relative to the workspace root.
    pub rel_path: String,
    /// File contents.
    pub text: String,
}

/// Collects every `.rs` file in scope under `root`, sorted by relative
/// path so downstream output is byte-deterministic regardless of
/// filesystem enumeration order.
///
/// # Errors
///
/// Returns the first I/O error encountered (a missing `crates/` directory
/// is an error: linting nothing must never masquerade as a clean run).
pub fn collect_workspace(root: &Path) -> io::Result<Vec<WorkspaceFile>> {
    let mut dirs: Vec<PathBuf> = Vec::new();

    let crates_dir = root.join("crates");
    let mut crate_roots: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_roots.sort();
    for c in crate_roots {
        let src = c.join("src");
        if src.is_dir() {
            dirs.push(src);
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        dirs.push(root_src);
    }

    let mut files = Vec::new();
    for dir in dirs {
        collect_rs(&dir, &mut files)?;
    }

    let mut out = Vec::with_capacity(files.len());
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let text = fs::read_to_string(&path)?;
        out.push(WorkspaceFile {
            rel_path: rel,
            text,
        });
    }
    out.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(out)
}

/// Recursively gathers `.rs` files under `dir` (any order; the caller
/// sorts).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo_root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .expect("repo root resolves")
    }

    #[test]
    fn walks_sorted_and_in_scope_only() {
        let files = collect_workspace(&repo_root()).expect("walk succeeds");
        assert!(files.len() > 40, "found {}", files.len());
        let paths: Vec<&str> = files.iter().map(|f| f.rel_path.as_str()).collect();
        let mut sorted = paths.clone();
        sorted.sort_unstable();
        assert_eq!(paths, sorted, "deterministic order");
        assert!(paths.iter().all(|p| p.ends_with(".rs")));
        assert!(paths.iter().all(|p| !p.starts_with("vendor/")));
        assert!(paths.iter().all(|p| !p.contains("/fixtures/")));
        assert!(paths.contains(&"crates/isa/src/timing.rs"));
        assert!(paths.contains(&"src/main.rs"));
    }

    #[test]
    fn missing_root_is_an_error() {
        assert!(collect_workspace(Path::new("/nonexistent-lint-root")).is_err());
    }
}
