//! `llmsim-lint` — determinism & unit-consistency static analysis for the
//! llmsim workspace.
//!
//! Every result this repository produces rests on one invariant: **same
//! seed, same bytes**. The proptest suites check that invariant at runtime
//! by sampling; this crate enforces its *source-level preconditions* at CI
//! time, before a nondeterminism bug can ship and be discovered by a
//! flaky figure. The linter is deliberately dependency-free: a minimal
//! Rust tokenizer ([`tokenizer`]) feeds a recursive-descent parser
//! ([`parser`]) and a small rule engine ([`rules`]) that walks
//! `crates/*/src` and `src/` ([`walk`]) and emits findings in a
//! canonical order ([`findings`]) — the linter's own output is as
//! reproducible as the simulator it guards.
//!
//! ## Rule catalog
//!
//! | id | rule |
//! |------|------|
//! | D001 | no `HashMap`/`HashSet` in simulation-state crates (iteration order is seeded by `RandomState`) |
//! | D002 | no wall-clock reads (`std::time::Instant`/`SystemTime`) outside the bench driver |
//! | D003 | no ambient randomness (`thread_rng`, `rand::random`, `RandomState`, `OsRng`, `from_entropy`) |
//! | D004 | no ad-hoc compound-assign reductions inside `isa`/`cluster` spawn closures — use the deterministic merge helpers |
//! | P001 | no `unwrap()`/`expect()`/`panic!` in non-test library code |
//! | S001 | every numeric field of a `*Report`/`*Stats` struct in a sim-state crate must be read on its merge and render paths (counter coverage) |
//! | S002 | no mixed-unit arithmetic: `+`/`-`/comparisons over suffix-typed quantities need like units |
//! | S003 | float `.sum()`/`.fold()` reductions in sim-state crates need a `// lint:ordered: reason` annotation |
//! | S004 | no `_ =>` arms over `SimError`/`FaultKind`/`Event` in engine crates (variant drift) |
//! | U001 | bare `latency`/`bandwidth`/`time` identifiers typed as raw numbers must carry a unit suffix (`_s`, `_cycles`, `_bytes`, `_bps`, `_tok`, …) or a unit newtype |
//!
//! Suppression is always explicit and justified: an entry in the
//! checked-in [`allowlist`] (`lint.allow`), an inline
//! `// lint:allow(RULE): reason` comment on/above the offending line, or
//! (S003 only) a `// lint:ordered: reason` annotation stating why the
//! reduction's source order is deterministic.

pub mod allowlist;
pub mod findings;
pub mod parser;
pub mod rules;
pub mod source;
pub mod tokenizer;
pub mod walk;

use allowlist::Allowlist;
use findings::{sort_findings, Finding};
use source::SourceFile;

/// Outcome of a lint run after allowlist filtering.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Findings not covered by any suppression, in canonical order.
    pub findings: Vec<Finding>,
    /// Findings suppressed by the allowlist or inline directives, in
    /// canonical order (reported for transparency, never fatal).
    pub suppressed: Vec<Finding>,
    /// Allowlist entries that matched nothing (stale — worth pruning).
    pub stale_allows: Vec<String>,
    /// 1-based `lint.allow` line numbers of the stale entries (input to
    /// `--fix-stale`).
    pub stale_lines: Vec<usize>,
}

/// Lints one already-loaded file against the full rule catalog.
#[must_use]
pub fn lint_file(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for rule in rules::catalog() {
        rule.check(file, &mut out);
    }
    out
}

/// Lints a set of `(path, text)` pairs and applies suppressions.
#[must_use]
pub fn lint_sources<'a, I>(sources: I, allow: &Allowlist) -> LintReport
where
    I: IntoIterator<Item = (&'a str, &'a str)>,
{
    let mut all = Vec::new();
    let mut files = Vec::new();
    for (path, text) in sources {
        let file = SourceFile::new(path, text);
        all.extend(lint_file(&file));
        files.push(file);
    }
    for rule in rules::workspace_catalog() {
        rule.check_workspace(&files, &mut all);
    }
    sort_findings(&mut all);

    let mut used = vec![false; allow.entries.len()];
    let mut report = LintReport::default();
    for f in all {
        let line_text = files
            .iter()
            .find(|s| s.path == f.path)
            .map_or("", |s| s.line_text(f.line));
        let inline = files
            .iter()
            .find(|s| s.path == f.path)
            .is_some_and(|s| s.inline_allowed(f.rule, f.line));
        if inline {
            report.suppressed.push(f);
            continue;
        }
        match allow.matches(&f, line_text) {
            Some(ix) => {
                used[ix] = true;
                report.suppressed.push(f);
            }
            None => report.findings.push(f),
        }
    }
    for (ix, entry) in allow.entries.iter().enumerate() {
        if !used[ix] {
            report.stale_allows.push(entry.describe());
            report.stale_lines.push(entry.line);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_source_has_no_findings() {
        let src = "pub fn step_s(dt_s: f64) -> f64 { dt_s * 2.0 }\n";
        let report = lint_sources([("crates/core/src/clean.rs", src)], &Allowlist::default());
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn findings_route_through_allowlist_and_mark_stale() {
        let src = "use std::collections::HashMap;\n";
        let allow = Allowlist::parse(
            "D001\tcrates/core/src/m.rs\tHashMap\tjustified: never iterated\n\
             D001\tcrates/core/src/other.rs\t*\tstale entry\n",
        )
        .expect("parses");
        let report = lint_sources([("crates/core/src/m.rs", src)], &allow);
        assert!(report.findings.is_empty());
        assert_eq!(report.suppressed.len(), 1);
        assert_eq!(report.stale_allows.len(), 1);
        assert!(report.stale_allows[0].contains("other.rs"));
    }

    #[test]
    fn inline_allow_suppresses() {
        let src = "// lint:allow(D001): ordering-insensitive, lookup only\nuse std::collections::HashMap;\n";
        let report = lint_sources([("crates/core/src/m.rs", src)], &Allowlist::default());
        assert!(report.findings.is_empty());
        assert_eq!(report.suppressed.len(), 1);
    }
}
