//! `llmsim-lint` CLI — the workspace determinism gate.
//!
//! ```sh
//! cargo run -p llmsim-lint --release -- --check              # CI gate
//! cargo run -p llmsim-lint --release -- --tsv findings.tsv   # artifact
//! cargo run -p llmsim-lint --release -- --jsonl findings.jsonl
//! cargo run -p llmsim-lint --release -- --fix-stale          # prune lint.allow
//! cargo run -p llmsim-lint --release -- --rules              # catalog
//! ```
//!
//! Exit codes: `0` clean (or findings while not in `--check` mode), `1`
//! non-allowlisted findings under `--check`, `2` usage/I-O error.

#![allow(clippy::print_stdout, clippy::print_stderr)] // CLI surface

use llmsim_lint::allowlist::{prune, Allowlist};
use llmsim_lint::findings::{to_jsonl, to_text, to_tsv};
use llmsim_lint::rules;
use llmsim_lint::walk::collect_workspace;
use std::path::PathBuf;
use std::process::ExitCode;

#[derive(Debug)]
struct Options {
    root: PathBuf,
    allow: Option<PathBuf>,
    tsv: Option<PathBuf>,
    jsonl: Option<PathBuf>,
    check: bool,
    fix_stale: bool,
    list_rules: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        allow: None,
        tsv: None,
        jsonl: None,
        check: false,
        fix_stale: false,
        list_rules: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => opts.check = true,
            "--fix-stale" => opts.fix_stale = true,
            "--rules" => opts.list_rules = true,
            "--root" => {
                opts.root = PathBuf::from(
                    it.next().ok_or_else(|| "--root needs a path".to_string())?,
                );
            }
            "--allow" => {
                opts.allow = Some(PathBuf::from(
                    it.next().ok_or_else(|| "--allow needs a path".to_string())?,
                ));
            }
            "--tsv" => {
                opts.tsv = Some(PathBuf::from(
                    it.next().ok_or_else(|| "--tsv needs a path".to_string())?,
                ));
            }
            "--jsonl" => {
                opts.jsonl = Some(PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--jsonl needs a path".to_string())?,
                ));
            }
            other => {
                return Err(format!(
                    "unknown argument {other:?} (known: --check, --fix-stale, --rules, --root DIR, --allow FILE, --tsv FILE, --jsonl FILE)"
                ))
            }
        }
    }
    Ok(opts)
}

fn run(opts: &Options) -> Result<bool, String> {
    if opts.list_rules {
        for rule in rules::catalog() {
            println!("{}  {}", rule.id(), rule.title());
        }
        for rule in rules::workspace_catalog() {
            println!("{}  {} [workspace]", rule.id(), rule.title());
        }
        return Ok(true);
    }

    let allow_path = opts
        .allow
        .clone()
        .unwrap_or_else(|| opts.root.join("lint.allow"));
    let allow_text = match std::fs::read_to_string(&allow_path) {
        Ok(text) => Some(text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
        Err(e) => return Err(format!("{}: {e}", allow_path.display())),
    };
    let allow = match &allow_text {
        Some(text) => Allowlist::parse(text).map_err(|e| e.to_string())?,
        None => Allowlist::default(),
    };

    let files = collect_workspace(&opts.root).map_err(|e| format!("walk failed: {e}"))?;
    let report = llmsim_lint::lint_sources(
        files.iter().map(|f| (f.rel_path.as_str(), f.text.as_str())),
        &allow,
    );

    if let Some(tsv_path) = &opts.tsv {
        std::fs::write(tsv_path, to_tsv(&report.findings))
            .map_err(|e| format!("{}: {e}", tsv_path.display()))?;
    }
    if let Some(jsonl_path) = &opts.jsonl {
        std::fs::write(jsonl_path, to_jsonl(&report.findings))
            .map_err(|e| format!("{}: {e}", jsonl_path.display()))?;
    }

    print!("{}", to_text(&report.findings));
    if !report.suppressed.is_empty() {
        println!(
            "llmsim-lint: {} finding(s) suppressed by allowlist/inline directives",
            report.suppressed.len()
        );
    }
    if opts.fix_stale && !report.stale_lines.is_empty() {
        if let Some(text) = &allow_text {
            std::fs::write(&allow_path, prune(text, &report.stale_lines))
                .map_err(|e| format!("{}: {e}", allow_path.display()))?;
            println!(
                "llmsim-lint: pruned {} stale allowlist entr{} from {}",
                report.stale_lines.len(),
                if report.stale_lines.len() == 1 {
                    "y"
                } else {
                    "ies"
                },
                allow_path.display()
            );
        }
    } else {
        for stale in &report.stale_allows {
            println!("llmsim-lint: warning: stale allowlist entry matches nothing: {stale}");
        }
    }
    Ok(report.findings.is_empty())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("llmsim-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(clean) => {
            if opts.check && !clean {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(msg) => {
            eprintln!("llmsim-lint: {msg}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_args_covers_all_flags() {
        let opts = parse_args(&[
            "--check".into(),
            "--fix-stale".into(),
            "--root".into(),
            "/tmp/x".into(),
            "--allow".into(),
            "a.allow".into(),
            "--tsv".into(),
            "out.tsv".into(),
            "--jsonl".into(),
            "out.jsonl".into(),
        ])
        .expect("parses");
        assert!(opts.check);
        assert!(opts.fix_stale);
        assert_eq!(opts.root, PathBuf::from("/tmp/x"));
        assert_eq!(opts.allow, Some(PathBuf::from("a.allow")));
        assert_eq!(opts.tsv, Some(PathBuf::from("out.tsv")));
        assert_eq!(opts.jsonl, Some(PathBuf::from("out.jsonl")));
    }

    #[test]
    fn unknown_flag_is_an_error() {
        let err = parse_args(&["--wat".into()]).expect_err("must fail");
        assert!(err.contains("--wat"));
        assert!(parse_args(&["--root".into()]).is_err());
        assert!(parse_args(&["--jsonl".into()]).is_err());
    }
}
