//! `llmsim-lint` CLI — the workspace determinism gate.
//!
//! ```sh
//! cargo run -p llmsim-lint --release -- --check            # CI gate
//! cargo run -p llmsim-lint --release -- --tsv findings.tsv # artifact
//! cargo run -p llmsim-lint --release -- --rules            # catalog
//! ```
//!
//! Exit codes: `0` clean (or findings while not in `--check` mode), `1`
//! non-allowlisted findings under `--check`, `2` usage/I-O error.

#![allow(clippy::print_stdout, clippy::print_stderr)] // CLI surface

use llmsim_lint::allowlist::Allowlist;
use llmsim_lint::findings::{to_text, to_tsv};
use llmsim_lint::rules;
use llmsim_lint::walk::collect_workspace;
use std::path::PathBuf;
use std::process::ExitCode;

#[derive(Debug)]
struct Options {
    root: PathBuf,
    allow: Option<PathBuf>,
    tsv: Option<PathBuf>,
    check: bool,
    list_rules: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        allow: None,
        tsv: None,
        check: false,
        list_rules: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => opts.check = true,
            "--rules" => opts.list_rules = true,
            "--root" => {
                opts.root = PathBuf::from(
                    it.next().ok_or_else(|| "--root needs a path".to_string())?,
                );
            }
            "--allow" => {
                opts.allow = Some(PathBuf::from(
                    it.next().ok_or_else(|| "--allow needs a path".to_string())?,
                ));
            }
            "--tsv" => {
                opts.tsv = Some(PathBuf::from(
                    it.next().ok_or_else(|| "--tsv needs a path".to_string())?,
                ));
            }
            other => {
                return Err(format!(
                    "unknown argument {other:?} (known: --check, --rules, --root DIR, --allow FILE, --tsv FILE)"
                ))
            }
        }
    }
    Ok(opts)
}

fn run(opts: &Options) -> Result<bool, String> {
    if opts.list_rules {
        for rule in rules::catalog() {
            println!("{}  {}", rule.id(), rule.title());
        }
        return Ok(true);
    }

    let allow_path = opts
        .allow
        .clone()
        .unwrap_or_else(|| opts.root.join("lint.allow"));
    let allow = match std::fs::read_to_string(&allow_path) {
        Ok(text) => Allowlist::parse(&text).map_err(|e| e.to_string())?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Allowlist::default(),
        Err(e) => return Err(format!("{}: {e}", allow_path.display())),
    };

    let files = collect_workspace(&opts.root).map_err(|e| format!("walk failed: {e}"))?;
    let report = llmsim_lint::lint_sources(
        files.iter().map(|f| (f.rel_path.as_str(), f.text.as_str())),
        &allow,
    );

    if let Some(tsv_path) = &opts.tsv {
        std::fs::write(tsv_path, to_tsv(&report.findings))
            .map_err(|e| format!("{}: {e}", tsv_path.display()))?;
    }

    print!("{}", to_text(&report.findings));
    if !report.suppressed.is_empty() {
        println!(
            "llmsim-lint: {} finding(s) suppressed by allowlist/inline directives",
            report.suppressed.len()
        );
    }
    for stale in &report.stale_allows {
        println!("llmsim-lint: warning: stale allowlist entry matches nothing: {stale}");
    }
    Ok(report.findings.is_empty())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("llmsim-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(clean) => {
            if opts.check && !clean {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(msg) => {
            eprintln!("llmsim-lint: {msg}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_args_covers_all_flags() {
        let opts = parse_args(&[
            "--check".into(),
            "--root".into(),
            "/tmp/x".into(),
            "--allow".into(),
            "a.allow".into(),
            "--tsv".into(),
            "out.tsv".into(),
        ])
        .expect("parses");
        assert!(opts.check);
        assert_eq!(opts.root, PathBuf::from("/tmp/x"));
        assert_eq!(opts.allow, Some(PathBuf::from("a.allow")));
        assert_eq!(opts.tsv, Some(PathBuf::from("out.tsv")));
    }

    #[test]
    fn unknown_flag_is_an_error() {
        let err = parse_args(&["--wat".into()]).expect_err("must fail");
        assert!(err.contains("--wat"));
        assert!(parse_args(&["--root".into()]).is_err());
    }
}
