//! A minimal, dependency-free Rust tokenizer — just enough lexical
//! structure for the determinism rules in [`crate::rules`].
//!
//! The tokenizer understands the parts of Rust that would otherwise cause
//! false findings in a plain text scan: line and (nested) block comments,
//! string/byte-string literals, raw strings with arbitrary `#` fences, char
//! literals vs. lifetimes, raw identifiers, and numeric literals. Rules
//! then match on *identifier tokens*, so `"HashMap"` inside a string or a
//! doc comment never triggers a finding.
//!
//! Comments are not discarded: any comment containing a
//! `lint:allow(RULE, ...)` directive is surfaced to the rule engine as an
//! inline suppression (see [`AllowDirective`]), and any comment containing
//! `lint:ordered: REASON` is surfaced as an ordered-reduction annotation
//! (see [`OrderedDirective`], consumed by rule S003).

/// Lexical class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (raw identifiers are normalized: `r#type`
    /// lexes as `type`).
    Ident,
    /// `'a` — distinguished from char literals.
    Lifetime,
    /// Integer or float literal.
    Number,
    /// String, byte-string, raw-string, or char literal.
    Literal,
    /// Operator / delimiter. Multi-character operators the rules care
    /// about (`::`, `->`, `+=`, `-=`, `*=`, `/=`) lex as one token;
    /// everything else is a single character.
    Punct,
}

/// One lexical token with its source position (1-based line and column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Exact source text (identifiers are raw-prefix-stripped).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (in characters).
    pub col: u32,
}

/// An inline `lint:allow(...)` suppression found in a comment.
///
/// The directive suppresses the named rules on the comment's own line and
/// on the following source line (so it can trail the offending expression
/// or sit on its own line directly above it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowDirective {
    /// 1-based line of the comment.
    pub line: u32,
    /// Rule ids named in the directive, e.g. `["P001"]`.
    pub rules: Vec<String>,
}

/// An inline `lint:ordered: REASON` annotation found in a comment.
///
/// Marks a float reduction whose source iteration order is deterministic
/// by construction, exempting it from rule S003. The reason is mandatory:
/// a directive without one is ignored (and therefore fails the gate,
/// keeping the annotation self-documenting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderedDirective {
    /// 1-based line of the comment.
    pub line: u32,
}

/// Output of [`tokenize`]: the token stream plus inline directives.
#[derive(Debug, Clone, Default)]
pub struct TokenStream {
    /// Tokens in source order.
    pub tokens: Vec<Token>,
    /// Inline `lint:allow` directives in source order.
    pub allows: Vec<AllowDirective>,
    /// Inline `lint:ordered` annotations in source order.
    pub ordered: Vec<OrderedDirective>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Extracts `lint:allow(A, B)` rule ids from a comment body, if present.
fn parse_allow(comment: &str) -> Option<Vec<String>> {
    let at = comment.find("lint:allow(")?;
    let rest = &comment[at + "lint:allow(".len()..];
    let close = rest.find(')')?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        None
    } else {
        Some(rules)
    }
}

/// Whether a comment body carries a `lint:ordered: REASON` annotation
/// with a non-empty reason.
fn parse_ordered(comment: &str) -> bool {
    let Some(at) = comment.find("lint:ordered:") else {
        return false;
    };
    let reason = comment[at + "lint:ordered:".len()..].trim();
    // Block comments may close on the same line; don't count `*/` as a
    // reason on its own.
    let reason = reason.trim_end_matches("*/").trim();
    !reason.is_empty()
}

/// Character cursor with 1-based line/column tracking.
struct Cursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str) -> Self {
        Cursor {
            chars: text.chars().peekable(),
            line: 1,
            col: 1,
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

/// Tokenizes Rust source. Invalid or truncated constructs (an unterminated
/// string, say) end the affected token at end-of-input rather than
/// failing: a linter must degrade gracefully on code it cannot fully lex.
#[must_use]
pub fn tokenize(text: &str) -> TokenStream {
    let mut cur = Cursor::new(text);
    let mut out = TokenStream::default();

    while let Some(c) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }

        if c == '/' {
            // Comment or operator.
            cur.bump();
            match cur.peek() {
                Some('/') => {
                    let mut body = String::new();
                    while let Some(ch) = cur.peek() {
                        if ch == '\n' {
                            break;
                        }
                        body.push(ch);
                        cur.bump();
                    }
                    if let Some(rules) = parse_allow(&body) {
                        out.allows.push(AllowDirective { line, rules });
                    }
                    if parse_ordered(&body) {
                        out.ordered.push(OrderedDirective { line });
                    }
                }
                Some('*') => {
                    cur.bump();
                    let mut depth = 1u32;
                    let mut body = String::new();
                    while depth > 0 {
                        match cur.bump() {
                            Some('*') if cur.peek() == Some('/') => {
                                cur.bump();
                                depth -= 1;
                            }
                            Some('/') if cur.peek() == Some('*') => {
                                cur.bump();
                                depth += 1;
                            }
                            Some(ch) => body.push(ch),
                            None => break,
                        }
                    }
                    if let Some(rules) = parse_allow(&body) {
                        out.allows.push(AllowDirective { line, rules });
                    }
                    if parse_ordered(&body) {
                        out.ordered.push(OrderedDirective { line });
                    }
                }
                Some('=') => {
                    cur.bump();
                    out.tokens.push(Token {
                        kind: TokenKind::Punct,
                        text: "/=".into(),
                        line,
                        col,
                    });
                }
                _ => out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: "/".into(),
                    line,
                    col,
                }),
            }
            continue;
        }

        if is_ident_start(c) {
            // Raw strings / byte strings / raw identifiers share the
            // ident-start path: look at the whole prefix first.
            let mut ident = String::new();
            while let Some(ch) = cur.peek() {
                if is_ident_continue(ch) {
                    ident.push(ch);
                    cur.bump();
                } else {
                    break;
                }
            }
            let next = cur.peek();
            let starts_raw =
                matches!(ident.as_str(), "r" | "br" | "b") && matches!(next, Some('"') | Some('#'));
            if starts_raw {
                if consume_raw_or_plain_string(&mut cur, &ident) {
                    out.tokens.push(Token {
                        kind: TokenKind::Literal,
                        text: format!("{ident}\"…\""),
                        line,
                        col,
                    });
                    continue;
                }
                // `r#ident`: raw identifier — re-lex the ident part.
                if ident == "r" && cur.peek() == Some('#') {
                    cur.bump();
                    let mut raw = String::new();
                    while let Some(ch) = cur.peek() {
                        if is_ident_continue(ch) {
                            raw.push(ch);
                            cur.bump();
                        } else {
                            break;
                        }
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Ident,
                        text: raw,
                        line,
                        col,
                    });
                    continue;
                }
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text: ident,
                line,
                col,
            });
            continue;
        }

        if c.is_ascii_digit() {
            let mut num = String::new();
            while let Some(ch) = cur.peek() {
                // Good enough for findings: digits, radix prefixes,
                // underscores, exponents, type suffixes, and the decimal
                // point (consumed greedily; `1..2` ranges lex slightly
                // fused, which no rule depends on).
                if ch.is_ascii_alphanumeric() || ch == '_' || ch == '.' {
                    // Don't swallow `..` range operators or method calls
                    // on literals (`1.max(2)`).
                    if ch == '.' {
                        let mut ahead = cur.chars.clone();
                        ahead.next();
                        match ahead.next() {
                            Some(d) if d.is_ascii_digit() => {}
                            _ => break,
                        }
                    }
                    num.push(ch);
                    cur.bump();
                } else {
                    break;
                }
            }
            out.tokens.push(Token {
                kind: TokenKind::Number,
                text: num,
                line,
                col,
            });
            continue;
        }

        if c == '"' {
            consume_plain_string(&mut cur);
            out.tokens.push(Token {
                kind: TokenKind::Literal,
                text: "\"…\"".into(),
                line,
                col,
            });
            continue;
        }

        if c == '\'' {
            cur.bump();
            match cur.peek() {
                Some('\\') => {
                    // Escaped char literal: consume escape then closing quote.
                    cur.bump();
                    cur.bump();
                    if cur.peek() == Some('\'') {
                        cur.bump();
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Literal,
                        text: "'…'".into(),
                        line,
                        col,
                    });
                }
                Some(ch) if is_ident_start(ch) => {
                    // Lifetime or alphanumeric char literal: disambiguate
                    // by whether a `'` closes it immediately after one
                    // ident char.
                    let mut ahead = cur.chars.clone();
                    ahead.next();
                    if ahead.next() == Some('\'') {
                        cur.bump();
                        cur.bump();
                        out.tokens.push(Token {
                            kind: TokenKind::Literal,
                            text: "'…'".into(),
                            line,
                            col,
                        });
                    } else {
                        let mut name = String::from("'");
                        while let Some(ch) = cur.peek() {
                            if is_ident_continue(ch) {
                                name.push(ch);
                                cur.bump();
                            } else {
                                break;
                            }
                        }
                        out.tokens.push(Token {
                            kind: TokenKind::Lifetime,
                            text: name,
                            line,
                            col,
                        });
                    }
                }
                Some(other) => {
                    // Non-alphanumeric char literal like ' ' or '#'.
                    cur.bump();
                    if cur.peek() == Some('\'') {
                        cur.bump();
                        out.tokens.push(Token {
                            kind: TokenKind::Literal,
                            text: "'…'".into(),
                            line,
                            col,
                        });
                    } else {
                        out.tokens.push(Token {
                            kind: TokenKind::Punct,
                            text: other.to_string(),
                            line,
                            col,
                        });
                    }
                }
                None => {}
            }
            continue;
        }

        // Punctuation: fuse the few multi-char operators rules match on.
        cur.bump();
        let two = cur.peek().map(|n| (c, n));
        let fused = match two {
            Some((':', ':')) => Some("::"),
            Some(('-', '>')) => Some("->"),
            Some(('+', '=')) => Some("+="),
            Some(('-', '=')) => Some("-="),
            Some(('*', '=')) => Some("*="),
            _ => None,
        };
        if let Some(op) = fused {
            cur.bump();
            out.tokens.push(Token {
                kind: TokenKind::Punct,
                text: op.into(),
                line,
                col,
            });
        } else {
            out.tokens.push(Token {
                kind: TokenKind::Punct,
                text: c.to_string(),
                line,
                col,
            });
        }
    }
    out
}

/// Consumes a `"…"` string body (opening quote at the cursor).
fn consume_plain_string(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    while let Some(ch) = cur.bump() {
        match ch {
            '\\' => {
                cur.bump();
            }
            '"' => break,
            _ => {}
        }
    }
}

/// After lexing a `r`/`b`/`br` prefix, consumes the raw or plain string
/// that follows. Returns `false` if the prefix turned out to be a raw
/// identifier (`r#foo`) instead of a string.
fn consume_raw_or_plain_string(cur: &mut Cursor<'_>, prefix: &str) -> bool {
    let raw = prefix.contains('r');
    if !raw {
        // b"…": plain string body with escapes.
        if cur.peek() == Some('"') {
            consume_plain_string(cur);
            return true;
        }
        return false;
    }
    // Count `#` fence.
    let mut fence = 0usize;
    let mut ahead = cur.chars.clone();
    while ahead.peek() == Some(&'#') {
        ahead.next();
        fence += 1;
    }
    if ahead.peek() != Some(&'"') {
        return false; // raw identifier, not a raw string
    }
    for _ in 0..fence {
        cur.bump();
    }
    cur.bump(); // opening quote
                // Scan for `"` followed by `fence` hashes.
    'outer: while let Some(ch) = cur.bump() {
        if ch == '"' {
            let mut look = cur.chars.clone();
            for _ in 0..fence {
                if look.next() != Some('#') {
                    continue 'outer;
                }
            }
            for _ in 0..fence {
                cur.bump();
            }
            return true;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(text: &str) -> Vec<String> {
        tokenize(text)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r##"
            // HashMap in a line comment
            /* HashMap in /* a nested */ block comment */
            let a = "HashMap in a string";
            let b = r#"HashMap in a raw string"#;
            let c = b"HashMap bytes";
            let real = HashMap::new();
        "##;
        let ids = idents(src);
        assert_eq!(ids.iter().filter(|i| *i == "HashMap").count(), 1, "{ids:?}");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = tokenize("fn f<'a>(x: &'a str) -> char { 'x' }").tokens;
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 1);
    }

    #[test]
    fn escaped_char_literals_lex() {
        let toks = tokenize(r"let nl = '\n'; let q = '\''; let sp = ' ';").tokens;
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokenKind::Literal).count(),
            3
        );
    }

    #[test]
    fn raw_identifiers_normalize() {
        assert_eq!(idents("let r#type = 1;"), vec!["let", "type"]);
    }

    #[test]
    fn compound_operators_fuse() {
        let texts: Vec<String> = tokenize("a += b; c::d; e -> f; g -= h; i *= j")
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Punct && t.text.len() == 2)
            .map(|t| t.text)
            .collect();
        assert_eq!(texts, vec!["+=", "::", "->", "-=", "*="]);
    }

    #[test]
    fn allow_directives_are_collected() {
        let src = "
            let x = 1; // lint:allow(P001): justified
            /* lint:allow(D001, D002) block form */
            let y = 2;
        ";
        let ts = tokenize(src);
        assert_eq!(ts.allows.len(), 2);
        assert_eq!(ts.allows[0].rules, vec!["P001"]);
        assert_eq!(ts.allows[0].line, 2);
        assert_eq!(ts.allows[1].rules, vec!["D001", "D002"]);
    }

    #[test]
    fn ordered_directives_require_a_reason() {
        let src = "
            let a: f64 = xs.iter().sum(); // lint:ordered: slice order is insertion order
            let b: f64 = ys.iter().sum(); // lint:ordered:
            /* lint:ordered: block form reason */
        ";
        let ts = tokenize(src);
        let lines: Vec<u32> = ts.ordered.iter().map(|o| o.line).collect();
        assert_eq!(lines, vec![2, 4], "reason-less directive must be ignored");
    }

    #[test]
    fn positions_are_one_based_lines() {
        let toks = tokenize("a\n  b").tokens;
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn numeric_literals_do_not_eat_ranges_or_calls() {
        let toks = tokenize("0..16 1.5 2.max(3)").tokens;
        let nums: Vec<String> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, vec!["0", "16", "1.5", "2", "3"]);
        assert!(toks.iter().any(|t| t.text == "max"));
    }

    #[test]
    fn unterminated_string_degrades_gracefully() {
        let ts = tokenize("let s = \"never closed");
        assert!(ts.tokens.iter().any(|t| t.kind == TokenKind::Literal));
    }
}
