//! A forgiving recursive-descent parser over the [`crate::tokenizer`]
//! stream, producing the simplified item tree the semantic S-rules walk.
//!
//! This is *not* a Rust parser; it is a lint-grade approximation with
//! three hard guarantees the rules (and the proptest suite) rely on:
//!
//! 1. **Never panics, never hangs.** Every loop makes token progress and
//!    recursion is capped at [`MAX_DEPTH`]; unparseable stretches degrade
//!    to [`Expr::Err`] nodes instead of failing the file.
//! 2. **Reads vs. writes are distinguished where the rules need it.**
//!    A struct-literal initializer key (`FleetReport { retries: 0, … }`)
//!    is recorded as an *init*, never as a field read — S001's coverage
//!    question is "is this counter ever *read* on the merge path", and
//!    initializing a field to zero must not count.
//! 3. **Positions survive.** Every node that can anchor a finding keeps
//!    the 1-based line/column of its defining token.
//!
//! The grammar subset: items (structs with fields, enums with variants,
//! fns with signatures and bodies, impl/mod/trait containers), statements,
//! and a Pratt expression core (paths, calls, method calls with turbofish,
//! field access, struct literals, closures, match arms, casts, the full
//! binary-operator ladder). Multi-character operators the tokenizer leaves
//! unfused (`==`, `=>`, `..`, `&&`, `<<`, …) are recognized by token
//! adjacency.

use crate::tokenizer::{Token, TokenKind};

/// Recursion cap: deeper nesting degrades to [`Expr::Err`] rather than
/// risking the stack. Real workspace code nests far shallower.
const MAX_DEPTH: u32 = 64;

/// Loop-iteration cap for the skip helpers (defense in depth; the
/// progress guarantees make it unreachable on any finite token stream).
const MAX_SKIP: usize = 1 << 20;

/// Simplified item tree of one source file.
#[derive(Debug, Clone, Default)]
pub struct ParseTree {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

/// One top-level or container-nested item.
#[derive(Debug, Clone)]
pub enum Item {
    /// `struct Name { fields… }` (unit and tuple structs keep an empty
    /// field list).
    Struct(StructDef),
    /// `enum Name { variants… }`.
    Enum(EnumDef),
    /// `fn name(sig) { body }`.
    Fn(FnDef),
    /// `impl [Trait for] Type { items… }`.
    Impl(ImplDef),
    /// `mod name { items… }`.
    Mod(ModDef),
    /// `trait Name { items… }`.
    Trait(TraitDef),
}

/// A struct definition.
#[derive(Debug, Clone)]
pub struct StructDef {
    /// Type name.
    pub name: String,
    /// 1-based line of the name token.
    pub line: u32,
    /// 1-based column of the name token.
    pub col: u32,
    /// Token index of the name (for test-range checks).
    pub tok_ix: usize,
    /// Named fields, in declaration order.
    pub fields: Vec<FieldDef>,
}

/// One named struct field.
#[derive(Debug, Clone)]
pub struct FieldDef {
    /// Field name.
    pub name: String,
    /// Type as space-joined tokens (`Vec < ReplicaStats >`).
    pub ty: String,
    /// 1-based line of the field name.
    pub line: u32,
    /// 1-based column of the field name.
    pub col: u32,
}

/// An enum definition (variant names only — enough for drift rules).
#[derive(Debug, Clone)]
pub struct EnumDef {
    /// Type name.
    pub name: String,
    /// 1-based line of the name token.
    pub line: u32,
    /// Token index of the name.
    pub tok_ix: usize,
    /// Variant names in declaration order.
    pub variants: Vec<String>,
}

/// A function definition.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// 1-based line of the name token.
    pub line: u32,
    /// 1-based column of the name token.
    pub col: u32,
    /// Token index of the name (for test-range checks).
    pub tok_ix: usize,
    /// Signature after the name, space-joined (`( & self , other : & FleetReport ) -> f64`).
    pub sig: String,
    /// Body statements/expressions (empty for declarations).
    pub body: Vec<Expr>,
}

/// An `impl` block.
#[derive(Debug, Clone)]
pub struct ImplDef {
    /// The implementing type's head identifier (`FleetReport` for
    /// `impl Trait for FleetReport<…>`).
    pub self_ty: String,
    /// Items inside the block.
    pub items: Vec<Item>,
}

/// An inline module.
#[derive(Debug, Clone)]
pub struct ModDef {
    /// Module name.
    pub name: String,
    /// Items inside the block (empty for `mod name;`).
    pub items: Vec<Item>,
}

/// A trait definition (holds default-method bodies).
#[derive(Debug, Clone)]
pub struct TraitDef {
    /// Trait name.
    pub name: String,
    /// Items inside the block.
    pub items: Vec<Item>,
}

/// One struct-literal initializer: `name: value`, shorthand `name`, or
/// the functional-update base (recorded with name `".."`).
#[derive(Debug, Clone)]
pub struct FieldInit {
    /// Field name being *written* (never a read).
    pub name: String,
    /// Initializer expression (`None` for shorthand).
    pub value: Option<Expr>,
    /// 1-based line of the key.
    pub line: u32,
    /// 1-based column of the key.
    pub col: u32,
}

/// One `match` arm.
#[derive(Debug, Clone)]
pub struct Arm {
    /// Identifier tokens appearing in the pattern (path segments,
    /// bindings, enum names).
    pub pat_idents: Vec<String>,
    /// Whether the pattern is exactly the wildcard `_`.
    pub wildcard: bool,
    /// 1-based line of the pattern start.
    pub line: u32,
    /// 1-based column of the pattern start.
    pub col: u32,
    /// Arm body (guard expressions are folded in as a tuple element).
    pub body: Expr,
}

/// A `match` expression.
#[derive(Debug, Clone)]
pub struct MatchExpr {
    /// Scrutinee expression.
    pub scrutinee: Box<Expr>,
    /// Arms in source order.
    pub arms: Vec<Arm>,
    /// 1-based line of the `match` keyword.
    pub line: u32,
    /// 1-based column of the `match` keyword.
    pub col: u32,
}

/// Simplified expression node.
#[derive(Debug, Clone)]
pub enum Expr {
    /// A lone identifier (includes `_`, `true`, keywords used as values).
    Ident {
        /// Identifier text.
        name: String,
        /// 1-based line.
        line: u32,
        /// 1-based column.
        col: u32,
    },
    /// A `::`-separated path (`f64::INFINITY`, `SimError::QueueFull`).
    Path {
        /// Segments in order.
        segs: Vec<String>,
        /// 1-based line of the first segment.
        line: u32,
        /// 1-based column of the first segment.
        col: u32,
    },
    /// Numeric literal (text kept for float detection).
    Number {
        /// Literal text (`0.0f32`, `42`).
        text: String,
    },
    /// String/char/bool literal.
    Literal,
    /// Field access `base.name` — always a *read*.
    Field {
        /// Receiver.
        base: Box<Expr>,
        /// Field name (or tuple index).
        name: String,
        /// 1-based line of the name.
        line: u32,
        /// 1-based column of the name.
        col: u32,
    },
    /// Method call `base.name::<T>(args)`.
    Method {
        /// Receiver.
        base: Box<Expr>,
        /// Method name.
        name: String,
        /// Identifiers inside the turbofish, if any (`["f64"]`).
        turbofish: Vec<String>,
        /// Arguments.
        args: Vec<Expr>,
        /// 1-based line of the name.
        line: u32,
        /// 1-based column of the name.
        col: u32,
    },
    /// Call `callee(args)` — also macro invocations `name!(args)`.
    Call {
        /// Callee expression (path for macros).
        callee: Box<Expr>,
        /// Arguments (macro bodies parse as comma-separated exprs).
        args: Vec<Expr>,
    },
    /// Index `base[index]`.
    Index {
        /// Receiver.
        base: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
    /// Prefix operator (`-x`, `!x`, `*x`, `&x`) or value-carrying
    /// keyword (`return x`) — unit-preserving.
    Unary(Box<Expr>),
    /// `expr as Type` — unit-preserving (the type is not kept).
    Cast(Box<Expr>),
    /// Binary operation.
    Binary {
        /// Operator text (`+`, `<=`, `&&`, `=`, `..`).
        op: String,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// 1-based line of the operator.
        line: u32,
        /// 1-based column of the operator.
        col: u32,
    },
    /// Struct literal `Name { inits }` — keys are writes, values reads.
    StructLit {
        /// Struct (or enum-variant) head name.
        name: String,
        /// Initializers in source order.
        inits: Vec<FieldInit>,
        /// 1-based line of the name.
        line: u32,
        /// 1-based column of the name.
        col: u32,
    },
    /// Closure `|args| body` (parameter patterns are not kept).
    Closure(Box<Expr>),
    /// `match` expression.
    Match(MatchExpr),
    /// Block `{ stmts }` (also if/loop bodies).
    Block(Vec<Expr>),
    /// Grouping without its own semantics: tuples, arrays, if/while/for
    /// condition+body bundles, macro argument lists.
    Tuple(Vec<Expr>),
    /// Unparseable stretch — recovery placeholder.
    Err,
}

impl Expr {
    /// Calls `f` on this node and every child, pre-order.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Ident { .. }
            | Expr::Path { .. }
            | Expr::Number { .. }
            | Expr::Literal
            | Expr::Err => {}
            Expr::Field { base, .. } => base.walk(f),
            Expr::Method { base, args, .. } => {
                base.walk(f);
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Call { callee, args } => {
                callee.walk(f);
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Index { base, index } => {
                base.walk(f);
                index.walk(f);
            }
            Expr::Unary(e) | Expr::Cast(e) | Expr::Closure(e) => e.walk(f),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.walk(f);
                rhs.walk(f);
            }
            Expr::StructLit { inits, .. } => {
                for init in inits {
                    if let Some(v) = &init.value {
                        v.walk(f);
                    }
                }
            }
            Expr::Match(m) => {
                m.scrutinee.walk(f);
                for arm in &m.arms {
                    arm.body.walk(f);
                }
            }
            Expr::Block(es) | Expr::Tuple(es) => {
                for e in es {
                    e.walk(f);
                }
            }
        }
    }
}

impl ParseTree {
    /// Calls `f` on every function in the tree (any nesting), with the
    /// `impl` self-type when inside an impl block.
    pub fn for_each_fn<'a>(&'a self, f: &mut impl FnMut(&'a FnDef, Option<&'a str>)) {
        fn rec<'a>(
            items: &'a [Item],
            self_ty: Option<&'a str>,
            f: &mut impl FnMut(&'a FnDef, Option<&'a str>),
        ) {
            for item in items {
                match item {
                    Item::Fn(func) => f(func, self_ty),
                    Item::Impl(im) => rec(&im.items, Some(&im.self_ty), f),
                    Item::Mod(m) => rec(&m.items, self_ty, f),
                    Item::Trait(t) => rec(&t.items, None, f),
                    Item::Struct(_) | Item::Enum(_) => {}
                }
            }
        }
        rec(&self.items, None, f);
    }

    /// Calls `f` on every struct definition in the tree.
    pub fn for_each_struct<'a>(&'a self, f: &mut impl FnMut(&'a StructDef)) {
        fn rec<'a>(items: &'a [Item], f: &mut impl FnMut(&'a StructDef)) {
            for item in items {
                match item {
                    Item::Struct(s) => f(s),
                    Item::Impl(im) => rec(&im.items, f),
                    Item::Mod(m) => rec(&m.items, f),
                    Item::Trait(t) => rec(&t.items, f),
                    Item::Fn(_) | Item::Enum(_) => {}
                }
            }
        }
        rec(&self.items, f);
    }
}

/// Parses a token stream into the simplified item tree. Infallible:
/// malformed input produces partial items and [`Expr::Err`] nodes.
#[must_use]
pub fn parse(tokens: &[Token]) -> ParseTree {
    let mut p = Parser { t: tokens, i: 0 };
    ParseTree {
        items: p.parse_items(0),
    }
}

struct Parser<'a> {
    t: &'a [Token],
    i: usize,
}

/// Binding powers for the Pratt loop (higher binds tighter).
const BP_ASSIGN: u8 = 2;
const BP_RANGE: u8 = 3;
const BP_OR: u8 = 4;
const BP_AND: u8 = 5;
const BP_CMP: u8 = 6;
const BP_BITOR: u8 = 7;
const BP_BITXOR: u8 = 8;
const BP_BITAND: u8 = 9;
const BP_SHIFT: u8 = 10;
const BP_ADD: u8 = 11;
const BP_MUL: u8 = 12;

impl<'a> Parser<'a> {
    fn tok(&self, off: usize) -> Option<&'a Token> {
        self.t.get(self.i + off)
    }

    fn text(&self, off: usize) -> &'a str {
        self.tok(off).map_or("", |t| t.text.as_str())
    }

    fn kind(&self, off: usize) -> Option<TokenKind> {
        self.tok(off).map(|t| t.kind)
    }

    fn pos(&self) -> (u32, u32) {
        self.tok(0).map_or((0, 0), |t| (t.line, t.col))
    }

    fn done(&self) -> bool {
        self.i >= self.t.len()
    }

    fn bump(&mut self) {
        self.i += 1;
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.text(0) == s {
            self.bump();
            true
        } else {
            false
        }
    }

    /// Whether the token at `off` starts exactly where the token at
    /// `off-1` ends — how unfused multi-char operators are recognized.
    fn adjacent(&self, off: usize) -> bool {
        match (self.tok(off.wrapping_sub(1)), self.tok(off)) {
            (Some(a), Some(b)) => {
                a.line == b.line && b.col == a.col + a.text.chars().count() as u32
            }
            _ => false,
        }
    }

    // ---- items ------------------------------------------------------

    /// Parses items until `}` (not consumed) or end of input.
    fn parse_items(&mut self, depth: u32) -> Vec<Item> {
        let mut items = Vec::new();
        if depth > MAX_DEPTH {
            return items;
        }
        while !self.done() {
            if self.text(0) == "}" {
                break;
            }
            let before = self.i;
            self.skip_item_prelude();
            match self.text(0) {
                "struct" => {
                    if let Some(s) = self.parse_struct() {
                        items.push(Item::Struct(s));
                    }
                }
                "enum" => {
                    if let Some(e) = self.parse_enum() {
                        items.push(Item::Enum(e));
                    }
                }
                "fn" => {
                    if let Some(f) = self.parse_fn(depth + 1) {
                        items.push(Item::Fn(f));
                    }
                }
                "impl" => {
                    if let Some(im) = self.parse_impl(depth + 1) {
                        items.push(Item::Impl(im));
                    }
                }
                "mod" => {
                    if let Some(m) = self.parse_mod(depth + 1) {
                        items.push(Item::Mod(m));
                    }
                }
                "trait" => {
                    if let Some(t) = self.parse_trait(depth + 1) {
                        items.push(Item::Trait(t));
                    }
                }
                "use" | "type" | "static" => self.skip_to_semi(),
                "const" => {
                    // `const fn` is a qualifier; `const NAME: T = …;` an item.
                    if self.text(1) == "fn" {
                        self.bump();
                    } else {
                        self.skip_to_semi();
                    }
                }
                "unsafe" | "async" | "default" => {
                    self.bump(); // qualifier — re-dispatch next iteration
                }
                "extern" => {
                    self.bump();
                    if self.kind(0) == Some(TokenKind::Literal) {
                        self.bump();
                    }
                }
                "macro_rules" => {
                    self.bump();
                    self.eat("!");
                    if self.kind(0) == Some(TokenKind::Ident) {
                        self.bump();
                    }
                    if self.text(0) == "{" {
                        self.skip_balanced("{", "}");
                    }
                }
                _ => {
                    // Item-level macro invocation or unparseable: recover.
                    if self.kind(0) == Some(TokenKind::Ident) && self.text(1) == "!" {
                        self.bump();
                        self.bump();
                        match self.text(0) {
                            "{" => self.skip_balanced("{", "}"),
                            "(" => self.skip_balanced("(", ")"),
                            "[" => self.skip_balanced("[", "]"),
                            _ => {}
                        }
                    } else {
                        self.bump();
                    }
                }
            }
            if self.i == before && self.text(0) != "}" {
                self.bump();
            }
        }
        items
    }

    /// Skips attributes (`#[…]`, `#![…]`) and visibility (`pub(…)`).
    fn skip_item_prelude(&mut self) {
        let mut guard = 0usize;
        loop {
            guard += 1;
            if guard > MAX_SKIP {
                return;
            }
            if self.text(0) == "#"
                && (self.text(1) == "[" || (self.text(1) == "!" && self.text(2) == "["))
            {
                self.bump();
                self.eat("!");
                self.skip_balanced("[", "]");
                continue;
            }
            if self.text(0) == "pub" {
                self.bump();
                if self.text(0) == "(" {
                    self.skip_balanced("(", ")");
                }
                continue;
            }
            return;
        }
    }

    fn parse_struct(&mut self) -> Option<StructDef> {
        self.bump(); // struct
        if self.kind(0) != Some(TokenKind::Ident) {
            return None;
        }
        let (line, col) = self.pos();
        let tok_ix = self.i;
        let name = self.text(0).to_string();
        self.bump();
        if self.text(0) == "<" {
            self.skip_angles();
        }
        let mut def = StructDef {
            name,
            line,
            col,
            tok_ix,
            fields: Vec::new(),
        };
        let mut guard = 0usize;
        loop {
            guard += 1;
            if guard > MAX_SKIP || self.done() {
                return Some(def);
            }
            match self.text(0) {
                ";" => {
                    self.bump();
                    return Some(def);
                }
                "(" => {
                    // Tuple struct: positional fields carry no names for
                    // coverage rules; skip them.
                    self.skip_balanced("(", ")");
                }
                "where" => self.skip_where(),
                "{" => {
                    self.bump();
                    def.fields = self.parse_fields();
                    return Some(def);
                }
                "}" => return Some(def),
                _ => self.bump(),
            }
        }
    }

    /// Parses named fields up to and including the closing `}`.
    fn parse_fields(&mut self) -> Vec<FieldDef> {
        let mut fields = Vec::new();
        let mut guard = 0usize;
        while !self.done() {
            guard += 1;
            if guard > MAX_SKIP {
                break;
            }
            if self.eat("}") {
                break;
            }
            self.skip_item_prelude();
            if self.kind(0) != Some(TokenKind::Ident) || self.text(1) != ":" {
                if !self.eat(",") && self.text(0) != "}" {
                    self.bump(); // recovery
                }
                continue;
            }
            let (line, col) = self.pos();
            let fname = self.text(0).to_string();
            self.bump(); // name
            self.bump(); // :
            let mut ty = String::new();
            let (mut paren, mut bracket, mut angle) = (0i32, 0i32, 0i32);
            while !self.done() {
                match self.text(0) {
                    "," if paren == 0 && bracket == 0 && angle <= 0 => break,
                    "}" if paren == 0 && bracket == 0 => break,
                    "(" => paren += 1,
                    ")" => paren -= 1,
                    "[" => bracket += 1,
                    "]" => bracket -= 1,
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    _ => {}
                }
                if !ty.is_empty() {
                    ty.push(' ');
                }
                ty.push_str(self.text(0));
                self.bump();
            }
            fields.push(FieldDef {
                name: fname,
                ty,
                line,
                col,
            });
            self.eat(",");
        }
        fields
    }

    fn parse_enum(&mut self) -> Option<EnumDef> {
        self.bump(); // enum
        if self.kind(0) != Some(TokenKind::Ident) {
            return None;
        }
        let (line, _) = self.pos();
        let tok_ix = self.i;
        let name = self.text(0).to_string();
        self.bump();
        if self.text(0) == "<" {
            self.skip_angles();
        }
        if self.text(0) == "where" {
            self.skip_where();
        }
        let mut variants = Vec::new();
        if self.eat("{") {
            let mut guard = 0usize;
            while !self.done() {
                guard += 1;
                if guard > MAX_SKIP {
                    break;
                }
                if self.eat("}") {
                    break;
                }
                self.skip_item_prelude();
                if self.kind(0) == Some(TokenKind::Ident) {
                    variants.push(self.text(0).to_string());
                    self.bump();
                    match self.text(0) {
                        "(" => self.skip_balanced("(", ")"),
                        "{" => self.skip_balanced("{", "}"),
                        _ => {}
                    }
                    if self.eat("=") {
                        // Discriminant: skip to `,` / `}`.
                        while !self.done() && self.text(0) != "," && self.text(0) != "}" {
                            self.bump();
                        }
                    }
                    self.eat(",");
                } else if !self.eat(",") {
                    self.bump(); // recovery
                }
            }
        }
        Some(EnumDef {
            name,
            line,
            tok_ix,
            variants,
        })
    }

    fn parse_fn(&mut self, depth: u32) -> Option<FnDef> {
        self.bump(); // fn
        if self.kind(0) != Some(TokenKind::Ident) {
            return None;
        }
        let (line, col) = self.pos();
        let tok_ix = self.i;
        let name = self.text(0).to_string();
        self.bump();
        let mut sig = String::new();
        let (mut paren, mut bracket, mut angle) = (0i32, 0i32, 0i32);
        let mut guard = 0usize;
        loop {
            guard += 1;
            if guard > MAX_SKIP || self.done() {
                return Some(FnDef {
                    name,
                    line,
                    col,
                    tok_ix,
                    sig,
                    body: Vec::new(),
                });
            }
            match self.text(0) {
                "{" if paren == 0 && bracket == 0 && angle <= 0 => break,
                ";" if paren == 0 && bracket == 0 && angle <= 0 => {
                    self.bump();
                    return Some(FnDef {
                        name,
                        line,
                        col,
                        tok_ix,
                        sig,
                        body: Vec::new(),
                    });
                }
                "(" => paren += 1,
                ")" => paren -= 1,
                "[" => bracket += 1,
                "]" => bracket -= 1,
                "<" => angle += 1,
                ">" => angle -= 1,
                _ => {}
            }
            if !sig.is_empty() {
                sig.push(' ');
            }
            sig.push_str(self.text(0));
            self.bump();
        }
        self.bump(); // {
        let body = self.parse_block_stmts(depth + 1);
        Some(FnDef {
            name,
            line,
            col,
            tok_ix,
            sig,
            body,
        })
    }

    fn parse_impl(&mut self, depth: u32) -> Option<ImplDef> {
        self.bump(); // impl
        if self.text(0) == "<" {
            self.skip_angles();
        }
        // Collect head tokens up to `for` / `where` / `{`; the self type
        // is the head after `for` when present (trait impl), else the
        // first head.
        let mut head: Vec<String> = Vec::new();
        let mut after_for: Vec<String> = Vec::new();
        let mut saw_for = false;
        let mut guard = 0usize;
        loop {
            guard += 1;
            if guard > MAX_SKIP || self.done() {
                return None;
            }
            match self.text(0) {
                "{" => break,
                "where" => self.skip_where(),
                "for" => {
                    saw_for = true;
                    self.bump();
                }
                "<" => self.skip_angles(),
                _ => {
                    if self.kind(0) == Some(TokenKind::Ident) {
                        if saw_for {
                            after_for.push(self.text(0).to_string());
                        } else {
                            head.push(self.text(0).to_string());
                        }
                    }
                    self.bump();
                }
            }
        }
        self.bump(); // {
        let ty_segs = if saw_for { &after_for } else { &head };
        // Last path segment of the type head (skip `dyn`/`mut` keywords).
        let self_ty = ty_segs
            .iter()
            .rev()
            .find(|s| !matches!(s.as_str(), "dyn" | "mut" | "const"))
            .cloned()
            .unwrap_or_default();
        let items = self.parse_items(depth + 1);
        self.eat("}");
        Some(ImplDef { self_ty, items })
    }

    fn parse_mod(&mut self, depth: u32) -> Option<ModDef> {
        self.bump(); // mod
        if self.kind(0) != Some(TokenKind::Ident) {
            return None;
        }
        let name = self.text(0).to_string();
        self.bump();
        let mut items = Vec::new();
        if self.eat("{") {
            items = self.parse_items(depth + 1);
            self.eat("}");
        } else {
            self.eat(";");
        }
        Some(ModDef { name, items })
    }

    fn parse_trait(&mut self, depth: u32) -> Option<TraitDef> {
        self.bump(); // trait
        if self.kind(0) != Some(TokenKind::Ident) {
            return None;
        }
        let name = self.text(0).to_string();
        self.bump();
        if self.text(0) == "<" {
            self.skip_angles();
        }
        // Supertraits / where clause: skip to `{` or `;`.
        let mut guard = 0usize;
        while !self.done() && self.text(0) != "{" && self.text(0) != ";" {
            guard += 1;
            if guard > MAX_SKIP {
                break;
            }
            if self.text(0) == "<" {
                self.skip_angles();
            } else {
                self.bump();
            }
        }
        let mut items = Vec::new();
        if self.eat("{") {
            items = self.parse_items(depth + 1);
            self.eat("}");
        } else {
            self.eat(";");
        }
        Some(TraitDef { name, items })
    }

    // ---- statements ---------------------------------------------------

    /// Parses statements up to and including the closing `}`.
    fn parse_block_stmts(&mut self, depth: u32) -> Vec<Expr> {
        let mut out = Vec::new();
        if depth > MAX_DEPTH {
            // Too deep: skip the block wholesale (the `{` was consumed).
            let mut brace = 1i32;
            while !self.done() && brace > 0 {
                match self.text(0) {
                    "{" => brace += 1,
                    "}" => brace -= 1,
                    _ => {}
                }
                self.bump();
            }
            return out;
        }
        while !self.done() {
            if self.eat("}") {
                return out;
            }
            let before = self.i;
            match self.text(0) {
                ";" => {
                    self.bump();
                }
                "#" => {
                    self.bump();
                    self.eat("!");
                    if self.text(0) == "[" {
                        self.skip_balanced("[", "]");
                    }
                }
                "let" => out.push(self.parse_let(depth + 1)),
                "use" | "type" => self.skip_to_semi(),
                "const" | "static" if self.text(1) != "fn" => self.skip_to_semi(),
                "fn" => {
                    // Nested fn: keep its body walkable, drop the name.
                    if let Some(f) = self.parse_fn(depth + 1) {
                        out.push(Expr::Block(f.body));
                    }
                }
                "struct" => {
                    let _ = self.parse_struct();
                }
                "enum" => {
                    let _ = self.parse_enum();
                }
                "impl" => {
                    let _ = self.parse_impl(depth + 1);
                }
                "mod" => {
                    let _ = self.parse_mod(depth + 1);
                }
                "trait" => {
                    let _ = self.parse_trait(depth + 1);
                }
                _ => {
                    let e = self.parse_expr(depth + 1, true);
                    out.push(e);
                    self.eat(";");
                }
            }
            if self.i == before && self.text(0) != "}" {
                self.bump();
            }
        }
        out
    }

    /// `let PAT(: TY)? = EXPR (else { … })? ;` — returns the initializer
    /// (pattern and type are consumed, not kept).
    fn parse_let(&mut self, depth: u32) -> Expr {
        self.bump(); // let
        self.skip_pattern_until_eq_or_semi();
        if self.text(0) != "=" {
            self.eat(";");
            return Expr::Err;
        }
        self.bump(); // =
        let value = self.parse_expr(depth + 1, true);
        if self.text(0) == "else" && self.text(1) == "{" {
            self.bump();
            self.bump();
            let alt = Expr::Block(self.parse_block_stmts(depth + 1));
            self.eat(";");
            return Expr::Tuple(vec![value, alt]);
        }
        self.eat(";");
        value
    }

    /// Consumes pattern (and optional type ascription) tokens up to a
    /// top-level `=` (not consumed) or `;`/`}` (not consumed).
    fn skip_pattern_until_eq_or_semi(&mut self) {
        let (mut paren, mut bracket, mut brace, mut angle) = (0i32, 0i32, 0i32, 0i32);
        let mut guard = 0usize;
        while !self.done() {
            guard += 1;
            if guard > MAX_SKIP {
                return;
            }
            let at_top = paren == 0 && bracket == 0 && brace == 0 && angle <= 0;
            match self.text(0) {
                // `..=` inside range patterns: consume the `=` with the dots.
                "." if self.text(1) == "." => {
                    self.bump();
                    self.bump();
                    self.eat("=");
                    continue;
                }
                "=" if at_top => return,
                ";" | "}" if at_top => return,
                "(" => paren += 1,
                ")" => paren -= 1,
                "[" => bracket += 1,
                "]" => bracket -= 1,
                "{" => brace += 1,
                "}" => brace -= 1,
                "<" => angle += 1,
                ">" => angle -= 1,
                _ => {}
            }
            self.bump();
        }
    }

    // ---- expressions ----------------------------------------------------

    /// Parses one expression. `struct_ok` gates struct-literal parsing
    /// (off in `if`/`while`/`for`/`match`-header position, like Rust).
    fn parse_expr(&mut self, depth: u32, struct_ok: bool) -> Expr {
        self.parse_bp(depth, 0, struct_ok)
    }

    /// Multi-token infix operator at the cursor: `(text, token_count,
    /// binding_power)`. `=>` is never an operator (match arrows stop the
    /// loop).
    fn peek_binop(&self) -> Option<(&'static str, usize, u8)> {
        let a = self.text(0);
        match a {
            "+=" => return Some(("+=", 1, BP_ASSIGN)),
            "-=" => return Some(("-=", 1, BP_ASSIGN)),
            "*=" => return Some(("*=", 1, BP_ASSIGN)),
            "/=" => return Some(("/=", 1, BP_ASSIGN)),
            _ => {}
        }
        let b = if self.adjacent(1) { self.text(1) } else { "" };
        let c = if !b.is_empty() && self.adjacent(2) {
            self.text(2)
        } else {
            ""
        };
        Some(match (a, b, c) {
            (".", ".", "=") => ("..=", 3, BP_RANGE),
            (".", ".", _) => ("..", 2, BP_RANGE),
            ("=", ">", _) => return None, // match arm arrow
            ("=", "=", _) => ("==", 2, BP_CMP),
            ("!", "=", _) => ("!=", 2, BP_CMP),
            ("<", "=", _) => ("<=", 2, BP_CMP),
            (">", "=", _) => (">=", 2, BP_CMP),
            ("<", "<", _) => ("<<", 2, BP_SHIFT),
            (">", ">", _) => (">>", 2, BP_SHIFT),
            ("&", "&", _) => ("&&", 2, BP_AND),
            ("|", "|", _) => ("||", 2, BP_OR),
            ("%", "=", _) => ("%=", 2, BP_ASSIGN),
            ("=", _, _) => ("=", 1, BP_ASSIGN),
            ("<", _, _) => ("<", 1, BP_CMP),
            (">", _, _) => (">", 1, BP_CMP),
            ("|", _, _) => ("|", 1, BP_BITOR),
            ("^", _, _) => ("^", 1, BP_BITXOR),
            ("&", _, _) => ("&", 1, BP_BITAND),
            ("+", _, _) => ("+", 1, BP_ADD),
            ("-", _, _) => ("-", 1, BP_ADD),
            ("*", _, _) => ("*", 1, BP_MUL),
            ("/", _, _) => ("/", 1, BP_MUL),
            ("%", _, _) => ("%", 1, BP_MUL),
            _ => return None,
        })
    }

    fn parse_bp(&mut self, depth: u32, min_bp: u8, struct_ok: bool) -> Expr {
        if depth > MAX_DEPTH {
            if !self.done() && !matches!(self.text(0), ")" | "]" | "}" | "," | ";") {
                self.bump();
            }
            return Expr::Err;
        }
        let mut lhs = self.parse_prefix(depth + 1, struct_ok);
        let mut guard = 0usize;
        loop {
            guard += 1;
            if guard > MAX_SKIP {
                return lhs;
            }
            if self.text(0) == "as" {
                self.bump();
                self.skip_cast_type();
                lhs = Expr::Cast(Box::new(lhs));
                continue;
            }
            let Some((op, ntoks, bp)) = self.peek_binop() else {
                break;
            };
            if bp < min_bp {
                break;
            }
            let (line, col) = self.pos();
            for _ in 0..ntoks {
                self.bump();
            }
            // Open-ended ranges (`&xs[1..]`) have no right operand.
            let rhs = if (op == ".." || op == "..=")
                && matches!(self.text(0), ")" | "]" | "}" | "," | ";" | "")
            {
                Expr::Err
            } else {
                // Assignments are right-associative; everything else left.
                let next_min = if bp == BP_ASSIGN { bp } else { bp + 1 };
                self.parse_bp(depth + 1, next_min, struct_ok)
            };
            lhs = Expr::Binary {
                op: op.to_string(),
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
                col,
            };
        }
        lhs
    }

    fn parse_prefix(&mut self, depth: u32, struct_ok: bool) -> Expr {
        if depth > MAX_DEPTH {
            if !self.done() && !matches!(self.text(0), ")" | "]" | "}" | "," | ";") {
                self.bump();
            }
            return Expr::Err;
        }
        match self.text(0) {
            "-" | "!" | "*" => {
                self.bump();
                Expr::Unary(Box::new(self.parse_prefix(depth + 1, struct_ok)))
            }
            "&" => {
                self.bump();
                self.eat("mut");
                Expr::Unary(Box::new(self.parse_prefix(depth + 1, struct_ok)))
            }
            "move" => {
                self.bump();
                self.parse_prefix(depth + 1, struct_ok)
            }
            _ => {
                let p = self.parse_primary(depth + 1, struct_ok);
                self.parse_postfix(depth + 1, p)
            }
        }
    }

    #[allow(clippy::too_many_lines)] // one grammar dispatch, clearest flat
    fn parse_primary(&mut self, depth: u32, struct_ok: bool) -> Expr {
        if depth > MAX_DEPTH || self.done() {
            if !self.done() && !matches!(self.text(0), ")" | "]" | "}" | "," | ";") {
                self.bump();
            }
            return Expr::Err;
        }
        let (line, col) = self.pos();
        match self.kind(0) {
            Some(TokenKind::Number) => {
                let text = self.text(0).to_string();
                self.bump();
                Expr::Number { text }
            }
            Some(TokenKind::Literal) => {
                self.bump();
                Expr::Literal
            }
            Some(TokenKind::Lifetime) => {
                // Loop label: `'outer: loop { … }`.
                self.bump();
                self.eat(":");
                self.parse_primary(depth + 1, struct_ok)
            }
            Some(TokenKind::Ident) => match self.text(0) {
                "if" => self.parse_if(depth + 1),
                "match" => self.parse_match(depth + 1),
                "while" => {
                    self.bump();
                    if self.eat("let") {
                        self.skip_pattern_until_eq_or_semi();
                        self.eat("=");
                    }
                    let cond = self.parse_expr(depth + 1, false);
                    let body = self.parse_brace_block(depth + 1);
                    Expr::Tuple(vec![cond, body])
                }
                "loop" => {
                    self.bump();
                    self.parse_brace_block(depth + 1)
                }
                "for" => {
                    self.bump();
                    // Pattern up to `in`.
                    let (mut paren, mut bracket) = (0i32, 0i32);
                    let mut guard = 0usize;
                    while !self.done() {
                        guard += 1;
                        if guard > MAX_SKIP {
                            break;
                        }
                        match self.text(0) {
                            "in" if paren == 0 && bracket == 0 => break,
                            "{" | "}" | ";" => break, // malformed
                            "(" => paren += 1,
                            ")" => paren -= 1,
                            "[" => bracket += 1,
                            "]" => bracket -= 1,
                            _ => {}
                        }
                        self.bump();
                    }
                    self.eat("in");
                    let iter = self.parse_expr(depth + 1, false);
                    let body = self.parse_brace_block(depth + 1);
                    Expr::Tuple(vec![iter, body])
                }
                "return" | "break" => {
                    self.bump();
                    if matches!(self.text(0), ")" | "]" | "}" | "," | ";" | "") {
                        Expr::Ident {
                            name: "return".into(),
                            line,
                            col,
                        }
                    } else {
                        Expr::Unary(Box::new(self.parse_expr(depth + 1, struct_ok)))
                    }
                }
                "continue" => {
                    self.bump();
                    Expr::Ident {
                        name: "continue".into(),
                        line,
                        col,
                    }
                }
                "unsafe" => {
                    self.bump();
                    self.parse_brace_block(depth + 1)
                }
                _ => self.parse_path_based(depth + 1, struct_ok),
            },
            Some(TokenKind::Punct) => match self.text(0) {
                "(" => {
                    self.bump();
                    let items = self.parse_comma_exprs(depth + 1, ")");
                    if items.len() == 1 {
                        items.into_iter().next().unwrap_or(Expr::Err)
                    } else {
                        Expr::Tuple(items)
                    }
                }
                "[" => {
                    self.bump();
                    Expr::Tuple(self.parse_comma_exprs(depth + 1, "]"))
                }
                "{" => {
                    self.bump();
                    Expr::Block(self.parse_block_stmts(depth + 1))
                }
                "|" => self.parse_closure(depth + 1),
                ")" | "]" | "}" | "," | ";" => Expr::Err, // never consume closers
                _ => {
                    self.bump();
                    Expr::Err
                }
            },
            None => Expr::Err,
        }
    }

    /// Path, macro invocation, struct literal, or plain identifier.
    fn parse_path_based(&mut self, depth: u32, struct_ok: bool) -> Expr {
        let (line, col) = self.pos();
        let mut segs = vec![self.text(0).to_string()];
        self.bump();
        let mut guard = 0usize;
        while self.text(0) == "::" {
            guard += 1;
            if guard > MAX_SKIP {
                break;
            }
            if self.text(1) == "<" {
                // Path turbofish (`Vec::<f64>::new`): skip the types.
                self.bump();
                self.skip_angles();
                continue;
            }
            if self.kind(1) == Some(TokenKind::Ident) {
                segs.push(self.text(1).to_string());
                self.bump();
                self.bump();
                continue;
            }
            break;
        }
        // Macro invocation: arguments parse as comma-separated exprs so
        // field reads inside `format!` / `assert!` bodies still count.
        if self.text(0) == "!" && matches!(self.text(1), "(" | "[" | "{") {
            self.bump();
            let close = match self.text(0) {
                "(" => ")",
                "[" => "]",
                _ => "}",
            };
            self.bump();
            let args = self.parse_comma_exprs(depth + 1, close);
            return Expr::Call {
                callee: Box::new(Expr::Path { segs, line, col }),
                args,
            };
        }
        // Struct literal: `Path {` with an uppercase head, where allowed.
        let head_upper = segs
            .last()
            .and_then(|s| s.chars().next())
            .is_some_and(char::is_uppercase);
        if self.text(0) == "{" && struct_ok && head_upper {
            let name = segs.last().cloned().unwrap_or_default();
            return self.parse_struct_lit(depth + 1, name, line, col);
        }
        if segs.len() == 1 {
            Expr::Ident {
                name: segs.pop().unwrap_or_default(),
                line,
                col,
            }
        } else {
            Expr::Path { segs, line, col }
        }
    }

    fn parse_struct_lit(&mut self, depth: u32, name: String, line: u32, col: u32) -> Expr {
        self.bump(); // {
        let mut inits = Vec::new();
        let mut guard = 0usize;
        while !self.done() {
            guard += 1;
            if guard > MAX_SKIP {
                break;
            }
            if self.eat("}") {
                break;
            }
            let before = self.i;
            self.skip_item_prelude();
            if self.text(0) == "." && self.text(1) == "." {
                // Functional update: `..base`.
                let (bline, bcol) = self.pos();
                self.bump();
                self.bump();
                let base = self.parse_expr(depth + 1, true);
                inits.push(FieldInit {
                    name: "..".into(),
                    value: Some(base),
                    line: bline,
                    col: bcol,
                });
            } else if self.kind(0) == Some(TokenKind::Ident) {
                let (fline, fcol) = self.pos();
                let fname = self.text(0).to_string();
                self.bump();
                let value = if self.eat(":") {
                    Some(self.parse_expr(depth + 1, true))
                } else {
                    None // shorthand
                };
                inits.push(FieldInit {
                    name: fname,
                    value,
                    line: fline,
                    col: fcol,
                });
            }
            self.eat(",");
            if self.i == before && self.text(0) != "}" {
                self.bump(); // recovery
            }
        }
        Expr::StructLit {
            name,
            inits,
            line,
            col,
        }
    }

    fn parse_closure(&mut self, depth: u32) -> Expr {
        self.bump(); // |
                     // Parameter patterns (with optional types) up to the closing `|`.
        let (mut paren, mut bracket, mut angle) = (0i32, 0i32, 0i32);
        let mut guard = 0usize;
        while !self.done() {
            guard += 1;
            if guard > MAX_SKIP {
                break;
            }
            match self.text(0) {
                "|" if paren == 0 && bracket == 0 && angle <= 0 => {
                    self.bump();
                    break;
                }
                "(" => paren += 1,
                ")" => paren -= 1,
                "[" => bracket += 1,
                "]" => bracket -= 1,
                "<" => angle += 1,
                ">" => angle -= 1,
                "{" | "}" | ";" => break, // malformed parameter list
                _ => {}
            }
            if self.text(0) != "|" || paren != 0 || bracket != 0 || angle > 0 {
                self.bump();
            }
        }
        if self.text(0) == "->" {
            // Return type: skip to the body `{`.
            self.bump();
            let mut g2 = 0usize;
            while !self.done() && self.text(0) != "{" && self.text(0) != ";" && self.text(0) != ","
            {
                g2 += 1;
                if g2 > MAX_SKIP {
                    break;
                }
                if self.text(0) == "<" {
                    self.skip_angles();
                } else {
                    self.bump();
                }
            }
        }
        Expr::Closure(Box::new(self.parse_expr(depth + 1, true)))
    }

    fn parse_if(&mut self, depth: u32) -> Expr {
        self.bump(); // if
        if self.eat("let") {
            self.skip_pattern_until_eq_or_semi();
            self.eat("=");
        }
        let cond = self.parse_expr(depth + 1, false);
        let mut parts = vec![cond];
        if self.text(0) == "{" {
            parts.push(self.parse_brace_block(depth + 1));
        }
        if self.eat("else") {
            if self.text(0) == "if" {
                parts.push(self.parse_if(depth + 1));
            } else if self.text(0) == "{" {
                parts.push(self.parse_brace_block(depth + 1));
            }
        }
        Expr::Tuple(parts)
    }

    fn parse_match(&mut self, depth: u32) -> Expr {
        let (line, col) = self.pos();
        self.bump(); // match
        let scrutinee = Box::new(self.parse_expr(depth + 1, false));
        let mut arms = Vec::new();
        if !self.eat("{") {
            return Expr::Match(MatchExpr {
                scrutinee,
                arms,
                line,
                col,
            });
        }
        let mut guard = 0usize;
        while !self.done() {
            guard += 1;
            if guard > MAX_SKIP {
                break;
            }
            if self.eat("}") {
                break;
            }
            let before = self.i;
            self.skip_item_prelude();
            // Pattern tokens up to the top-level `=>` (or an `if` guard).
            let (pline, pcol) = self.pos();
            let mut pat: Vec<String> = Vec::new();
            let mut pat_idents: Vec<String> = Vec::new();
            let mut guard_expr: Option<Expr> = None;
            let (mut paren, mut bracket, mut brace) = (0i32, 0i32, 0i32);
            let mut g2 = 0usize;
            let mut arrow = false;
            while !self.done() {
                g2 += 1;
                if g2 > MAX_SKIP {
                    break;
                }
                let at_top = paren == 0 && bracket == 0 && brace == 0;
                if at_top && self.text(0) == "=" && self.adjacent(1) && self.text(1) == ">" {
                    self.bump();
                    self.bump();
                    arrow = true;
                    break;
                }
                if at_top && self.text(0) == "if" {
                    self.bump();
                    guard_expr = Some(self.parse_expr(depth + 1, false));
                    continue;
                }
                if at_top && self.text(0) == "}" {
                    break; // malformed arm; outer loop closes the match
                }
                match self.text(0) {
                    "(" => paren += 1,
                    ")" => paren -= 1,
                    "[" => bracket += 1,
                    "]" => bracket -= 1,
                    "{" => brace += 1,
                    "}" => brace -= 1,
                    _ => {}
                }
                if self.kind(0) == Some(TokenKind::Ident) {
                    pat_idents.push(self.text(0).to_string());
                }
                pat.push(self.text(0).to_string());
                self.bump();
            }
            if !arrow {
                continue;
            }
            let mut body = self.parse_expr(depth + 1, true);
            if let Some(g) = guard_expr {
                body = Expr::Tuple(vec![g, body]);
            }
            self.eat(",");
            arms.push(Arm {
                wildcard: pat.len() == 1 && pat[0] == "_",
                pat_idents,
                line: pline,
                col: pcol,
                body,
            });
            if self.i == before && self.text(0) != "}" {
                self.bump();
            }
        }
        Expr::Match(MatchExpr {
            scrutinee,
            arms,
            line,
            col,
        })
    }

    fn parse_postfix(&mut self, depth: u32, mut e: Expr) -> Expr {
        if depth > MAX_DEPTH {
            return e;
        }
        let mut guard = 0usize;
        loop {
            guard += 1;
            if guard > MAX_SKIP {
                return e;
            }
            match self.text(0) {
                // `.` — but not `..` (range operator, handled by the
                // binary loop).
                "." if !(self.adjacent(1) && self.text(1) == ".") => {
                    match self.kind(1) {
                        Some(TokenKind::Number) => {
                            let (nline, ncol) = self.tok(1).map_or((0, 0), |t| (t.line, t.col));
                            let name = self.text(1).to_string();
                            self.bump();
                            self.bump();
                            e = Expr::Field {
                                base: Box::new(e),
                                name,
                                line: nline,
                                col: ncol,
                            };
                        }
                        Some(TokenKind::Ident) if self.text(1) == "await" => {
                            self.bump();
                            self.bump();
                        }
                        Some(TokenKind::Ident) => {
                            let (nline, ncol) = self.tok(1).map_or((0, 0), |t| (t.line, t.col));
                            let name = self.text(1).to_string();
                            self.bump();
                            self.bump();
                            let mut turbofish = Vec::new();
                            if self.text(0) == "::" && self.text(1) == "<" {
                                self.bump();
                                turbofish = self.collect_angle_idents();
                            }
                            if self.eat("(") {
                                let args = self.parse_comma_exprs(depth + 1, ")");
                                e = Expr::Method {
                                    base: Box::new(e),
                                    name,
                                    turbofish,
                                    args,
                                    line: nline,
                                    col: ncol,
                                };
                            } else {
                                e = Expr::Field {
                                    base: Box::new(e),
                                    name,
                                    line: nline,
                                    col: ncol,
                                };
                            }
                        }
                        _ => {
                            self.bump(); // stray dot
                            return e;
                        }
                    }
                }
                "(" => {
                    self.bump();
                    let args = self.parse_comma_exprs(depth + 1, ")");
                    e = Expr::Call {
                        callee: Box::new(e),
                        args,
                    };
                }
                "[" => {
                    self.bump();
                    let mut items = self.parse_comma_exprs(depth + 1, "]");
                    let index = if items.len() == 1 {
                        items.pop().unwrap_or(Expr::Err)
                    } else {
                        Expr::Tuple(items)
                    };
                    e = Expr::Index {
                        base: Box::new(e),
                        index: Box::new(index),
                    };
                }
                "?" => {
                    self.bump();
                }
                _ => return e,
            }
        }
    }

    /// Parses comma/semicolon-separated expressions up to and including
    /// `close`. Stops (without consuming) at any other closing delimiter.
    fn parse_comma_exprs(&mut self, depth: u32, close: &str) -> Vec<Expr> {
        let mut out = Vec::new();
        let mut guard = 0usize;
        loop {
            guard += 1;
            if guard > MAX_SKIP || self.done() {
                break;
            }
            if self.text(0) == close {
                self.bump();
                break;
            }
            if matches!(self.text(0), "," | ";") {
                self.bump();
                continue;
            }
            if matches!(self.text(0), ")" | "]" | "}") {
                break; // mismatched delimiter — give up on this list
            }
            let before = self.i;
            out.push(self.parse_expr(depth + 1, true));
            if self.i == before {
                self.bump(); // hard progress
            }
        }
        out
    }

    /// Expects `{`; parses a block expression (or returns [`Expr::Err`]).
    fn parse_brace_block(&mut self, depth: u32) -> Expr {
        if self.eat("{") {
            Expr::Block(self.parse_block_stmts(depth + 1))
        } else {
            Expr::Err
        }
    }

    // ---- small skippers -------------------------------------------------

    /// Skips a balanced delimiter pair starting at `open` (cursor on it).
    fn skip_balanced(&mut self, open: &str, close: &str) {
        let mut depth = 0i32;
        let mut guard = 0usize;
        while !self.done() {
            guard += 1;
            if guard > MAX_SKIP {
                return;
            }
            if self.text(0) == open {
                depth += 1;
            } else if self.text(0) == close {
                depth -= 1;
                if depth == 0 {
                    self.bump();
                    return;
                }
            }
            self.bump();
        }
    }

    /// Skips a generic-argument list starting at `<`. Bails at `;`/`{`
    /// so a misread comparison cannot eat a whole file.
    fn skip_angles(&mut self) {
        let mut depth = 0i32;
        let mut guard = 0usize;
        while !self.done() {
            guard += 1;
            if guard > MAX_SKIP {
                return;
            }
            match self.text(0) {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth <= 0 {
                        self.bump();
                        return;
                    }
                }
                "(" => {
                    self.skip_balanced("(", ")");
                    continue;
                }
                ";" | "{" => return,
                _ => {}
            }
            self.bump();
        }
    }

    /// Collects identifiers inside a `<…>` list starting at `<`,
    /// consuming through the closing `>`.
    fn collect_angle_idents(&mut self) -> Vec<String> {
        let mut out = Vec::new();
        let mut depth = 0i32;
        let mut guard = 0usize;
        while !self.done() {
            guard += 1;
            if guard > MAX_SKIP {
                return out;
            }
            match self.text(0) {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth <= 0 {
                        self.bump();
                        return out;
                    }
                }
                ";" | "{" => return out,
                _ => {
                    if self.kind(0) == Some(TokenKind::Ident) {
                        out.push(self.text(0).to_string());
                    }
                }
            }
            self.bump();
        }
        out
    }

    /// Skips a `where` clause up to (not consuming) `{` or `;`.
    fn skip_where(&mut self) {
        self.bump(); // where
        let mut guard = 0usize;
        while !self.done() && self.text(0) != "{" && self.text(0) != ";" {
            guard += 1;
            if guard > MAX_SKIP {
                return;
            }
            if self.text(0) == "<" {
                self.skip_angles();
            } else {
                self.bump();
            }
        }
    }

    /// Skips to and past the next top-level `;` (or stops before `}`).
    fn skip_to_semi(&mut self) {
        let (mut paren, mut bracket, mut brace) = (0i32, 0i32, 0i32);
        let mut guard = 0usize;
        while !self.done() {
            guard += 1;
            if guard > MAX_SKIP {
                return;
            }
            match self.text(0) {
                ";" if paren == 0 && bracket == 0 && brace == 0 => {
                    self.bump();
                    return;
                }
                "}" if paren == 0 && bracket == 0 && brace == 0 => return,
                "(" => paren += 1,
                ")" => paren -= 1,
                "[" => bracket += 1,
                "]" => bracket -= 1,
                "{" => brace += 1,
                "}" => brace -= 1,
                _ => {}
            }
            self.bump();
        }
    }

    /// Skips the type after `as` (sigils, one path, one generic list).
    fn skip_cast_type(&mut self) {
        let mut guard = 0usize;
        while matches!(self.text(0), "&" | "*" | "mut" | "const") {
            guard += 1;
            if guard > MAX_SKIP {
                return;
            }
            self.bump();
        }
        while (self.kind(0) == Some(TokenKind::Ident)
            && !matches!(self.text(0), "as" | "if" | "else" | "match" | "in"))
            || self.text(0) == "::"
        {
            guard += 1;
            if guard > MAX_SKIP {
                return;
            }
            self.bump();
            if self.text(0) == "<" {
                self.skip_angles();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn tree(src: &str) -> ParseTree {
        parse(&tokenize(src).tokens)
    }

    fn fn_named<'a>(t: &'a ParseTree, name: &str) -> &'a FnDef {
        let mut found = None;
        t.for_each_fn(&mut |f, _| {
            if f.name == name {
                found = Some(f as *const FnDef);
            }
        });
        // SAFETY: pointer derived from `t`, which outlives the call.
        unsafe { &*found.expect("fn present") }
    }

    fn collect_reads(f: &FnDef) -> Vec<String> {
        let mut reads = Vec::new();
        for e in &f.body {
            e.walk(&mut |n| {
                if let Expr::Field { name, .. } = n {
                    reads.push(name.clone());
                }
            });
        }
        reads
    }

    #[test]
    fn struct_fields_parse_with_types() {
        let t = tree("pub struct FleetReport { pub makespan_s: f64, pub retries: u64, pub replicas: Vec<ReplicaStats> }");
        let mut names = Vec::new();
        t.for_each_struct(&mut |s| {
            assert_eq!(s.name, "FleetReport");
            names = s
                .fields
                .iter()
                .map(|f| (f.name.clone(), f.ty.clone()))
                .collect();
        });
        assert_eq!(names.len(), 3);
        assert_eq!(names[0], ("makespan_s".into(), "f64".into()));
        assert_eq!(names[2].0, "replicas");
        assert!(names[2].1.contains("ReplicaStats"));
    }

    #[test]
    fn struct_literal_keys_are_not_field_reads() {
        let t = tree(
            "fn merge(r: &R) -> R {\n  let out = R { retries: 0, hedges: 0 };\n  let x = r.retries;\n  out\n}",
        );
        let f = fn_named(&t, "merge");
        let reads = collect_reads(f);
        assert_eq!(reads, vec!["retries"]); // the init keys don't count
    }

    #[test]
    fn method_calls_capture_turbofish_and_args() {
        let t = tree("fn total(xs: &[f64]) -> f64 { xs.iter().map(|o| o.ttft_s).sum::<f64>() }");
        let f = fn_named(&t, "total");
        let mut sums = 0;
        let mut maps_with_closure = 0;
        for e in &f.body {
            e.walk(&mut |n| {
                if let Expr::Method {
                    name,
                    turbofish,
                    args,
                    ..
                } = n
                {
                    if name == "sum" {
                        sums += 1;
                        assert_eq!(turbofish, &vec!["f64".to_string()]);
                    }
                    if name == "map" && matches!(args.first(), Some(Expr::Closure(_))) {
                        maps_with_closure += 1;
                    }
                }
            });
        }
        assert_eq!((sums, maps_with_closure), (1, 1));
    }

    #[test]
    fn match_arms_record_patterns_and_wildcards() {
        let t = tree(
            "fn h(e: SimError) -> u32 { match e { SimError::QueueFull { depth } => depth, _ => 0 } }",
        );
        let f = fn_named(&t, "h");
        let mut arms = Vec::new();
        for e in &f.body {
            e.walk(&mut |n| {
                if let Expr::Match(m) = n {
                    for a in &m.arms {
                        arms.push((a.pat_idents.clone(), a.wildcard));
                    }
                }
            });
        }
        assert_eq!(arms.len(), 2);
        assert!(arms[0].0.contains(&"SimError".to_string()));
        assert!(!arms[0].1);
        assert!(arms[1].1, "bare `_` arm detected");
    }

    #[test]
    fn impl_self_type_and_trait_impls_resolve() {
        let t = tree(
            "impl FleetReport { fn render(&self) -> String { format!(\"{}\", self.retries) } }\n\
             impl<'a> Display for ReplicaStats { fn fmt(&self) {} }",
        );
        let mut pairs = Vec::new();
        t.for_each_fn(&mut |f, ty| pairs.push((f.name.clone(), ty.unwrap_or("").to_string())));
        assert!(pairs.contains(&("render".into(), "FleetReport".into())));
        assert!(pairs.contains(&("fmt".into(), "ReplicaStats".into())));
    }

    #[test]
    fn macro_arguments_are_walked() {
        let t = tree("fn p(r: &R) { println!(\"{} {}\", r.events_processed, r.makespan_s); }");
        let reads = collect_reads(fn_named(&t, "p"));
        assert!(reads.contains(&"events_processed".to_string()));
        assert!(reads.contains(&"makespan_s".to_string()));
    }

    #[test]
    fn adjacency_operators_parse_as_binary() {
        let t = tree("fn c(a_s: f64, b_s: f64) -> bool { a_s <= b_s && a_s != b_s }");
        let f = fn_named(&t, "c");
        let mut ops = Vec::new();
        for e in &f.body {
            e.walk(&mut |n| {
                if let Expr::Binary { op, .. } = n {
                    ops.push(op.clone());
                }
            });
        }
        assert!(ops.contains(&"&&".to_string()));
        assert!(ops.contains(&"<=".to_string()));
        assert!(ops.contains(&"!=".to_string()));
    }

    #[test]
    fn shifts_are_not_comparison_soup() {
        let t = tree("fn s(x: u64, n: u32) -> u64 { (x << n) >> 2 }");
        let f = fn_named(&t, "s");
        let mut ops = Vec::new();
        for e in &f.body {
            e.walk(&mut |n| {
                if let Expr::Binary { op, .. } = n {
                    ops.push(op.clone());
                }
            });
        }
        assert_eq!(ops, vec![">>".to_string(), "<<".to_string()]);
    }

    #[test]
    fn generic_fn_signatures_do_not_derail_bodies() {
        let t = tree(
            "pub fn simulate<B: CostModel + ?Sized, F>(make: F) -> Vec<Option<f64>>\n\
             where F: Fn(usize) -> Box<dyn RouterPolicy> + Sync {\n  let x = inner.call();\n  Vec::new()\n}",
        );
        let f = fn_named(&t, "simulate");
        assert!(f.sig.contains("CostModel"));
        assert!(!f.body.is_empty());
    }

    #[test]
    fn depth_cap_degrades_not_panics() {
        let mut src = String::from("fn deep() { ");
        for _ in 0..200 {
            src.push_str("f(");
        }
        src.push('1');
        for _ in 0..200 {
            src.push(')');
        }
        src.push_str(" }");
        let _ = tree(&src); // must terminate without panicking
    }

    #[test]
    fn truncated_and_garbage_input_terminates() {
        let cases = [
            "fn f( {",
            "struct S { a: ",
            "match x { _ =>",
            "impl for {}{}{}",
            ")))]]]}}}",
            "let | | | = = =",
            "fn f() { x.. }",
            "'a 'b 'c",
        ];
        for c in cases {
            let _ = tree(c);
        }
    }

    #[test]
    fn enum_variants_collected() {
        let t = tree("pub enum FaultKind { Crash, Slowdown { factor: f64 }, Partition(u32) }");
        let mut variants = Vec::new();
        for item in &t.items {
            if let Item::Enum(e) = item {
                variants = e.variants.clone();
            }
        }
        assert_eq!(variants, vec!["Crash", "Slowdown", "Partition"]);
    }
}
