//! The checked-in allowlist: justified exceptions to the rule catalog.
//!
//! Format (`lint.allow` at the workspace root): one entry per line,
//! tab-separated —
//!
//! ```text
//! RULE<TAB>path<TAB>contains<TAB>reason
//! ```
//!
//! * `RULE` — rule id the entry suppresses (`D001`, `P001`, …).
//! * `path` — exact workspace-relative file path.
//! * `contains` — substring the offending source line must contain, or
//!   `*` to cover every line of the file (use sparingly).
//! * `reason` — mandatory free-text justification. Entries without a
//!   reason are a parse error: an exception nobody can defend is not an
//!   exception.
//!
//! `#` lines and blank lines are comments. Entries that match no finding
//! are reported as *stale* so the list cannot silently rot.

use crate::findings::Finding;
use std::fmt;

/// One parsed allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule id to suppress.
    pub rule: String,
    /// Exact workspace-relative path.
    pub path: String,
    /// Required substring of the flagged line (`*` = any).
    pub contains: String,
    /// Written justification.
    pub reason: String,
    /// 1-based line in `lint.allow` the entry was parsed from (input to
    /// [`prune`]).
    pub line: usize,
}

impl AllowEntry {
    /// One-line description used in stale-entry diagnostics.
    #[must_use]
    pub fn describe(&self) -> String {
        format!("{} {} ({:?})", self.rule, self.path, self.contains)
    }
}

/// A parsed allowlist.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    /// Entries in file order.
    pub entries: Vec<AllowEntry>,
}

/// A malformed allowlist line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowParseError {
    /// 1-based line number.
    pub line: usize,
    /// What is wrong.
    pub problem: String,
}

impl fmt::Display for AllowParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.allow line {}: {}", self.line, self.problem)
    }
}

impl std::error::Error for AllowParseError {}

impl Allowlist {
    /// Parses allowlist text.
    ///
    /// # Errors
    ///
    /// Returns the first malformed line: wrong field count or an empty
    /// reason.
    pub fn parse(text: &str) -> Result<Allowlist, AllowParseError> {
        let mut entries = Vec::new();
        for (ix, raw) in text.lines().enumerate() {
            let line = raw.trim_end();
            if line.is_empty() || line.trim_start().starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.splitn(4, '\t').collect();
            if fields.len() != 4 {
                return Err(AllowParseError {
                    line: ix + 1,
                    problem: format!(
                        "expected 4 tab-separated fields (rule, path, contains, reason), got {}",
                        fields.len()
                    ),
                });
            }
            let reason = fields[3].trim();
            if reason.is_empty() {
                return Err(AllowParseError {
                    line: ix + 1,
                    problem: "reason must not be empty".to_string(),
                });
            }
            entries.push(AllowEntry {
                rule: fields[0].trim().to_string(),
                path: fields[1].trim().to_string(),
                contains: fields[2].trim().to_string(),
                reason: reason.to_string(),
                line: ix + 1,
            });
        }
        Ok(Allowlist { entries })
    }

    /// Index of the first entry suppressing `finding` (whose source line
    /// is `line_text`), if any.
    #[must_use]
    pub fn matches(&self, finding: &Finding, line_text: &str) -> Option<usize> {
        self.entries.iter().position(|e| {
            e.rule == finding.rule
                && e.path == finding.path
                && (e.contains == "*" || line_text.contains(&e.contains))
        })
    }
}

/// Rewrites allowlist text with the entries on `stale_lines` (1-based)
/// removed. Comments, blank lines, and live entries pass through
/// byte-for-byte, so `--fix-stale` is a pure deletion.
#[must_use]
pub fn prune(text: &str, stale_lines: &[usize]) -> String {
    let mut out = String::with_capacity(text.len());
    for (ix, line) in text.lines().enumerate() {
        if stale_lines.contains(&(ix + 1)) {
            continue;
        }
        out.push_str(line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str) -> Finding {
        Finding {
            rule,
            path: path.into(),
            line: 1,
            col: 1,
            matched: "x".into(),
            message: "m".into(),
        }
    }

    #[test]
    fn parses_comments_and_entries() {
        let a = Allowlist::parse(
            "# header comment\n\nP001\tsrc/a.rs\t.expect(\"poisoned\")\tmutex poison is unrecoverable\n",
        )
        .expect("parses");
        assert_eq!(a.entries.len(), 1);
        assert_eq!(a.entries[0].rule, "P001");
    }

    #[test]
    fn missing_reason_is_an_error() {
        let err = Allowlist::parse("P001\tsrc/a.rs\t*\t  \n").expect_err("must fail");
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("reason"));
        let err2 = Allowlist::parse("P001\tsrc/a.rs\t*\n").expect_err("must fail");
        assert!(err2.problem.contains("4 tab-separated"));
    }

    #[test]
    fn matching_requires_rule_path_and_substring() {
        let a = Allowlist::parse("D001\tsrc/a.rs\tHashMap\tnever iterated\n").expect("parses");
        assert_eq!(
            a.matches(&finding("D001", "src/a.rs"), "map: HashMap<K, V>"),
            Some(0)
        );
        assert_eq!(
            a.matches(&finding("D001", "src/a.rs"), "no match here"),
            None
        );
        assert_eq!(
            a.matches(&finding("D001", "src/b.rs"), "map: HashMap<K, V>"),
            None
        );
        assert_eq!(
            a.matches(&finding("D002", "src/a.rs"), "map: HashMap<K, V>"),
            None
        );
    }

    #[test]
    fn star_matches_any_line() {
        let a = Allowlist::parse("P001\tsrc/a.rs\t*\tdriver binary, fails fast\n").expect("parses");
        assert_eq!(a.matches(&finding("P001", "src/a.rs"), "anything"), Some(0));
    }

    #[test]
    fn entries_record_their_source_line() {
        let a = Allowlist::parse(
            "# header\n\nD001\tsrc/a.rs\t*\tfirst\n# mid comment\nP001\tsrc/b.rs\t*\tsecond\n",
        )
        .expect("parses");
        let lines: Vec<usize> = a.entries.iter().map(|e| e.line).collect();
        assert_eq!(lines, vec![3, 5]);
    }

    #[test]
    fn prune_removes_only_stale_entry_lines() {
        let text = "# header\nD001\tsrc/a.rs\t*\tlive\nP001\tsrc/b.rs\t*\tstale\n\n# tail\n";
        let pruned = prune(text, &[3]);
        assert_eq!(pruned, "# header\nD001\tsrc/a.rs\t*\tlive\n\n# tail\n");
        assert_eq!(prune(text, &[]), text, "no stale lines = byte-identical");
    }
}
