//! Findings: the linter's output records, with deterministic ordering and
//! the three serializations (TSV and JSONL for machines/CI artifacts,
//! text for humans).

use std::cmp::Ordering;
use std::fmt::Write as _;

/// One rule violation at one source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`D001`, `P001`, …).
    pub rule: &'static str,
    /// Workspace-relative `/`-separated path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// The matched lexeme (e.g. `HashMap`, `unwrap`, `cycle_time`).
    pub matched: String,
    /// Human explanation with the suggested remedy.
    pub message: String,
}

impl Finding {
    /// Total order making every output byte-deterministic: by path, then
    /// position, then rule, then matched text.
    fn sort_key(&self) -> (&str, u32, u32, &str, &str) {
        (&self.path, self.line, self.col, self.rule, &self.matched)
    }
}

/// Sorts findings into the canonical deterministic order.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()).then(Ordering::Equal));
}

/// Escapes a field for TSV (tabs/newlines cannot survive round-tripping).
fn tsv_field(s: &str) -> String {
    s.replace(['\t', '\n', '\r'], " ")
}

/// Renders findings as TSV with a header row. Byte-deterministic for a
/// given (sorted) finding list.
#[must_use]
pub fn to_tsv(findings: &[Finding]) -> String {
    let mut out = String::from("rule\tpath\tline\tcol\tmatch\tmessage\n");
    for f in findings {
        let _ = writeln!(
            out,
            "{}\t{}\t{}\t{}\t{}\t{}",
            f.rule,
            tsv_field(&f.path),
            f.line,
            f.col,
            tsv_field(&f.matched),
            tsv_field(&f.message)
        );
    }
    out
}

/// Escapes a string for a JSON string body (hand-rolled: the linter is
/// dependency-free by design).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as JSON Lines — one object per finding, keys in a
/// fixed order. Byte-deterministic for a given (sorted) finding list.
#[must_use]
pub fn to_jsonl(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        let _ = writeln!(
            out,
            "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"match\":\"{}\",\"message\":\"{}\"}}",
            json_escape(f.rule),
            json_escape(&f.path),
            f.line,
            f.col,
            json_escape(&f.matched),
            json_escape(&f.message)
        );
    }
    out
}

/// Renders findings as human-readable text, grouped by file.
#[must_use]
pub fn to_text(findings: &[Finding]) -> String {
    if findings.is_empty() {
        return "llmsim-lint: no findings\n".to_string();
    }
    let mut out = String::new();
    let mut last_path = "";
    for f in findings {
        if f.path != last_path {
            let _ = writeln!(out, "{}:", f.path);
            last_path = &f.path;
        }
        let _ = writeln!(
            out,
            "  {}:{} [{}] {} — {}",
            f.line, f.col, f.rule, f.matched, f.message
        );
    }
    let _ = writeln!(
        out,
        "llmsim-lint: {} finding{}",
        findings.len(),
        if findings.len() == 1 { "" } else { "s" }
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(rule: &'static str, path: &str, line: u32, col: u32) -> Finding {
        Finding {
            rule,
            path: path.into(),
            line,
            col,
            matched: "x".into(),
            message: "m".into(),
        }
    }

    #[test]
    fn sort_is_total_and_stable_by_content() {
        let mut a = vec![
            f("P001", "b.rs", 2, 1),
            f("D001", "a.rs", 9, 4),
            f("D002", "b.rs", 2, 1),
            f("D001", "a.rs", 1, 1),
        ];
        sort_findings(&mut a);
        let order: Vec<(&str, &str, u32)> = a
            .iter()
            .map(|x| (x.path.as_str(), x.rule, x.line))
            .collect();
        assert_eq!(
            order,
            vec![
                ("a.rs", "D001", 1),
                ("a.rs", "D001", 9),
                ("b.rs", "D002", 2),
                ("b.rs", "P001", 2),
            ]
        );
    }

    #[test]
    fn tsv_escapes_and_has_header() {
        let mut bad = f("D001", "a.rs", 1, 1);
        bad.message = "tab\there".into();
        let tsv = to_tsv(&[bad]);
        assert!(tsv.starts_with("rule\tpath\tline\tcol\tmatch\tmessage\n"));
        assert!(tsv.contains("tab here"));
        assert_eq!(tsv.lines().count(), 2);
    }

    #[test]
    fn jsonl_escapes_and_is_one_object_per_line() {
        let mut bad = f("D001", "a \"quoted\".rs", 1, 2);
        bad.message = "line1\nline2\ttabbed \\ backslash".into();
        let jsonl = to_jsonl(&[bad.clone(), f("D002", "b.rs", 3, 4)]);
        assert_eq!(jsonl.lines().count(), 2);
        let first = jsonl.lines().next().expect("first line");
        assert!(first.contains("\"rule\":\"D001\""));
        assert!(first.contains("a \\\"quoted\\\".rs"));
        assert!(first.contains("line1\\nline2\\ttabbed \\\\ backslash"));
        assert!(first.contains("\"line\":1,\"col\":2"));
        assert!(to_jsonl(&[]).is_empty());
    }

    #[test]
    fn text_groups_by_file_and_counts() {
        let txt = to_text(&[f("D001", "a.rs", 1, 1), f("D002", "a.rs", 3, 1)]);
        assert_eq!(txt.matches("a.rs:").count(), 1);
        assert!(txt.contains("2 findings"));
        assert!(to_text(&[]).contains("no findings"));
    }
}
