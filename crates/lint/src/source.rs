//! A lexed source file annotated with everything rules need: workspace
//! position (crate, binary-ness), test-code spans, inline suppressions,
//! and the simplified parse tree the semantic S-rules walk.

use crate::parser::{parse, ParseTree};
use crate::tokenizer::{tokenize, AllowDirective, OrderedDirective, Token, TokenKind};

/// A file prepared for rule checking.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated (the stable key
    /// used in findings and the allowlist).
    pub path: String,
    /// Crate the file belongs to: the directory name under `crates/`, or
    /// `"llmsim"` for the root `src/`.
    pub crate_name: String,
    /// Whether the file is a binary entry point (`main.rs` or under a
    /// `bin/` directory) — rules that target library code skip these.
    pub is_bin: bool,
    /// Token stream.
    pub tokens: Vec<Token>,
    /// Inline `lint:allow` directives.
    pub allows: Vec<AllowDirective>,
    /// Inline `lint:ordered` annotations (S003 exemptions).
    pub ordered: Vec<OrderedDirective>,
    /// Source lines (for snippet extraction and allowlist matching).
    pub lines: Vec<String>,
    /// Simplified item tree (see [`crate::parser`]) for semantic rules.
    pub tree: ParseTree,
    /// Half-open token-index ranges lexically inside `#[cfg(test)]` /
    /// `#[test]` items.
    test_ranges: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Lexes and annotates `text` as the workspace file `path`.
    #[must_use]
    pub fn new(path: &str, text: &str) -> Self {
        let stream = tokenize(text);
        let crate_name = crate_of(path);
        let is_bin = {
            let file = path.rsplit('/').next().unwrap_or(path);
            file == "main.rs" || path.contains("/bin/")
        };
        let test_ranges = find_test_ranges(&stream.tokens);
        let tree = parse(&stream.tokens);
        SourceFile {
            path: path.to_string(),
            crate_name,
            is_bin,
            tokens: stream.tokens,
            allows: stream.allows,
            ordered: stream.ordered,
            lines: text.lines().map(str::to_string).collect(),
            tree,
            test_ranges,
        }
    }

    /// Whether the token at `ix` is inside test code (`#[cfg(test)]`
    /// module or `#[test]` function).
    #[must_use]
    pub fn in_test(&self, ix: usize) -> bool {
        self.test_ranges.iter().any(|&(s, e)| ix >= s && ix < e)
    }

    /// The trimmed source line containing `line` (1-based), or `""`.
    #[must_use]
    pub fn line_text(&self, line: u32) -> &str {
        self.lines.get(line as usize - 1).map_or("", |l| l.trim())
    }

    /// Whether an inline directive suppresses `rule` on `line`: the
    /// directive may trail the line itself, or sit alone on the line
    /// directly above (a trailing directive does *not* leak onto the next
    /// line).
    #[must_use]
    pub fn inline_allowed(&self, rule: &str, line: u32) -> bool {
        self.allows.iter().any(|a| {
            let covers = a.line == line
                || (a.line + 1 == line && !self.tokens.iter().any(|t| t.line == a.line));
            covers && a.rules.iter().any(|r| r == rule)
        })
    }

    /// Whether a `lint:ordered` annotation covers `line` — same placement
    /// contract as [`Self::inline_allowed`]: trailing the line itself, or
    /// alone on the line directly above.
    #[must_use]
    pub fn ordered_at(&self, line: u32) -> bool {
        self.ordered.iter().any(|o| {
            o.line == line || (o.line + 1 == line && !self.tokens.iter().any(|t| t.line == o.line))
        })
    }

    /// Whether any token on `line` (1-based) is inside test code. Lines
    /// with no tokens are not test code.
    #[must_use]
    pub fn line_in_test(&self, line: u32) -> bool {
        let start = self.tokens.partition_point(|t| t.line < line);
        self.tokens
            .get(start)
            .is_some_and(|t| t.line == line && self.in_test(start))
    }
}

/// Derives the crate name from a workspace-relative path.
fn crate_of(path: &str) -> String {
    let mut parts = path.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or("unknown").to_string(),
        _ => "llmsim".to_string(),
    }
}

/// Finds token ranges belonging to test items.
///
/// Recognizes an attribute `#[...]` whose identifier list contains `test`
/// but not `not` (covering `#[test]` and `#[cfg(test)]` without tripping
/// on `#[cfg(not(test))]`), then extends the range over any further
/// attributes and the item that follows — up to the `;` of a declaration
/// or the matching `}` of the item's first top-level brace.
fn find_test_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].text == "#" && tokens.get(i + 1).is_some_and(|t| t.text == "[") {
            let (attr_end, idents) = scan_attr(tokens, i + 1);
            let is_test = idents.iter().any(|s| s == "test") && !idents.iter().any(|s| s == "not");
            if is_test {
                let start = i;
                let mut j = attr_end;
                // Skip stacked attributes.
                while tokens.get(j).is_some_and(|t| t.text == "#")
                    && tokens.get(j + 1).is_some_and(|t| t.text == "[")
                {
                    let (next_end, _) = scan_attr(tokens, j + 1);
                    j = next_end;
                }
                let end = item_end(tokens, j);
                ranges.push((start, end));
                i = end;
                continue;
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
    ranges
}

/// Scans a bracketed attribute starting at its `[`; returns the index one
/// past the closing `]` and the identifiers seen inside.
fn scan_attr(tokens: &[Token], open: usize) -> (usize, Vec<String>) {
    let mut depth = 0i32;
    let mut idents = Vec::new();
    let mut i = open;
    while i < tokens.len() {
        match tokens[i].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return (i + 1, idents);
                }
            }
            _ => {
                if tokens[i].kind == TokenKind::Ident {
                    idents.push(tokens[i].text.clone());
                }
            }
        }
        i += 1;
    }
    (tokens.len(), idents)
}

/// Returns the index one past the end of the item starting at `i`: either
/// past a top-level `;`, or past the `}` matching the first top-level `{`.
fn item_end(tokens: &[Token], i: usize) -> usize {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut brace = 0i32;
    let mut entered_brace = false;
    let mut j = i;
    while j < tokens.len() {
        match tokens[j].text.as_str() {
            "(" => paren += 1,
            ")" => paren -= 1,
            "[" => bracket += 1,
            "]" => bracket -= 1,
            "{" => {
                brace += 1;
                entered_brace = true;
            }
            "}" => {
                brace -= 1;
                if entered_brace && brace == 0 {
                    return j + 1;
                }
            }
            ";" if !entered_brace && paren == 0 && bracket == 0 && brace == 0 => {
                return j + 1;
            }
            _ => {}
        }
        j += 1;
    }
    tokens.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_module_is_a_test_range() {
        let src = "
            pub fn lib_code() -> u32 { 1 }

            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { assert!(true); }
            }
        ";
        let f = SourceFile::new("crates/core/src/x.rs", src);
        let lib_ix = f.tokens.iter().position(|t| t.text == "lib_code");
        let assert_ix = f.tokens.iter().position(|t| t.text == "assert");
        assert!(!f.in_test(lib_ix.expect("lib_code token")));
        assert!(f.in_test(assert_ix.expect("assert token")));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_range() {
        let src = "#[cfg(not(test))]\nfn shipped() { body(); }";
        let f = SourceFile::new("crates/core/src/x.rs", src);
        let ix = f.tokens.iter().position(|t| t.text == "body");
        assert!(!f.in_test(ix.expect("body token")));
    }

    #[test]
    fn test_fn_with_stacked_attributes() {
        let src = "
            #[test]
            #[should_panic(expected = \"boom\")]
            fn explodes() { panic!(\"boom\"); }
            fn after() { tail(); }
        ";
        let f = SourceFile::new("crates/core/src/x.rs", src);
        let panic_ix = f.tokens.iter().position(|t| t.text == "panic");
        let tail_ix = f.tokens.iter().position(|t| t.text == "tail");
        assert!(f.in_test(panic_ix.expect("panic token")));
        assert!(!f.in_test(tail_ix.expect("tail token")));
    }

    #[test]
    fn crate_and_bin_detection() {
        assert_eq!(
            SourceFile::new("crates/cluster/src/engine.rs", "").crate_name,
            "cluster"
        );
        assert_eq!(SourceFile::new("src/lib.rs", "").crate_name, "llmsim");
        assert!(SourceFile::new("src/main.rs", "").is_bin);
        assert!(SourceFile::new("crates/bench/src/bin/tool.rs", "").is_bin);
        assert!(!SourceFile::new("crates/core/src/lib.rs", "").is_bin);
    }

    #[test]
    fn inline_allow_covers_same_and_next_line() {
        let src = "// lint:allow(P001): reason\nlet a = x.unwrap();\nlet b = y.unwrap(); // lint:allow(P001): tail\nlet c = z.unwrap();\n";
        let f = SourceFile::new("crates/core/src/x.rs", src);
        assert!(f.inline_allowed("P001", 2));
        assert!(f.inline_allowed("P001", 3));
        assert!(!f.inline_allowed("P001", 4));
        assert!(!f.inline_allowed("D001", 2));
    }

    #[test]
    fn ordered_at_covers_same_and_next_line() {
        let src = "// lint:ordered: Vec order\nlet a: f64 = xs.iter().sum();\nlet b: f64 = ys.iter().sum(); // lint:ordered: slice order\nlet c: f64 = zs.iter().sum();\n";
        let f = SourceFile::new("crates/core/src/x.rs", src);
        assert!(f.ordered_at(2));
        assert!(f.ordered_at(3));
        assert!(!f.ordered_at(4));
    }

    #[test]
    fn line_in_test_tracks_token_ranges() {
        let src = "pub fn lib() -> u32 { 1 }\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { assert!(true); }\n}\n";
        let f = SourceFile::new("crates/core/src/x.rs", src);
        assert!(!f.line_in_test(1));
        assert!(!f.line_in_test(2)); // blank line: no tokens
        assert!(f.line_in_test(6));
    }
}
