//! # llmsim-workload — workload shapes, sweeps and generators
//!
//! The paper's methodology grids (§IV-A: all models × batch 1–32 at
//! input 128 / output 32; §V-C: sequence lengths 128–1024), the §II-C
//! serving scenarios, and randomized/Poisson request generation for tests
//! and serving-style extensions.
//!
//! # Examples
//!
//! ```
//! use llmsim_workload::sweep;
//!
//! let grid = sweep::paper_grid();
//! assert_eq!(grid.len(), 48); // 8 models × 6 batch sizes
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generator;
pub mod replay;
pub mod scenarios;
pub mod sweep;
pub mod synthetic;

pub use generator::{
    sharegpt_like_lengths, ArrivalTrace, GeneratedRequest, LogNormalLengths, RequestBounds,
    RequestGenerator,
};
pub use replay::{model_mix, parse_trace, scale_arrivals, ReplayRequest, TraceParseError};
pub use scenarios::{ChaosScenario, PrimaryMetric, ResilienceScenario, Scenario};
pub use sweep::SweepPoint;
pub use synthetic::{
    synthesize, synthesize_sessions, LengthClass, SessionRequest, SessionSpec, SyntheticRequest,
    SyntheticSpec,
};
