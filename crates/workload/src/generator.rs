//! Randomized request generation for stress and property tests, and a
//! Poisson arrival trace for serving-style experiments (an extension beyond
//! the paper's fixed-shape sweeps).

use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Bounds for random request shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestBounds {
    /// Inclusive batch range.
    pub batch: (u64, u64),
    /// Inclusive prompt-length range.
    pub prompt_len: (u64, u64),
    /// Inclusive generation-length range.
    pub gen_len: (u64, u64),
}

impl Default for RequestBounds {
    fn default() -> Self {
        RequestBounds {
            batch: (1, 32),
            prompt_len: (16, 1024),
            gen_len: (1, 128),
        }
    }
}

/// A generated request shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GeneratedRequest {
    /// Batch size.
    pub batch: u64,
    /// Prompt length.
    pub prompt_len: u64,
    /// Generation length.
    pub gen_len: u64,
}

/// Deterministic random request generator.
#[derive(Debug)]
pub struct RequestGenerator {
    rng: StdRng,
    bounds: RequestBounds,
}

impl RequestGenerator {
    /// Creates a generator with a fixed seed (reproducible workloads).
    #[must_use]
    pub fn new(seed: u64, bounds: RequestBounds) -> Self {
        RequestGenerator {
            rng: StdRng::seed_from_u64(seed),
            bounds,
        }
    }

    /// Draws one request shape uniformly within bounds.
    pub fn sample(&mut self) -> GeneratedRequest {
        let b = self.bounds;
        GeneratedRequest {
            batch: self.rng.gen_range(b.batch.0..=b.batch.1),
            prompt_len: self.rng.gen_range(b.prompt_len.0..=b.prompt_len.1),
            gen_len: self.rng.gen_range(b.gen_len.0..=b.gen_len.1),
        }
    }

    /// Draws `n` shapes.
    pub fn sample_many(&mut self, n: usize) -> Vec<GeneratedRequest> {
        (0..n).map(|_| self.sample()).collect()
    }
}

/// Parameters of a log-normal length distribution (real chat traces like
/// ShareGPT have heavy-tailed prompt/generation lengths; a log-normal is
/// the standard fit).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogNormalLengths {
    /// Mean of `ln(length)`.
    pub mu: f64,
    /// Std-dev of `ln(length)`.
    pub sigma: f64,
    /// Inclusive clamp range.
    pub clamp: (u64, u64),
}

impl LogNormalLengths {
    /// A ShareGPT-like prompt-length distribution (median ≈ 160 tokens,
    /// heavy tail to a few thousand).
    #[must_use]
    pub fn sharegpt_prompts() -> Self {
        LogNormalLengths {
            mu: 5.08,
            sigma: 1.0,
            clamp: (4, 4096),
        }
    }

    /// A ShareGPT-like generation-length distribution (median ≈ 90 tokens).
    #[must_use]
    pub fn sharegpt_generations() -> Self {
        LogNormalLengths {
            mu: 4.5,
            sigma: 0.8,
            clamp: (1, 1024),
        }
    }

    /// Draws one length using Box–Muller over the given RNG.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        // Box–Muller: two uniforms → one standard normal.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let len = (self.mu + self.sigma * z).exp();
        (len.round() as u64).clamp(self.clamp.0, self.clamp.1)
    }
}

/// Generates `n` ShareGPT-like `(prompt_len, gen_len)` pairs with a fixed
/// seed.
#[must_use]
pub fn sharegpt_like_lengths(seed: u64, n: usize) -> Vec<(u64, u64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let prompts = LogNormalLengths::sharegpt_prompts();
    let gens = LogNormalLengths::sharegpt_generations();
    (0..n)
        .map(|_| (prompts.sample(&mut rng), gens.sample(&mut rng)))
        .collect()
}

/// A request arrival trace with exponential inter-arrival times
/// (Poisson process at `rate_per_sec`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrivalTrace {
    /// Arrival timestamps in seconds, ascending.
    pub arrivals: Vec<f64>,
}

impl ArrivalTrace {
    /// Generates `n` arrivals at `rate_per_sec` with a fixed seed.
    ///
    /// # Panics
    ///
    /// Panics if `rate_per_sec` is not positive.
    #[must_use]
    pub fn poisson(seed: u64, n: usize, rate_per_sec: f64) -> Self {
        assert!(rate_per_sec > 0.0, "arrival rate must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let exp = rand::distributions::Uniform::new(f64::MIN_POSITIVE, 1.0f64);
        let mut t = 0.0;
        let mut arrivals = Vec::with_capacity(n);
        for _ in 0..n {
            let u: f64 = exp.sample(&mut rng);
            t += -u.ln() / rate_per_sec;
            arrivals.push(t);
        }
        ArrivalTrace { arrivals }
    }

    /// Generates `n` arrivals from a two-state Markov-modulated Poisson
    /// process: calm phases arrive at `base_rate_per_sec`, burst phases at
    /// `burst_multiplier` times that, with exponentially-distributed phase
    /// durations of mean `mean_phase_s`. Bursty traffic is what stresses
    /// admission control and SLO deadlines — a plain Poisson trace at the
    /// same mean rate rarely saturates a bounded queue.
    ///
    /// # Panics
    ///
    /// Panics unless `base_rate_per_sec` and `mean_phase_s` are positive
    /// and `burst_multiplier >= 1`.
    #[must_use]
    pub fn bursty(
        seed: u64,
        n: usize,
        base_rate_per_sec: f64,
        burst_multiplier: f64,
        mean_phase_s: f64,
    ) -> Self {
        assert!(base_rate_per_sec > 0.0, "arrival rate must be positive");
        assert!(burst_multiplier >= 1.0, "burst multiplier must be >= 1");
        assert!(mean_phase_s > 0.0, "mean phase length must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let unit = rand::distributions::Uniform::new(f64::MIN_POSITIVE, 1.0f64);
        let mut t = 0.0;
        let mut in_burst = false;
        // End of the current calm/burst phase.
        let mut phase_end = -unit.sample(&mut rng).ln() * mean_phase_s;
        let mut arrivals = Vec::with_capacity(n);
        while arrivals.len() < n {
            let rate = if in_burst {
                base_rate_per_sec * burst_multiplier
            } else {
                base_rate_per_sec
            };
            let gap = -unit.sample(&mut rng).ln() / rate;
            if t + gap >= phase_end {
                // The phase flips before this arrival would land; restart
                // the draw from the boundary at the other rate
                // (memorylessness makes the restart exact).
                t = phase_end;
                in_burst = !in_burst;
                phase_end = t - unit.sample(&mut rng).ln() * mean_phase_s;
                continue;
            }
            t += gap;
            arrivals.push(t);
        }
        ArrivalTrace { arrivals }
    }

    /// Mean inter-arrival time of the trace (0 for traces shorter than 2).
    #[must_use]
    pub fn mean_gap(&self) -> f64 {
        let [first, .., last] = self.arrivals.as_slice() else {
            return 0.0;
        };
        let span = last - first;
        span / (self.arrivals.len() - 1) as f64
    }

    /// Coefficient of variation of the inter-arrival gaps (1 ≈ Poisson,
    /// above 1 = bursty; 0 for traces shorter than 3).
    #[must_use]
    pub fn gap_cv(&self) -> f64 {
        if self.arrivals.len() < 3 {
            return 0.0;
        }
        let gaps: Vec<f64> = self.arrivals.windows(2).map(|w| w[1] - w[0]).collect();
        // lint:ordered: gaps is a Vec derived from arrivals, which are sorted by time
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        if mean == 0.0 {
            return 0.0;
        }
        // lint:ordered: same sorted-gaps Vec as the mean above
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        var.sqrt() / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic_and_in_bounds() {
        let bounds = RequestBounds::default();
        let a = RequestGenerator::new(7, bounds).sample_many(100);
        let b = RequestGenerator::new(7, bounds).sample_many(100);
        assert_eq!(a, b);
        for r in &a {
            assert!((1..=32).contains(&r.batch));
            assert!((16..=1024).contains(&r.prompt_len));
            assert!((1..=128).contains(&r.gen_len));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let bounds = RequestBounds::default();
        let a = RequestGenerator::new(1, bounds).sample_many(50);
        let b = RequestGenerator::new(2, bounds).sample_many(50);
        assert_ne!(a, b);
    }

    #[test]
    fn poisson_trace_matches_rate() {
        let t = ArrivalTrace::poisson(42, 5000, 10.0);
        assert_eq!(t.arrivals.len(), 5000);
        assert!(t.arrivals.windows(2).all(|w| w[1] >= w[0]));
        let gap = t.mean_gap();
        assert!((gap - 0.1).abs() < 0.01, "{gap}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        let _ = ArrivalTrace::poisson(1, 10, 0.0);
    }

    #[test]
    fn bursty_trace_is_sorted_deterministic_and_burstier_than_poisson() {
        let a = ArrivalTrace::bursty(9, 3000, 10.0, 8.0, 2.0);
        assert_eq!(a.arrivals.len(), 3000);
        assert!(a.arrivals.windows(2).all(|w| w[1] >= w[0]));
        assert_eq!(a, ArrivalTrace::bursty(9, 3000, 10.0, 8.0, 2.0));
        // Burstiness shows up as over-dispersed gaps vs the Poisson CV of 1.
        let poisson = ArrivalTrace::poisson(9, 3000, 10.0);
        assert!(
            a.gap_cv() > 1.15 && a.gap_cv() > poisson.gap_cv(),
            "bursty CV {} vs poisson CV {}",
            a.gap_cv(),
            poisson.gap_cv()
        );
    }

    #[test]
    fn bursty_mean_rate_matches_mmpp_closed_form_across_seeds() {
        // Two-state MMPP with equal exponential phase durations spends
        // half its time in each phase, so the stationary arrival rate is
        //   E[rate] = base * (1 + multiplier) / 2.
        // This exercises the phase-boundary redraw: if flipping phases
        // dropped or double-counted the in-flight gap, the realized rate
        // would drift from the closed form as phases multiply.
        let (base, mult, phase_s) = (10.0, 4.0, 1.0);
        let expected = base * (1.0 + mult) / 2.0;
        let n = 20_000;
        let mut rates = Vec::new();
        for seed in [3, 17, 41, 97, 271] {
            let t = ArrivalTrace::bursty(seed, n, base, mult, phase_s);
            // ~800 phase flips per trace: well mixed.
            let span = t.arrivals.last().unwrap() - t.arrivals[0];
            let rate = (n - 1) as f64 / span;
            assert!(
                (rate - expected).abs() / expected < 0.06,
                "seed {seed}: empirical rate {rate} vs closed form {expected}"
            );
            rates.push(rate);
        }
        let mean_rate = rates.iter().sum::<f64>() / rates.len() as f64;
        assert!(
            (mean_rate - expected).abs() / expected < 0.03,
            "across seeds: {mean_rate} vs {expected}"
        );
    }

    #[test]
    fn burst_multiplier_one_degenerates_to_poisson_statistics() {
        let t = ArrivalTrace::bursty(5, 4000, 20.0, 1.0, 1.0);
        // Rate is unmodulated, so the mean gap matches 1/rate closely.
        assert!((t.mean_gap() - 0.05).abs() < 0.005, "{}", t.mean_gap());
        assert!((t.gap_cv() - 1.0).abs() < 0.1, "{}", t.gap_cv());
    }

    #[test]
    fn sharegpt_lengths_match_distribution_shape() {
        let pairs = sharegpt_like_lengths(11, 4000);
        assert_eq!(pairs.len(), 4000);
        let mut prompts: Vec<u64> = pairs.iter().map(|(p, _)| *p).collect();
        prompts.sort_unstable();
        let median = prompts[prompts.len() / 2];
        // Log-normal median = e^mu ≈ 160.
        assert!((100..260).contains(&median), "median {median}");
        // Heavy tail: p99 far above the median, within the clamp.
        let p99 = prompts[prompts.len() * 99 / 100];
        assert!(p99 > 4 * median, "p99 {p99} vs median {median}");
        assert!(*prompts.last().unwrap() <= 4096);
        assert!(*prompts.first().unwrap() >= 4);
        // Deterministic for a fixed seed.
        assert_eq!(pairs, sharegpt_like_lengths(11, 4000));
    }
}
