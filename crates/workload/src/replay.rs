//! Real-trace replay: parse production request logs into request streams.
//!
//! Serving simulators are only as credible as the arrival processes that
//! drive them. Synthetic Poisson/MMPP traffic (see [`crate::generator`])
//! stresses the machinery, but comparing against production means
//! replaying *real* traces — the Azure LLM inference traces and BurstGPT
//! both publish per-request `(timestamp, prompt tokens, generated
//! tokens)` rows in CSV. This module parses that shape into
//! [`ReplayRequest`]s that `llmsim-cluster` converts 1:1 into its own
//! request type.
//!
//! ## Accepted schema
//!
//! A header line naming at least a timestamp, a prompt-length and a
//! generation-length column (synonyms accepted, case-insensitive), then
//! one row per request. Comma- or tab-separated; `#` lines are comments.
//!
//! | column | synonyms |
//! |--------|----------|
//! | `timestamp` | `arrival`, `arrival_s`, `time`, `ts` |
//! | `prompt_len` | `prompt_tokens`, `context_tokens`, `contexttokens`, `input_tokens` |
//! | `gen_len` | `output_tokens`, `generated_tokens`, `generatedtokens`, `gen_tokens` |
//! | `model` (optional) | `model_name` |
//!
//! Timestamps are seconds (any epoch — traces are rebased so the first
//! arrival is t = 0). Rows with a zero generation length are kept but
//! clamped to one token, matching how trace-driven simulators treat
//! prompt-only requests.

use std::collections::BTreeMap;
use std::fmt;

/// One parsed trace row, normalized: arrivals rebased to t = 0 and sorted.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayRequest {
    /// Row index after sorting by arrival (stable ids for the replayed
    /// workload).
    pub id: usize,
    /// Arrival time, seconds since the first request in the trace.
    pub arrival_s: f64,
    /// Prompt tokens.
    pub prompt_len: u64,
    /// Tokens to generate (at least 1).
    pub gen_len: u64,
    /// Model name from the trace (`"default"` when the trace has no model
    /// column).
    pub model: String,
}

/// Why a trace failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceParseError {
    /// The input had no header line.
    Empty,
    /// The header is missing a required column (names the role).
    MissingColumn(&'static str),
    /// Two header columns map to the same role — the trace is ambiguous
    /// and silently picking one would misread the other's data.
    DuplicateColumn(&'static str),
    /// A data row had a different field count than the header.
    RowArity {
        /// 1-based data-row number.
        line: usize,
        /// Fields found.
        got: usize,
        /// Fields expected (header arity).
        want: usize,
    },
    /// A field failed to parse as a number.
    BadField {
        /// 1-based data-row number.
        line: usize,
        /// Column name.
        column: String,
        /// Offending text.
        value: String,
    },
    /// The trace parsed but contained no usable rows.
    NoRows,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceParseError::Empty => write!(f, "trace is empty"),
            TraceParseError::MissingColumn(role) => {
                write!(f, "header is missing a {role} column")
            }
            TraceParseError::DuplicateColumn(role) => {
                write!(f, "header has more than one {role} column")
            }
            TraceParseError::RowArity { line, got, want } => {
                write!(f, "row {line} has {got} fields, header has {want}")
            }
            TraceParseError::BadField {
                line,
                column,
                value,
            } => write!(f, "row {line}: cannot parse {column}={value:?}"),
            TraceParseError::NoRows => write!(f, "trace has no data rows"),
        }
    }
}

impl std::error::Error for TraceParseError {}

/// Matches a header cell against a column role's accepted synonyms.
fn role_of(header: &str) -> Option<&'static str> {
    let h = header.trim().to_ascii_lowercase();
    match h.as_str() {
        "timestamp" | "arrival" | "arrival_s" | "time" | "ts" => Some("timestamp"),
        "prompt_len" | "prompt_tokens" | "context_tokens" | "contexttokens" | "input_tokens" => {
            Some("prompt_len")
        }
        "gen_len" | "output_tokens" | "generated_tokens" | "generatedtokens" | "gen_tokens" => {
            Some("gen_len")
        }
        "model" | "model_name" => Some("model"),
        _ => None,
    }
}

/// Parses an Azure-LLM/BurstGPT-style CSV/TSV trace into a normalized,
/// sorted, t = 0-rebased request stream.
///
/// # Errors
///
/// Returns a [`TraceParseError`] describing the first structural or
/// numeric problem found.
pub fn parse_trace(text: &str) -> Result<Vec<ReplayRequest>, TraceParseError> {
    let mut lines = text
        .lines()
        .map(str::trim_end)
        .filter(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'));
    let header = lines.next().ok_or(TraceParseError::Empty)?;
    let sep = if header.contains('\t') { '\t' } else { ',' };
    let cols: Vec<&str> = header.split(sep).collect();

    let find = |role: &'static str| -> Result<Option<usize>, TraceParseError> {
        let mut hits = cols
            .iter()
            .enumerate()
            .filter(|(_, c)| role_of(c) == Some(role));
        let first = hits.next().map(|(i, _)| i);
        if hits.next().is_some() {
            return Err(TraceParseError::DuplicateColumn(role));
        }
        Ok(first)
    };
    let ts_ix = find("timestamp")?.ok_or(TraceParseError::MissingColumn("timestamp"))?;
    let prompt_ix = find("prompt_len")?.ok_or(TraceParseError::MissingColumn("prompt length"))?;
    let gen_ix = find("gen_len")?.ok_or(TraceParseError::MissingColumn("generation length"))?;
    let model_ix = find("model")?;

    let mut rows: Vec<(f64, u64, u64, String)> = Vec::new();
    for (i, line) in lines.enumerate() {
        let fields: Vec<&str> = line.split(sep).collect();
        if fields.len() != cols.len() {
            return Err(TraceParseError::RowArity {
                line: i + 1,
                got: fields.len(),
                want: cols.len(),
            });
        }
        let num = |ix: usize, col: &str| -> Result<f64, TraceParseError> {
            fields[ix]
                .trim()
                .parse::<f64>()
                .ok()
                .filter(|v| v.is_finite() && *v >= 0.0)
                .ok_or_else(|| TraceParseError::BadField {
                    line: i + 1,
                    column: col.to_string(),
                    value: fields[ix].to_string(),
                })
        };
        let ts = num(ts_ix, "timestamp")?;
        let prompt = num(prompt_ix, "prompt_len")? as u64;
        let gen = (num(gen_ix, "gen_len")? as u64).max(1);
        let model = model_ix
            .map(|ix| fields[ix].trim().to_string())
            .filter(|m| !m.is_empty())
            .unwrap_or_else(|| "default".to_string());
        rows.push((ts, prompt.max(1), gen, model));
    }
    if rows.is_empty() {
        return Err(TraceParseError::NoRows);
    }

    rows.sort_by(|a, b| a.0.total_cmp(&b.0));
    let t0 = rows[0].0;
    Ok(rows
        .into_iter()
        .enumerate()
        .map(|(id, (ts, prompt_len, gen_len, model))| ReplayRequest {
            id,
            arrival_s: ts - t0,
            prompt_len,
            gen_len,
            model,
        })
        .collect())
}

/// Distinct model names in the trace with their request counts, in
/// first-appearance order of the sorted stream.
#[must_use]
pub fn model_mix(requests: &[ReplayRequest]) -> Vec<(String, usize)> {
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    let mut order: Vec<&str> = Vec::new();
    for r in requests {
        if !counts.contains_key(r.model.as_str()) {
            order.push(&r.model);
        }
        *counts.entry(&r.model).or_default() += 1;
    }
    order
        .into_iter()
        .map(|m| (m.to_string(), counts[m]))
        .collect()
}

/// Compresses or stretches the arrival axis by `time_scale` (0.5 = replay
/// twice as fast), leaving lengths untouched — the standard knob for
/// sweeping a recorded trace across load levels.
///
/// # Panics
///
/// Panics unless `time_scale` is positive and finite.
#[must_use]
pub fn scale_arrivals(mut requests: Vec<ReplayRequest>, time_scale: f64) -> Vec<ReplayRequest> {
    assert!(
        time_scale > 0.0 && time_scale.is_finite(),
        "time scale must be positive and finite"
    );
    for r in &mut requests {
        r.arrival_s *= time_scale;
    }
    requests
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact float assertions are deliberate: determinism is bit-level
mod tests {
    use super::*;

    const SAMPLE: &str = "\
timestamp,prompt_len,gen_len,model
0.00,128,32,OPT-13B
# a comment mid-file
1.50,512,16,OPT-66B
0.75,64,8,OPT-13B
";

    #[test]
    fn parses_sorts_and_rebases() {
        let reqs = parse_trace(SAMPLE).expect("parses");
        assert_eq!(reqs.len(), 3);
        assert_eq!(reqs[0].arrival_s, 0.0);
        assert!(reqs.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
        assert_eq!(reqs[1].prompt_len, 64, "sorted by timestamp");
        assert_eq!(reqs[2].model, "OPT-66B");
        assert_eq!(reqs.iter().map(|r| r.id).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn accepts_azure_style_headers_and_tabs() {
        let azure = "TIMESTAMP\tContextTokens\tGeneratedTokens\n100.0\t490\t84\n101.5\t60\t12\n";
        let reqs = parse_trace(azure).expect("azure schema parses");
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[0].prompt_len, 490);
        assert_eq!(reqs[0].gen_len, 84);
        assert_eq!(reqs[0].model, "default", "no model column");
        assert_eq!(reqs[1].arrival_s, 1.5, "rebased to t=0");
    }

    #[test]
    fn rebase_handles_absolute_epochs() {
        let t = "timestamp,prompt_len,gen_len\n1700000000.25,8,4\n1700000001.25,8,4\n";
        let reqs = parse_trace(t).expect("parses");
        assert_eq!(reqs[0].arrival_s, 0.0);
        assert!((reqs[1].arrival_s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_gen_len_is_clamped_to_one_token() {
        let t = "timestamp,prompt_len,gen_len\n0,128,0\n";
        let reqs = parse_trace(t).expect("parses");
        assert_eq!(reqs[0].gen_len, 1);
    }

    #[test]
    fn errors_are_specific() {
        assert_eq!(parse_trace(""), Err(TraceParseError::Empty));
        assert_eq!(
            parse_trace("prompt_len,gen_len\n1,2\n"),
            Err(TraceParseError::MissingColumn("timestamp"))
        );
        assert_eq!(
            parse_trace("timestamp,prompt_len,gen_len\n"),
            Err(TraceParseError::NoRows)
        );
        assert!(matches!(
            parse_trace("timestamp,prompt_len,gen_len\n0,128\n"),
            Err(TraceParseError::RowArity {
                line: 1,
                got: 2,
                want: 3
            })
        ));
        assert!(matches!(
            parse_trace("timestamp,prompt_len,gen_len\n0,abc,4\n"),
            Err(TraceParseError::BadField { line: 1, .. })
        ));
        // Negative or non-finite numbers are rejected, not wrapped.
        assert!(matches!(
            parse_trace("timestamp,prompt_len,gen_len\n-1,8,4\n"),
            Err(TraceParseError::BadField { .. })
        ));
        assert!(
            parse_trace("timestamp,prompt_len,gen_len\n0,8,4\n").unwrap()[0]
                .model
                .contains("default")
        );
    }

    #[test]
    fn duplicate_role_columns_are_rejected() {
        // `timestamp` and `ts` are synonyms: picking one silently would
        // misread the other's data, so the parse must fail instead.
        assert_eq!(
            parse_trace("timestamp,ts,prompt_len,gen_len\n0,0,8,4\n"),
            Err(TraceParseError::DuplicateColumn("timestamp"))
        );
        assert_eq!(
            parse_trace("time,prompt_tokens,input_tokens,gen_len\n0,8,8,4\n"),
            Err(TraceParseError::DuplicateColumn("prompt_len"))
        );
        assert_eq!(
            parse_trace("time,prompt_len,gen_len,model,model_name\n0,8,4,a,b\n"),
            Err(TraceParseError::DuplicateColumn("model"))
        );
    }

    #[test]
    fn malformed_inputs_error_instead_of_panicking() {
        // Whitespace/comment-only input is Empty, not a panic.
        assert_eq!(
            parse_trace("   \n# only a comment\n\n"),
            Err(TraceParseError::Empty)
        );
        // Missing prompt and generation columns name their role.
        assert_eq!(
            parse_trace("timestamp,gen_len\n0,4\n"),
            Err(TraceParseError::MissingColumn("prompt length"))
        );
        assert_eq!(
            parse_trace("timestamp,prompt_len\n0,8\n"),
            Err(TraceParseError::MissingColumn("generation length"))
        );
        // Non-numeric timestamps name the column and offending text.
        assert_eq!(
            parse_trace("timestamp,prompt_len,gen_len\n2024-01-01T00:00:00Z,8,4\n"),
            Err(TraceParseError::BadField {
                line: 1,
                column: "timestamp".to_string(),
                value: "2024-01-01T00:00:00Z".to_string(),
            })
        );
        // NaN/inf are structurally numeric but rejected as values.
        assert!(matches!(
            parse_trace("timestamp,prompt_len,gen_len\nNaN,8,4\n"),
            Err(TraceParseError::BadField { .. })
        ));
        // Every error Displays without panicking.
        for bad in ["", "x\n", "timestamp,ts,prompt_len,gen_len\n0,0,8,4\n"] {
            if let Err(e) = parse_trace(bad) {
                assert!(!e.to_string().is_empty());
            }
        }
    }

    #[test]
    fn model_mix_counts_in_first_appearance_order() {
        let reqs = parse_trace(SAMPLE).unwrap();
        let mix = model_mix(&reqs);
        assert_eq!(
            mix,
            vec![("OPT-13B".to_string(), 2), ("OPT-66B".to_string(), 1)]
        );
    }

    #[test]
    fn scaling_compresses_arrivals_only() {
        let reqs = parse_trace(SAMPLE).unwrap();
        let fast = scale_arrivals(reqs.clone(), 0.5);
        assert!((fast[2].arrival_s - reqs[2].arrival_s * 0.5).abs() < 1e-12);
        assert_eq!(fast[2].prompt_len, reqs[2].prompt_len);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_panics() {
        let _ = scale_arrivals(vec![], 0.0);
    }
}
