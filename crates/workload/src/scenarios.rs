//! Serving scenarios from §II-C of the paper: different use cases
//! prioritize different metrics.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The metric a use case optimizes for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrimaryMetric {
    /// Time to first token.
    Ttft,
    /// Time per output token.
    Tpot,
    /// End-to-end latency.
    E2eLatency,
    /// Tokens generated per second.
    Throughput,
}

impl fmt::Display for PrimaryMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PrimaryMetric::Ttft => "TTFT",
            PrimaryMetric::Tpot => "TPOT",
            PrimaryMetric::E2eLatency => "E2E latency",
            PrimaryMetric::Throughput => "throughput",
        };
        f.write_str(s)
    }
}

/// A named serving scenario with its workload shape and priority metric.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scenario {
    /// Scenario name.
    pub name: String,
    /// What matters most (§II-C).
    pub metric: PrimaryMetric,
    /// Typical prompt length.
    pub prompt_len: u64,
    /// Typical generation length.
    pub gen_len: u64,
    /// Typical batch size.
    pub batch: u64,
}

impl Scenario {
    /// Real-time chatbot: users expect a fast first token (§II-C).
    #[must_use]
    pub fn chatbot() -> Self {
        Scenario {
            name: "chatbot".into(),
            metric: PrimaryMetric::Ttft,
            prompt_len: 256,
            gen_len: 64,
            batch: 1,
        }
    }

    /// Live translation: a slight startup delay is fine, but TPOT must keep
    /// pace with speech (§II-C).
    #[must_use]
    pub fn live_translation() -> Self {
        Scenario {
            name: "live-translation".into(),
            metric: PrimaryMetric::Tpot,
            prompt_len: 64,
            gen_len: 64,
            batch: 4,
        }
    }

    /// Batch sentiment analysis: finish the whole job as fast as possible;
    /// system throughput wins (§II-C).
    #[must_use]
    pub fn batch_analytics() -> Self {
        Scenario {
            name: "batch-analytics".into(),
            metric: PrimaryMetric::Throughput,
            prompt_len: 128,
            gen_len: 32,
            batch: 32,
        }
    }

    /// All three §II-C scenarios.
    #[must_use]
    pub fn all() -> Vec<Scenario> {
        vec![
            Self::chatbot(),
            Self::live_translation(),
            Self::batch_analytics(),
        ]
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (optimizes {}, b={} in={} out={})",
            self.name, self.metric, self.batch, self.prompt_len, self.gen_len
        )
    }
}

/// A named stress condition for the resilience experiments: arrival
/// shape, fault rates, and SLO targets as plain numbers (the core crate
/// turns them into its fault/SLO policies).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilienceScenario {
    /// Scenario name.
    pub name: String,
    /// Mean arrival rate, requests per second.
    pub arrival_rate_per_sec: f64,
    /// Burst rate multiplier (1 = plain Poisson arrivals).
    pub burst_multiplier: f64,
    /// Mean calm/burst phase duration, seconds (ignored when
    /// `burst_multiplier` is 1).
    pub mean_phase_s: f64,
    /// Per-iteration backend fault probability.
    pub fault_prob: f64,
    /// Per-iteration transient slowdown probability.
    pub slowdown_prob: f64,
    /// TTFT budget, seconds (`None` = no deadline).
    pub ttft_slo_s: Option<f64>,
    /// End-to-end budget, seconds (`None` = no deadline).
    pub e2e_slo_s: Option<f64>,
    /// Admission queue bound (`None` = admit everything).
    pub queue_capacity: Option<usize>,
}

impl ResilienceScenario {
    /// A healthy fleet serving steady traffic: no faults, no deadlines —
    /// the baseline every other scenario is compared against.
    #[must_use]
    pub fn steady_healthy() -> Self {
        ResilienceScenario {
            name: "steady-healthy".into(),
            arrival_rate_per_sec: 4.0,
            burst_multiplier: 1.0,
            mean_phase_s: 1.0,
            fault_prob: 0.0,
            slowdown_prob: 0.0,
            ttft_slo_s: None,
            e2e_slo_s: None,
            queue_capacity: None,
        }
    }

    /// Degraded hardware under steady traffic: iteration-level faults and
    /// transient slowdowns, interactive SLOs enforced.
    #[must_use]
    pub fn degraded_node() -> Self {
        ResilienceScenario {
            name: "degraded-node".into(),
            arrival_rate_per_sec: 4.0,
            burst_multiplier: 1.0,
            mean_phase_s: 1.0,
            fault_prob: 0.02,
            slowdown_prob: 0.05,
            ttft_slo_s: Some(2.0),
            e2e_slo_s: Some(20.0),
            queue_capacity: Some(32),
        }
    }

    /// A traffic spike against healthy hardware: bursty arrivals that
    /// saturate the bounded queue and force load shedding.
    #[must_use]
    pub fn burst_overload() -> Self {
        ResilienceScenario {
            name: "burst-overload".into(),
            arrival_rate_per_sec: 6.0,
            burst_multiplier: 8.0,
            mean_phase_s: 2.0,
            fault_prob: 0.0,
            slowdown_prob: 0.0,
            ttft_slo_s: Some(2.0),
            e2e_slo_s: Some(20.0),
            queue_capacity: Some(16),
        }
    }

    /// Everything at once: bursty traffic on degraded hardware — the
    /// worst-case condition the resilience layer is designed for.
    #[must_use]
    pub fn burst_on_degraded() -> Self {
        ResilienceScenario {
            name: "burst-on-degraded".into(),
            arrival_rate_per_sec: 6.0,
            burst_multiplier: 8.0,
            mean_phase_s: 2.0,
            fault_prob: 0.02,
            slowdown_prob: 0.05,
            ttft_slo_s: Some(2.0),
            e2e_slo_s: Some(20.0),
            queue_capacity: Some(16),
        }
    }

    /// All resilience stress scenarios, mildest first.
    #[must_use]
    pub fn all() -> Vec<ResilienceScenario> {
        vec![
            Self::steady_healthy(),
            Self::degraded_node(),
            Self::burst_overload(),
            Self::burst_on_degraded(),
        ]
    }
}

impl fmt::Display for ResilienceScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}/s x{} bursts, fault {:.1}%, slowdown {:.1}%)",
            self.name,
            self.arrival_rate_per_sec,
            self.burst_multiplier,
            self.fault_prob * 100.0,
            self.slowdown_prob * 100.0
        )
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact float assertions are deliberate: determinism is bit-level
mod tests {
    use super::*;

    #[test]
    fn scenarios_cover_distinct_metrics() {
        let all = Scenario::all();
        assert_eq!(all.len(), 3);
        let metrics: std::collections::HashSet<_> = all.iter().map(|s| s.metric).collect();
        assert_eq!(metrics.len(), 3);
    }

    #[test]
    fn chatbot_is_interactive() {
        let c = Scenario::chatbot();
        assert_eq!(c.metric, PrimaryMetric::Ttft);
        assert_eq!(c.batch, 1);
    }

    #[test]
    fn resilience_scenarios_escalate_from_a_clean_baseline() {
        let all = ResilienceScenario::all();
        assert_eq!(all.len(), 4);
        let names: std::collections::HashSet<_> = all.iter().map(|s| s.name.clone()).collect();
        assert_eq!(names.len(), all.len(), "names must be unique");
        let baseline = &all[0];
        assert_eq!(baseline.fault_prob, 0.0);
        assert_eq!(baseline.queue_capacity, None);
        // Every stressed scenario enforces SLOs and perturbs at least one axis.
        for s in &all[1..] {
            assert!(
                s.ttft_slo_s.is_some() && s.e2e_slo_s.is_some(),
                "{}",
                s.name
            );
            assert!(s.fault_prob > 0.0 || s.burst_multiplier > 1.0, "{}", s.name);
        }
        let worst = ResilienceScenario::burst_on_degraded();
        assert!(worst.fault_prob > 0.0 && worst.burst_multiplier > 1.0);
        assert!(worst.to_string().contains("burst-on-degraded"));
    }
}
