//! Serving scenarios from §II-C of the paper: different use cases
//! prioritize different metrics.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The metric a use case optimizes for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrimaryMetric {
    /// Time to first token.
    Ttft,
    /// Time per output token.
    Tpot,
    /// End-to-end latency.
    E2eLatency,
    /// Tokens generated per second.
    Throughput,
}

impl fmt::Display for PrimaryMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PrimaryMetric::Ttft => "TTFT",
            PrimaryMetric::Tpot => "TPOT",
            PrimaryMetric::E2eLatency => "E2E latency",
            PrimaryMetric::Throughput => "throughput",
        };
        f.write_str(s)
    }
}

/// A named serving scenario with its workload shape and priority metric.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scenario {
    /// Scenario name.
    pub name: String,
    /// What matters most (§II-C).
    pub metric: PrimaryMetric,
    /// Typical prompt length.
    pub prompt_len: u64,
    /// Typical generation length.
    pub gen_len: u64,
    /// Typical batch size.
    pub batch: u64,
}

impl Scenario {
    /// Real-time chatbot: users expect a fast first token (§II-C).
    #[must_use]
    pub fn chatbot() -> Self {
        Scenario {
            name: "chatbot".into(),
            metric: PrimaryMetric::Ttft,
            prompt_len: 256,
            gen_len: 64,
            batch: 1,
        }
    }

    /// Live translation: a slight startup delay is fine, but TPOT must keep
    /// pace with speech (§II-C).
    #[must_use]
    pub fn live_translation() -> Self {
        Scenario {
            name: "live-translation".into(),
            metric: PrimaryMetric::Tpot,
            prompt_len: 64,
            gen_len: 64,
            batch: 4,
        }
    }

    /// Batch sentiment analysis: finish the whole job as fast as possible;
    /// system throughput wins (§II-C).
    #[must_use]
    pub fn batch_analytics() -> Self {
        Scenario {
            name: "batch-analytics".into(),
            metric: PrimaryMetric::Throughput,
            prompt_len: 128,
            gen_len: 32,
            batch: 32,
        }
    }

    /// All three §II-C scenarios.
    #[must_use]
    pub fn all() -> Vec<Scenario> {
        vec![
            Self::chatbot(),
            Self::live_translation(),
            Self::batch_analytics(),
        ]
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (optimizes {}, b={} in={} out={})",
            self.name, self.metric, self.batch, self.prompt_len, self.gen_len
        )
    }
}

/// A named stress condition for the resilience experiments: arrival
/// shape, fault rates, and SLO targets as plain numbers (the core crate
/// turns them into its fault/SLO policies).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilienceScenario {
    /// Scenario name.
    pub name: String,
    /// Mean arrival rate, requests per second.
    pub arrival_rate_per_sec: f64,
    /// Burst rate multiplier (1 = plain Poisson arrivals).
    pub burst_multiplier: f64,
    /// Mean calm/burst phase duration, seconds (ignored when
    /// `burst_multiplier` is 1).
    pub mean_phase_s: f64,
    /// Per-iteration backend fault probability.
    pub fault_prob: f64,
    /// Per-iteration transient slowdown probability.
    pub slowdown_prob: f64,
    /// TTFT budget, seconds (`None` = no deadline).
    pub ttft_slo_s: Option<f64>,
    /// End-to-end budget, seconds (`None` = no deadline).
    pub e2e_slo_s: Option<f64>,
    /// Admission queue bound (`None` = admit everything).
    pub queue_capacity: Option<usize>,
}

impl ResilienceScenario {
    /// A healthy fleet serving steady traffic: no faults, no deadlines —
    /// the baseline every other scenario is compared against.
    #[must_use]
    pub fn steady_healthy() -> Self {
        ResilienceScenario {
            name: "steady-healthy".into(),
            arrival_rate_per_sec: 4.0,
            burst_multiplier: 1.0,
            mean_phase_s: 1.0,
            fault_prob: 0.0,
            slowdown_prob: 0.0,
            ttft_slo_s: None,
            e2e_slo_s: None,
            queue_capacity: None,
        }
    }

    /// Degraded hardware under steady traffic: iteration-level faults and
    /// transient slowdowns, interactive SLOs enforced.
    #[must_use]
    pub fn degraded_node() -> Self {
        ResilienceScenario {
            name: "degraded-node".into(),
            arrival_rate_per_sec: 4.0,
            burst_multiplier: 1.0,
            mean_phase_s: 1.0,
            fault_prob: 0.02,
            slowdown_prob: 0.05,
            ttft_slo_s: Some(2.0),
            e2e_slo_s: Some(20.0),
            queue_capacity: Some(32),
        }
    }

    /// A traffic spike against healthy hardware: bursty arrivals that
    /// saturate the bounded queue and force load shedding.
    #[must_use]
    pub fn burst_overload() -> Self {
        ResilienceScenario {
            name: "burst-overload".into(),
            arrival_rate_per_sec: 6.0,
            burst_multiplier: 8.0,
            mean_phase_s: 2.0,
            fault_prob: 0.0,
            slowdown_prob: 0.0,
            ttft_slo_s: Some(2.0),
            e2e_slo_s: Some(20.0),
            queue_capacity: Some(16),
        }
    }

    /// Everything at once: bursty traffic on degraded hardware — the
    /// worst-case condition the resilience layer is designed for.
    #[must_use]
    pub fn burst_on_degraded() -> Self {
        ResilienceScenario {
            name: "burst-on-degraded".into(),
            arrival_rate_per_sec: 6.0,
            burst_multiplier: 8.0,
            mean_phase_s: 2.0,
            fault_prob: 0.02,
            slowdown_prob: 0.05,
            ttft_slo_s: Some(2.0),
            e2e_slo_s: Some(20.0),
            queue_capacity: Some(16),
        }
    }

    /// All resilience stress scenarios, mildest first.
    #[must_use]
    pub fn all() -> Vec<ResilienceScenario> {
        vec![
            Self::steady_healthy(),
            Self::degraded_node(),
            Self::burst_overload(),
            Self::burst_on_degraded(),
        ]
    }
}

impl fmt::Display for ResilienceScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}/s x{} bursts, fault {:.1}%, slowdown {:.1}%)",
            self.name,
            self.arrival_rate_per_sec,
            self.burst_multiplier,
            self.fault_prob * 100.0,
            self.slowdown_prob * 100.0
        )
    }
}

/// A named chaos condition for the fleet-level fault experiments: MMPP
/// arrival shape plus a replica-scoped fault schedule and the recovery
/// machinery (retry budget, hedging) as plain numbers. `llmsim-cluster`
/// turns these into its `ChaosConfig`; keeping the preset here means the
/// `ext_chaos` experiment and the cluster tests share one canonical
/// configuration instead of each hand-rolling rates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosScenario {
    /// Scenario name.
    pub name: String,
    /// Mean arrival rate, requests per second.
    pub arrival_rate_per_sec: f64,
    /// Burst rate multiplier (1 = plain Poisson arrivals).
    pub burst_multiplier: f64,
    /// Mean calm/burst phase duration, seconds.
    pub mean_phase_s: f64,
    /// Per-replica mean time between faults, seconds (infinite = no
    /// faults are ever injected).
    pub mtbf_s: f64,
    /// Fault schedule horizon, seconds (faults are drawn in `[0, horizon)`).
    pub fault_horizon_s: f64,
    /// Relative weight of crash faults (lose in-flight work, re-cold-start).
    pub crash_weight: f64,
    /// Relative weight of transient slowdown faults.
    pub slowdown_weight: f64,
    /// Relative weight of router-partition faults.
    pub partition_weight: f64,
    /// Relative weight of maintenance-drain faults.
    pub drain_weight: f64,
    /// Service-time multiplier during a slowdown window (≥ 1).
    pub slowdown_factor: f64,
    /// Slowdown window duration, seconds.
    pub slowdown_s: f64,
    /// Partition window duration, seconds.
    pub partition_s: f64,
    /// Drain window duration, seconds.
    pub drain_s: f64,
    /// Retry attempts allowed per request beyond the first.
    pub max_retries: u32,
    /// Fleet-wide retry budget (`None` = unlimited).
    pub retry_budget: Option<u64>,
    /// Hedge a second dispatch after this fraction of the e2e SLO
    /// (`None` disables hedging).
    pub hedge_after_frac: Option<f64>,
    /// TTFT budget for goodput accounting, seconds.
    pub ttft_slo_s: f64,
    /// End-to-end budget for goodput accounting, seconds.
    pub e2e_slo_s: f64,
}

impl ChaosScenario {
    /// The no-fault baseline: same arrivals and SLOs as the chaos runs,
    /// but an infinite MTBF and no recovery machinery. A fleet under this
    /// scenario must behave byte-identically to one with chaos disabled.
    #[must_use]
    pub fn fault_free() -> Self {
        ChaosScenario {
            name: "fault-free".into(),
            arrival_rate_per_sec: 4.0,
            burst_multiplier: 6.0,
            mean_phase_s: 4.0,
            mtbf_s: f64::INFINITY,
            fault_horizon_s: 120.0,
            crash_weight: 1.0,
            slowdown_weight: 0.0,
            partition_weight: 0.0,
            drain_weight: 0.0,
            slowdown_factor: 1.0,
            slowdown_s: 0.0,
            partition_s: 0.0,
            drain_s: 0.0,
            max_retries: 0,
            retry_budget: Some(0),
            hedge_after_frac: None,
            ttft_slo_s: 8.0,
            e2e_slo_s: 60.0,
        }
    }

    /// Crash-dominated chaos: replicas die and re-cold-start, in-flight
    /// work is lost, retries + hedging are the only defense.
    #[must_use]
    pub fn crashy_fleet() -> Self {
        ChaosScenario {
            name: "crashy-fleet".into(),
            mtbf_s: 40.0,
            crash_weight: 1.0,
            max_retries: 3,
            retry_budget: Some(64),
            hedge_after_frac: Some(0.25),
            ..Self::fault_free()
        }
    }

    /// Network-shaped chaos: partitions hide replicas from the router and
    /// slowdown windows stretch service times; crashes are rare.
    #[must_use]
    pub fn flaky_network() -> Self {
        ChaosScenario {
            name: "flaky-network".into(),
            mtbf_s: 25.0,
            crash_weight: 0.2,
            slowdown_weight: 0.4,
            partition_weight: 0.4,
            slowdown_factor: 3.0,
            slowdown_s: 6.0,
            partition_s: 8.0,
            max_retries: 3,
            retry_budget: Some(64),
            hedge_after_frac: Some(0.25),
            ..Self::fault_free()
        }
    }

    /// Rolling maintenance: drains cycle through the fleet, stopping
    /// admission but finishing accepted work; nothing is ever lost.
    #[must_use]
    pub fn rolling_maintenance() -> Self {
        ChaosScenario {
            name: "rolling-maintenance".into(),
            mtbf_s: 30.0,
            crash_weight: 0.0,
            drain_weight: 1.0,
            drain_s: 10.0,
            max_retries: 1,
            retry_budget: Some(16),
            ..Self::fault_free()
        }
    }

    /// All chaos scenarios, mildest first.
    #[must_use]
    pub fn all() -> Vec<ChaosScenario> {
        vec![
            Self::fault_free(),
            Self::rolling_maintenance(),
            Self::flaky_network(),
            Self::crashy_fleet(),
        ]
    }
}

impl fmt::Display for ChaosScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}/s x{} bursts, MTBF {}s, retries {}, hedge {})",
            self.name,
            self.arrival_rate_per_sec,
            self.burst_multiplier,
            self.mtbf_s,
            self.max_retries,
            self.hedge_after_frac
                .map_or("off".into(), |h| format!("{h:.2}")),
        )
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact float assertions are deliberate: determinism is bit-level
mod tests {
    use super::*;

    #[test]
    fn scenarios_cover_distinct_metrics() {
        let all = Scenario::all();
        assert_eq!(all.len(), 3);
        let metrics: std::collections::HashSet<_> = all.iter().map(|s| s.metric).collect();
        assert_eq!(metrics.len(), 3);
    }

    #[test]
    fn chatbot_is_interactive() {
        let c = Scenario::chatbot();
        assert_eq!(c.metric, PrimaryMetric::Ttft);
        assert_eq!(c.batch, 1);
    }

    #[test]
    fn chaos_scenarios_share_arrivals_and_slos_with_the_baseline() {
        let all = ChaosScenario::all();
        assert_eq!(all.len(), 4);
        let names: std::collections::HashSet<_> = all.iter().map(|s| s.name.clone()).collect();
        assert_eq!(names.len(), all.len(), "names must be unique");
        let base = ChaosScenario::fault_free();
        assert!(base.mtbf_s.is_infinite(), "baseline injects nothing");
        for s in &all {
            // The sweep varies the fault axis only: same traffic, same SLOs.
            assert_eq!(
                s.arrival_rate_per_sec, base.arrival_rate_per_sec,
                "{}",
                s.name
            );
            assert_eq!(s.burst_multiplier, base.burst_multiplier, "{}", s.name);
            assert_eq!(s.ttft_slo_s, base.ttft_slo_s, "{}", s.name);
            assert_eq!(s.e2e_slo_s, base.e2e_slo_s, "{}", s.name);
            let wsum = s.crash_weight + s.slowdown_weight + s.partition_weight + s.drain_weight;
            assert!(wsum > 0.0, "{}: some fault kind must carry weight", s.name);
            assert!(s.slowdown_factor >= 1.0, "{}", s.name);
        }
        for s in &all[1..] {
            assert!(
                s.mtbf_s.is_finite(),
                "{}: stressed scenarios inject",
                s.name
            );
            assert!(s.to_string().contains(&s.name));
        }
    }

    #[test]
    fn resilience_scenarios_escalate_from_a_clean_baseline() {
        let all = ResilienceScenario::all();
        assert_eq!(all.len(), 4);
        let names: std::collections::HashSet<_> = all.iter().map(|s| s.name.clone()).collect();
        assert_eq!(names.len(), all.len(), "names must be unique");
        let baseline = &all[0];
        assert_eq!(baseline.fault_prob, 0.0);
        assert_eq!(baseline.queue_capacity, None);
        // Every stressed scenario enforces SLOs and perturbs at least one axis.
        for s in &all[1..] {
            assert!(
                s.ttft_slo_s.is_some() && s.e2e_slo_s.is_some(),
                "{}",
                s.name
            );
            assert!(s.fault_prob > 0.0 || s.burst_multiplier > 1.0, "{}", s.name);
        }
        let worst = ResilienceScenario::burst_on_degraded();
        assert!(worst.fault_prob > 0.0 && worst.burst_multiplier > 1.0);
        assert!(worst.to_string().contains("burst-on-degraded"));
    }
}
