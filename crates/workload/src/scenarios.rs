//! Serving scenarios from §II-C of the paper: different use cases
//! prioritize different metrics.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The metric a use case optimizes for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrimaryMetric {
    /// Time to first token.
    Ttft,
    /// Time per output token.
    Tpot,
    /// End-to-end latency.
    E2eLatency,
    /// Tokens generated per second.
    Throughput,
}

impl fmt::Display for PrimaryMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PrimaryMetric::Ttft => "TTFT",
            PrimaryMetric::Tpot => "TPOT",
            PrimaryMetric::E2eLatency => "E2E latency",
            PrimaryMetric::Throughput => "throughput",
        };
        f.write_str(s)
    }
}

/// A named serving scenario with its workload shape and priority metric.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scenario {
    /// Scenario name.
    pub name: String,
    /// What matters most (§II-C).
    pub metric: PrimaryMetric,
    /// Typical prompt length.
    pub prompt_len: u64,
    /// Typical generation length.
    pub gen_len: u64,
    /// Typical batch size.
    pub batch: u64,
}

impl Scenario {
    /// Real-time chatbot: users expect a fast first token (§II-C).
    #[must_use]
    pub fn chatbot() -> Self {
        Scenario { name: "chatbot".into(), metric: PrimaryMetric::Ttft, prompt_len: 256, gen_len: 64, batch: 1 }
    }

    /// Live translation: a slight startup delay is fine, but TPOT must keep
    /// pace with speech (§II-C).
    #[must_use]
    pub fn live_translation() -> Self {
        Scenario {
            name: "live-translation".into(),
            metric: PrimaryMetric::Tpot,
            prompt_len: 64,
            gen_len: 64,
            batch: 4,
        }
    }

    /// Batch sentiment analysis: finish the whole job as fast as possible;
    /// system throughput wins (§II-C).
    #[must_use]
    pub fn batch_analytics() -> Self {
        Scenario {
            name: "batch-analytics".into(),
            metric: PrimaryMetric::Throughput,
            prompt_len: 128,
            gen_len: 32,
            batch: 32,
        }
    }

    /// All three §II-C scenarios.
    #[must_use]
    pub fn all() -> Vec<Scenario> {
        vec![Self::chatbot(), Self::live_translation(), Self::batch_analytics()]
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (optimizes {}, b={} in={} out={})",
            self.name, self.metric, self.batch, self.prompt_len, self.gen_len
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_cover_distinct_metrics() {
        let all = Scenario::all();
        assert_eq!(all.len(), 3);
        let metrics: std::collections::HashSet<_> = all.iter().map(|s| s.metric).collect();
        assert_eq!(metrics.len(), 3);
    }

    #[test]
    fn chatbot_is_interactive() {
        let c = Scenario::chatbot();
        assert_eq!(c.metric, PrimaryMetric::Ttft);
        assert_eq!(c.batch, 1);
    }
}
