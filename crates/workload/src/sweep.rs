//! Parameter-sweep grids matching the paper's methodology (§IV-A, §V).

use llmsim_model::{families, ModelConfig};
use serde::{Deserialize, Serialize};

/// The paper's batch-size sweep: 1–32 in powers of two.
pub const PAPER_BATCHES: [u64; 6] = [1, 2, 4, 8, 16, 32];

/// The paper's sequence-length sweep for §V-C: 128–1024 input tokens.
pub const PAPER_SEQ_LENS: [u64; 4] = [128, 256, 512, 1024];

/// The paper's core-count sweep for Fig. 14/16.
pub const PAPER_CORE_COUNTS: [u32; 4] = [12, 24, 48, 96];

/// One sweep point.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Model name (resolve with [`families::by_name`]).
    pub model: String,
    /// Batch size.
    pub batch: u64,
    /// Prompt length.
    pub prompt_len: u64,
    /// Generation length.
    pub gen_len: u64,
}

/// The full §IV workload grid: every paper model × every batch size at the
/// standard 128/32 lengths.
#[must_use]
pub fn paper_grid() -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for m in families::all_paper_models() {
        for &b in &PAPER_BATCHES {
            points.push(SweepPoint {
                model: m.name.clone(),
                batch: b,
                prompt_len: 128,
                gen_len: 32,
            });
        }
    }
    points
}

/// The §V-C sequence-length grid for one batch size.
#[must_use]
pub fn seq_len_grid(batch: u64) -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for m in families::all_paper_models() {
        for &s in &PAPER_SEQ_LENS {
            points.push(SweepPoint {
                model: m.name.clone(),
                batch,
                prompt_len: s,
                gen_len: 32,
            });
        }
    }
    points
}

/// Resolves a sweep point's model configuration.
///
/// # Panics
///
/// Panics if the point references an unknown model (sweep builders here only
/// emit known names).
#[must_use]
pub fn resolve_model(point: &SweepPoint) -> ModelConfig {
    families::by_name(&point.model)
        .unwrap_or_else(|| panic!("unknown model in sweep: {}", point.model))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_covers_8_models_x_6_batches() {
        let g = paper_grid();
        assert_eq!(g.len(), 48);
        assert!(g.iter().all(|p| p.prompt_len == 128 && p.gen_len == 32));
    }

    #[test]
    fn seq_grid_sweeps_lengths() {
        let g = seq_len_grid(16);
        assert_eq!(g.len(), 32);
        assert!(g.iter().all(|p| p.batch == 16));
        assert!(g.iter().any(|p| p.prompt_len == 1024));
    }

    #[test]
    fn all_points_resolve() {
        for p in paper_grid() {
            assert_eq!(resolve_model(&p).name, p.model);
        }
    }
}
