//! Seeded synthetic service traces at production scale.
//!
//! The bundled real traces top out at 72 requests — enough to validate
//! replay semantics, far too small to exercise the fleet engine's hot
//! path. This module synthesizes million-request traces with the two
//! statistical properties that make real service traffic hard to serve:
//!
//! - **MMPP arrivals** (Markov-modulated Poisson): calm/burst phase
//!   switching via [`ArrivalTrace::bursty`], so admission control and
//!   queue growth are stressed the way diurnal-plus-bursty traffic
//!   stresses them;
//! - **heavy-tailed length mixtures**: each request draws a workload
//!   *class* (chat turn, document ingest, code completion, …) and then
//!   log-normal prompt/generation lengths from that class, reproducing
//!   the multi-modal shape histograms of ShareGPT/Azure-LLM-style traces.
//!
//! Lengths are **quantized** to a configurable grid (`prompt_quantum`,
//! `gen_quantum`). Real serving stacks pad sequences to bucket boundaries
//! for exactly the reason the simulator does: it bounds the number of
//! distinct shapes the cost machinery ever sees. A million-request trace
//! with raw log-normal lengths would price ~10^6 distinct shapes; the
//! quantized mixture prices a few thousand, which the engine's
//! prediction memo turns into near-free lookups (see DESIGN.md §12).
//!
//! Everything is seeded: the same [`SyntheticSpec`] always produces the
//! same trace, byte for byte.

use crate::generator::{ArrivalTrace, LogNormalLengths};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One workload class in the mixture: a weight and the length
/// distributions requests of this class draw from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LengthClass {
    /// Relative mixture weight (need not be normalized).
    pub weight: f64,
    /// Prompt-length distribution.
    pub prompt: LogNormalLengths,
    /// Generation-length distribution.
    pub gen: LogNormalLengths,
}

/// Full specification of a synthetic trace. Two specs with equal fields
/// generate byte-identical traces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticSpec {
    /// Master seed (arrivals and shapes derive independent streams).
    pub seed: u64,
    /// Number of requests to generate.
    pub requests: usize,
    /// Calm-phase arrival rate.
    pub base_rate_per_sec: f64,
    /// Burst-phase multiplier on the calm rate (≥ 1).
    pub burst_multiplier: f64,
    /// Mean calm/burst phase duration.
    pub mean_phase_s: f64,
    /// The workload-class mixture (must be non-empty, weights positive).
    pub classes: Vec<LengthClass>,
    /// Prompt lengths are rounded up to a multiple of this (≥ 1).
    pub prompt_quantum: u64,
    /// Generation lengths are rounded up to a multiple of this (≥ 1).
    pub gen_quantum: u64,
}

impl SyntheticSpec {
    /// A day-of-service-like mixture at `rate_per_sec`: 70 % short chat
    /// turns, 20 % long-prompt document queries, 10 % long-generation
    /// completions. Lengths bucket to a 16/8-token grid.
    #[must_use]
    pub fn service_day(seed: u64, requests: usize, rate_per_sec: f64) -> Self {
        SyntheticSpec {
            seed,
            requests,
            base_rate_per_sec: rate_per_sec,
            burst_multiplier: 4.0,
            mean_phase_s: 60.0,
            classes: vec![
                // Chat: short prompts, short answers.
                LengthClass {
                    weight: 0.7,
                    prompt: LogNormalLengths {
                        mu: 4.7,
                        sigma: 0.6,
                        clamp: (16, 1024),
                    },
                    gen: LogNormalLengths {
                        mu: 4.0,
                        sigma: 0.6,
                        clamp: (8, 256),
                    },
                },
                // Document Q&A: long prompts, short answers.
                LengthClass {
                    weight: 0.2,
                    prompt: LogNormalLengths {
                        mu: 6.6,
                        sigma: 0.5,
                        clamp: (256, 4096),
                    },
                    gen: LogNormalLengths {
                        mu: 3.7,
                        sigma: 0.5,
                        clamp: (8, 128),
                    },
                },
                // Completion/agentic: moderate prompts, long generations.
                LengthClass {
                    weight: 0.1,
                    prompt: LogNormalLengths {
                        mu: 5.3,
                        sigma: 0.5,
                        clamp: (32, 2048),
                    },
                    gen: LogNormalLengths {
                        mu: 5.5,
                        sigma: 0.5,
                        clamp: (32, 1024),
                    },
                },
            ],
            prompt_quantum: 16,
            gen_quantum: 8,
        }
    }
}

/// One synthetic request: arrival plus quantized shape and the class it
/// was drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyntheticRequest {
    /// Arrival time at the router.
    pub arrival_s: f64,
    /// Prompt tokens (quantized).
    pub prompt_len: u64,
    /// Tokens to generate (quantized).
    pub gen_len: u64,
    /// Index into [`SyntheticSpec::classes`].
    pub class: usize,
}

/// Rounds `len` up to a multiple of `quantum` without leaving the clamp
/// range of the drawing distribution's upper bound.
fn quantize(len: u64, quantum: u64, max: u64) -> u64 {
    let q = len.div_ceil(quantum) * quantum;
    q.min(max.div_ceil(quantum) * quantum).max(quantum)
}

/// Generates the trace described by `spec`.
///
/// Arrivals come from the MMPP stream, shapes from the class mixture;
/// the two use independently derived seeds so changing the mixture never
/// perturbs arrival times (and vice versa).
///
/// # Panics
///
/// Panics if the spec is degenerate: no requests, no classes, a
/// non-positive class weight, a zero quantum, or MMPP parameters outside
/// [`ArrivalTrace::bursty`]'s domain.
#[must_use]
pub fn synthesize(spec: &SyntheticSpec) -> Vec<SyntheticRequest> {
    assert!(spec.requests > 0, "trace must have requests");
    assert!(!spec.classes.is_empty(), "mixture must have classes");
    assert!(
        spec.classes.iter().all(|c| c.weight > 0.0),
        "class weights must be positive"
    );
    assert!(
        spec.prompt_quantum >= 1 && spec.gen_quantum >= 1,
        "quanta must be at least 1"
    );

    let arrivals = ArrivalTrace::bursty(
        spec.seed ^ 0xA55A_0F0F_1234_5678,
        spec.requests,
        spec.base_rate_per_sec,
        spec.burst_multiplier,
        spec.mean_phase_s,
    );
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x5AA5_F0F0_8765_4321);
    let total_weight: f64 = spec.classes.iter().map(|c| c.weight).sum();

    arrivals
        .arrivals
        .iter()
        .map(|&arrival_s| {
            // Weighted class draw by inverse CDF over the weight prefix.
            let mut u = rng.gen_range(0.0..total_weight);
            let mut class = spec.classes.len() - 1;
            for (i, c) in spec.classes.iter().enumerate() {
                if u < c.weight {
                    class = i;
                    break;
                }
                u -= c.weight;
            }
            let c = &spec.classes[class];
            let prompt_len = quantize(
                c.prompt.sample(&mut rng),
                spec.prompt_quantum,
                c.prompt.clamp.1,
            );
            let gen_len = quantize(c.gen.sample(&mut rng), spec.gen_quantum, c.gen.clamp.1);
            SyntheticRequest {
                arrival_s,
                prompt_len,
                gen_len,
                class,
            }
        })
        .collect()
}

/// Specification of a multi-turn chat-session trace: the workload shape
/// paged-KV prefix caching exists for. Every session shares one of a few
/// system prompts (a cross-session prefix) and then grows its own context
/// turn by turn (a per-session prefix): turn `t+1`'s prompt is exactly
/// turn `t`'s prompt plus its generation plus the new user message, so a
/// KV cache that kept the session's blocks can skip re-prefilling all but
/// the new suffix. Two specs with equal fields generate byte-identical
/// traces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSpec {
    /// Master seed (session starts and shapes derive independent streams).
    pub seed: u64,
    /// Number of sessions to generate.
    pub sessions: usize,
    /// Per-session turn count, drawn uniformly from this inclusive range.
    pub turns: (u32, u32),
    /// Number of distinct shared system prompts; each session draws one.
    pub system_prompts: u64,
    /// Length of every system prompt, in tokens (quantized up).
    pub system_prompt_len: u64,
    /// Per-turn user-message length distribution.
    pub user: LogNormalLengths,
    /// Per-turn generation length distribution.
    pub gen: LogNormalLengths,
    /// Mean think time between a turn and the next (exponential gaps).
    pub mean_think_s: f64,
    /// Poisson rate of session starts.
    pub session_rate_per_s: f64,
    /// Prompt lengths are rounded up to a multiple of this (≥ 1).
    pub prompt_quantum: u64,
    /// Generation lengths are rounded up to a multiple of this (≥ 1).
    pub gen_quantum: u64,
    /// Sessions stop growing (end early) once the next prompt would
    /// exceed this many tokens.
    pub max_context: u64,
}

impl SessionSpec {
    /// A chat-service-like session mixture at `rate_per_s` session
    /// starts: 2–8 turns, four shared 512-token system prompts, short
    /// user messages and answers on a 16-token grid (one default KV
    /// block), 8k context windows.
    #[must_use]
    pub fn chat_day(seed: u64, sessions: usize, rate_per_s: f64) -> Self {
        SessionSpec {
            seed,
            sessions,
            turns: (2, 8),
            system_prompts: 4,
            system_prompt_len: 512,
            user: LogNormalLengths {
                mu: 4.2,
                sigma: 0.6,
                clamp: (16, 512),
            },
            gen: LogNormalLengths {
                mu: 4.5,
                sigma: 0.6,
                clamp: (16, 384),
            },
            mean_think_s: 10.0,
            session_rate_per_s: rate_per_s,
            prompt_quantum: 16,
            gen_quantum: 16,
            max_context: 8192,
        }
    }
}

/// One turn of one synthetic session, ready to become a fleet request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionRequest {
    /// Arrival time at the router.
    pub arrival_s: f64,
    /// Full-context prompt tokens (system prompt + whole conversation so
    /// far + this turn's user message, quantized).
    pub prompt_len: u64,
    /// Tokens to generate (quantized).
    pub gen_len: u64,
    /// Shared system prompt id (1-based; 0 is "no shared prefix").
    pub prefix_id: u64,
    /// Length of the shared system prompt, in tokens.
    pub prefix_len: u64,
    /// Session id (1-based; unique per session, 0 is "no session").
    pub session: u64,
    /// Turn index within the session (0-based).
    pub turn: u32,
}

/// Generates the session trace described by `spec`, sorted by arrival
/// time (ties broken by session id, then turn).
///
/// Per session, turn `t+1`'s prompt is `prompt_t + gen_t + user draw`,
/// rounded up to the prompt quantum — always a strict superset of the
/// previous turn's context, which is the invariant the paged-KV session
/// chain relies on. Gaps between turns are exponential think times; the
/// trace is open-loop, so think time stands in for (and need not exceed)
/// the previous turn's service time.
///
/// # Panics
///
/// Panics if the spec is degenerate: no sessions, an empty or inverted
/// turn range, no system prompts, a zero quantum, a non-positive rate or
/// think time, or a context window too small for even a first turn.
#[must_use]
pub fn synthesize_sessions(spec: &SessionSpec) -> Vec<SessionRequest> {
    assert!(spec.sessions > 0, "trace must have sessions");
    assert!(
        spec.turns.0 >= 1 && spec.turns.0 <= spec.turns.1,
        "turn range must be non-empty"
    );
    assert!(spec.system_prompts >= 1, "need at least one system prompt");
    assert!(
        spec.prompt_quantum >= 1 && spec.gen_quantum >= 1,
        "quanta must be at least 1"
    );
    assert!(
        spec.session_rate_per_s > 0.0 && spec.mean_think_s > 0.0,
        "rates must be positive"
    );
    let prefix_len = spec.system_prompt_len.div_ceil(spec.prompt_quantum) * spec.prompt_quantum;
    assert!(
        prefix_len + spec.user.clamp.1 <= spec.max_context,
        "max_context cannot fit the system prompt plus one user message"
    );

    let mut starts_rng = StdRng::seed_from_u64(spec.seed ^ 0xC3C3_1E1E_0F0F_A5A5);
    let mut shape_rng = StdRng::seed_from_u64(spec.seed ^ 0x3C3C_E1E1_F0F0_5A5A);

    let mut out = Vec::new();
    let mut start_s = 0.0f64;
    for session in 1..=spec.sessions as u64 {
        // Poisson session starts: exponential inter-start gaps.
        let u: f64 = starts_rng.gen_range(0.0..1.0);
        start_s += -(1.0 - u).ln() / spec.session_rate_per_s;

        let turns = shape_rng.gen_range(spec.turns.0..=spec.turns.1);
        let prefix_id = 1 + shape_rng.gen_range(0..spec.system_prompts);
        let mut arrival_s = start_s;
        let mut ctx = prefix_len; // tokens already in the conversation
        for turn in 0..turns {
            let user = spec.user.sample(&mut shape_rng);
            let prompt_len = (ctx + user).div_ceil(spec.prompt_quantum) * spec.prompt_quantum;
            if prompt_len > spec.max_context {
                break; // context window exhausted: session ends early
            }
            let gen_len = quantize(
                spec.gen.sample(&mut shape_rng),
                spec.gen_quantum,
                spec.gen.clamp.1,
            );
            out.push(SessionRequest {
                arrival_s,
                prompt_len,
                gen_len,
                prefix_id,
                prefix_len,
                session,
                turn,
            });
            ctx = prompt_len + gen_len;
            let u: f64 = shape_rng.gen_range(0.0..1.0);
            arrival_s += -(1.0 - u).ln() * spec.mean_think_s;
        }
    }
    out.sort_by(|a, b| {
        a.arrival_s
            .total_cmp(&b.arrival_s)
            .then(a.session.cmp(&b.session))
            .then(a.turn.cmp(&b.turn))
    });
    out
}

/// Number of distinct `(prompt_len, gen_len)` shapes in a trace — the
/// quantity the engine's prediction memo scales with, reported by the
/// engine benchmark so shape-bucketing regressions are visible.
#[must_use]
pub fn distinct_shapes(trace: &[SyntheticRequest]) -> usize {
    let mut shapes: Vec<(u64, u64)> = trace.iter().map(|r| (r.prompt_len, r.gen_len)).collect();
    shapes.sort_unstable();
    shapes.dedup();
    shapes.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_spec_same_trace() {
        let spec = SyntheticSpec::service_day(11, 5_000, 50.0);
        let a = synthesize(&spec);
        let b = synthesize(&spec);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5_000);
    }

    #[test]
    fn arrivals_ascend_and_track_the_mmpp_rate() {
        // Short phases so the trace spans many calm/burst switches and the
        // empirical rate converges to the stationary closed form.
        let mut spec = SyntheticSpec::service_day(3, 50_000, 100.0);
        spec.mean_phase_s = 2.0;
        let t = synthesize(&spec);
        assert!(t.windows(2).all(|w| w[1].arrival_s >= w[0].arrival_s));
        // MMPP closed form: equal mean phase lengths ⇒ stationary rate
        // base · (1 + burst_multiplier) / 2.
        let expected = 100.0 * (1.0 + spec.burst_multiplier) / 2.0;
        let span = t.last().unwrap().arrival_s - t[0].arrival_s;
        let rate = (t.len() - 1) as f64 / span;
        assert!(
            (rate - expected).abs() / expected < 0.25,
            "rate {rate} vs {expected}"
        );
    }

    #[test]
    fn lengths_are_quantized_and_clamped() {
        let spec = SyntheticSpec::service_day(7, 10_000, 50.0);
        let t = synthesize(&spec);
        for r in &t {
            assert_eq!(r.prompt_len % spec.prompt_quantum, 0, "{r:?}");
            assert_eq!(r.gen_len % spec.gen_quantum, 0, "{r:?}");
            assert!(r.prompt_len >= spec.prompt_quantum && r.prompt_len <= 4096);
            assert!(r.gen_len >= spec.gen_quantum && r.gen_len <= 1024);
        }
    }

    #[test]
    fn quantization_bounds_distinct_shapes() {
        let spec = SyntheticSpec::service_day(13, 100_000, 100.0);
        let t = synthesize(&spec);
        let shapes = distinct_shapes(&t);
        // 100k raw log-normal draws would give ~10^5 shapes; the 16/8
        // grid keeps the cost-model key space in the low thousands.
        assert!(
            shapes < 10_000,
            "shape bucketing failed: {shapes} distinct shapes"
        );
        assert!(shapes > 100, "mixture collapsed: {shapes} shapes");
    }

    #[test]
    fn mixture_fractions_match_weights() {
        let spec = SyntheticSpec::service_day(5, 50_000, 50.0);
        let t = synthesize(&spec);
        let mut counts = vec![0usize; spec.classes.len()];
        for r in &t {
            counts[r.class] += 1;
        }
        let fractions: Vec<f64> = counts.iter().map(|&c| c as f64 / t.len() as f64).collect();
        for (f, c) in fractions.iter().zip(&spec.classes) {
            assert!((f - c.weight).abs() < 0.02, "{fractions:?}");
        }
    }

    #[test]
    fn same_session_spec_same_trace() {
        let spec = SessionSpec::chat_day(17, 500, 2.0);
        let a = synthesize_sessions(&spec);
        let b = synthesize_sessions(&spec);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.windows(2).all(|w| w[1].arrival_s >= w[0].arrival_s));
    }

    #[test]
    fn turns_extend_the_previous_context_exactly() {
        let spec = SessionSpec::chat_day(23, 300, 2.0);
        let t = synthesize_sessions(&spec);
        let mut by_session: std::collections::BTreeMap<u64, Vec<&SessionRequest>> =
            std::collections::BTreeMap::new();
        for r in &t {
            by_session.entry(r.session).or_default().push(r);
        }
        for turns in by_session.values() {
            for w in turns.windows(2) {
                let (prev, next) = (w[0], w[1]);
                assert_eq!(next.turn, prev.turn + 1);
                assert!(next.arrival_s > prev.arrival_s);
                // The KV session-chain invariant: the next prompt embeds
                // the whole previous context (prompt + generation).
                assert!(next.prompt_len >= prev.prompt_len + prev.gen_len);
                assert_eq!(next.prefix_id, prev.prefix_id);
            }
            for r in turns {
                assert!(r.prompt_len <= spec.max_context);
                assert_eq!(r.prompt_len % spec.prompt_quantum, 0);
                assert_eq!(r.gen_len % spec.gen_quantum, 0);
                assert!(r.prefix_id >= 1 && r.prefix_id <= spec.system_prompts);
                assert!(r.prompt_len >= r.prefix_len);
            }
        }
    }

    #[test]
    fn sessions_share_few_system_prompts() {
        let spec = SessionSpec::chat_day(29, 1_000, 5.0);
        let t = synthesize_sessions(&spec);
        let mut ids: Vec<u64> = t.iter().map(|r| r.prefix_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids, vec![1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "turn range")]
    fn inverted_turn_range_panics() {
        let mut spec = SessionSpec::chat_day(1, 10, 1.0);
        spec.turns = (5, 2);
        let _ = synthesize_sessions(&spec);
    }

    #[test]
    #[should_panic(expected = "classes")]
    fn empty_mixture_panics() {
        let mut spec = SyntheticSpec::service_day(1, 10, 1.0);
        spec.classes.clear();
        let _ = synthesize(&spec);
    }
}
