//! Property-based tests of the memory-system substrate.

use llmsim_hw::{Bytes, GbPerSec};
use llmsim_mem::analytic::{cache_resident_fraction, dram_traffic};
use llmsim_mem::bandwidth::{capacity_split_fraction, core_saturation, mixed_bandwidth};
use llmsim_mem::{AccessOutcome, CacheSim};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Misses never exceed accesses, and evictions never exceed misses.
    #[test]
    fn cache_stats_are_consistent(
        addrs in proptest::collection::vec(0u64..1_000_000, 1..2000),
        writes in proptest::collection::vec(any::<bool>(), 1..2000),
    ) {
        let mut sim = CacheSim::new(16, 4, 64);
        for (i, &a) in addrs.iter().enumerate() {
            sim.access(a, writes[i % writes.len()]);
        }
        let s = sim.stats();
        prop_assert!(s.misses <= s.accesses);
        prop_assert!(s.evictions <= s.misses);
        prop_assert!(s.writebacks <= s.evictions);
        prop_assert!((0.0..=1.0).contains(&s.miss_ratio()));
    }

    /// A second identical sweep over a working set that fits the cache
    /// produces zero additional misses (LRU residency).
    #[test]
    fn fitting_working_set_fully_reuses(lines in 1u64..64) {
        // 64-line (4 KiB) cache; working set ≤ capacity.
        let mut sim = CacheSim::new(8, 8, 64);
        for l in 0..lines {
            sim.access(l * 64, false);
        }
        let before = sim.stats().misses;
        for l in 0..lines {
            let out = sim.access(l * 64, false);
            prop_assert_eq!(out, AccessOutcome::Hit);
        }
        prop_assert_eq!(sim.stats().misses, before);
    }

    /// Same-line accesses always hit after the first, regardless of offset.
    #[test]
    fn line_granularity(base in 0u64..1_000_000, off1 in 0u64..64, off2 in 0u64..64) {
        let mut sim = CacheSim::new(32, 4, 64);
        let line_base = base & !63;
        sim.access(line_base + off1, false);
        prop_assert_eq!(sim.access(line_base + off2, true), AccessOutcome::Hit);
    }

    /// The residency rule is within [0,1], monotone in capacity and
    /// antitone in working-set size.
    #[test]
    fn residency_rule_monotonicity(ws in 1u64..1_000_000_000, cap in 1u64..1_000_000_000) {
        let f = cache_resident_fraction(Bytes::new(ws), Bytes::new(cap));
        prop_assert!((0.0..=1.0).contains(&f));
        let f_bigger_cache = cache_resident_fraction(Bytes::new(ws), Bytes::new(cap * 2));
        prop_assert!(f_bigger_cache >= f);
        let f_bigger_ws = cache_resident_fraction(Bytes::new(ws * 2), Bytes::new(cap));
        prop_assert!(f_bigger_ws <= f);
    }

    /// DRAM traffic includes at least the streamed bytes and at most
    /// streamed + reused.
    #[test]
    fn dram_traffic_bounds(
        streamed in 0u64..1_000_000_000,
        reused in 0u64..1_000_000_000,
        cap in 1u64..1_000_000_000,
    ) {
        let t = dram_traffic(Bytes::new(streamed), Bytes::new(reused), Bytes::new(cap)).get();
        prop_assert!(t >= streamed);
        prop_assert!(t <= streamed + reused + 1);
    }

    /// Core saturation is in (0,1] and monotone in core count.
    #[test]
    fn saturation_properties(c1 in 1u32..48, c2 in 1u32..48, half in 1.0f64..40.0) {
        let s1 = core_saturation(c1.min(c2), 48, half);
        let s2 = core_saturation(c1.max(c2), 48, half);
        prop_assert!(s1 > 0.0 && s2 <= 1.0 + 1e-12);
        prop_assert!(s2 >= s1);
    }

    /// Mixed bandwidth always lies between its two pools.
    #[test]
    fn mixed_bandwidth_between_pools(
        f in 0.0f64..1.0,
        a in 1.0f64..2000.0,
        b in 1.0f64..2000.0,
    ) {
        let m = mixed_bandwidth(f, GbPerSec::new(a), GbPerSec::new(b)).as_f64();
        prop_assert!(m >= a.min(b) - 1e-9 && m <= a.max(b) + 1e-9);
    }

    /// Capacity split fraction is a valid fraction and antitone in footprint.
    #[test]
    fn split_fraction_valid(fp in 1u64..1_000_000_000, pool in 1u64..1_000_000_000) {
        let f = capacity_split_fraction(Bytes::new(fp), Bytes::new(pool));
        prop_assert!((0.0..=1.0).contains(&f));
        let f2 = capacity_split_fraction(Bytes::new(fp * 2), Bytes::new(pool));
        prop_assert!(f2 <= f);
    }
}
