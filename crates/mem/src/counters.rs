//! Hardware performance-counter synthesis (Figs. 11, 12, 15, 16).
//!
//! The paper reports Linux `perf` / VTune counters — LLC MPKI, physical core
//! utilization, UPI utilization, remote-LLC accesses, and load/store counts.
//! The simulator derives the same counters from the quantities that drive
//! its timing model, so counter trends and performance trends stay mutually
//! consistent exactly as they do on hardware.

use llmsim_hw::Seconds;

/// Synthesized hardware counters for one run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HwCounters {
    /// Retired instructions.
    pub instructions: f64,
    /// Load µops.
    pub loads: f64,
    /// Store µops.
    pub stores: f64,
    /// Last-level-cache misses.
    pub llc_misses: f64,
    /// LLC misses per kilo-instruction.
    pub llc_mpki: f64,
    /// Physical core utilization in [0, 1] (compute-port busy fraction).
    pub core_utilization: f64,
    /// UPI link utilization in [0, 1] (0 on single-socket runs).
    pub upi_utilization: f64,
    /// Remote (other NUMA domain) LLC accesses per kilo-instruction.
    pub remote_llc_pki: f64,
}

/// Inputs for counter synthesis, all produced by the engine's timing pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CounterInputs {
    /// Retired instructions (from [`crate::analytic::instruction_count`]).
    pub instructions: f64,
    /// Bytes read from DRAM.
    pub dram_read_bytes: f64,
    /// Bytes written to DRAM.
    pub dram_write_bytes: f64,
    /// Total bytes touched by loads (cache hits included).
    pub load_bytes: f64,
    /// Total bytes touched by stores.
    pub store_bytes: f64,
    /// Time the compute ports were busy.
    pub compute_busy: Seconds,
    /// Wall-clock time of the run.
    pub elapsed: Seconds,
    /// Bytes that crossed UPI.
    pub upi_bytes: f64,
    /// Sustained UPI bandwidth available (bytes/sec).
    pub upi_capacity_bytes_per_sec: f64,
    /// Fraction of accesses to remote NUMA domains (SNC or socket).
    pub remote_fraction: f64,
}

/// Synthesizes the counter set from timing-model quantities.
///
/// # Panics
///
/// Panics if `elapsed` is zero while any activity is reported.
#[must_use]
pub fn synthesize(inputs: &CounterInputs) -> HwCounters {
    let line = 64.0;
    let llc_misses = (inputs.dram_read_bytes + inputs.dram_write_bytes) / line;
    let loads = inputs.load_bytes / line;
    let stores = inputs.store_bytes / line;
    let kinstr = (inputs.instructions / 1000.0).max(f64::MIN_POSITIVE);
    let llc_mpki = llc_misses / kinstr;
    let core_utilization = if inputs.elapsed == Seconds::ZERO {
        assert!(
            inputs.instructions == 0.0,
            "activity with zero elapsed time"
        );
        0.0
    } else {
        (inputs.compute_busy.as_f64() / inputs.elapsed.as_f64()).clamp(0.0, 1.0)
    };
    let upi_utilization =
        if inputs.upi_capacity_bytes_per_sec > 0.0 && inputs.elapsed.as_f64() > 0.0 {
            (inputs.upi_bytes / (inputs.upi_capacity_bytes_per_sec * inputs.elapsed.as_f64()))
                .clamp(0.0, 1.0)
        } else {
            0.0
        };
    // Remote LLC accesses: the remote share of LLC-level traffic.
    let remote_llc_pki = llc_mpki * inputs.remote_fraction;
    HwCounters {
        instructions: inputs.instructions,
        loads,
        stores,
        llc_misses,
        llc_mpki,
        core_utilization,
        upi_utilization,
        remote_llc_pki,
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact float assertions are deliberate: determinism is bit-level
mod tests {
    use super::*;

    fn base() -> CounterInputs {
        CounterInputs {
            instructions: 1e9,
            dram_read_bytes: 64e6 * 64.0,
            dram_write_bytes: 0.0,
            load_bytes: 1e9,
            store_bytes: 5e8,
            compute_busy: Seconds::new(0.5),
            elapsed: Seconds::new(1.0),
            upi_bytes: 0.0,
            upi_capacity_bytes_per_sec: 36e9,
            remote_fraction: 0.0,
        }
    }

    #[test]
    fn mpki_definition() {
        let c = synthesize(&base());
        // 64e6 misses / 1e6 kinstr = 64 MPKI.
        assert!((c.llc_mpki - 64.0).abs() < 1e-9);
        assert!((c.core_utilization - 0.5).abs() < 1e-9);
        assert_eq!(c.upi_utilization, 0.0);
        assert_eq!(c.remote_llc_pki, 0.0);
    }

    #[test]
    fn more_instructions_at_same_traffic_lowers_mpki() {
        // The Fig. 11/12 trend: batching raises instructions faster than
        // misses, so MPKI falls.
        let mut i = base();
        let low_batch = synthesize(&i);
        i.instructions *= 8.0;
        i.dram_read_bytes *= 1.5;
        let high_batch = synthesize(&i);
        assert!(high_batch.llc_mpki < low_batch.llc_mpki);
    }

    #[test]
    fn upi_utilization_saturates_at_one() {
        let mut i = base();
        i.upi_bytes = 1e12;
        let c = synthesize(&i);
        assert_eq!(c.upi_utilization, 1.0);
    }

    #[test]
    fn remote_accesses_follow_remote_fraction() {
        let mut i = base();
        i.remote_fraction = 0.75;
        let c = synthesize(&i);
        assert!((c.remote_llc_pki - c.llc_mpki * 0.75).abs() < 1e-12);
    }

    #[test]
    fn loads_and_stores_are_line_granular() {
        let c = synthesize(&base());
        assert!((c.loads - 1e9 / 64.0).abs() < 1e-6);
        assert!((c.stores - 5e8 / 64.0).abs() < 1e-6);
    }
}
