//! The NUMA memory-system model: memory modes (flat/cache/HBM-only),
//! clustering modes (quadrant/SNC-4), core-count saturation, and
//! cross-socket UPI effects (§II-E and Figs. 13–16 of the paper).

use crate::bandwidth::{
    capacity_split_fraction, core_saturation, mixed_bandwidth, DDR_HALF_CORES, HBM_HALF_CORES,
};
use llmsim_hw::topology::{ClusteringMode, MemoryMode};
use llmsim_hw::{Bytes, CpuSpec, GbPerSec, NumaConfig, Seconds};

/// HBM bandwidth derate in cache mode (memory-side-cache tag and fill
/// overheads observed on Xeon Max; Reguly SC'23 reports cache mode a few
/// percent to ~15% behind flat mode on bandwidth-bound kernels).
pub const CACHE_MODE_HBM_DERATE: f64 = 0.90;
/// DDR bandwidth derate for the cache-mode miss path (misses move data
/// twice: DDR → HBM fill, HBM → core).
pub const CACHE_MODE_MISS_DERATE: f64 = 0.82;
/// Bandwidth multiplier for accesses to a *remote* SNC-4 sub-NUMA domain.
pub const SNC_REMOTE_DERATE: f64 = 0.70;
/// Bandwidth bonus for accesses kept local to an SNC-4 domain (shorter
/// on-die paths; the reason SNC exists).
pub const SNC_LOCAL_BONUS: f64 = 1.05;
/// Fraction of accesses that land in a remote sub-NUMA domain when software
/// does not manage placement (uniform spread over 4 domains — what the
/// paper observed with unmanaged allocation in snc mode).
pub const SNC_UNMANAGED_REMOTE_FRACTION: f64 = 0.75;
/// Extra latency for an SNC-remote access.
pub const SNC_REMOTE_LATENCY: Seconds = Seconds::ZERO; // folded into derate; kept for counters
/// Fraction of accesses that cross the socket boundary when a run spans two
/// sockets with interleaved shared data.
pub const CROSS_SOCKET_REMOTE_FRACTION: f64 = 0.5;

/// Sustained-memory-system view for one run configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EffectiveMemory {
    /// Sustained bandwidth available to the run.
    pub bandwidth: GbPerSec,
    /// Average access latency.
    pub latency: Seconds,
    /// Fraction of traffic served by HBM.
    pub hbm_traffic_fraction: f64,
    /// Fraction of accesses to a remote SNC domain.
    pub snc_remote_fraction: f64,
    /// Fraction of accesses crossing sockets over UPI.
    pub cross_socket_fraction: f64,
    /// Sockets the run spans.
    pub sockets_spanned: u32,
}

/// The memory system of a CPU server under a specific NUMA configuration.
#[derive(Debug, Clone)]
pub struct MemSystem {
    cpu: CpuSpec,
    numa: NumaConfig,
}

impl MemSystem {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics if `numa` requests an HBM mode on a CPU without HBM.
    #[must_use]
    pub fn new(cpu: CpuSpec, numa: NumaConfig) -> Self {
        if numa.memory == MemoryMode::HbmOnly {
            assert!(cpu.has_hbm(), "{}: HBM-only mode requires HBM", cpu.name);
        }
        MemSystem { cpu, numa }
    }

    /// The underlying CPU spec.
    #[must_use]
    pub fn cpu(&self) -> &CpuSpec {
        &self.cpu
    }

    /// The NUMA configuration.
    #[must_use]
    pub fn numa(&self) -> NumaConfig {
        self.numa
    }

    /// Computes the sustained memory behaviour for a run using `cores`
    /// cores over a resident footprint of `footprint` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or exceeds the machine, or if the footprint
    /// exceeds total machine memory.
    #[must_use]
    pub fn effective(&self, cores: u32, footprint: Bytes) -> EffectiveMemory {
        let topo = &self.cpu.topology;
        let sockets = topo.sockets_spanned(cores);
        assert!(
            footprint <= self.cpu.total_memory_capacity(),
            "footprint {} exceeds machine memory {}",
            footprint,
            self.cpu.total_memory_capacity()
        );
        let cores_per_socket = (cores / sockets).max(1);
        let fp_per_socket = Bytes::new(footprint.get() / u64::from(sockets));

        // --- device-level sustained bandwidth on one socket ---
        let ddr_bw = self.cpu.ddr.bandwidth_per_socket.scale(core_saturation(
            cores_per_socket,
            topo.cores_per_socket,
            DDR_HALF_CORES,
        ));
        let (socket_bw, hbm_fraction, latency) = match (&self.cpu.hbm, self.numa.memory) {
            (None, _) => (ddr_bw, 0.0, self.cpu.ddr.idle_latency),
            (Some(hbm), mode) => {
                let hbm_bw = hbm.bandwidth_per_socket.scale(core_saturation(
                    cores_per_socket,
                    topo.cores_per_socket,
                    HBM_HALF_CORES,
                ));
                let hbm_cap = hbm.capacity_per_socket(topo.sockets);
                match mode {
                    MemoryMode::HbmOnly => {
                        assert!(
                            fp_per_socket <= hbm_cap,
                            "HBM-only: per-socket footprint {fp_per_socket} exceeds HBM {hbm_cap}"
                        );
                        (hbm_bw, 1.0, hbm.idle_latency)
                    }
                    MemoryMode::Flat => {
                        // HBM-first allocation, DDR spill past 64 GB/socket.
                        let f = capacity_split_fraction(fp_per_socket, hbm_cap);
                        let bw = mixed_bandwidth(f, hbm_bw, ddr_bw);
                        let lat = Seconds::new(
                            f * hbm.idle_latency.as_f64()
                                + (1.0 - f) * self.cpu.ddr.idle_latency.as_f64(),
                        );
                        (bw, f, lat)
                    }
                    MemoryMode::Cache => {
                        // HBM as memory-side cache: hit rate ≈ resident
                        // fraction of the streamed footprint, with tag/fill
                        // derates on both paths.
                        let hit = capacity_split_fraction(fp_per_socket, hbm_cap);
                        let bw = mixed_bandwidth(
                            hit,
                            hbm_bw.scale(CACHE_MODE_HBM_DERATE),
                            ddr_bw.scale(CACHE_MODE_MISS_DERATE),
                        );
                        let lat = Seconds::new(
                            hit * hbm.idle_latency.as_f64()
                                + (1.0 - hit)
                                    * (self.cpu.ddr.idle_latency.as_f64()
                                        + hbm.idle_latency.as_f64() * 0.3),
                        );
                        (bw, hit, lat)
                    }
                }
            }
        };

        // --- clustering mode ---
        let (socket_bw, snc_remote, latency) = match self.numa.clustering {
            ClusteringMode::Quadrant => (socket_bw, 0.0, latency),
            ClusteringMode::Snc4 => {
                let remote = SNC_UNMANAGED_REMOTE_FRACTION;
                let factor = (1.0 - remote) * SNC_LOCAL_BONUS + remote * SNC_REMOTE_DERATE;
                (
                    socket_bw.scale(factor),
                    remote,
                    latency.scale(1.0 + 0.25 * remote),
                )
            }
        };

        // --- socket spanning ---
        if sockets == 1 {
            EffectiveMemory {
                bandwidth: socket_bw,
                latency,
                hbm_traffic_fraction: hbm_fraction,
                snc_remote_fraction: snc_remote,
                cross_socket_fraction: 0.0,
                sockets_spanned: 1,
            }
        } else {
            // Shared weights/KV interleave across sockets: half of each
            // socket's accesses traverse UPI.
            let upi = self.cpu.upi.effective_bandwidth();
            let per_socket = mixed_bandwidth(
                1.0 - CROSS_SOCKET_REMOTE_FRACTION,
                socket_bw,
                upi.min(socket_bw),
            );
            let total = GbPerSec::new(per_socket.as_f64() * f64::from(sockets));
            let lat = Seconds::new(
                latency.as_f64() + CROSS_SOCKET_REMOTE_FRACTION * self.cpu.upi.latency.as_f64(),
            );
            EffectiveMemory {
                bandwidth: total,
                latency: lat,
                hbm_traffic_fraction: hbm_fraction,
                snc_remote_fraction: snc_remote,
                cross_socket_fraction: CROSS_SOCKET_REMOTE_FRACTION,
                sockets_spanned: sockets,
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact float assertions are deliberate: determinism is bit-level
mod tests {
    use super::*;
    use llmsim_hw::presets;

    fn spr(numa: NumaConfig) -> MemSystem {
        MemSystem::new(presets::spr_max_9468(), numa)
    }

    #[test]
    fn quad_flat_beats_all_other_modes_when_fitting_hbm() {
        // Fig. 13 / Key Finding #2: quad_flat is the best configuration.
        let fp = Bytes::from_gib(30.0); // fits one socket's HBM
        let bw = |n: NumaConfig| spr(n).effective(48, fp).bandwidth.as_f64();
        let quad_flat = bw(NumaConfig::QUAD_FLAT);
        for other in [
            NumaConfig::QUAD_CACHE,
            NumaConfig::SNC_CACHE,
            NumaConfig::SNC_FLAT,
        ] {
            assert!(
                quad_flat > bw(other),
                "{other}: {} vs quad_flat {quad_flat}",
                bw(other)
            );
        }
    }

    #[test]
    fn flat_mode_spills_to_ddr_past_hbm_capacity() {
        let small = spr(NumaConfig::QUAD_FLAT).effective(48, Bytes::from_gib(40.0));
        let large = spr(NumaConfig::QUAD_FLAT).effective(48, Bytes::from_gib(130.0));
        assert_eq!(small.hbm_traffic_fraction, 1.0);
        assert!(large.hbm_traffic_fraction < 1.0);
        assert!(large.bandwidth.as_f64() < small.bandwidth.as_f64());
    }

    #[test]
    fn snc_unmanaged_pays_remote_penalty() {
        let q = spr(NumaConfig::QUAD_FLAT).effective(48, Bytes::from_gib(30.0));
        let s = spr(NumaConfig::SNC_FLAT).effective(48, Bytes::from_gib(30.0));
        assert!(s.snc_remote_fraction > 0.5);
        assert!(s.bandwidth.as_f64() < q.bandwidth.as_f64());
        assert!(s.latency.as_f64() > q.latency.as_f64());
    }

    #[test]
    fn two_socket_runs_are_upi_bound() {
        // Fig. 16 / Key Finding #3: 96 cores cross sockets and lose.
        let one = spr(NumaConfig::QUAD_FLAT).effective(48, Bytes::from_gib(30.0));
        let two = spr(NumaConfig::QUAD_FLAT).effective(96, Bytes::from_gib(30.0));
        assert_eq!(two.sockets_spanned, 2);
        assert!(two.cross_socket_fraction > 0.0);
        assert!(
            two.bandwidth.as_f64() < one.bandwidth.as_f64(),
            "96-core {} should be below 48-core {}",
            two.bandwidth,
            one.bandwidth
        );
    }

    #[test]
    fn bandwidth_grows_with_cores_within_socket() {
        let sys = spr(NumaConfig::QUAD_FLAT);
        let mut last = 0.0;
        for c in [12u32, 24, 36, 48] {
            let bw = sys.effective(c, Bytes::from_gib(30.0)).bandwidth.as_f64();
            assert!(bw > last, "{c} cores: {bw}");
            last = bw;
        }
    }

    #[test]
    fn icl_ignores_memory_modes() {
        let icl = MemSystem::new(presets::icl_8352y(), NumaConfig::QUAD_FLAT);
        let e = icl.effective(32, Bytes::from_gib(30.0));
        assert_eq!(e.hbm_traffic_fraction, 0.0);
        assert!(e.bandwidth.as_f64() <= 156.2);
    }

    #[test]
    #[should_panic(expected = "HBM-only mode requires HBM")]
    fn hbm_only_on_icl_panics() {
        let _ = MemSystem::new(
            presets::icl_8352y(),
            NumaConfig::new(ClusteringMode::Quadrant, MemoryMode::HbmOnly),
        );
    }

    #[test]
    #[should_panic(expected = "exceeds machine memory")]
    fn oversized_footprint_panics() {
        let _ = spr(NumaConfig::QUAD_FLAT).effective(48, Bytes::from_gib(1000.0));
    }

    #[test]
    fn hbm_only_requires_fitting_footprint() {
        let sys = spr(NumaConfig::new(
            ClusteringMode::Quadrant,
            MemoryMode::HbmOnly,
        ));
        let e = sys.effective(48, Bytes::from_gib(60.0));
        assert_eq!(e.hbm_traffic_fraction, 1.0);
    }
}
