//! Synthetic access-trace generators for micro-validating the engine's
//! cache assumptions against the concrete simulator.
//!
//! The engine assumes (a) weights *stream* (no reuse within an operator)
//! and (b) tiled GEMM kernels keep their activation working set
//! cache-resident. These generators produce the actual address streams of
//! naive and cache-blocked matmuls so tests can check both assumptions on
//! the real LRU hierarchy.

use crate::cache_sim::HierarchySim;

/// One memory access of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Byte address.
    pub addr: u64,
    /// Whether it writes.
    pub write: bool,
}

/// Generates the address stream of a **naive** row-major
/// `C[m×n] += A[m×k]·B[k×n]` (f32 elements): B is walked column-wise for
/// every output element — the pathological pattern.
#[must_use]
pub fn naive_gemm_trace(m: usize, n: usize, k: usize) -> Vec<Access> {
    let a_base = 0u64;
    let b_base = (m * k * 4) as u64;
    let c_base = b_base + (k * n * 4) as u64;
    let mut out = Vec::with_capacity(m * n * (2 * k + 1));
    for i in 0..m {
        for j in 0..n {
            for l in 0..k {
                out.push(Access {
                    addr: a_base + ((i * k + l) * 4) as u64,
                    write: false,
                });
                out.push(Access {
                    addr: b_base + ((l * n + j) * 4) as u64,
                    write: false,
                });
            }
            out.push(Access {
                addr: c_base + ((i * n + j) * 4) as u64,
                write: true,
            });
        }
    }
    out
}

/// Generates the address stream of a **cache-blocked** GEMM with
/// `bs × bs × bs` tiles (the structure of the AMX/AVX kernels in
/// `llmsim-isa`).
///
/// # Panics
///
/// Panics if `bs` is zero or does not divide all three dimensions (keeps
/// the generator simple; tests use friendly sizes).
#[must_use]
pub fn blocked_gemm_trace(m: usize, n: usize, k: usize, bs: usize) -> Vec<Access> {
    assert!(bs > 0, "block size must be positive");
    assert!(
        m.is_multiple_of(bs) && n.is_multiple_of(bs) && k.is_multiple_of(bs),
        "block size {bs} must divide {m}x{n}x{k}"
    );
    let a_base = 0u64;
    let b_base = (m * k * 4) as u64;
    let c_base = b_base + (k * n * 4) as u64;
    let mut out = Vec::with_capacity(m * n * (2 * k + 1));
    for bi in (0..m).step_by(bs) {
        for bj in (0..n).step_by(bs) {
            for bl in (0..k).step_by(bs) {
                for i in bi..bi + bs {
                    for j in bj..bj + bs {
                        for l in bl..bl + bs {
                            out.push(Access {
                                addr: a_base + ((i * k + l) * 4) as u64,
                                write: false,
                            });
                            out.push(Access {
                                addr: b_base + ((l * n + j) * 4) as u64,
                                write: false,
                            });
                        }
                        out.push(Access {
                            addr: c_base + ((i * n + j) * 4) as u64,
                            write: true,
                        });
                    }
                }
            }
        }
    }
    out
}

/// Replays a trace through a hierarchy and returns the DRAM line transfers.
pub fn replay(hierarchy: &mut HierarchySim, trace: &[Access]) -> u64 {
    let before = hierarchy.dram_accesses();
    for a in trace {
        hierarchy.access(a.addr, a.write);
    }
    hierarchy.dram_accesses() - before
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache_sim::CacheSim;

    fn small_hierarchy() -> HierarchySim {
        // L1 1 KiB, L2 4 KiB, L3 8 KiB — scaled so one 64³ f32 matrix
        // (16 KiB) exceeds the LLC the way a transformer layer's operands
        // exceed a real one.
        HierarchySim::new(
            CacheSim::new(8, 2, 64),
            CacheSim::new(16, 4, 64),
            CacheSim::new(16, 8, 64),
        )
    }

    #[test]
    fn blocking_slashes_dram_traffic() {
        // The assumption behind treating tiled-kernel activations as
        // cache-resident: blocking must cut DRAM traffic by a large factor
        // relative to the naive loop nest.
        let (m, n, k) = (64, 64, 64);
        let naive = replay(&mut small_hierarchy(), &naive_gemm_trace(m, n, k));
        let blocked = replay(&mut small_hierarchy(), &blocked_gemm_trace(m, n, k, 16));
        assert!(
            (naive as f64) > 4.0 * blocked as f64,
            "naive {naive} vs blocked {blocked}"
        );
    }

    #[test]
    fn both_traces_touch_identical_data() {
        let (m, n, k) = (32, 32, 32);
        let lines = |t: &[Access]| {
            let mut v: Vec<u64> = t.iter().map(|a| a.addr / 64).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        assert_eq!(
            lines(&naive_gemm_trace(m, n, k)),
            lines(&blocked_gemm_trace(m, n, k, 8))
        );
    }

    #[test]
    fn traffic_floor_is_compulsory_misses() {
        // Even perfect blocking cannot go below one fill per touched line.
        let (m, n, k) = (32, 32, 32);
        let trace = blocked_gemm_trace(m, n, k, 8);
        let mut lines: Vec<u64> = trace.iter().map(|a| a.addr / 64).collect();
        lines.sort_unstable();
        lines.dedup();
        let dram = replay(&mut small_hierarchy(), &trace);
        assert!(dram >= lines.len() as u64, "{dram} < {}", lines.len());
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn ragged_blocking_panics() {
        let _ = blocked_gemm_trace(30, 30, 30, 16);
    }
}
