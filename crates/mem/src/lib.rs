//! # llmsim-mem — memory-system simulation for the LLM-on-CPU study
//!
//! Three layers, from concrete to analytic:
//!
//! 1. [`cache_sim`] — a real set-associative LRU cache simulator used for
//!    micro-validation of the analytic rules.
//! 2. [`analytic`] + [`bandwidth`] — closed-form cache-residency, DRAM
//!    traffic, instruction-count, and bandwidth-saturation/mixing rules.
//! 3. [`numa`] — the NUMA model covering the paper's memory modes (flat /
//!    cache / HBM-only), clustering modes (quadrant / SNC-4), core-count
//!    saturation, and cross-socket UPI effects, with [`counters`] turning
//!    the same quantities into the perf/VTune counters of Figs. 11–16.
//!
//! # Examples
//!
//! ```
//! use llmsim_hw::{presets, NumaConfig, Bytes};
//! use llmsim_mem::numa::MemSystem;
//!
//! let sys = MemSystem::new(presets::spr_max_9468(), NumaConfig::QUAD_FLAT);
//! let eff = sys.effective(48, Bytes::from_gib(26.0));
//! assert_eq!(eff.hbm_traffic_fraction, 1.0); // fits in one socket's HBM
//! assert!(eff.bandwidth.as_f64() > 500.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
pub mod bandwidth;
pub mod cache_sim;
pub mod counters;
pub mod numa;
pub mod trace;

pub use cache_sim::{AccessOutcome, CacheSim, CacheStats, HierarchySim};
pub use counters::{synthesize, CounterInputs, HwCounters};
pub use numa::{EffectiveMemory, MemSystem};
