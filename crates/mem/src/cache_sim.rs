//! A set-associative, LRU, write-allocate cache simulator.
//!
//! The inference engine itself uses closed-form traffic models (simulating
//! every access of a 70B-parameter forward pass is infeasible), but this
//! simulator grounds them: micro-validation tests replay small GEMM and
//! streaming access patterns through a real cache hierarchy and check that
//! the analytic working-set rules in [`crate::analytic`] predict the same
//! miss behaviour.

use llmsim_hw::cache::CacheSpec;

/// Which level served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessOutcome {
    /// Hit in this cache.
    Hit,
    /// Missed; line was (re)filled.
    Miss,
}

/// Per-cache statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Misses (fills).
    pub misses: u64,
    /// Lines evicted to make room.
    pub evictions: u64,
    /// Writebacks of dirty lines.
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss ratio in [0, 1]; 0 when idle.
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// One set-associative cache with LRU replacement.
#[derive(Debug, Clone)]
pub struct CacheSim {
    line_shift: u32,
    sets: u64,
    ways: usize,
    /// `tags[set]` = (tag, dirty), most-recently-used last.
    tags: Vec<Vec<(u64, bool)>>,
    stats: CacheStats,
}

impl CacheSim {
    /// Builds a simulator from a hardware cache spec.
    #[must_use]
    pub fn from_spec(spec: &CacheSpec) -> Self {
        Self::new(spec.sets(), spec.ways as usize, spec.line_bytes)
    }

    /// Builds a simulator from raw geometry.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero or `line_bytes` is not a power of two.
    #[must_use]
    pub fn new(sets: u64, ways: usize, line_bytes: u32) -> Self {
        assert!(sets > 0 && ways > 0, "cache must have sets and ways");
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        CacheSim {
            line_shift: line_bytes.trailing_zeros(),
            sets,
            ways,
            tags: vec![Vec::new(); sets as usize],
            stats: CacheStats::default(),
        }
    }

    /// Performs one access at byte address `addr`; `write` marks the line
    /// dirty. Returns whether it hit.
    pub fn access(&mut self, addr: u64, write: bool) -> AccessOutcome {
        self.stats.accesses += 1;
        let line = addr >> self.line_shift;
        let set = (line % self.sets) as usize;
        let tag = line / self.sets;
        let ways = &mut self.tags[set];
        if let Some(pos) = ways.iter().position(|&(t, _)| t == tag) {
            let (t, d) = ways.remove(pos);
            ways.push((t, d || write));
            return AccessOutcome::Hit;
        }
        self.stats.misses += 1;
        if ways.len() == self.ways {
            let (_, dirty) = ways.remove(0);
            self.stats.evictions += 1;
            if dirty {
                self.stats.writebacks += 1;
            }
        }
        ways.push((tag, write));
        AccessOutcome::Miss
    }

    /// Statistics so far.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        self.sets * self.ways as u64 * (1u64 << self.line_shift)
    }
}

/// A three-level hierarchy (L1 → L2 → L3) with inclusive fill.
#[derive(Debug, Clone)]
pub struct HierarchySim {
    /// L1 data cache.
    pub l1: CacheSim,
    /// L2 cache.
    pub l2: CacheSim,
    /// L3 / LLC.
    pub l3: CacheSim,
    dram_accesses: u64,
}

impl HierarchySim {
    /// Builds from three cache simulators.
    #[must_use]
    pub fn new(l1: CacheSim, l2: CacheSim, l3: CacheSim) -> Self {
        HierarchySim {
            l1,
            l2,
            l3,
            dram_accesses: 0,
        }
    }

    /// One load/store walking the hierarchy; returns true if DRAM was hit.
    pub fn access(&mut self, addr: u64, write: bool) -> bool {
        if self.l1.access(addr, write) == AccessOutcome::Hit {
            return false;
        }
        if self.l2.access(addr, write) == AccessOutcome::Hit {
            return false;
        }
        if self.l3.access(addr, write) == AccessOutcome::Hit {
            return false;
        }
        self.dram_accesses += 1;
        true
    }

    /// Accesses that reached DRAM.
    #[must_use]
    pub fn dram_accesses(&self) -> u64 {
        self.dram_accesses
    }

    /// LLC misses per kilo-access (the µ-level analogue of LLC MPKI).
    #[must_use]
    pub fn llc_mpka(&self) -> f64 {
        let total = self.l1.stats().accesses;
        if total == 0 {
            0.0
        } else {
            self.l3.stats().misses as f64 / total as f64 * 1000.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheSim {
        // 4 sets × 2 ways × 64 B = 512 B.
        CacheSim::new(4, 2, 64)
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = tiny();
        assert_eq!(c.access(0x40, false), AccessOutcome::Miss);
        assert_eq!(c.access(0x40, false), AccessOutcome::Hit);
        assert_eq!(c.access(0x7F, false), AccessOutcome::Hit); // same line
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = tiny();
        // Three lines mapping to set 0: line numbers 0, 4, 8 → addresses 0, 1024, 2048.
        c.access(0, false);
        c.access(1024, false);
        c.access(0, false); // refresh line 0
        c.access(2048, false); // evicts line 4 (1024)
        assert_eq!(c.access(0, false), AccessOutcome::Hit);
        assert_eq!(c.access(1024, false), AccessOutcome::Miss);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let mut c = tiny();
        c.access(0, true);
        c.access(1024, false);
        c.access(2048, false); // evicts dirty line 0
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn streaming_larger_than_capacity_always_misses() {
        let mut c = tiny();
        // Two sweeps over 4 KiB (8× capacity): zero reuse survives.
        let mut misses_second_sweep = 0;
        for sweep in 0..2 {
            for addr in (0..4096).step_by(64) {
                let out = c.access(addr, false);
                if sweep == 1 && out == AccessOutcome::Miss {
                    misses_second_sweep += 1;
                }
            }
        }
        assert_eq!(misses_second_sweep, 64);
    }

    #[test]
    fn working_set_within_capacity_fully_hits_on_reuse() {
        let mut c = tiny();
        for addr in (0..512).step_by(64) {
            c.access(addr, false);
        }
        for addr in (0..512).step_by(64) {
            assert_eq!(c.access(addr, false), AccessOutcome::Hit);
        }
    }

    #[test]
    fn hierarchy_filters_accesses_level_by_level() {
        let l1 = CacheSim::new(8, 2, 64); // 1 KiB
        let l2 = CacheSim::new(32, 4, 64); // 8 KiB
        let l3 = CacheSim::new(128, 8, 64); // 64 KiB
        let mut h = HierarchySim::new(l1, l2, l3);
        // Stream 32 KiB twice: fits L3 only.
        for _ in 0..2 {
            for addr in (0..32 * 1024).step_by(64) {
                h.access(addr, false);
            }
        }
        assert_eq!(h.dram_accesses(), 512); // first sweep only
        assert!(h.l1.stats().miss_ratio() > 0.9);
        assert!(h.llc_mpka() < 510.0);
    }

    #[test]
    fn capacity_math() {
        assert_eq!(tiny().capacity_bytes(), 512);
    }
}
