//! Bandwidth saturation and mixing models.

use llmsim_hw::{Bytes, GbPerSec};

/// Fraction of a socket's peak STREAM bandwidth that `cores` active cores
/// can draw, following the standard saturation curve
/// `cores / (cores + half_cores)` scaled so the full socket reaches 1.0.
///
/// DDR saturates with few cores (a handful of cores can fill the DDR
/// channels); HBM needs many more outstanding misses, hence a larger
/// `half_cores` (Reguly, SC'23 workshop measurements on Xeon Max).
///
/// # Panics
///
/// Panics if `cores` is zero or exceeds `socket_cores`.
#[must_use]
pub fn core_saturation(cores: u32, socket_cores: u32, half_cores: f64) -> f64 {
    assert!(cores > 0, "need at least one core");
    assert!(cores <= socket_cores, "cores exceed socket");
    let raw = |c: f64| c / (c + half_cores);
    raw(f64::from(cores)) / raw(f64::from(socket_cores))
}

/// Saturation half-point for DDR memory (cores).
pub const DDR_HALF_CORES: f64 = 5.0;
/// Saturation half-point for HBM memory (cores). HBM2e on Xeon Max needs
/// most of a socket's cores worth of outstanding misses to saturate
/// (Fig. 14's 12→48-core decode gains imply ~2× bandwidth headroom at 12
/// cores).
pub const HBM_HALF_CORES: f64 = 28.0;

/// Harmonic mix of two bandwidth pools serving fractions `f_a` and
/// `1 − f_a` of the traffic: the sustained rate of a stream that splits
/// across devices (time adds, bytes add).
///
/// # Panics
///
/// Panics if `f_a` is outside `[0, 1]` or a selected pool has zero bandwidth.
#[must_use]
pub fn mixed_bandwidth(f_a: f64, bw_a: GbPerSec, bw_b: GbPerSec) -> GbPerSec {
    assert!(
        (0.0..=1.0).contains(&f_a),
        "traffic fraction must be in [0,1], got {f_a}"
    );
    if f_a >= 1.0 {
        return bw_a;
    }
    if f_a <= 0.0 {
        return bw_b;
    }
    assert!(
        bw_a.as_f64() > 0.0 && bw_b.as_f64() > 0.0,
        "mixed pools must have bandwidth"
    );
    let t = f_a / bw_a.as_f64() + (1.0 - f_a) / bw_b.as_f64();
    GbPerSec::new(1.0 / t)
}

/// Traffic fraction landing in the first `pool_capacity` bytes of an
/// allocation of `footprint` bytes, under uniform per-byte access
/// (weights and KV cache are each touched once per token step, so traffic
/// is proportional to placement).
#[must_use]
pub fn capacity_split_fraction(footprint: Bytes, pool_capacity: Bytes) -> f64 {
    if footprint == Bytes::ZERO {
        return 1.0;
    }
    (pool_capacity.as_f64() / footprint.as_f64()).min(1.0)
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact float assertions are deliberate: determinism is bit-level
mod tests {
    use super::*;

    #[test]
    fn full_socket_reaches_peak() {
        assert!((core_saturation(48, 48, HBM_HALF_CORES) - 1.0).abs() < 1e-12);
        assert!((core_saturation(32, 32, DDR_HALF_CORES) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ddr_saturates_faster_than_hbm() {
        let ddr12 = core_saturation(12, 48, DDR_HALF_CORES);
        let hbm12 = core_saturation(12, 48, HBM_HALF_CORES);
        assert!(ddr12 > hbm12);
        assert!(ddr12 > 0.75, "{ddr12}");
        assert!(hbm12 < 0.65, "{hbm12}");
    }

    #[test]
    fn saturation_is_monotone() {
        let mut last = 0.0;
        for c in [6, 12, 24, 36, 48] {
            let s = core_saturation(c, 48, HBM_HALF_CORES);
            assert!(s > last);
            last = s;
        }
    }

    #[test]
    fn harmonic_mix_between_pools() {
        let hbm = GbPerSec::new(588.0);
        let ddr = GbPerSec::new(233.8);
        let half = mixed_bandwidth(0.5, hbm, ddr);
        assert!(half.as_f64() > ddr.as_f64() && half.as_f64() < hbm.as_f64());
        assert_eq!(mixed_bandwidth(1.0, hbm, ddr), hbm);
        assert_eq!(mixed_bandwidth(0.0, hbm, ddr), ddr);
        // Harmonic, not arithmetic: skewed toward the slow pool.
        assert!(half.as_f64() < (588.0 + 233.8) / 2.0);
    }

    #[test]
    fn capacity_split() {
        assert_eq!(
            capacity_split_fraction(Bytes::from_gib(128.0), Bytes::from_gib(64.0)),
            0.5
        );
        assert_eq!(
            capacity_split_fraction(Bytes::from_gib(32.0), Bytes::from_gib(64.0)),
            1.0
        );
        assert_eq!(
            capacity_split_fraction(Bytes::ZERO, Bytes::from_gib(64.0)),
            1.0
        );
    }
}
