//! Terminal bar charts so every regenerated figure is eyeballable without a
//! plotting stack.

use crate::series::Series;

/// Renders grouped horizontal bars for several series sharing x-labels.
///
/// Bars are scaled so the global maximum spans `width` characters.
///
/// # Panics
///
/// Panics if no series has any point, or `width` is zero.
#[must_use]
pub fn grouped_bars(series: &[Series], width: usize) -> String {
    assert!(width > 0, "chart width must be positive");
    let max = series
        .iter()
        .flat_map(|s| s.values())
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        max.is_finite() && max > 0.0,
        "need at least one positive point"
    );

    let label_w = series
        .iter()
        .flat_map(|s| s.points.iter().map(|(x, _)| x.len()))
        .max()
        .unwrap_or(1)
        .max(4);
    let name_w = series.iter().map(|s| s.name.len()).max().unwrap_or(1);

    let xs: Vec<&String> = series[0].points.iter().map(|(x, _)| x).collect();
    let mut out = String::new();
    for x in xs {
        for s in series {
            let y = s
                .points
                .iter()
                .find(|(sx, _)| sx == x)
                .map_or(0.0, |(_, y)| *y);
            let bars = ((y / max) * width as f64).round() as usize;
            out.push_str(&format!(
                "{x:<label_w$} {name:<name_w$} |{bar:<width$}| {y:.3}\n",
                name = s.name,
                bar = "#".repeat(bars.min(width)),
            ));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(name: &str, vals: &[f64]) -> Series {
        let mut s = Series::new(name);
        for (i, &v) in vals.iter().enumerate() {
            s.push(format!("b{}", 1 << i), v);
        }
        s
    }

    #[test]
    fn bars_scale_to_max() {
        let a = series("ICL", &[1.0, 2.0]);
        let b = series("SPR", &[4.0, 8.0]);
        let chart = grouped_bars(&[a, b], 40);
        // The global max (8.0) gets the full width.
        assert!(chart.contains(&"#".repeat(40)), "{chart}");
        // Every (x, series) combination is present.
        assert_eq!(chart.matches("ICL").count(), 2);
        assert_eq!(chart.matches("SPR").count(), 2);
    }

    #[test]
    #[should_panic(expected = "positive point")]
    fn empty_series_panics() {
        let _ = grouped_bars(&[Series::new("empty")], 10);
    }
}
