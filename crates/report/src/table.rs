//! ASCII table rendering for experiment output.

use std::fmt;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple monospace table builder.
///
/// # Examples
///
/// ```
/// use llmsim_report::table::Table;
///
/// let mut t = Table::new(vec!["model".into(), "tok/s".into()]);
/// t.row(vec!["OPT-13B".into(), "412.3".into()]);
/// let s = t.render();
/// assert!(s.contains("OPT-13B"));
/// assert!(s.lines().count() >= 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(headers: Vec<String>) -> Self {
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells, table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether there are no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with a header separator; first column left-aligned, the rest
    /// right-aligned.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let align = |i: usize| if i == 0 { Align::Left } else { Align::Right };
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                match align(i) {
                    Align::Left => line.push_str(&format!("{c:<w$}", w = widths[i])),
                    Align::Right => line.push_str(&format!("{c:>w$}", w = widths[i])),
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as tab-separated values (for piping into plotting tools).
    #[must_use]
    pub fn to_tsv(&self) -> String {
        let mut out = self.headers.join("\t");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["name".into(), "value".into()]);
        t.row(vec!["alpha".into(), "1.0".into()]);
        t.row(vec!["beta-long-name".into(), "23.45".into()]);
        t
    }

    #[test]
    fn render_aligns_columns() {
        let s = sample().render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All data lines have equal width.
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    fn tsv_roundtrip_structure() {
        let tsv = sample().to_tsv();
        assert_eq!(tsv.lines().count(), 3);
        assert!(tsv.starts_with("name\tvalue\n"));
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn ragged_row_panics() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn len_and_empty() {
        assert!(Table::new(vec!["x".into()]).is_empty());
        assert_eq!(sample().len(), 2);
    }
}
