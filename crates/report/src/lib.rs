//! # llmsim-report — experiment result presentation
//!
//! ASCII tables, named data series with the paper's normalization
//! conventions, and terminal bar charts used by every figure regenerator in
//! `llmsim-bench`.
//!
//! # Examples
//!
//! ```
//! use llmsim_report::series::Series;
//!
//! let mut icl = Series::new("ICL");
//! let mut spr = Series::new("SPR");
//! icl.push("b=1", 10.0);
//! spr.push("b=1", 3.0);
//! let norm = spr.normalized_to(&icl);
//! assert_eq!(norm.values(), vec![0.3]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod barchart;
pub mod series;
pub mod spanlog;
pub mod table;

pub use barchart::grouped_bars;
pub use series::{percentile, Series};
pub use spanlog::{validate_tsv, Cell, TabularLog};
pub use table::Table;
