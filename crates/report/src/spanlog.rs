//! Tabular log writer: the TSV/JSONL backend of per-request span traces.
//!
//! The span *schema* lives with the engines that emit spans (see
//! `llmsim-core`'s `trace` module); this module owns only the wire
//! formats. Both renderings are fully deterministic: cells are formatted
//! with `f64`'s shortest-roundtrip `Display`, so identical simulations
//! produce byte-identical files — the property the replay CI job diffs
//! against.

use std::fmt::Write as _;

/// One value in a tabular log row.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// A string cell (TSV: written raw with tabs/newlines replaced by
    /// spaces; JSONL: quoted and escaped).
    Str(String),
    /// An integer cell.
    Int(i64),
    /// A float cell. `NaN` marks "not applicable" (e.g. the dispatch time
    /// of a rejected request) and renders as `NaN` in TSV / `null` in
    /// JSONL.
    Num(f64),
}

impl Cell {
    /// Renders this cell as one TSV field (tabs/newlines in strings are
    /// replaced by spaces; floats use shortest-roundtrip `Display`).
    #[must_use]
    pub fn to_tsv_field(&self) -> String {
        match self {
            Cell::Str(s) => s.replace(['\t', '\n', '\r'], " "),
            Cell::Int(i) => i.to_string(),
            Cell::Num(x) => x.to_string(),
        }
    }

    /// Renders this cell as one JSON value (`NaN`/infinities become
    /// `null`, strings are escaped).
    #[must_use]
    pub fn to_json_value(&self) -> String {
        match self {
            Cell::Str(s) => json_escape(s),
            Cell::Int(i) => i.to_string(),
            Cell::Num(x) if x.is_finite() => x.to_string(),
            Cell::Num(_) => "null".to_string(),
        }
    }
}

/// Renders one TSV data line (no trailing newline) from a row of cells.
///
/// [`TabularLog::to_tsv`] and the streaming span sink in `llmsim-core`
/// both go through this function, which is what makes a streamed file
/// byte-identical to a buffered render of the same rows.
#[must_use]
pub fn tsv_line(cells: &[Cell]) -> String {
    let fields: Vec<String> = cells.iter().map(Cell::to_tsv_field).collect();
    fields.join("\t")
}

/// Renders one JSONL object line (no trailing newline) from column names
/// and a row of cells. Shared by [`TabularLog::to_jsonl`] and the
/// streaming span sink for the same byte-identity reason as [`tsv_line`].
///
/// # Panics
///
/// Panics if `columns` and `cells` have different lengths.
#[must_use]
pub fn jsonl_line(columns: &[String], cells: &[Cell]) -> String {
    assert_eq!(
        columns.len(),
        cells.len(),
        "row arity {} != column count {}",
        cells.len(),
        columns.len()
    );
    let mut out = String::new();
    out.push('{');
    for (i, (col, cell)) in columns.iter().zip(cells).enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_escape(col));
        out.push(':');
        out.push_str(&cell.to_json_value());
    }
    out.push('}');
    out
}

/// Escapes a string as a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A fixed-arity table of [`Cell`]s renderable as TSV or JSONL.
#[derive(Debug, Clone, PartialEq)]
pub struct TabularLog {
    columns: Vec<String>,
    rows: Vec<Vec<Cell>>,
}

impl TabularLog {
    /// Creates an empty log with the given column names.
    ///
    /// # Panics
    ///
    /// Panics if `columns` is empty.
    #[must_use]
    pub fn new(columns: Vec<String>) -> Self {
        assert!(!columns.is_empty(), "a tabular log needs columns");
        TabularLog {
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row arity does not match the header.
    pub fn row(&mut self, cells: Vec<Cell>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row arity {} != column count {}",
            cells.len(),
            self.columns.len()
        );
        self.rows.push(cells);
    }

    /// Data rows recorded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no data rows have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as tab-separated values: one header line, one line per row,
    /// `\n` line endings.
    #[must_use]
    pub fn to_tsv(&self) -> String {
        let mut out = self.columns.join("\t");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&tsv_line(row));
            out.push('\n');
        }
        out
    }

    /// Renders as JSON Lines: one object per row keyed by column name.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for row in &self.rows {
            out.push_str(&jsonl_line(&self.columns, row));
            out.push('\n');
        }
        out
    }
}

/// Validates that `text` is a well-formed TSV log: a non-empty header and
/// at least one data row, every row with the header's arity. Returns the
/// data-row count.
///
/// # Errors
///
/// Returns a description of the first structural problem found — the
/// check the CI replay job fails on.
pub fn validate_tsv(text: &str) -> Result<usize, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or_else(|| "empty file".to_string())?;
    let arity = header.split('\t').count();
    if header.trim().is_empty() {
        return Err("blank header line".into());
    }
    let mut rows = 0usize;
    for (i, line) in lines.enumerate() {
        let got = line.split('\t').count();
        if got != arity {
            return Err(format!(
                "row {} has {got} fields, header has {arity}",
                i + 1
            ));
        }
        rows += 1;
    }
    if rows == 0 {
        return Err("no data rows".into());
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TabularLog {
        let mut t = TabularLog::new(vec!["id".into(), "name".into(), "lat_s".into()]);
        t.row(vec![Cell::Int(0), Cell::Str("spr".into()), Cell::Num(0.25)]);
        t.row(vec![
            Cell::Int(1),
            Cell::Str("a100".into()),
            Cell::Num(f64::NAN),
        ]);
        t
    }

    #[test]
    fn tsv_round_trip_structure() {
        let t = sample();
        let tsv = t.to_tsv();
        assert_eq!(tsv, "id\tname\tlat_s\n0\tspr\t0.25\n1\ta100\tNaN\n");
        assert_eq!(validate_tsv(&tsv), Ok(2));
    }

    #[test]
    fn jsonl_escapes_and_nulls() {
        let mut t = TabularLog::new(vec!["k".into(), "v".into()]);
        t.row(vec![Cell::Str("a\"b\\c\nd".into()), Cell::Num(f64::NAN)]);
        assert_eq!(t.to_jsonl(), "{\"k\":\"a\\\"b\\\\c\\nd\",\"v\":null}\n");
    }

    #[test]
    fn tsv_replaces_embedded_tabs() {
        let mut t = TabularLog::new(vec!["s".into()]);
        t.row(vec![Cell::Str("a\tb".into())]);
        assert_eq!(t.to_tsv(), "s\na b\n");
    }

    #[test]
    fn validation_rejects_malformed_logs() {
        assert!(validate_tsv("").is_err());
        assert!(validate_tsv("a\tb\n").is_err(), "no data rows");
        assert!(validate_tsv("a\tb\n1\n").is_err(), "arity mismatch");
        assert_eq!(validate_tsv("a\tb\n1\t2\n"), Ok(1));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics_at_append() {
        let mut t = TabularLog::new(vec!["a".into(), "b".into()]);
        t.row(vec![Cell::Int(1)]);
    }

    #[test]
    fn rendering_is_deterministic() {
        assert_eq!(sample().to_tsv(), sample().to_tsv());
        assert_eq!(sample().to_jsonl(), sample().to_jsonl());
    }
}
