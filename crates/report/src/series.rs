//! Named data series with the normalization conventions the paper's figures
//! use ("each bar normalized to X").

use std::fmt;

/// Linear-interpolation percentile over an unsorted sample, `p` in percent
/// (`50.0` = median). Returns `NaN` for an empty sample — the "no data"
/// semantics the latency columns use — and likewise `NaN` for a `p`
/// outside `[0, 100]` (including `NaN`): an out-of-range rank is a caller
/// bug, and silently clamping it to the min/max used to disguise a p200
/// typo as "the maximum".
///
/// This is **the** percentile implementation of the workspace: `Series`,
/// the serving report, the resilience metrics and the cluster fleet metrics
/// all delegate here so p50/p95/p99 semantics agree everywhere.
#[must_use]
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() || !(0.0..=100.0).contains(&p) {
        return f64::NAN;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = (p / 100.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// A labelled sequence of `(x-label, value)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Series name (legend entry).
    pub name: String,
    /// Points in x order.
    pub points: Vec<(String, f64)>,
}

impl Series {
    /// Creates an empty series.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: impl Into<String>, y: f64) -> &mut Self {
        self.points.push((x.into(), y));
        self
    }

    /// Values only.
    #[must_use]
    pub fn values(&self) -> Vec<f64> {
        self.points.iter().map(|(_, y)| *y).collect()
    }

    /// Divides every value by the matching value of `baseline`
    /// (the paper's "normalized to the ICL CPU" convention).
    ///
    /// # Panics
    ///
    /// Panics if `baseline` is missing one of this series' x-labels or the
    /// baseline value is zero.
    #[must_use]
    pub fn normalized_to(&self, baseline: &Series) -> Series {
        let mut out = Series::new(format!("{} / {}", self.name, baseline.name));
        for (x, y) in &self.points {
            let base = baseline
                .points
                .iter()
                .find(|(bx, _)| bx == x)
                .unwrap_or_else(|| panic!("baseline '{}' missing x={x}", baseline.name))
                .1;
            assert!(base != 0.0, "baseline value at x={x} is zero");
            out.push(x.clone(), y / base);
        }
        out
    }

    /// Arithmetic mean of the values (`NaN` for an empty series).
    #[must_use]
    pub fn mean(&self) -> f64 {
        let v = self.values();
        v.iter().sum::<f64>() / v.len() as f64
    }

    /// Geometric mean of the values (`NaN` for an empty series).
    ///
    /// # Panics
    ///
    /// Panics if any value is non-positive.
    #[must_use]
    pub fn geomean(&self) -> f64 {
        let v = self.values();
        let log_sum: f64 = v
            .iter()
            .map(|&x| {
                assert!(x > 0.0, "geomean requires positive values, got {x}");
                x.ln()
            })
            .sum();
        (log_sum / v.len() as f64).exp()
    }

    /// Minimum value (`None` if empty).
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        self.values().into_iter().reduce(f64::min)
    }

    /// Maximum value (`None` if empty).
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        self.values().into_iter().reduce(f64::max)
    }

    /// Linear-interpolation percentile of the values, `p` in percent
    /// (`NaN` for an empty series) — the p50/p95/p99 convention the fleet
    /// serving metrics report.
    #[must_use]
    pub fn percentile(&self, p: f64) -> f64 {
        percentile(&self.values(), p)
    }
}

impl fmt::Display for Series {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ", self.name)?;
        for (i, (x, y)) in self.points.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x}={y:.4}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact float assertions are deliberate: determinism is bit-level
mod tests {
    use super::*;

    fn make(name: &str, ys: &[f64]) -> Series {
        let mut s = Series::new(name);
        for (i, &y) in ys.iter().enumerate() {
            s.push(format!("x{i}"), y);
        }
        s
    }

    #[test]
    fn normalization_matches_paper_convention() {
        let icl = make("ICL", &[10.0, 20.0]);
        let spr = make("SPR", &[2.0, 4.0]);
        let norm = spr.normalized_to(&icl);
        assert_eq!(norm.values(), vec![0.2, 0.2]);
    }

    #[test]
    #[should_panic(expected = "missing x=")]
    fn mismatched_baseline_panics() {
        let a = make("a", &[1.0]);
        let mut b = Series::new("b");
        b.push("other", 2.0);
        let _ = a.normalized_to(&b);
    }

    #[test]
    fn stats() {
        let s = make("s", &[1.0, 4.0, 16.0]);
        assert_eq!(s.mean(), 7.0);
        assert!((s.geomean() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(16.0));
    }

    #[test]
    fn percentiles_interpolate_and_order() {
        let s = make("lat", &[4.0, 1.0, 3.0, 2.0]);
        assert!((s.percentile(0.0) - 1.0).abs() < 1e-12);
        assert!((s.percentile(50.0) - 2.5).abs() < 1e-12);
        assert!((s.percentile(100.0) - 4.0).abs() < 1e-12);
        assert!(s.percentile(50.0) <= s.percentile(95.0));
        assert!(Series::new("empty").percentile(50.0).is_nan());
    }

    #[test]
    fn out_of_range_p_is_nan_not_clamped() {
        let v = [1.0, 2.0, 3.0];
        assert!(percentile(&v, -0.001).is_nan());
        assert!(percentile(&v, 100.001).is_nan());
        assert!(percentile(&v, f64::NAN).is_nan());
        assert!(percentile(&v, f64::INFINITY).is_nan());
        // The boundaries themselves are still valid ranks.
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 3.0);
    }

    #[test]
    fn display_shows_points() {
        let s = make("tp", &[1.5]);
        assert!(s.to_string().contains("x0=1.5"));
    }
}
