//! Property-based tests of the reporting primitives.

use llmsim_report::{Series, Table};
use proptest::prelude::*;

fn series_from(vals: &[f64], name: &str) -> Series {
    let mut s = Series::new(name);
    for (i, &v) in vals.iter().enumerate() {
        s.push(format!("x{i}"), v);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Normalizing a series to itself yields all ones.
    #[test]
    fn self_normalization_is_identity(vals in proptest::collection::vec(0.001f64..1e9, 1..32)) {
        let s = series_from(&vals, "s");
        let norm = s.normalized_to(&s);
        for v in norm.values() {
            prop_assert!((v - 1.0).abs() < 1e-12);
        }
    }

    /// Normalization round-trips: (a/b) × b = a.
    #[test]
    fn normalization_inverts(
        a in proptest::collection::vec(0.001f64..1e6, 1..16),
        b in proptest::collection::vec(0.001f64..1e6, 16..17),
    ) {
        let n = a.len();
        let sa = series_from(&a, "a");
        let sb = series_from(&b[..1].repeat(n), "b");
        let norm = sa.normalized_to(&sb);
        for (i, v) in norm.values().iter().enumerate() {
            prop_assert!((v * b[0] - a[i]).abs() < 1e-6 * a[i].max(1.0));
        }
    }

    /// Geomean ≤ mean (AM–GM), and both lie within [min, max].
    #[test]
    fn am_gm_inequality(vals in proptest::collection::vec(0.001f64..1e6, 1..32)) {
        let s = series_from(&vals, "s");
        let (mean, geo) = (s.mean(), s.geomean());
        prop_assert!(geo <= mean * (1.0 + 1e-12));
        prop_assert!(geo >= s.min().unwrap() * (1.0 - 1e-12));
        prop_assert!(mean <= s.max().unwrap() * (1.0 + 1e-12));
    }

    /// Rendered tables are rectangular: all data lines have equal width.
    #[test]
    fn tables_are_rectangular(
        cells in proptest::collection::vec(
            proptest::collection::vec("[a-z0-9]{1,12}", 3..4),
            1..10,
        ),
    ) {
        let mut t = Table::new(vec!["a".into(), "b".into(), "c".into()]);
        for row in &cells {
            t.row(row.clone());
        }
        let rendered = t.render();
        let widths: Vec<usize> = rendered.lines().map(str::len).collect();
        // Header, separator, and all rows share one width.
        prop_assert!(widths.windows(2).all(|w| w[0] == w[1]), "{rendered}");
        // TSV has exactly rows + 1 lines.
        prop_assert_eq!(t.to_tsv().lines().count(), cells.len() + 1);
    }
}
