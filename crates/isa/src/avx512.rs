//! A functional + cycle model of 512-bit vector BF16/FP32 arithmetic
//! (`VDPBF16PS`, `VFMADD*PS`), the fallback engine on CPUs without AMX and
//! for non-GEMM operators.

use crate::bf16::Bf16;
use std::fmt;

/// Lanes in a 512-bit FP32 vector.
pub const F32_LANES: usize = 16;
/// BF16 elements in a 512-bit vector.
pub const BF16_LANES: usize = 32;

/// Cycle model of the vector pipes.
///
/// Calibrated to Table I: ICL 8352Y reaches 18.0 TFLOPS BF16 at
/// 32 cores × 2.2 GHz → 256 FLOPs/cycle/core = 2 ports × `VDPBF16PS`
/// (32 BF16 pairs = 128 FLOPs each); SPR's 25.6 TFLOPS at 48 × 2.1 GHz is
/// the same 256 FLOPs/cycle/core rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AvxCostModel {
    /// FMA-capable 512-bit ports per core.
    pub fma_ports: u64,
    /// Loads sustainable per cycle (two 64 B loads on ICL/SPR).
    pub loads_per_cycle: u64,
}

impl Default for AvxCostModel {
    fn default() -> Self {
        AvxCostModel {
            fma_ports: 2,
            loads_per_cycle: 2,
        }
    }
}

impl AvxCostModel {
    /// Peak BF16 FLOPs per cycle per core (`ports × 128`).
    #[must_use]
    pub fn bf16_flops_per_cycle(&self) -> f64 {
        self.fma_ports as f64 * 128.0
    }

    /// Peak FP32 FLOPs per cycle per core (`ports × 32`).
    #[must_use]
    pub fn f32_flops_per_cycle(&self) -> f64 {
        self.fma_ports as f64 * 32.0
    }
}

/// `VDPBF16PS zmm_acc, zmm_a, zmm_b`: 16 FP32 accumulators, each receiving
/// the dot product of one BF16 pair from `a` and `b`.
///
/// `acc[i] += a[2i]·b[2i] + a[2i+1]·b[2i+1]`
///
/// # Panics
///
/// Panics if slices are not exactly one vector wide.
pub fn vdpbf16ps(acc: &mut [f32], a: &[Bf16], b: &[Bf16]) {
    assert_eq!(acc.len(), F32_LANES, "accumulator must be 16 f32 lanes");
    assert_eq!(a.len(), BF16_LANES, "a must be 32 bf16 lanes");
    assert_eq!(b.len(), BF16_LANES, "b must be 32 bf16 lanes");
    for (i, slot) in acc.iter_mut().enumerate() {
        *slot = a[2 * i].mul_add_f32(b[2 * i], *slot);
        *slot = a[2 * i + 1].mul_add_f32(b[2 * i + 1], *slot);
    }
}

/// A simple vector execution tracker: counts FMA-class instructions and
/// loads, and converts them to cycles through the port model.
#[derive(Debug, Clone, Copy, Default)]
pub struct AvxUnit {
    cost_fma_instrs: u64,
    cost_load_instrs: u64,
    flops: f64,
}

impl AvxUnit {
    /// Creates an idle unit.
    #[must_use]
    pub fn new() -> Self {
        AvxUnit::default()
    }

    /// Records one `VDPBF16PS` (128 FLOPs) without executing it (for pure
    /// timing estimation).
    pub fn count_vdpbf16ps(&mut self, n: u64) {
        self.cost_fma_instrs += n;
        self.flops += 128.0 * n as f64;
    }

    /// Records `n` 512-bit loads.
    pub fn count_loads(&mut self, n: u64) {
        self.cost_load_instrs += n;
    }

    /// Executes a `VDPBF16PS` functionally and charges it.
    ///
    /// # Panics
    ///
    /// Panics if slices are not exactly one vector wide.
    pub fn exec_vdpbf16ps(&mut self, acc: &mut [f32], a: &[Bf16], b: &[Bf16]) {
        vdpbf16ps(acc, a, b);
        self.count_vdpbf16ps(1);
    }

    /// FLOPs recorded.
    #[must_use]
    pub fn flops(&self) -> f64 {
        self.flops
    }

    /// Modeled elapsed cycles under `model`: FMA and load ports run in
    /// parallel.
    #[must_use]
    pub fn elapsed_cycles(&self, model: &AvxCostModel) -> u64 {
        let fma = self.cost_fma_instrs.div_ceil(model.fma_ports);
        let ld = self.cost_load_instrs.div_ceil(model.loads_per_cycle);
        fma.max(ld)
    }

    /// Modeled FLOPs/cycle.
    #[must_use]
    pub fn flops_per_cycle(&self, model: &AvxCostModel) -> f64 {
        let c = self.elapsed_cycles(model);
        if c == 0 {
            0.0
        } else {
            self.flops / c as f64
        }
    }
}

impl fmt::Display for AvxUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "AvxUnit: {} FMA instrs, {} loads",
            self.cost_fma_instrs, self.cost_load_instrs
        )
    }
}

/// Functional BF16 GEMM (`C[m×n] = A[m×k] · B[k×n]`) built on emulated
/// `VDPBF16PS` over K, returning the result and the unit used, so callers
/// can inspect both numerics and modeled cycles.
///
/// The kernel broadcasts pairs of A elements and streams B row-pairs, which
/// is the standard AVX-512-BF16 microkernel structure. The inner loop hoists
/// the A broadcasts (one FP32 conversion per pair instead of one per lane)
/// and reads B rows as slices, performing the exact FP32 operation sequence
/// of [`vdpbf16ps`] per lane — results are bit-identical to the seed
/// gather-into-vectors formulation, and the same instruction counts are
/// charged (one `VDPBF16PS` plus two loads per k-pair per stripe-row).
///
/// # Panics
///
/// Panics if slice lengths don't match the shape, or `k` is odd (pad first).
#[must_use]
pub fn avx512_gemm_bf16(
    a: &[Bf16],
    b: &[Bf16],
    m: usize,
    n: usize,
    k: usize,
) -> (Vec<f32>, AvxUnit) {
    assert_eq!(a.len(), m * k, "A shape mismatch");
    assert_eq!(b.len(), k * n, "B shape mismatch");
    assert!(k.is_multiple_of(2), "pad odd K with zeros before calling");
    let mut unit = AvxUnit::new();
    let mut c = vec![0.0f32; m * n];
    // Process N in 16-lane stripes.
    for n0 in (0..n).step_by(F32_LANES) {
        let lanes = F32_LANES.min(n - n0);
        for (i, c_row) in c.chunks_exact_mut(n).enumerate() {
            let mut acc = [0.0f32; F32_LANES];
            let a_row = &a[i * k..(i + 1) * k];
            for k0 in (0..k).step_by(2) {
                // Broadcast a[i][k0], a[i][k0+1]; load b rows k0, k0+1.
                let a0 = a_row[k0].to_f32();
                let a1 = a_row[k0 + 1].to_f32();
                let b0 = &b[k0 * n + n0..k0 * n + n0 + lanes];
                let b1 = &b[(k0 + 1) * n + n0..(k0 + 1) * n + n0 + lanes];
                for (l, slot) in acc.iter_mut().enumerate().take(lanes) {
                    let x = a0.mul_add(b0[l].to_f32(), *slot);
                    *slot = a1.mul_add(b1[l].to_f32(), x);
                }
                unit.count_vdpbf16ps(1);
                unit.count_loads(2); // two B row-pair vectors (A broadcast is folded)
            }
            c_row[n0..n0 + lanes].copy_from_slice(&acc[..lanes]);
        }
    }
    (c, unit)
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact float assertions are deliberate: determinism is bit-level
mod tests {
    use super::*;

    #[test]
    fn vdpbf16ps_computes_pair_dot_products() {
        let mut acc = [1.0f32; F32_LANES];
        let a: Vec<Bf16> = (0..BF16_LANES).map(|i| Bf16::from_f32(i as f32)).collect();
        let b: Vec<Bf16> = (0..BF16_LANES).map(|_| Bf16::from_f32(2.0)).collect();
        vdpbf16ps(&mut acc, &a, &b);
        for (i, &v) in acc.iter().enumerate() {
            let want = 1.0 + 2.0 * (2 * i) as f32 + 2.0 * (2 * i + 1) as f32;
            assert_eq!(v, want, "lane {i}");
        }
    }

    #[test]
    fn gemm_matches_scalar_reference() {
        let (m, n, k) = (5, 19, 8);
        let a_f: Vec<f32> = (0..m * k)
            .map(|i| ((i * 7 % 13) as f32 - 6.0) / 4.0)
            .collect();
        let b_f: Vec<f32> = (0..k * n)
            .map(|i| ((i * 11 % 17) as f32 - 8.0) / 8.0)
            .collect();
        let a: Vec<Bf16> = a_f.iter().map(|&x| Bf16::from_f32(x)).collect();
        let b: Vec<Bf16> = b_f.iter().map(|&x| Bf16::from_f32(x)).collect();
        let (c, _) = avx512_gemm_bf16(&a, &b, m, n, k);
        for i in 0..m {
            for j in 0..n {
                let mut want = 0.0f64;
                for l in 0..k {
                    want += f64::from(a[i * k + l].to_f32()) * f64::from(b[l * n + j].to_f32());
                }
                assert!((f64::from(c[i * n + j]) - want).abs() < 1e-4, "({i},{j})");
            }
        }
    }

    #[test]
    fn cycle_model_peaks_at_256_flops_per_cycle() {
        let model = AvxCostModel::default();
        let mut u = AvxUnit::new();
        u.count_vdpbf16ps(1000);
        // No loads: 2 ports drain 1000 instrs in 500 cycles.
        assert_eq!(u.elapsed_cycles(&model), 500);
        assert!((u.flops_per_cycle(&model) - 256.0).abs() < 1e-9);
    }

    #[test]
    fn load_pressure_caps_throughput() {
        let model = AvxCostModel::default();
        let mut u = AvxUnit::new();
        u.count_vdpbf16ps(1000);
        u.count_loads(4000); // 2 loads/cycle → 2000 cycles
        assert_eq!(u.elapsed_cycles(&model), 2000);
        assert!(u.flops_per_cycle(&model) < 100.0);
    }

    #[test]
    #[should_panic(expected = "pad odd K")]
    fn odd_k_panics() {
        let a = vec![Bf16::ZERO; 3];
        let b = vec![Bf16::ZERO; 3];
        let _ = avx512_gemm_bf16(&a, &b, 1, 1, 3);
    }
}
