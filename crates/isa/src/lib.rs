//! # llmsim-isa — functional Intel AMX / AVX-512 emulation and GEMM timing
//!
//! The paper's CPU results hinge on Sapphire Rapids' AMX tile unit (§II-D).
//! Real AMX silicon is a hardware gate for reproduction, so this crate
//! provides the substitution: a bit-faithful functional emulator of the tile
//! ISA (`LDTILECFG`/`TILELOADD`/`TDPBF16PS`/`TDPBSSD`/…) with per-instruction
//! cycle accounting calibrated to the Table I peaks, plus an AVX-512 BF16
//! model and closed-form GEMM timing used by the inference engine.
//!
//! # Examples
//!
//! Run a real (emulated) AMX GEMM and inspect both numerics and throughput:
//!
//! ```
//! use llmsim_isa::gemm::amx_gemm_f32_inputs;
//!
//! let a = vec![0.25f32; 32 * 64];
//! let b = vec![2.0f32; 64 * 32];
//! let res = amx_gemm_f32_inputs(&a, &b, 32, 32, 64);
//! assert_eq!(res.c[0], 32.0); // 64 × (0.25 × 2.0)
//! assert!(res.unit.flops_per_cycle() > 100.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod amx;
pub mod avx512;
pub mod bf16;
pub mod gemm;
pub mod parallel;
pub mod quant;
pub mod tile;
pub mod timing;
pub mod tmul;

pub use amx::{AmxCostModel, AmxStats, AmxUnit};
pub use avx512::{AvxCostModel, AvxUnit};
pub use bf16::Bf16;
pub use parallel::{amx_gemm_bf16_parallel, ParallelGemmResult};
pub use quant::QuantizedMatrix;
pub use tile::{Tile, TileConfig, TileShape};
pub use timing::{gemm_efficiency, EngineKind, GemmShape, GemmTiming, TimingCache};
