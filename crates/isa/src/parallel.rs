//! Emulated multi-core fan-out of the AMX GEMM kernel.
//!
//! A socket-parallel GEMM shards the output tile space across cores; each
//! core runs the same block kernel on its shard with its own AMX unit. This
//! module reproduces that structure: the `(bm, bn)` tile space is split into
//! contiguous tile-row bands, one band group per emulated core, executed on
//! [`std::thread::scope`] threads. Per-core statistics merge
//! deterministically (core order), and the modeled elapsed time is the
//! *maximum* over per-core cycle counts — the straggler core sets the
//! socket's kernel latency, which is a more faithful parallelism model than
//! dividing single-core cycles by `cores × efficiency`.
//!
//! Because output tiles are independent (no cross-tile accumulation), the
//! fan-out is bit-deterministic: any core count produces the same output
//! bits as the single-core kernel.

use crate::amx::{AmxStats, AmxUnit};
use crate::bf16::Bf16;
use crate::gemm::{sum_stats, PackedGemm, TILE_M};
use crate::tile::TileConfig;
use crate::timing::{amx_timing_cached, avx512_timing_cached, EngineKind, GemmShape, GemmTiming};

/// Result of a multi-core emulated GEMM.
#[derive(Debug, Clone)]
pub struct ParallelGemmResult {
    /// Row-major `m×n` FP32 output (bit-identical to the 1-core kernel).
    pub c: Vec<f32>,
    /// Per-core AMX units in core order (core 0 owns the lowest tile rows).
    pub units: Vec<AmxUnit>,
}

impl ParallelGemmResult {
    /// Number of cores that received work.
    #[must_use]
    pub fn cores_used(&self) -> usize {
        self.units.len()
    }

    /// Merged instruction counts (element-wise sum over cores; note each
    /// core executes its own `LDTILECFG`, so that count scales with cores).
    #[must_use]
    pub fn merged_stats(&self) -> AmxStats {
        let stats: Vec<AmxStats> = self.units.iter().map(AmxUnit::stats).collect();
        sum_stats(&stats)
    }

    /// Total FLOPs across cores.
    #[must_use]
    pub fn flops(&self) -> f64 {
        self.units.iter().map(AmxUnit::flops).sum()
    }

    /// Modeled kernel cycles: the slowest core bounds the socket.
    #[must_use]
    pub fn max_core_cycles(&self) -> u64 {
        self.units
            .iter()
            .map(AmxUnit::elapsed_cycles)
            .max()
            .unwrap_or(0)
    }

    /// Socket-level FLOPs per cycle (total FLOPs over straggler cycles).
    #[must_use]
    pub fn flops_per_cycle(&self) -> f64 {
        let c = self.max_core_cycles();
        if c == 0 {
            0.0
        } else {
            self.flops() / c as f64
        }
    }
}

/// Splits `bands` tile-row bands into at most `cores` contiguous,
/// maximally-balanced chunks; returns band ranges, largest chunks first.
fn band_chunks(bands: usize, cores: usize) -> Vec<std::ops::Range<usize>> {
    let used = cores.min(bands);
    let base = bands / used;
    let extra = bands % used;
    let mut out = Vec::with_capacity(used);
    let mut start = 0;
    for i in 0..used {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// BF16 GEMM sharded across `cores` emulated AMX cores.
///
/// Operands are packed once ([`PackedGemm`]) and shared read-only by every
/// core; each core writes a disjoint row band of `C`, so the output is
/// bit-identical to [`crate::gemm::amx_gemm_bf16`] for every core count.
/// With `cores == 1` the instruction statistics are also exactly equal.
///
/// # Panics
///
/// Panics if slice lengths don't match the shape, any dimension is zero, or
/// `cores` is zero.
#[must_use]
pub fn amx_gemm_bf16_parallel(
    a: &[Bf16],
    b: &[Bf16],
    m: usize,
    n: usize,
    k: usize,
    cores: usize,
) -> ParallelGemmResult {
    assert!(cores > 0, "need at least one core");
    let packed = PackedGemm::pack(a, b, m, n, k);
    let chunks = band_chunks(packed.tiles_m, cores);

    let mut c = vec![0.0f32; m * n];
    // Split C into per-core row bands: disjoint &mut slices, no locks.
    let mut bands: Vec<&mut [f32]> = Vec::with_capacity(chunks.len());
    let mut rest = c.as_mut_slice();
    for r in &chunks {
        let rows = (r.end * TILE_M).min(m) - r.start * TILE_M;
        let (band, tail) = rest.split_at_mut(rows * n);
        bands.push(band);
        rest = tail;
    }

    let packed_ref = &packed;
    let units: Vec<AmxUnit> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .iter()
            .cloned()
            .zip(bands)
            .map(|(range, band)| {
                s.spawn(move || {
                    let mut unit = AmxUnit::new();
                    unit.ldtilecfg(TileConfig::gemm_bf16());
                    packed_ref.run_bands(&mut unit, range, band);
                    unit
                })
            })
            .collect();
        // Join in spawn order so the merge is deterministic.
        handles
            .into_iter()
            .map(|h| h.join().expect("GEMM worker panicked"))
            .collect()
    });

    ParallelGemmResult { c, units }
}

/// Closed-form max-over-cores cycles for a GEMM sharded across `cores` as
/// [`amx_gemm_bf16_parallel`] shards it: the straggler core's band (rounded
/// up to whole tile rows) is timed through the memoized single-core model.
///
/// This replaces the flat `cycles / (cores × efficiency)` divide: it charges
/// the per-core kernel prologue to every core and exposes the band
/// quantization that starves small-M GEMMs of parallelism (an `m = 256` AMX
/// GEMM has only 16 tile rows to give to 48 cores).
///
/// `batch` is not sharded — every core sees the full batch of its band.
#[must_use]
pub fn sharded_cycles(engine: EngineKind, shape: GemmShape, cores: u64) -> f64 {
    let timing = sharded_timing(engine, shape, cores);
    timing.cycles
}

/// Like [`sharded_cycles`] but returns the straggler core's full
/// [`GemmTiming`].
#[must_use]
pub fn sharded_timing(engine: EngineKind, shape: GemmShape, cores: u64) -> GemmTiming {
    assert!(cores > 0, "need at least one core");
    let band_rows = match engine {
        EngineKind::AmxBf16 => TILE_M as u64,
        EngineKind::Avx512Bf16 => 8,
    };
    let bands = shape.m.div_ceil(band_rows);
    let used = cores.min(bands);
    let straggler_bands = bands.div_ceil(used);
    let m_core = (straggler_bands * band_rows).min(shape.m);
    let core_shape = GemmShape::batched(m_core, shape.n, shape.k, shape.batch);
    match engine {
        EngineKind::AmxBf16 => amx_timing_cached(core_shape),
        EngineKind::Avx512Bf16 => avx512_timing_cached(core_shape),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::amx_gemm_bf16;

    fn pseudo_bf16(len: usize, salt: u64) -> Vec<Bf16> {
        Bf16::quantize_slice(
            &(0..len)
                .map(|i| {
                    let h = (i as u64 ^ salt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    ((h >> 40) as f32 / (1u64 << 24) as f32 - 0.5) * 4.0
                })
                .collect::<Vec<f32>>(),
        )
    }

    #[test]
    fn band_chunks_cover_and_balance() {
        for (bands, cores) in [(7usize, 3usize), (16, 4), (3, 8), (1, 1), (48, 5)] {
            let chunks = band_chunks(bands, cores);
            assert_eq!(chunks.len(), cores.min(bands));
            assert_eq!(chunks[0].start, 0);
            assert_eq!(chunks.last().unwrap().end, bands);
            for w in chunks.windows(2) {
                assert_eq!(w[0].end, w[1].start);
                assert!(w[0].len() >= w[1].len()); // largest first
                assert!(w[0].len() - w[1].len() <= 1); // balanced
            }
        }
    }

    #[test]
    fn fan_out_is_bit_deterministic_across_core_counts() {
        let (m, n, k) = (67usize, 33usize, 70usize);
        let a = pseudo_bf16(m * k, 1);
        let b = pseudo_bf16(k * n, 2);
        let serial = amx_gemm_bf16(&a, &b, m, n, k);
        for cores in [1usize, 2, 3, 4, 8, 64] {
            let par = amx_gemm_bf16_parallel(&a, &b, m, n, k, cores);
            assert_eq!(par.cores_used(), cores.min(m.div_ceil(TILE_M)));
            for (i, (g, w)) in par.c.iter().zip(&serial.c).enumerate() {
                assert_eq!(g.to_bits(), w.to_bits(), "cores {cores} elem {i}");
            }
            // Work-instruction counts match the serial kernel exactly;
            // LDTILECFG is per-core by construction.
            let merged = par.merged_stats();
            let want = serial.unit.stats();
            assert_eq!(merged.tdpbf16ps, want.tdpbf16ps, "cores {cores}");
            assert_eq!(merged.tileload, want.tileload, "cores {cores}");
            assert_eq!(merged.tilestore, want.tilestore, "cores {cores}");
            assert_eq!(merged.tilezero, want.tilezero, "cores {cores}");
            assert_eq!(merged.ldtilecfg, par.cores_used() as u64);
        }
    }

    #[test]
    fn single_core_fan_out_equals_serial_kernel_exactly() {
        let (m, n, k) = (40usize, 24usize, 48usize);
        let a = pseudo_bf16(m * k, 7);
        let b = pseudo_bf16(k * n, 9);
        let serial = amx_gemm_bf16(&a, &b, m, n, k);
        let par = amx_gemm_bf16_parallel(&a, &b, m, n, k, 1);
        assert_eq!(par.merged_stats(), serial.unit.stats());
        assert_eq!(par.max_core_cycles(), serial.unit.elapsed_cycles());
        for (g, w) in par.c.iter().zip(&serial.c) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    #[test]
    fn more_cores_cut_straggler_cycles() {
        let (m, n, k) = (256usize, 128usize, 128usize);
        let a = pseudo_bf16(m * k, 3);
        let b = pseudo_bf16(k * n, 4);
        let one = amx_gemm_bf16_parallel(&a, &b, m, n, k, 1);
        let four = amx_gemm_bf16_parallel(&a, &b, m, n, k, 4);
        let sixteen = amx_gemm_bf16_parallel(&a, &b, m, n, k, 16);
        assert!(four.max_core_cycles() < one.max_core_cycles());
        assert!(sixteen.max_core_cycles() < four.max_core_cycles());
        // 16 cores × 16 bands: perfect split, ~16× fewer straggler cycles.
        let speedup = one.max_core_cycles() as f64 / sixteen.max_core_cycles() as f64;
        assert!(speedup > 10.0, "{speedup}");
    }

    #[test]
    fn sharded_cycles_match_flat_divide_at_scale_and_beat_it_when_starved() {
        let big = GemmShape::new(16384, 4096, 4096);
        let flat = amx_timing_cached(big).cycles / 48.0;
        let sharded = sharded_cycles(EngineKind::AmxBf16, big, 48);
        // Plenty of bands: within ~10 % of the ideal divide.
        assert!((sharded / flat - 1.0).abs() < 0.10, "{sharded} vs {flat}");

        // m = 64 → 4 tile bands: only 4 of 48 cores can work.
        let starved = GemmShape::new(64, 4096, 4096);
        let flat_starved = amx_timing_cached(starved).cycles / 48.0;
        let sharded_starved = sharded_cycles(EngineKind::AmxBf16, starved, 48);
        assert!(
            sharded_starved > 5.0 * flat_starved,
            "{sharded_starved} vs {flat_starved}"
        );
    }

    #[test]
    fn sharded_timing_handles_both_engines() {
        let shape = GemmShape::new(100, 100, 100);
        for engine in [EngineKind::AmxBf16, EngineKind::Avx512Bf16] {
            let t = sharded_timing(engine, shape, 8);
            assert!(t.cycles > 0.0);
            assert!(t.cycles < 2.0 * sharded_timing(engine, shape, 1).cycles);
        }
    }
}
