//! A functional + cycle-accounting emulator of one core's AMX unit.
//!
//! [`AmxUnit`] models the architectural state (eight tile registers plus the
//! `TILECFG`) and executes the tile ISA: `LDTILECFG`, `TILELOADD`,
//! `TILESTORED`, `TILEZERO`, `TDPBF16PS`, `TDPBSSD`. Every instruction also
//! charges a documented cycle cost to one of two ports (TMUL vs load/store),
//! so kernels built on the unit produce both *bit-accurate results* and a
//! *throughput estimate* that reproduces the Table I peak when saturated.

use crate::bf16::Bf16;
use crate::tile::{Tile, TileConfig, TileShape, NUM_TILES};
use crate::tmul;
use std::fmt;

/// Per-instruction cycle costs of the AMX pipeline.
///
/// `tdp_issue_cycles` is calibrated so a saturated TMUL reaches Table I's
/// 206.4 TFLOPS at 48 cores × 2.1 GHz: one `TDPBF16PS` performs
/// 16×16×32 MACs = 16 384 FLOPs, and 16 384 / 8 cycles = 2 048 FLOPs/cycle
/// per core → 48 × 2.1e9 × 2 048 = 206.4 TFLOPS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AmxCostModel {
    /// Reciprocal throughput of `TDP*` instructions (cycles per instruction).
    pub tdp_issue_cycles: u64,
    /// Reciprocal throughput of `TILELOADD` from cache.
    pub tileload_cycles: u64,
    /// Reciprocal throughput of `TILESTORED`.
    pub tilestore_cycles: u64,
    /// Cost of `LDTILECFG` (paid once per configuration change).
    pub ldtilecfg_cycles: u64,
    /// Cost of `TILEZERO`.
    pub tilezero_cycles: u64,
}

impl Default for AmxCostModel {
    fn default() -> Self {
        AmxCostModel {
            tdp_issue_cycles: 8,
            tileload_cycles: 8,
            tilestore_cycles: 16,
            ldtilecfg_cycles: 64,
            tilezero_cycles: 2,
        }
    }
}

/// Dynamic instruction counts executed by an [`AmxUnit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AmxStats {
    /// `TDPBF16PS` instructions.
    pub tdpbf16ps: u64,
    /// `TDPBSSD` instructions.
    pub tdpbssd: u64,
    /// `TILELOADD` instructions.
    pub tileload: u64,
    /// `TILESTORED` instructions.
    pub tilestore: u64,
    /// `TILEZERO` instructions.
    pub tilezero: u64,
    /// `LDTILECFG` instructions.
    pub ldtilecfg: u64,
}

impl AmxStats {
    /// BF16 FLOPs performed (each `TDPBF16PS` is 16×16×32 MACs = 16 384
    /// FLOPs at full tile shapes; partial shapes are counted exactly by the
    /// unit at execution time, see [`AmxUnit::flops`]).
    #[must_use]
    pub fn tdp_total(&self) -> u64 {
        self.tdpbf16ps + self.tdpbssd
    }
}

/// One core's AMX state machine.
///
/// # Examples
///
/// ```
/// use llmsim_isa::amx::AmxUnit;
/// use llmsim_isa::tile::{TileConfig, TileShape};
/// use llmsim_isa::bf16::Bf16;
///
/// let mut amx = AmxUnit::new();
/// amx.ldtilecfg(TileConfig::gemm_bf16());
/// amx.tilezero(0);
/// // Load A (16x32 bf16) and VNNI-packed B, multiply into tile 0.
/// let a = vec![Bf16::ONE; 16 * 32];
/// let b = vec![Bf16::ONE; 32 * 16];
/// amx.tileload_bf16(1, &a, 32);
/// amx.tileload_b_vnni(2, &b, 32, 16);
/// amx.tdpbf16ps(0, 1, 2);
/// // Every output element is a K=32 dot product of ones.
/// assert_eq!(amx.tile(0).f32_at(3, 7), 32.0);
/// assert!(amx.elapsed_cycles() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct AmxUnit {
    cost: AmxCostModel,
    tiles: Vec<Tile>,
    configured: bool,
    stats: AmxStats,
    flops: f64,
    tmul_cycles: u64,
    ls_cycles: u64,
    cfg_cycles: u64,
}

impl Default for AmxUnit {
    fn default() -> Self {
        Self::new()
    }
}

impl AmxUnit {
    /// Creates a unit with the default cost model and no configuration.
    #[must_use]
    pub fn new() -> Self {
        Self::with_cost_model(AmxCostModel::default())
    }

    /// Creates a unit with a custom cost model.
    #[must_use]
    pub fn with_cost_model(cost: AmxCostModel) -> Self {
        AmxUnit {
            cost,
            tiles: (0..NUM_TILES)
                .map(|_| Tile::zeroed(TileShape::default()))
                .collect(),
            configured: false,
            stats: AmxStats::default(),
            flops: 0.0,
            tmul_cycles: 0,
            ls_cycles: 0,
            cfg_cycles: 0,
        }
    }

    /// `LDTILECFG` — configures all eight tiles and zeroes them.
    pub fn ldtilecfg(&mut self, cfg: TileConfig) {
        for i in 0..NUM_TILES {
            self.tiles[i] = Tile::zeroed(cfg.shape(i));
        }
        self.configured = true;
        self.stats.ldtilecfg += 1;
        self.cfg_cycles += self.cost.ldtilecfg_cycles;
    }

    fn check_configured(&self) {
        assert!(
            self.configured,
            "execute LDTILECFG before tile instructions (#UD otherwise)"
        );
    }

    /// Read-only view of tile `idx`.
    ///
    /// # Panics
    ///
    /// Panics if the unit is unconfigured or `idx >= 8`.
    #[must_use]
    pub fn tile(&self, idx: usize) -> &Tile {
        self.check_configured();
        &self.tiles[idx]
    }

    /// `TILEZERO tmm{idx}`.
    ///
    /// # Panics
    ///
    /// Panics if the unit is unconfigured or `idx >= 8`.
    pub fn tilezero(&mut self, idx: usize) {
        self.check_configured();
        self.tiles[idx].zero();
        self.stats.tilezero += 1;
        self.tmul_cycles += self.cost.tilezero_cycles;
    }

    /// `TILELOADD` of BF16 data: loads `rows × (stride elements)` from a
    /// row-major slice, writing `colsb/2` elements per tile row.
    ///
    /// # Panics
    ///
    /// Panics if the unit is unconfigured or `src` is too small for the
    /// configured shape at the given stride.
    pub fn tileload_bf16(&mut self, idx: usize, src: &[Bf16], stride_elems: usize) {
        self.check_configured();
        let shape = self.tiles[idx].shape();
        let cols = usize::from(shape.colsb) / 2;
        assert!(stride_elems >= cols, "stride narrower than tile row");
        for r in 0..usize::from(shape.rows) {
            let base = r * stride_elems;
            assert!(base + cols <= src.len(), "source smaller than tile load");
            self.tiles[idx].set_row_bf16(r, &src[base..base + cols]);
        }
        self.stats.tileload += 1;
        self.ls_cycles += self.cost.tileload_cycles;
    }

    /// `TILELOADD` of a pre-packed tile image: a straight 1 KiB copy from a
    /// tile prepared ahead of time (e.g. VNNI-packed B blocks packed once
    /// per GEMM instead of once per k-step). Charges exactly one tile load,
    /// like [`AmxUnit::tileload_bf16`].
    ///
    /// # Panics
    ///
    /// Panics if the unit is unconfigured or `src`'s shape differs from the
    /// configured shape of tile `idx`.
    pub fn tileload_tile(&mut self, idx: usize, src: &crate::tile::Tile) {
        self.check_configured();
        self.tiles[idx].copy_from(src);
        self.stats.tileload += 1;
        self.ls_cycles += self.cost.tileload_cycles;
    }

    /// Loads a row-major `K×N` BF16 block as the VNNI-packed B operand.
    ///
    /// # Panics
    ///
    /// Panics if the unit is unconfigured, `k_dim` is odd, or the block
    /// exceeds the configured tile shape.
    pub fn tileload_b_vnni(&mut self, idx: usize, src: &[Bf16], k_dim: usize, n_dim: usize) {
        self.check_configured();
        tmul::pack_b_vnni_bf16(&mut self.tiles[idx], src, k_dim, n_dim);
        self.stats.tileload += 1;
        self.ls_cycles += self.cost.tileload_cycles;
    }

    /// `TILESTORED`: reads the tile back as FP32 values (for accumulators),
    /// row-major, `colsb/4` columns per row.
    ///
    /// # Panics
    ///
    /// Panics if the unit is unconfigured.
    #[must_use]
    pub fn tilestore_f32(&mut self, idx: usize) -> Vec<f32> {
        self.check_configured();
        let shape = self.tiles[idx].shape();
        let cols = usize::from(shape.colsb) / 4;
        let mut out = vec![0.0f32; usize::from(shape.rows) * cols];
        self.tilestore_f32_into(idx, &mut out);
        out
    }

    /// `TILESTORED` into a caller-provided buffer (`rows × colsb/4` f32,
    /// row-major) — the zero-allocation twin of [`AmxUnit::tilestore_f32`],
    /// charging the same single store.
    ///
    /// # Panics
    ///
    /// Panics if the unit is unconfigured or `out` is not exactly
    /// `rows × colsb/4` long.
    pub fn tilestore_f32_into(&mut self, idx: usize, out: &mut [f32]) {
        self.check_configured();
        let shape = self.tiles[idx].shape();
        let cols = usize::from(shape.colsb) / 4;
        let rows = usize::from(shape.rows);
        assert_eq!(out.len(), rows * cols, "store buffer size mismatch");
        for (r, chunk) in out.chunks_exact_mut(cols).enumerate() {
            let row = self.tiles[idx].row_f32(r);
            chunk.copy_from_slice(&row[..cols]);
        }
        self.stats.tilestore += 1;
        self.ls_cycles += self.cost.tilestore_cycles;
    }

    /// `TDPBF16PS tmm{dst}, tmm{a}, tmm{b}`.
    ///
    /// # Panics
    ///
    /// Panics if the unit is unconfigured, indices collide, or tile shapes
    /// are incompatible.
    pub fn tdpbf16ps(&mut self, dst: usize, a: usize, b: usize) {
        self.check_configured();
        assert!(
            dst != a && dst != b && a != b,
            "tile operands must be distinct (#UD)"
        );
        // Clone the 1 KiB read operands to satisfy the borrow checker; this
        // is a simulator, clarity beats zero-copy.
        let a_t = self.tiles[a].clone();
        let b_t = self.tiles[b].clone();
        tmul::tdpbf16ps(&mut self.tiles[dst], &a_t, &b_t);
        self.stats.tdpbf16ps += 1;
        self.tmul_cycles += self.cost.tdp_issue_cycles;
        let m = f64::from(self.tiles[dst].shape().rows);
        let n = f64::from(self.tiles[dst].shape().colsb) / 4.0;
        let k = f64::from(a_t.shape().colsb) / 2.0;
        self.flops += 2.0 * m * n * k;
    }

    /// [`AmxUnit::tdpbf16ps`] executed through the seed per-element TMUL
    /// path ([`tmul::tdpbf16ps_scalar`]), with identical stats and cycle
    /// charges. Kept so the legacy kernel structure can be benchmarked and
    /// differentially tested against the packed fast path.
    ///
    /// # Panics
    ///
    /// Panics if the unit is unconfigured, indices collide, or tile shapes
    /// are incompatible.
    pub fn tdpbf16ps_ref(&mut self, dst: usize, a: usize, b: usize) {
        self.check_configured();
        assert!(
            dst != a && dst != b && a != b,
            "tile operands must be distinct (#UD)"
        );
        let a_t = self.tiles[a].clone();
        let b_t = self.tiles[b].clone();
        tmul::tdpbf16ps_scalar(&mut self.tiles[dst], &a_t, &b_t);
        self.stats.tdpbf16ps += 1;
        self.tmul_cycles += self.cost.tdp_issue_cycles;
        let m = f64::from(self.tiles[dst].shape().rows);
        let n = f64::from(self.tiles[dst].shape().colsb) / 4.0;
        let k = f64::from(a_t.shape().colsb) / 2.0;
        self.flops += 2.0 * m * n * k;
    }

    /// `TDPBSSD tmm{dst}, tmm{a}, tmm{b}` (signed INT8).
    ///
    /// # Panics
    ///
    /// Panics if the unit is unconfigured, indices collide, or tile shapes
    /// are incompatible.
    pub fn tdpbssd(&mut self, dst: usize, a: usize, b: usize) {
        self.check_configured();
        assert!(
            dst != a && dst != b && a != b,
            "tile operands must be distinct (#UD)"
        );
        let a_t = self.tiles[a].clone();
        let b_t = self.tiles[b].clone();
        tmul::tdpbssd(&mut self.tiles[dst], &a_t, &b_t);
        self.stats.tdpbssd += 1;
        self.tmul_cycles += self.cost.tdp_issue_cycles;
        let m = f64::from(self.tiles[dst].shape().rows);
        let n = f64::from(self.tiles[dst].shape().colsb) / 4.0;
        let k = f64::from(a_t.shape().colsb);
        self.flops += 2.0 * m * n * k;
    }

    /// Charges one `TDPBSSD` (full 16×16×64 tile) plus its two operand
    /// loads without executing it — used by kernels that compute the INT8
    /// semantics out-of-line but want the same instruction stream accounted.
    pub fn charge_tdp_int8(&mut self) {
        self.check_configured();
        self.stats.tdpbssd += 1;
        self.tmul_cycles += self.cost.tdp_issue_cycles;
        self.stats.tileload += 2;
        self.ls_cycles += 2 * self.cost.tileload_cycles;
        self.flops += 2.0 * 16.0 * 16.0 * 64.0;
    }

    /// Instruction counts so far.
    #[must_use]
    pub fn stats(&self) -> AmxStats {
        self.stats
    }

    /// Exact FLOPs performed by `TDP*` instructions so far.
    #[must_use]
    pub fn flops(&self) -> f64 {
        self.flops
    }

    /// Modeled elapsed cycles: TMUL and load/store issue on separate ports
    /// and overlap (software pipelining / double buffering); configuration
    /// serializes.
    #[must_use]
    pub fn elapsed_cycles(&self) -> u64 {
        self.cfg_cycles + self.tmul_cycles.max(self.ls_cycles)
    }

    /// Modeled throughput in FLOP/cycle (0 before any work).
    #[must_use]
    pub fn flops_per_cycle(&self) -> f64 {
        let c = self.elapsed_cycles();
        if c == 0 {
            0.0
        } else {
            self.flops / c as f64
        }
    }
}

impl fmt::Display for AmxUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "AmxUnit: {} tdp, {} loads, {} stores, {} cycles, {:.1} FLOP/cycle",
            self.stats.tdp_total(),
            self.stats.tileload,
            self.stats.tilestore,
            self.elapsed_cycles(),
            self.flops_per_cycle()
        )
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact float assertions are deliberate: determinism is bit-level
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "LDTILECFG")]
    fn unconfigured_unit_faults() {
        let mut amx = AmxUnit::new();
        amx.tilezero(0);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn aliased_operands_fault() {
        let mut amx = AmxUnit::new();
        amx.ldtilecfg(TileConfig::gemm_bf16());
        amx.tdpbf16ps(0, 0, 1);
    }

    #[test]
    fn peak_flops_per_cycle_matches_table1_calibration() {
        // A long dependence-free stream of TDPBF16PS with loads hidden under
        // TMUL should approach 2048 FLOP/cycle (Table I: 206.4 TFLOPS at
        // 48 x 2.1 GHz).
        let mut amx = AmxUnit::new();
        amx.ldtilecfg(TileConfig::gemm_bf16());
        let a = vec![Bf16::ONE; 16 * 32];
        let b = vec![Bf16::ONE; 32 * 16];
        amx.tileload_bf16(1, &a, 32);
        amx.tileload_b_vnni(2, &b, 32, 16);
        for _ in 0..256 {
            amx.tdpbf16ps(0, 1, 2);
        }
        let fpc = amx.flops_per_cycle();
        assert!(fpc > 1900.0 && fpc <= 2048.0, "{fpc}");
    }

    #[test]
    fn load_bound_kernels_fall_below_peak() {
        // Reloading operands for every TDP halves the achievable rate only
        // if the LS port saturates; with 2 loads x 8 cycles vs 1 tdp x 8
        // cycles, LS dominates.
        let mut amx = AmxUnit::new();
        amx.ldtilecfg(TileConfig::gemm_bf16());
        let a = vec![Bf16::ONE; 16 * 32];
        let b = vec![Bf16::ONE; 32 * 16];
        for _ in 0..64 {
            amx.tileload_bf16(1, &a, 32);
            amx.tileload_b_vnni(2, &b, 32, 16);
            amx.tdpbf16ps(0, 1, 2);
        }
        assert!(amx.flops_per_cycle() < 1100.0, "{}", amx.flops_per_cycle());
    }

    #[test]
    fn stats_count_instructions() {
        let mut amx = AmxUnit::new();
        amx.ldtilecfg(TileConfig::gemm_bf16());
        amx.tilezero(0);
        amx.tilezero(3);
        let a = vec![Bf16::ONE; 16 * 32];
        amx.tileload_bf16(1, &a, 32);
        let _ = amx.tilestore_f32(0);
        let s = amx.stats();
        assert_eq!(s.ldtilecfg, 1);
        assert_eq!(s.tilezero, 2);
        assert_eq!(s.tileload, 1);
        assert_eq!(s.tilestore, 1);
    }

    #[test]
    fn functional_result_survives_store() {
        let mut amx = AmxUnit::new();
        amx.ldtilecfg(TileConfig::gemm_bf16());
        amx.tilezero(0);
        let a = vec![Bf16::from_f32(0.5); 16 * 32];
        let b = vec![Bf16::from_f32(2.0); 32 * 16];
        amx.tileload_bf16(1, &a, 32);
        amx.tileload_b_vnni(2, &b, 32, 16);
        amx.tdpbf16ps(0, 1, 2);
        let out = amx.tilestore_f32(0);
        assert_eq!(out.len(), 256);
        for v in out {
            assert_eq!(v, 32.0); // 32 x (0.5 * 2.0)
        }
    }
}
