//! Tiled BF16 GEMM built on the emulated AMX unit, plus a scalar reference.
//!
//! [`amx_gemm_bf16`] is the kernel structure a real AMX GEMM library (oneDNN,
//! IPEX) uses — 16×16×32 tile blocks with FP32 accumulation — executed
//! functionally through [`AmxUnit`], so both the numerics and the modeled
//! cycle counts fall out of the same code path.
//!
//! The fast path pre-packs both operands into tile images exactly once
//! ([`PackedGemm`]) and runs the block loop with zero per-step allocations;
//! [`amx_gemm_bf16_legacy`] keeps the seed per-element/alloc-per-step
//! structure as the differential-testing and benchmarking baseline. The two
//! paths are bit-identical in outputs and instruction statistics.

use crate::amx::{AmxStats, AmxUnit};
use crate::bf16::Bf16;
use crate::tile::{Tile, TileConfig, TileShape};
use crate::tmul;

/// Tile block dimensions of the BF16 kernel.
pub const TILE_M: usize = 16;
/// Output-column block width.
pub const TILE_N: usize = 16;
/// Inner-dimension block depth (32 BF16 elements per tile row pair).
pub const TILE_K: usize = 32;

/// Row-streaming f64-accumulated reference GEMM:
/// `C[m×n] = A[m×k] · B[k×n]`.
///
/// The loops run `i → l → j` so B is read row-contiguously (the seed's
/// `i → j → l` order strided through B column-wise, making the proptest
/// oracle the slowest code in the test suite). Each output element still
/// accumulates its K terms in ascending `l` order into an f64, so results
/// are bit-identical to the seed implementation.
///
/// # Panics
///
/// Panics if slice lengths don't match the shape.
#[must_use]
pub fn reference_gemm_f32(a: &[f32], b: &[f32], m: usize, n: usize, k: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "A shape mismatch");
    assert_eq!(b.len(), k * n, "B shape mismatch");
    let mut acc = vec![0.0f64; n];
    let mut c = vec![0.0f32; m * n];
    for (i, c_row) in c.chunks_exact_mut(n).enumerate() {
        acc.fill(0.0);
        for l in 0..k {
            let av = f64::from(a[i * k + l]);
            let b_row = &b[l * n..(l + 1) * n];
            for (slot, &bv) in acc.iter_mut().zip(b_row) {
                *slot += av * f64::from(bv);
            }
        }
        for (out, &v) in c_row.iter_mut().zip(&acc) {
            *out = v as f32;
        }
    }
    c
}

/// Result of an emulated AMX GEMM: output matrix plus the unit that ran it
/// (for cycle/instruction inspection).
#[derive(Debug, Clone)]
pub struct AmxGemmResult {
    /// Row-major `m×n` FP32 output.
    pub c: Vec<f32>,
    /// The AMX unit after execution (stats, cycles, FLOPs).
    pub unit: AmxUnit,
}

/// Both GEMM operands packed into ready-to-load tile images: A as row-major
/// 16×32 BF16 blocks, B as VNNI-packed 16×64 B blocks. Packing happens
/// exactly once per operand element — the seed kernel re-gathered (and
/// re-VNNI-packed) every B block `M/16` times and heap-allocated two fresh
/// block buffers per k-step.
#[derive(Debug, Clone)]
pub struct PackedGemm {
    a_tiles: Vec<Tile>,
    b_tiles: Vec<Tile>,
    /// Tile-block counts along M.
    pub tiles_m: usize,
    /// Tile-block counts along N.
    pub tiles_n: usize,
    /// Tile-block counts along K.
    pub tiles_k: usize,
    m: usize,
    n: usize,
    k: usize,
}

impl PackedGemm {
    /// Packs row-major `A[m×k]` and `B[k×n]` (zero-padding ragged edges).
    ///
    /// # Panics
    ///
    /// Panics if slice lengths don't match the shape or any dimension is
    /// zero.
    #[must_use]
    pub fn pack(a: &[Bf16], b: &[Bf16], m: usize, n: usize, k: usize) -> Self {
        assert!(m > 0 && n > 0 && k > 0, "GEMM dims must be positive");
        assert_eq!(a.len(), m * k, "A shape mismatch");
        assert_eq!(b.len(), k * n, "B shape mismatch");
        let tiles_m = m.div_ceil(TILE_M);
        let tiles_n = n.div_ceil(TILE_N);
        let tiles_k = k.div_ceil(TILE_K);
        let full = TileShape::new(16, 64);

        // A blocks: rows bm..bm+16 × bf16 cols bk..bk+32, row-major.
        let mut a_tiles = Vec::with_capacity(tiles_m * tiles_k);
        let mut row_buf = [Bf16::ZERO; TILE_K];
        for tm in 0..tiles_m {
            for tk in 0..tiles_k {
                let mut tile = Tile::zeroed(full);
                let (bm, bk) = (tm * TILE_M, tk * TILE_K);
                let cols = TILE_K.min(k - bk);
                for r in 0..TILE_M.min(m - bm) {
                    let src = &a[(bm + r) * k + bk..(bm + r) * k + bk + cols];
                    row_buf[..cols].copy_from_slice(src);
                    row_buf[cols..].fill(Bf16::ZERO);
                    tile.set_row_bf16(r, &row_buf);
                }
                a_tiles.push(tile);
            }
        }

        // B blocks: rows bk..bk+32 × cols bn..bn+16, VNNI-packed through the
        // same packer the tile-load path uses, so images are byte-identical.
        let mut b_tiles = Vec::with_capacity(tiles_k * tiles_n);
        let mut block = [Bf16::ZERO; TILE_K * TILE_N];
        for tk in 0..tiles_k {
            for tn in 0..tiles_n {
                let mut tile = Tile::zeroed(full);
                let (bk, bn) = (tk * TILE_K, tn * TILE_N);
                block.fill(Bf16::ZERO);
                let cols = TILE_N.min(n - bn);
                for r in 0..TILE_K.min(k - bk) {
                    let src = &b[(bk + r) * n + bn..(bk + r) * n + bn + cols];
                    block[r * TILE_N..r * TILE_N + cols].copy_from_slice(src);
                }
                tmul::pack_b_vnni_bf16(&mut tile, &block, TILE_K, TILE_N);
                b_tiles.push(tile);
            }
        }

        PackedGemm {
            a_tiles,
            b_tiles,
            tiles_m,
            tiles_n,
            tiles_k,
            m,
            n,
            k,
        }
    }

    /// The packed A block at tile coordinates `(tm, tk)`.
    #[must_use]
    pub fn a_tile(&self, tm: usize, tk: usize) -> &Tile {
        &self.a_tiles[tm * self.tiles_k + tk]
    }

    /// The packed (VNNI) B block at tile coordinates `(tk, tn)`.
    #[must_use]
    pub fn b_tile(&self, tk: usize, tn: usize) -> &Tile {
        &self.b_tiles[tk * self.tiles_n + tn]
    }

    /// Problem dimensions `(m, n, k)`.
    #[must_use]
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.m, self.n, self.k)
    }

    /// Runs the block loop for tile-row band `tm_range` on `unit`, writing
    /// output rows into `c_band` (whose first row is global row
    /// `tm_range.start × 16`). The band structure is what
    /// [`crate::parallel`] shards across emulated cores.
    ///
    /// # Panics
    ///
    /// Panics if `c_band` doesn't hold exactly the band's clipped rows × n.
    pub fn run_bands(
        &self,
        unit: &mut AmxUnit,
        tm_range: std::ops::Range<usize>,
        c_band: &mut [f32],
    ) {
        let row0 = tm_range.start * TILE_M;
        let rows = (tm_range.end * TILE_M).min(self.m) - row0;
        assert_eq!(c_band.len(), rows * self.n, "band buffer size mismatch");
        let mut block = [0.0f32; TILE_M * TILE_N];
        for tm in tm_range.clone() {
            for tn in 0..self.tiles_n {
                unit.tilezero(0);
                for tk in 0..self.tiles_k {
                    unit.tileload_tile(1, self.a_tile(tm, tk));
                    unit.tileload_tile(2, self.b_tile(tk, tn));
                    unit.tdpbf16ps(0, 1, 2);
                }
                unit.tilestore_f32_into(0, &mut block);
                let bn = tn * TILE_N;
                let cols = TILE_N.min(self.n - bn);
                let band_row0 = tm * TILE_M - row0;
                for r in 0..TILE_M.min(self.m - tm * TILE_M) {
                    let dst = &mut c_band[(band_row0 + r) * self.n + bn..][..cols];
                    dst.copy_from_slice(&block[r * TILE_N..r * TILE_N + cols]);
                }
            }
        }
    }
}

/// BF16 GEMM on the emulated AMX unit: pads the problem to
/// 16×16×32 tile blocks, pre-packs A and VNNI-packed B tile images once,
/// and accumulates with `TDPBF16PS` with no allocation inside the block
/// loop.
///
/// Tile register allocation mirrors production kernels:
/// `tmm0` accumulator, `tmm1` A operand, `tmm2` B operand.
///
/// Outputs and instruction statistics are bit-identical to
/// [`amx_gemm_bf16_legacy`] (the seed kernel structure).
///
/// # Panics
///
/// Panics if slice lengths don't match the shape or any dimension is zero.
#[must_use]
pub fn amx_gemm_bf16(a: &[Bf16], b: &[Bf16], m: usize, n: usize, k: usize) -> AmxGemmResult {
    let packed = PackedGemm::pack(a, b, m, n, k);
    let mut unit = AmxUnit::new();
    unit.ldtilecfg(TileConfig::gemm_bf16());
    let mut c = vec![0.0f32; m * n];
    packed.run_bands(&mut unit, 0..packed.tiles_m, &mut c);
    AmxGemmResult { c, unit }
}

/// The seed implementation of [`amx_gemm_bf16`]: gathers fresh heap-
/// allocated A/B block buffers for every k-step of every output tile,
/// re-packs B `⌈M/16⌉` times, and runs the per-element TMUL path. Kept for
/// differential tests and the before/after kernel benchmark.
///
/// # Panics
///
/// Panics if slice lengths don't match the shape or any dimension is zero.
#[must_use]
pub fn amx_gemm_bf16_legacy(a: &[Bf16], b: &[Bf16], m: usize, n: usize, k: usize) -> AmxGemmResult {
    assert!(m > 0 && n > 0 && k > 0, "GEMM dims must be positive");
    assert_eq!(a.len(), m * k, "A shape mismatch");
    assert_eq!(b.len(), k * n, "B shape mismatch");

    let mp = m.next_multiple_of(TILE_M);
    let np = n.next_multiple_of(TILE_N);
    let kp = k.next_multiple_of(TILE_K);

    // Zero-padded operands (hardware kernels handle edges with masked
    // loads; padding is the simulator equivalent).
    let mut a_pad = vec![Bf16::ZERO; mp * kp];
    for i in 0..m {
        a_pad[i * kp..i * kp + k].copy_from_slice(&a[i * k..(i + 1) * k]);
    }
    let mut b_pad = vec![Bf16::ZERO; kp * np];
    for i in 0..k {
        b_pad[i * np..i * np + n].copy_from_slice(&b[i * n..(i + 1) * n]);
    }

    let mut unit = AmxUnit::new();
    unit.ldtilecfg(TileConfig::gemm_bf16());
    let mut c = vec![0.0f32; m * n];

    for bm in (0..mp).step_by(TILE_M) {
        for bn in (0..np).step_by(TILE_N) {
            unit.tilezero(0);
            for bk in (0..kp).step_by(TILE_K) {
                // A tile: rows bm..bm+16, bf16 cols bk..bk+32.
                let a_block: Vec<Bf16> = (0..TILE_M)
                    .flat_map(|r| {
                        let row = bm + r;
                        (0..TILE_K).map(move |cidx| (row, bk + cidx))
                    })
                    .map(|(r, cidx)| a_pad[r * kp + cidx])
                    .collect();
                unit.tileload_bf16(1, &a_block, TILE_K);
                // B block: rows bk..bk+32, cols bn..bn+16, VNNI-packed.
                let b_block: Vec<Bf16> = (0..TILE_K)
                    .flat_map(|r| {
                        let row = bk + r;
                        (0..TILE_N).map(move |cidx| (row, bn + cidx))
                    })
                    .map(|(r, cidx)| b_pad[r * np + cidx])
                    .collect();
                unit.tileload_b_vnni(2, &b_block, TILE_K, TILE_N);
                unit.tdpbf16ps_ref(0, 1, 2);
            }
            let block = unit.tilestore_f32(0);
            for r in 0..TILE_M {
                let row = bm + r;
                if row >= m {
                    break;
                }
                for cidx in 0..TILE_N {
                    let col = bn + cidx;
                    if col < n {
                        c[row * n + col] = block[r * TILE_N + cidx];
                    }
                }
            }
        }
    }

    AmxGemmResult { c, unit }
}

/// Asserts two GEMM results are bit-identical: every output element via
/// `f32::to_bits` and the exact [`AmxStats`] instruction counts.
///
/// # Panics
///
/// Panics (with the first differing element) if the results diverge.
pub fn assert_bit_identical(got: &AmxGemmResult, want: &AmxGemmResult) {
    assert_eq!(
        got.unit.stats(),
        want.unit.stats(),
        "instruction statistics diverge"
    );
    assert_eq!(got.c.len(), want.c.len(), "output length mismatch");
    for (i, (g, w)) in got.c.iter().zip(&want.c).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "element {i}: {g} ({:#010x}) vs {w} ({:#010x})",
            g.to_bits(),
            w.to_bits()
        );
    }
}

/// Merged instruction statistics helper: element-wise sum of per-core
/// [`AmxStats`].
#[must_use]
pub fn sum_stats(stats: &[AmxStats]) -> AmxStats {
    let mut out = AmxStats::default();
    for s in stats {
        out.tdpbf16ps += s.tdpbf16ps;
        out.tdpbssd += s.tdpbssd;
        out.tileload += s.tileload;
        out.tilestore += s.tilestore;
        out.tilezero += s.tilezero;
        out.ldtilecfg += s.ldtilecfg;
    }
    out
}

/// Quantizes f32 inputs and runs [`amx_gemm_bf16`].
///
/// # Panics
///
/// Panics if slice lengths don't match the shape or any dimension is zero.
#[must_use]
pub fn amx_gemm_f32_inputs(a: &[f32], b: &[f32], m: usize, n: usize, k: usize) -> AmxGemmResult {
    let aq = Bf16::quantize_slice(a);
    let bq = Bf16::quantize_slice(b);
    amx_gemm_bf16(&aq, &bq, m, n, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(xs: usize, scale: f32) -> Vec<f32> {
        (0..xs)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                ((h >> 40) as f32 / (1u64 << 24) as f32 - 0.5) * scale
            })
            .collect()
    }

    /// Error tolerance for k-length bf16 dot products vs f32 reference.
    fn tol(k: usize) -> f64 {
        (k as f64).sqrt() * f64::from(crate::bf16::BF16_RELATIVE_EPS) * 4.0
    }

    #[test]
    fn exact_tile_sized_gemm_matches_reference() {
        let (m, n, k) = (16, 16, 32);
        let a = pseudo(m * k, 2.0);
        let b = pseudo(k * n, 2.0);
        let got = amx_gemm_f32_inputs(&a, &b, m, n, k);
        // Compare against the reference computed on the *quantized* inputs.
        let aq = Bf16::dequantize_slice(&Bf16::quantize_slice(&a));
        let bq = Bf16::dequantize_slice(&Bf16::quantize_slice(&b));
        let want = reference_gemm_f32(&aq, &bq, m, n, k);
        for (g, w) in got.c.iter().zip(&want) {
            assert!((g - w).abs() < 1e-3, "{g} vs {w}");
        }
    }

    #[test]
    fn ragged_shapes_are_padded_correctly() {
        // Dimensions that don't divide the tile sizes.
        for &(m, n, k) in &[
            (1usize, 1usize, 1usize),
            (17, 5, 33),
            (3, 50, 64),
            (40, 40, 40),
        ] {
            let a = pseudo(m * k, 1.0);
            let b = pseudo(k * n, 1.0);
            let got = amx_gemm_f32_inputs(&a, &b, m, n, k);
            let aq = Bf16::dequantize_slice(&Bf16::quantize_slice(&a));
            let bq = Bf16::dequantize_slice(&Bf16::quantize_slice(&b));
            let want = reference_gemm_f32(&aq, &bq, m, n, k);
            for (i, (g, w)) in got.c.iter().zip(&want).enumerate() {
                let rel = f64::from((g - w).abs()) / f64::from(w.abs()).max(1e-3);
                assert!(rel < tol(k), "({m},{n},{k}) elem {i}: {g} vs {w}");
            }
        }
    }

    #[test]
    fn packed_path_is_bit_identical_to_legacy() {
        for &(m, n, k) in &[
            (16usize, 16usize, 32usize),
            (1, 1, 1),
            (17, 5, 33),
            (33, 50, 64),
            (48, 48, 96),
        ] {
            let a = Bf16::quantize_slice(&pseudo(m * k, 3.0));
            let b = Bf16::quantize_slice(&pseudo(k * n, 3.0));
            let fast = amx_gemm_bf16(&a, &b, m, n, k);
            let legacy = amx_gemm_bf16_legacy(&a, &b, m, n, k);
            assert_bit_identical(&fast, &legacy);
        }
    }

    #[test]
    fn instruction_counts_match_tiling_arithmetic() {
        let (m, n, k) = (33, 17, 65);
        let res = amx_gemm_f32_inputs(&pseudo(m * k, 1.0), &pseudo(k * n, 1.0), m, n, k);
        let tm = m.div_ceil(TILE_M) as u64;
        let tn = n.div_ceil(TILE_N) as u64;
        let tk = k.div_ceil(TILE_K) as u64;
        let s = res.unit.stats();
        assert_eq!(s.tdpbf16ps, tm * tn * tk);
        assert_eq!(s.tileload, 2 * tm * tn * tk);
        assert_eq!(s.tilestore, tm * tn);
        assert_eq!(s.tilezero, tm * tn);
    }

    #[test]
    fn larger_k_improves_modeled_efficiency() {
        // More K reuse per accumulator block amortizes stores/config.
        let small = amx_gemm_f32_inputs(&pseudo(16 * 32, 1.0), &pseudo(32 * 16, 1.0), 16, 16, 32);
        let large =
            amx_gemm_f32_inputs(&pseudo(16 * 512, 1.0), &pseudo(512 * 16, 1.0), 16, 16, 512);
        assert!(large.unit.flops_per_cycle() > small.unit.flops_per_cycle());
    }

    #[test]
    fn reference_gemm_identity() {
        let n = 8;
        let mut eye = vec![0.0f32; n * n];
        for i in 0..n {
            eye[i * n + i] = 1.0;
        }
        let x = pseudo(n * n, 3.0);
        let y = reference_gemm_f32(&x, &eye, n, n, n);
        assert_eq!(x, y);
    }

    #[test]
    fn reference_gemm_accumulates_in_f64_order() {
        // The row-streaming loop must sum K terms in ascending order per
        // element, exactly like the seed i→j→l nest.
        let (m, n, k) = (3usize, 4usize, 7usize);
        let a = pseudo(m * k, 2.0);
        let b = pseudo(k * n, 2.0);
        let got = reference_gemm_f32(&a, &b, m, n, k);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f64;
                for l in 0..k {
                    acc += f64::from(a[i * k + l]) * f64::from(b[l * n + j]);
                }
                assert_eq!(got[i * n + j].to_bits(), (acc as f32).to_bits());
            }
        }
    }

    #[test]
    fn sum_stats_adds_elementwise() {
        let a = AmxStats {
            tdpbf16ps: 3,
            tileload: 6,
            ..AmxStats::default()
        };
        let b = AmxStats {
            tdpbf16ps: 2,
            tilestore: 1,
            ..AmxStats::default()
        };
        let s = sum_stats(&[a, b]);
        assert_eq!(s.tdpbf16ps, 5);
        assert_eq!(s.tileload, 6);
        assert_eq!(s.tilestore, 1);
    }
}
