//! Tiled BF16 GEMM built on the emulated AMX unit, plus a scalar reference.
//!
//! [`amx_gemm_bf16`] is the kernel structure a real AMX GEMM library (oneDNN,
//! IPEX) uses — 16×16×32 tile blocks with FP32 accumulation — executed
//! functionally through [`AmxUnit`], so both the numerics and the modeled
//! cycle counts fall out of the same code path.

use crate::amx::AmxUnit;
use crate::bf16::Bf16;
use crate::tile::TileConfig;

/// Tile block dimensions of the BF16 kernel.
pub const TILE_M: usize = 16;
/// Output-column block width.
pub const TILE_N: usize = 16;
/// Inner-dimension block depth (32 BF16 elements per tile row pair).
pub const TILE_K: usize = 32;

/// Scalar f64-accumulated reference GEMM: `C[m×n] = A[m×k] · B[k×n]`.
///
/// # Panics
///
/// Panics if slice lengths don't match the shape.
#[must_use]
pub fn reference_gemm_f32(a: &[f32], b: &[f32], m: usize, n: usize, k: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "A shape mismatch");
    assert_eq!(b.len(), k * n, "B shape mismatch");
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for l in 0..k {
                acc += f64::from(a[i * k + l]) * f64::from(b[l * n + j]);
            }
            c[i * n + j] = acc as f32;
        }
    }
    c
}

/// Result of an emulated AMX GEMM: output matrix plus the unit that ran it
/// (for cycle/instruction inspection).
#[derive(Debug, Clone)]
pub struct AmxGemmResult {
    /// Row-major `m×n` FP32 output.
    pub c: Vec<f32>,
    /// The AMX unit after execution (stats, cycles, FLOPs).
    pub unit: AmxUnit,
}

/// BF16 GEMM on the emulated AMX unit: pads the problem to
/// 16×16×32 tile blocks, loads A tiles and VNNI-packed B tiles, and
/// accumulates with `TDPBF16PS`.
///
/// Tile register allocation mirrors production kernels:
/// `tmm0` accumulator, `tmm1` A operand, `tmm2` B operand.
///
/// # Panics
///
/// Panics if slice lengths don't match the shape or any dimension is zero.
#[must_use]
pub fn amx_gemm_bf16(a: &[Bf16], b: &[Bf16], m: usize, n: usize, k: usize) -> AmxGemmResult {
    assert!(m > 0 && n > 0 && k > 0, "GEMM dims must be positive");
    assert_eq!(a.len(), m * k, "A shape mismatch");
    assert_eq!(b.len(), k * n, "B shape mismatch");

    let mp = m.next_multiple_of(TILE_M);
    let np = n.next_multiple_of(TILE_N);
    let kp = k.next_multiple_of(TILE_K);

    // Zero-padded operands (hardware kernels handle edges with masked
    // loads; padding is the simulator equivalent).
    let mut a_pad = vec![Bf16::ZERO; mp * kp];
    for i in 0..m {
        a_pad[i * kp..i * kp + k].copy_from_slice(&a[i * k..(i + 1) * k]);
    }
    let mut b_pad = vec![Bf16::ZERO; kp * np];
    for i in 0..k {
        b_pad[i * np..i * np + n].copy_from_slice(&b[i * n..(i + 1) * n]);
    }

    let mut unit = AmxUnit::new();
    unit.ldtilecfg(TileConfig::gemm_bf16());
    let mut c = vec![0.0f32; m * n];

    for bm in (0..mp).step_by(TILE_M) {
        for bn in (0..np).step_by(TILE_N) {
            unit.tilezero(0);
            for bk in (0..kp).step_by(TILE_K) {
                // A tile: rows bm..bm+16, bf16 cols bk..bk+32.
                let a_block: Vec<Bf16> = (0..TILE_M)
                    .flat_map(|r| {
                        let row = bm + r;
                        (0..TILE_K).map(move |cidx| (row, bk + cidx))
                    })
                    .map(|(r, cidx)| a_pad[r * kp + cidx])
                    .collect();
                unit.tileload_bf16(1, &a_block, TILE_K);
                // B block: rows bk..bk+32, cols bn..bn+16, VNNI-packed.
                let b_block: Vec<Bf16> = (0..TILE_K)
                    .flat_map(|r| {
                        let row = bk + r;
                        (0..TILE_N).map(move |cidx| (row, bn + cidx))
                    })
                    .map(|(r, cidx)| b_pad[r * np + cidx])
                    .collect();
                unit.tileload_b_vnni(2, &b_block, TILE_K, TILE_N);
                unit.tdpbf16ps(0, 1, 2);
            }
            let block = unit.tilestore_f32(0);
            for r in 0..TILE_M {
                let row = bm + r;
                if row >= m {
                    break;
                }
                for cidx in 0..TILE_N {
                    let col = bn + cidx;
                    if col < n {
                        c[row * n + col] = block[r * TILE_N + cidx];
                    }
                }
            }
        }
    }

    AmxGemmResult { c, unit }
}

/// Quantizes f32 inputs and runs [`amx_gemm_bf16`].
///
/// # Panics
///
/// Panics if slice lengths don't match the shape or any dimension is zero.
#[must_use]
pub fn amx_gemm_f32_inputs(a: &[f32], b: &[f32], m: usize, n: usize, k: usize) -> AmxGemmResult {
    let aq: Vec<Bf16> = a.iter().map(|&x| Bf16::from_f32(x)).collect();
    let bq: Vec<Bf16> = b.iter().map(|&x| Bf16::from_f32(x)).collect();
    amx_gemm_bf16(&aq, &bq, m, n, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(xs: usize, scale: f32) -> Vec<f32> {
        (0..xs)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                ((h >> 40) as f32 / (1u64 << 24) as f32 - 0.5) * scale
            })
            .collect()
    }

    /// Error tolerance for k-length bf16 dot products vs f32 reference.
    fn tol(k: usize) -> f64 {
        (k as f64).sqrt() * f64::from(crate::bf16::BF16_RELATIVE_EPS) * 4.0
    }

    #[test]
    fn exact_tile_sized_gemm_matches_reference() {
        let (m, n, k) = (16, 16, 32);
        let a = pseudo(m * k, 2.0);
        let b = pseudo(k * n, 2.0);
        let got = amx_gemm_f32_inputs(&a, &b, m, n, k);
        // Compare against the reference computed on the *quantized* inputs.
        let aq: Vec<f32> = a.iter().map(|&x| Bf16::from_f32(x).to_f32()).collect();
        let bq: Vec<f32> = b.iter().map(|&x| Bf16::from_f32(x).to_f32()).collect();
        let want = reference_gemm_f32(&aq, &bq, m, n, k);
        for (g, w) in got.c.iter().zip(&want) {
            assert!((g - w).abs() < 1e-3, "{g} vs {w}");
        }
    }

    #[test]
    fn ragged_shapes_are_padded_correctly() {
        // Dimensions that don't divide the tile sizes.
        for &(m, n, k) in &[
            (1usize, 1usize, 1usize),
            (17, 5, 33),
            (3, 50, 64),
            (40, 40, 40),
        ] {
            let a = pseudo(m * k, 1.0);
            let b = pseudo(k * n, 1.0);
            let got = amx_gemm_f32_inputs(&a, &b, m, n, k);
            let aq: Vec<f32> = a.iter().map(|&x| Bf16::from_f32(x).to_f32()).collect();
            let bq: Vec<f32> = b.iter().map(|&x| Bf16::from_f32(x).to_f32()).collect();
            let want = reference_gemm_f32(&aq, &bq, m, n, k);
            for (i, (g, w)) in got.c.iter().zip(&want).enumerate() {
                let rel = f64::from((g - w).abs()) / f64::from(w.abs()).max(1e-3);
                assert!(rel < tol(k), "({m},{n},{k}) elem {i}: {g} vs {w}");
            }
        }
    }

    #[test]
    fn instruction_counts_match_tiling_arithmetic() {
        let (m, n, k) = (33, 17, 65);
        let res = amx_gemm_f32_inputs(&pseudo(m * k, 1.0), &pseudo(k * n, 1.0), m, n, k);
        let tm = m.div_ceil(TILE_M) as u64;
        let tn = n.div_ceil(TILE_N) as u64;
        let tk = k.div_ceil(TILE_K) as u64;
        let s = res.unit.stats();
        assert_eq!(s.tdpbf16ps, tm * tn * tk);
        assert_eq!(s.tileload, 2 * tm * tn * tk);
        assert_eq!(s.tilestore, tm * tn);
        assert_eq!(s.tilezero, tm * tn);
    }

    #[test]
    fn larger_k_improves_modeled_efficiency() {
        // More K reuse per accumulator block amortizes stores/config.
        let small = amx_gemm_f32_inputs(&pseudo(16 * 32, 1.0), &pseudo(32 * 16, 1.0), 16, 16, 32);
        let large =
            amx_gemm_f32_inputs(&pseudo(16 * 512, 1.0), &pseudo(512 * 16, 1.0), 16, 16, 512);
        assert!(large.unit.flops_per_cycle() > small.unit.flops_per_cycle());
    }

    #[test]
    fn reference_gemm_identity() {
        let n = 8;
        let mut eye = vec![0.0f32; n * n];
        for i in 0..n {
            eye[i * n + i] = 1.0;
        }
        let x = pseudo(n * n, 3.0);
        let y = reference_gemm_f32(&x, &eye, n, n, n);
        assert_eq!(x, y);
    }
}
