//! AMX tile registers and tile configuration.
//!
//! Intel AMX defines eight 2-D tile registers (`tmm0`–`tmm7`), each holding
//! up to 16 rows × 64 bytes (1 KiB), plus a `TILECFG` state configured by
//! `LDTILECFG` that fixes each tile's active rows and bytes-per-row
//! (§II-D / Fig. 4 of the paper).

use std::fmt;

/// Hardware limits of one tile register.
pub const MAX_ROWS: usize = 16;
/// Maximum bytes per tile row.
pub const MAX_COLSB: usize = 64;
/// Number of tile registers.
pub const NUM_TILES: usize = 8;

/// Per-tile geometry from `TILECFG`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TileShape {
    /// Active rows (0..=16).
    pub rows: u8,
    /// Active bytes per row (0..=64).
    pub colsb: u8,
}

impl TileShape {
    /// Creates a shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape exceeds the 16×64-byte hardware limit.
    #[must_use]
    pub fn new(rows: u8, colsb: u8) -> Self {
        assert!(
            usize::from(rows) <= MAX_ROWS,
            "tile rows {rows} > {MAX_ROWS}"
        );
        assert!(
            usize::from(colsb) <= MAX_COLSB,
            "tile colsb {colsb} > {MAX_COLSB}"
        );
        TileShape { rows, colsb }
    }

    /// Active bytes in the tile.
    #[must_use]
    pub fn bytes(self) -> usize {
        usize::from(self.rows) * usize::from(self.colsb)
    }
}

/// The `TILECFG` palette: shapes for all eight tiles.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TileConfig {
    shapes: [TileShape; NUM_TILES],
}

impl TileConfig {
    /// An all-zero (empty) configuration.
    #[must_use]
    pub fn new() -> Self {
        TileConfig::default()
    }

    /// Sets the shape of tile `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 8`.
    pub fn set(&mut self, idx: usize, shape: TileShape) -> &mut Self {
        assert!(idx < NUM_TILES, "tile index {idx} out of range");
        self.shapes[idx] = shape;
        self
    }

    /// The shape of tile `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 8`.
    #[must_use]
    pub fn shape(&self, idx: usize) -> TileShape {
        assert!(idx < NUM_TILES, "tile index {idx} out of range");
        self.shapes[idx]
    }

    /// The standard GEMM configuration used by BF16 kernels: accumulators
    /// 16×64 B (16×16 FP32), A tiles 16×64 B (16×32 BF16), B tiles
    /// 16×64 B (VNNI-packed 16×16×2 BF16).
    #[must_use]
    pub fn gemm_bf16() -> Self {
        let mut cfg = TileConfig::new();
        let full = TileShape::new(16, 64);
        for i in 0..NUM_TILES {
            cfg.set(i, full);
        }
        cfg
    }
}

/// One tile register: raw byte storage plus its configured shape.
#[derive(Clone, PartialEq, Eq)]
pub struct Tile {
    shape: TileShape,
    data: [u8; MAX_ROWS * MAX_COLSB],
}

impl Tile {
    /// A zeroed tile with the given shape.
    #[must_use]
    pub fn zeroed(shape: TileShape) -> Self {
        Tile {
            shape,
            data: [0; MAX_ROWS * MAX_COLSB],
        }
    }

    /// The configured shape.
    #[must_use]
    pub fn shape(&self) -> TileShape {
        self.shape
    }

    /// Zeroes the tile contents (`TILEZERO`).
    pub fn zero(&mut self) {
        self.data = [0; MAX_ROWS * MAX_COLSB];
    }

    /// Reads row `r` as bytes (active columns only).
    ///
    /// # Panics
    ///
    /// Panics if `r` is outside the active rows.
    #[must_use]
    pub fn row(&self, r: usize) -> &[u8] {
        assert!(
            r < usize::from(self.shape.rows),
            "row {r} outside active rows"
        );
        let start = r * MAX_COLSB;
        &self.data[start..start + usize::from(self.shape.colsb)]
    }

    /// Writes row `r` from bytes.
    ///
    /// # Panics
    ///
    /// Panics if `r` is outside the active rows or `bytes` is not exactly
    /// one active row wide.
    pub fn set_row(&mut self, r: usize, bytes: &[u8]) {
        assert!(
            r < usize::from(self.shape.rows),
            "row {r} outside active rows"
        );
        assert_eq!(
            bytes.len(),
            usize::from(self.shape.colsb),
            "row width mismatch"
        );
        let start = r * MAX_COLSB;
        self.data[start..start + bytes.len()].copy_from_slice(bytes);
    }

    /// Decodes row `r` as BF16 into a full 32-element register row. Active
    /// columns (`colsb / 2`) carry row data; the tail is zero.
    ///
    /// This is the kernel fast path: one bounds check per row instead of one
    /// per element, and the fixed-width decode loop vectorizes. The crate
    /// forbids `unsafe`, so rows are decoded by value rather than
    /// reinterpreted in place; a 64-byte row copy is free next to the
    /// arithmetic it feeds.
    ///
    /// # Panics
    ///
    /// Panics if `r` is outside the active rows.
    #[must_use]
    pub fn row_bf16(&self, r: usize) -> [crate::bf16::Bf16; MAX_COLSB / 2] {
        let row = self.row(r);
        let mut out = [crate::bf16::Bf16::ZERO; MAX_COLSB / 2];
        for (slot, pair) in out.iter_mut().zip(row.chunks_exact(2)) {
            *slot = crate::bf16::Bf16::from_bits(u16::from_le_bytes([pair[0], pair[1]]));
        }
        out
    }

    /// Decodes row `r` as FP32 into a full 16-element register row (active
    /// columns are `colsb / 4`; the tail is zero).
    ///
    /// # Panics
    ///
    /// Panics if `r` is outside the active rows.
    #[must_use]
    pub fn row_f32(&self, r: usize) -> [f32; MAX_COLSB / 4] {
        let row = self.row(r);
        let mut out = [0.0f32; MAX_COLSB / 4];
        for (slot, quad) in out.iter_mut().zip(row.chunks_exact(4)) {
            *slot = f32::from_le_bytes([quad[0], quad[1], quad[2], quad[3]]);
        }
        out
    }

    /// Encodes the active FP32 columns (`colsb / 4`) of row `r` from a full
    /// register row; the inactive tail of `vals` is ignored.
    ///
    /// # Panics
    ///
    /// Panics if `r` is outside the active rows.
    pub fn set_row_f32(&mut self, r: usize, vals: &[f32; MAX_COLSB / 4]) {
        assert!(
            r < usize::from(self.shape.rows),
            "row {r} outside active rows"
        );
        let cols = usize::from(self.shape.colsb) / 4;
        let start = r * MAX_COLSB;
        for (c, &v) in vals[..cols].iter().enumerate() {
            let at = start + c * 4;
            self.data[at..at + 4].copy_from_slice(&v.to_le_bytes());
        }
    }

    /// Decodes row `r` as i8 into a full 64-element register row (active
    /// columns are `colsb`; the tail is zero).
    ///
    /// # Panics
    ///
    /// Panics if `r` is outside the active rows.
    #[must_use]
    pub fn row_i8(&self, r: usize) -> [i8; MAX_COLSB] {
        let row = self.row(r);
        let mut out = [0i8; MAX_COLSB];
        for (slot, &b) in out.iter_mut().zip(row.iter()) {
            *slot = b as i8;
        }
        out
    }

    /// Decodes row `r` as i32 into a full 16-element register row (active
    /// columns are `colsb / 4`; the tail is zero).
    ///
    /// # Panics
    ///
    /// Panics if `r` is outside the active rows.
    #[must_use]
    pub fn row_i32(&self, r: usize) -> [i32; MAX_COLSB / 4] {
        let row = self.row(r);
        let mut out = [0i32; MAX_COLSB / 4];
        for (slot, quad) in out.iter_mut().zip(row.chunks_exact(4)) {
            *slot = i32::from_le_bytes([quad[0], quad[1], quad[2], quad[3]]);
        }
        out
    }

    /// Encodes the active i32 columns (`colsb / 4`) of row `r` from a full
    /// register row; the inactive tail of `vals` is ignored.
    ///
    /// # Panics
    ///
    /// Panics if `r` is outside the active rows.
    pub fn set_row_i32(&mut self, r: usize, vals: &[i32; MAX_COLSB / 4]) {
        assert!(
            r < usize::from(self.shape.rows),
            "row {r} outside active rows"
        );
        let cols = usize::from(self.shape.colsb) / 4;
        let start = r * MAX_COLSB;
        for (c, &v) in vals[..cols].iter().enumerate() {
            let at = start + c * 4;
            self.data[at..at + 4].copy_from_slice(&v.to_le_bytes());
        }
    }

    /// Encodes the active BF16 columns (`colsb / 2`) of row `r` from a
    /// BF16 slice in one pass.
    ///
    /// # Panics
    ///
    /// Panics if `r` is outside the active rows or `vals` is narrower than
    /// the active row.
    pub fn set_row_bf16(&mut self, r: usize, vals: &[crate::bf16::Bf16]) {
        assert!(
            r < usize::from(self.shape.rows),
            "row {r} outside active rows"
        );
        let cols = usize::from(self.shape.colsb) / 2;
        assert!(vals.len() >= cols, "row narrower than active columns");
        let start = r * MAX_COLSB;
        for (c, &v) in vals[..cols].iter().enumerate() {
            let at = start + c * 2;
            self.data[at..at + 2].copy_from_slice(&v.to_bits().to_le_bytes());
        }
    }

    /// Copies the full contents of `src` into this tile (a register-to-
    /// register move of a pre-packed 1 KiB tile image).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn copy_from(&mut self, src: &Tile) {
        assert_eq!(self.shape, src.shape, "tile shape mismatch in copy");
        self.data = src.data;
    }

    /// Interprets element `(r, c)` as BF16 (2-byte elements).
    ///
    /// # Panics
    ///
    /// Panics if the coordinates fall outside the active region.
    #[must_use]
    pub fn bf16_at(&self, r: usize, c: usize) -> crate::bf16::Bf16 {
        let colsb = usize::from(self.shape.colsb);
        assert!(
            c * 2 + 1 < colsb,
            "bf16 column {c} outside active row of {colsb} bytes"
        );
        let row = self.row(r);
        crate::bf16::Bf16::from_bits(u16::from_le_bytes([row[c * 2], row[c * 2 + 1]]))
    }

    /// Writes element `(r, c)` as BF16.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates fall outside the active region.
    pub fn set_bf16(&mut self, r: usize, c: usize, v: crate::bf16::Bf16) {
        let colsb = usize::from(self.shape.colsb);
        assert!(
            c * 2 + 1 < colsb,
            "bf16 column {c} outside active row of {colsb} bytes"
        );
        assert!(
            r < usize::from(self.shape.rows),
            "row {r} outside active rows"
        );
        let start = r * MAX_COLSB + c * 2;
        self.data[start..start + 2].copy_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Interprets element `(r, c)` as FP32 (4-byte elements; accumulators).
    ///
    /// # Panics
    ///
    /// Panics if the coordinates fall outside the active region.
    #[must_use]
    pub fn f32_at(&self, r: usize, c: usize) -> f32 {
        let colsb = usize::from(self.shape.colsb);
        assert!(
            c * 4 + 3 < colsb,
            "f32 column {c} outside active row of {colsb} bytes"
        );
        let row = self.row(r);
        f32::from_le_bytes([row[c * 4], row[c * 4 + 1], row[c * 4 + 2], row[c * 4 + 3]])
    }

    /// Writes element `(r, c)` as FP32.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates fall outside the active region.
    pub fn set_f32(&mut self, r: usize, c: usize, v: f32) {
        let colsb = usize::from(self.shape.colsb);
        assert!(
            c * 4 + 3 < colsb,
            "f32 column {c} outside active row of {colsb} bytes"
        );
        assert!(
            r < usize::from(self.shape.rows),
            "row {r} outside active rows"
        );
        let start = r * MAX_COLSB + c * 4;
        self.data[start..start + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Interprets element `(r, c)` as i8.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates fall outside the active region.
    #[must_use]
    pub fn i8_at(&self, r: usize, c: usize) -> i8 {
        let colsb = usize::from(self.shape.colsb);
        assert!(c < colsb, "i8 column {c} outside active row");
        self.row(r)[c] as i8
    }

    /// Writes element `(r, c)` as i8.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates fall outside the active region.
    pub fn set_i8(&mut self, r: usize, c: usize, v: i8) {
        let colsb = usize::from(self.shape.colsb);
        assert!(c < colsb, "i8 column {c} outside active row");
        assert!(
            r < usize::from(self.shape.rows),
            "row {r} outside active rows"
        );
        self.data[r * MAX_COLSB + c] = v as u8;
    }

    /// Interprets element `(r, c)` as i32 (INT8 accumulators).
    ///
    /// # Panics
    ///
    /// Panics if the coordinates fall outside the active region.
    #[must_use]
    pub fn i32_at(&self, r: usize, c: usize) -> i32 {
        let colsb = usize::from(self.shape.colsb);
        assert!(c * 4 + 3 < colsb, "i32 column {c} outside active row");
        let row = self.row(r);
        i32::from_le_bytes([row[c * 4], row[c * 4 + 1], row[c * 4 + 2], row[c * 4 + 3]])
    }

    /// Writes element `(r, c)` as i32.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates fall outside the active region.
    pub fn set_i32(&mut self, r: usize, c: usize, v: i32) {
        let colsb = usize::from(self.shape.colsb);
        assert!(c * 4 + 3 < colsb, "i32 column {c} outside active row");
        assert!(
            r < usize::from(self.shape.rows),
            "row {r} outside active rows"
        );
        let start = r * MAX_COLSB + c * 4;
        self.data[start..start + 4].copy_from_slice(&v.to_le_bytes());
    }
}

impl fmt::Debug for Tile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tile({}x{}B)", self.shape.rows, self.shape.colsb)
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact float assertions are deliberate: determinism is bit-level
mod tests {
    use super::*;
    use crate::bf16::Bf16;

    #[test]
    fn tile_capacity_is_1kib() {
        let t = Tile::zeroed(TileShape::new(16, 64));
        assert_eq!(t.shape().bytes(), 1024);
    }

    #[test]
    fn bf16_tile_holds_32_elements_per_row() {
        // §II-D: each tile stores 32 BF16 elements (per 64 B row).
        let mut t = Tile::zeroed(TileShape::new(16, 64));
        for c in 0..32 {
            t.set_bf16(0, c, Bf16::from_f32(c as f32));
        }
        for c in 0..32 {
            assert_eq!(t.bf16_at(0, c).to_f32(), c as f32);
        }
    }

    #[test]
    fn int8_tile_holds_64_elements_per_row() {
        // §II-D: 64 INT8 elements per 64 B row.
        let mut t = Tile::zeroed(TileShape::new(16, 64));
        for c in 0..64 {
            t.set_i8(3, c, (c as i8) - 32);
        }
        for c in 0..64 {
            assert_eq!(t.i8_at(3, c), (c as i8) - 32);
        }
    }

    #[test]
    fn f32_elements_round_trip() {
        let mut t = Tile::zeroed(TileShape::new(16, 64));
        t.set_f32(7, 15, -3.75);
        assert_eq!(t.f32_at(7, 15), -3.75);
        t.set_i32(2, 0, -123456);
        assert_eq!(t.i32_at(2, 0), -123456);
    }

    #[test]
    #[should_panic(expected = "outside active rows")]
    fn row_out_of_shape_panics() {
        let t = Tile::zeroed(TileShape::new(8, 64));
        let _ = t.row(8);
    }

    #[test]
    #[should_panic(expected = "tile rows")]
    fn oversized_shape_panics() {
        let _ = TileShape::new(17, 64);
    }

    #[test]
    fn config_palette() {
        let cfg = TileConfig::gemm_bf16();
        for i in 0..NUM_TILES {
            assert_eq!(cfg.shape(i), TileShape::new(16, 64));
        }
        let mut cfg2 = TileConfig::new();
        cfg2.set(3, TileShape::new(4, 32));
        assert_eq!(cfg2.shape(3), TileShape::new(4, 32));
        assert_eq!(cfg2.shape(0), TileShape::default());
    }

    #[test]
    fn row_views_match_element_accessors() {
        let mut t = Tile::zeroed(TileShape::new(16, 64));
        for c in 0..32 {
            t.set_bf16(2, c, Bf16::from_f32(c as f32 - 15.5));
        }
        let row = t.row_bf16(2);
        for (c, v) in row.iter().enumerate().take(32) {
            assert_eq!(v.to_bits(), t.bf16_at(2, c).to_bits());
        }
        for c in 0..16 {
            t.set_f32(5, c, c as f32 * -1.25);
            t.set_i32(6, c, c as i32 - 8);
        }
        assert_eq!(
            t.row_f32(5)[..16],
            (0..16).map(|c| c as f32 * -1.25).collect::<Vec<_>>()[..]
        );
        assert_eq!(
            t.row_i32(6)[..16],
            (0..16i32).map(|c| c - 8).collect::<Vec<_>>()[..]
        );
        for c in 0..64 {
            t.set_i8(7, c, (c as i8).wrapping_mul(3));
        }
        let r8 = t.row_i8(7);
        for (c, v) in r8.iter().enumerate().take(64) {
            assert_eq!(*v, t.i8_at(7, c));
        }
    }

    #[test]
    fn row_writers_round_trip() {
        let mut t = Tile::zeroed(TileShape::new(16, 64));
        let mut f = [0.0f32; 16];
        let mut i = [0i32; 16];
        for c in 0..16 {
            f[c] = 0.5 * c as f32;
            i[c] = -(c as i32);
        }
        t.set_row_f32(3, &f);
        t.set_row_i32(4, &i);
        assert_eq!(t.row_f32(3), f);
        assert_eq!(t.row_i32(4), i);
        let bf: Vec<Bf16> = (0..32).map(|c| Bf16::from_f32(c as f32)).collect();
        t.set_row_bf16(9, &bf);
        assert_eq!(t.row_bf16(9)[..32], bf[..]);
    }

    #[test]
    fn partial_shape_rows_decode_active_region_only() {
        let mut t = Tile::zeroed(TileShape::new(4, 32));
        for c in 0..16 {
            t.set_bf16(1, c, Bf16::ONE);
        }
        let row = t.row_bf16(1);
        assert!(row[..16].iter().all(|v| v.to_bits() == Bf16::ONE.to_bits()));
        assert!(row[16..].iter().all(|v| v.to_bits() == 0));
    }

    #[test]
    fn copy_from_moves_whole_tile() {
        let mut a = Tile::zeroed(TileShape::new(16, 64));
        a.set_f32(8, 8, 42.0);
        let mut b = Tile::zeroed(TileShape::new(16, 64));
        b.copy_from(&a);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn copy_from_rejects_shape_mismatch() {
        let a = Tile::zeroed(TileShape::new(8, 64));
        let mut b = Tile::zeroed(TileShape::new(16, 64));
        b.copy_from(&a);
    }

    #[test]
    fn zero_clears_contents() {
        let mut t = Tile::zeroed(TileShape::new(16, 64));
        t.set_f32(0, 0, 9.0);
        t.zero();
        assert_eq!(t.f32_at(0, 0), 0.0);
    }
}
