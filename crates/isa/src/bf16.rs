//! Software BF16 (brain floating point) arithmetic.
//!
//! AMX and AVX-512 BF16 instructions operate on 16-bit brain floats and
//! accumulate in FP32. This module implements the format in software with
//! the same rounding (round-to-nearest-even on conversion from FP32) so the
//! emulated kernels are numerically faithful.

use std::fmt;

/// A 16-bit brain floating point number (1 sign, 8 exponent, 7 mantissa).
///
/// # Examples
///
/// ```
/// use llmsim_isa::bf16::Bf16;
///
/// let x = Bf16::from_f32(1.5);
/// assert_eq!(x.to_f32(), 1.5);
/// // BF16 keeps FP32's range but only 8 bits of precision:
/// let y = Bf16::from_f32(1.0 + 1.0 / 512.0);
/// assert_eq!(y.to_f32(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Bf16(u16);

impl Bf16 {
    /// Positive zero.
    pub const ZERO: Bf16 = Bf16(0);
    /// One.
    pub const ONE: Bf16 = Bf16(0x3F80);

    /// Creates a BF16 from its raw bit pattern.
    #[must_use]
    pub const fn from_bits(bits: u16) -> Self {
        Bf16(bits)
    }

    /// The raw bit pattern.
    #[must_use]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts from FP32 with round-to-nearest-even (the hardware behaviour
    /// of `VCVTNEPS2BF16` and the AMX load path).
    #[must_use]
    pub fn from_f32(x: f32) -> Self {
        let bits = x.to_bits();
        if x.is_nan() {
            // Preserve sign, force a quiet NaN.
            return Bf16(((bits >> 16) as u16) | 0x0040);
        }
        let rounding_bias = 0x7FFF + ((bits >> 16) & 1);
        Bf16(((bits.wrapping_add(rounding_bias)) >> 16) as u16)
    }

    /// Converts to FP32 exactly (every BF16 value is representable).
    #[must_use]
    pub fn to_f32(self) -> f32 {
        f32::from_bits(u32::from(self.0) << 16)
    }

    /// Whether the value is NaN.
    #[must_use]
    pub fn is_nan(self) -> bool {
        self.to_f32().is_nan()
    }

    /// Fused multiply-add in FP32 precision: `acc + self * rhs`, matching
    /// the TMUL datapath (BF16 products accumulate into FP32 without
    /// intermediate rounding to BF16).
    #[must_use]
    pub fn mul_add_f32(self, rhs: Bf16, acc: f32) -> f32 {
        self.to_f32().mul_add(rhs.to_f32(), acc)
    }

    /// Quantizes an `f32` slice to BF16 in a single pre-sized pass — the
    /// conversion entry point every kernel and test should use instead of
    /// ad-hoc `map(...).collect()` chains.
    #[must_use]
    pub fn quantize_slice(xs: &[f32]) -> Vec<Bf16> {
        let mut out = Vec::with_capacity(xs.len());
        out.extend(xs.iter().map(|&x| Bf16::from_f32(x)));
        out
    }

    /// Converts a BF16 slice back to `f32` in a single pre-sized pass.
    #[must_use]
    pub fn dequantize_slice(xs: &[Bf16]) -> Vec<f32> {
        let mut out = Vec::with_capacity(xs.len());
        out.extend(xs.iter().map(|x| x.to_f32()));
        out
    }
}

impl From<f32> for Bf16 {
    fn from(x: f32) -> Self {
        Bf16::from_f32(x)
    }
}

impl From<Bf16> for f32 {
    fn from(x: Bf16) -> f32 {
        x.to_f32()
    }
}

impl fmt::Display for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

/// Converts an `f32` slice to BF16 (alias of [`Bf16::quantize_slice`]).
#[must_use]
pub fn quantize_slice(xs: &[f32]) -> Vec<Bf16> {
    Bf16::quantize_slice(xs)
}

/// Converts a BF16 slice back to `f32` (alias of [`Bf16::dequantize_slice`]).
#[must_use]
pub fn dequantize_slice(xs: &[Bf16]) -> Vec<f32> {
    Bf16::dequantize_slice(xs)
}

/// Upper bound on the relative error introduced by one f32→bf16 rounding
/// (half ULP of a 7-bit mantissa).
pub const BF16_RELATIVE_EPS: f32 = 1.0 / 256.0;

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact float assertions are deliberate: determinism is bit-level
mod tests {
    use super::*;

    #[test]
    fn exact_small_integers_round_trip() {
        for i in -256..=256 {
            let x = i as f32;
            assert_eq!(Bf16::from_f32(x).to_f32(), x, "{x}");
        }
    }

    #[test]
    fn powers_of_two_are_exact() {
        for e in -120..120 {
            let x = (2.0f32).powi(e);
            assert_eq!(Bf16::from_f32(x).to_f32(), x);
        }
    }

    #[test]
    fn round_to_nearest_even() {
        // 1.0 + 2^-8 is exactly halfway between bf16(1.0) and the next
        // representable value; ties go to even (1.0).
        let halfway = f32::from_bits(0x3F80_8000);
        assert_eq!(Bf16::from_f32(halfway).to_f32(), 1.0);
        // Just above halfway rounds up.
        let above = f32::from_bits(0x3F80_8001);
        assert_eq!(Bf16::from_f32(above).to_bits(), 0x3F81);
    }

    #[test]
    fn nan_is_preserved_and_quiet() {
        let q = Bf16::from_f32(f32::NAN);
        assert!(q.is_nan());
    }

    #[test]
    fn infinities_survive() {
        assert_eq!(Bf16::from_f32(f32::INFINITY).to_f32(), f32::INFINITY);
        assert_eq!(
            Bf16::from_f32(f32::NEG_INFINITY).to_f32(),
            f32::NEG_INFINITY
        );
    }

    #[test]
    fn relative_error_bound_holds_on_grid() {
        let mut x = 1.0e-30f32;
        while x < 1.0e30 {
            let rt = Bf16::from_f32(x).to_f32();
            let rel = ((rt - x) / x).abs();
            assert!(rel <= BF16_RELATIVE_EPS, "x={x} rel={rel}");
            x *= 1.7;
        }
    }

    #[test]
    fn fma_accumulates_in_f32() {
        // 256 * (1/256) accumulated 1000 times: bf16 accumulation would lose
        // increments; f32 accumulation keeps them.
        let a = Bf16::from_f32(1.0);
        let b = Bf16::from_f32(1.0 / 256.0);
        let mut acc = 256.0f32;
        for _ in 0..1000 {
            acc = a.mul_add_f32(b, acc);
        }
        assert!((acc - (256.0 + 1000.0 / 256.0)).abs() < 1e-3);
    }

    #[test]
    fn slice_round_trip() {
        let xs = [0.0, -1.0, 3.25, 1e10, -7.5e-5];
        let there = quantize_slice(&xs);
        let back = dequantize_slice(&there);
        for (a, b) in xs.iter().zip(&back) {
            assert!(((a - b) / a.abs().max(1e-30)).abs() <= BF16_RELATIVE_EPS);
        }
    }
}
