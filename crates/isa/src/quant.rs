//! INT8 quantization for AMX `TDPBSSD` kernels.
//!
//! The paper notes (§II-D) that TMUL natively supports INT8, and cites
//! weight-only quantization (Shen et al., "Efficient LLM inference on
//! CPUs") as the enabler for efficient CPU inference. This module provides
//! symmetric per-row quantization and an INT8 GEMM on the emulated AMX unit.

use crate::amx::AmxUnit;
use crate::tile::TileConfig;

/// A symmetric (zero-point-free) quantized matrix: row-major `i8` values
/// plus one scale per row.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrix {
    /// Row-major quantized values.
    pub data: Vec<i8>,
    /// One dequantization scale per row (`real = q × scale`).
    pub scales: Vec<f32>,
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
}

impl QuantizedMatrix {
    /// Quantizes a row-major `f32` matrix with per-row symmetric scaling to
    /// the full `[-127, 127]` range.
    ///
    /// # Panics
    ///
    /// Panics if `src.len() != rows * cols` or any value is not finite.
    #[must_use]
    pub fn quantize(src: &[f32], rows: usize, cols: usize) -> Self {
        assert_eq!(src.len(), rows * cols, "shape mismatch");
        let mut data = vec![0i8; rows * cols];
        let mut scales = vec![0.0f32; rows];
        for r in 0..rows {
            let row = &src[r * cols..(r + 1) * cols];
            // lint:ordered: max is commutative and associative — the fold is order-insensitive
            let absmax = row.iter().fold(0.0f32, |m, &x| {
                assert!(x.is_finite(), "cannot quantize non-finite value {x}");
                m.max(x.abs())
            });
            let scale = if absmax == 0.0 { 1.0 } else { absmax / 127.0 };
            scales[r] = scale;
            for (c, &x) in row.iter().enumerate() {
                data[r * cols + c] = (x / scale).round().clamp(-127.0, 127.0) as i8;
            }
        }
        QuantizedMatrix {
            data,
            scales,
            rows,
            cols,
        }
    }

    /// Dequantizes back to `f32`.
    #[must_use]
    pub fn dequantize(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.rows * self.cols];
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[r * self.cols + c] = f32::from(self.data[r * self.cols + c]) * self.scales[r];
            }
        }
        out
    }

    /// Worst-case relative quantization error of symmetric INT8
    /// (half a quantization step at full scale).
    pub const RELATIVE_EPS: f32 = 0.5 / 127.0;
}

/// INT8 GEMM `C[m×n] = A[m×k] · B[k×n]` on the emulated AMX unit via
/// `TDPBSSD`, with per-row (A) × per-column-group (B, transposed per-row)
/// rescaling of the i32 accumulators back to `f32`.
///
/// `b` must be quantized over the *transposed* operand (per-output-column
/// scales), i.e. `b.rows == n`, `b.cols == k`.
///
/// # Panics
///
/// Panics if shapes disagree.
#[must_use]
pub fn amx_gemm_int8(a: &QuantizedMatrix, b_t: &QuantizedMatrix) -> (Vec<f32>, AmxUnit) {
    let (m, k) = (a.rows, a.cols);
    let (n, kb) = (b_t.rows, b_t.cols);
    assert_eq!(k, kb, "inner dimensions disagree: {k} vs {kb}");

    const TM: usize = 16;
    const TN: usize = 16;
    const TK: usize = 64;
    let mp = m.next_multiple_of(TM);
    let np = n.next_multiple_of(TN);
    let kp = k.next_multiple_of(TK);

    let mut a_pad = vec![0i8; mp * kp];
    for r in 0..m {
        a_pad[r * kp..r * kp + k].copy_from_slice(&a.data[r * k..(r + 1) * k]);
    }
    // Un-transpose B into k-major padded layout.
    let mut b_pad = vec![0i8; kp * np];
    for col in 0..n {
        for kk in 0..k {
            b_pad[kk * np + col] = b_t.data[col * k + kk];
        }
    }

    let mut unit = AmxUnit::new();
    unit.ldtilecfg(TileConfig::gemm_bf16()); // same 16×64 B geometry
    let mut c = vec![0.0f32; m * n];

    for bm in (0..mp).step_by(TM) {
        for bn in (0..np).step_by(TN) {
            // Accumulate this block in software i32 (the unit's tile 0 holds
            // i32 accumulators; we drain per K-block to keep the kernel
            // simple and exact).
            unit.tilezero(0);
            let mut acc = vec![0i32; TM * TN];
            for bk in (0..kp).step_by(TK) {
                // Load operands through the tile file: A 16×64 i8, B VNNI.
                // (Functional path: compute directly with the TDPBSSD
                // semantics on extracted blocks to avoid a second VNNI
                // packing helper; cycle accounting mirrors the BF16 kernel.)
                unit.tilezero(3);
                for r in 0..TM {
                    for nn in 0..TN {
                        let mut dot = 0i32;
                        for kk in 0..TK {
                            let av = i32::from(a_pad[(bm + r) * kp + bk + kk]);
                            let bv = i32::from(b_pad[(bk + kk) * np + bn + nn]);
                            dot = dot.wrapping_add(av.wrapping_mul(bv));
                        }
                        acc[r * TN + nn] = acc[r * TN + nn].wrapping_add(dot);
                    }
                }
                // Charge one TDPBSSD + two loads for the block, matching
                // the BF16 kernel's instruction stream.
                unit.charge_tdp_int8();
            }
            for r in 0..TM {
                let row = bm + r;
                if row >= m {
                    break;
                }
                for nn in 0..TN {
                    let col = bn + nn;
                    if col < n {
                        c[row * n + col] =
                            acc[r * TN + nn] as f32 * a.scales[row] * b_t.scales[col];
                    }
                }
            }
        }
    }
    (c, unit)
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact float assertions are deliberate: determinism is bit-level
mod tests {
    use super::*;
    use crate::gemm::reference_gemm_f32;

    fn pseudo(n: usize, scale: f32) -> Vec<f32> {
        (0..n)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                ((h >> 40) as f32 / (1u64 << 24) as f32 - 0.5) * scale
            })
            .collect()
    }

    #[test]
    fn quantize_round_trips_within_eps() {
        let src = pseudo(64 * 48, 4.0);
        let q = QuantizedMatrix::quantize(&src, 64, 48);
        let back = q.dequantize();
        for (a, b) in src.iter().zip(&back) {
            // Per-row scaling: error bounded by half a step of the row max.
            let row_max = 4.0;
            assert!(
                (a - b).abs() <= row_max * QuantizedMatrix::RELATIVE_EPS * 1.01,
                "{a} vs {b}"
            );
        }
    }

    #[test]
    fn zero_row_quantizes_cleanly() {
        let q = QuantizedMatrix::quantize(&[0.0; 8], 2, 4);
        assert!(q.data.iter().all(|&v| v == 0));
        assert_eq!(q.dequantize(), vec![0.0; 8]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_rejected() {
        let _ = QuantizedMatrix::quantize(&[f32::NAN], 1, 1);
    }

    #[test]
    fn int8_gemm_tracks_reference() {
        let (m, n, k) = (20usize, 24, 70);
        let a_f = pseudo(m * k, 2.0);
        // B stored transposed (n × k) for per-column scales.
        let b_t_f = pseudo(n * k, 2.0);
        let a = QuantizedMatrix::quantize(&a_f, m, k);
        let b_t = QuantizedMatrix::quantize(&b_t_f, n, k);
        let (c, unit) = amx_gemm_int8(&a, &b_t);
        // Reference on the dequantized operands.
        let a_q = a.dequantize();
        let bt_q = b_t.dequantize();
        let mut b_q = vec![0.0f32; k * n];
        for col in 0..n {
            for kk in 0..k {
                b_q[kk * n + col] = bt_q[col * k + kk];
            }
        }
        let want = reference_gemm_f32(&a_q, &b_q, m, n, k);
        for (i, (g, w)) in c.iter().zip(&want).enumerate() {
            assert!(
                (g - w).abs() < 1e-2 * w.abs().max(1.0),
                "elem {i}: {g} vs {w}"
            );
        }
        assert!(unit.stats().tdpbssd > 0);
    }

    #[test]
    fn int8_doubles_flops_per_tdp_vs_bf16() {
        // One full-tile TDPBSSD covers K=64 vs BF16's K=32: 2x the MACs.
        let a = QuantizedMatrix::quantize(&pseudo(16 * 64, 1.0), 16, 64);
        let b_t = QuantizedMatrix::quantize(&pseudo(16 * 64, 1.0), 16, 64);
        let (_, unit) = amx_gemm_int8(&a, &b_t);
        assert_eq!(unit.stats().tdpbssd, 1);
        assert_eq!(unit.flops(), 2.0 * 16.0 * 16.0 * 64.0);
    }
}
