//! TMUL instruction semantics: `TDPBF16PS` (BF16) and `TDPBSSD` (INT8).
//!
//! Implementations follow the Intel ISA Extensions Programming Reference
//! pseudo-code. Both instructions consume VNNI-packed operands: the B tile
//! stores consecutive K-elements of one output column adjacent in memory
//! (pairs for BF16, quads for INT8).

use crate::tile::Tile;

/// Validates the `TDPBF16PS` shape contract shared by the fast and scalar
/// paths; returns `(m_rows, n_cols, k_pairs)`.
fn bf16_shape_check(dst: &Tile, a: &Tile, b: &Tile) -> (usize, usize, usize) {
    let m_rows = usize::from(dst.shape().rows);
    let n_cols = usize::from(dst.shape().colsb) / 4;
    let k_pairs = usize::from(a.shape().colsb) / 4; // pairs of bf16 per A row
    assert_eq!(
        usize::from(a.shape().rows),
        m_rows,
        "A rows must match accumulator rows"
    );
    assert_eq!(
        usize::from(b.shape().rows),
        k_pairs,
        "B rows must equal A's K-pair count"
    );
    assert_eq!(
        usize::from(b.shape().colsb),
        usize::from(dst.shape().colsb),
        "B row bytes must match accumulator row bytes"
    );
    (m_rows, n_cols, k_pairs)
}

/// `TDPBF16PS dst, a, b` — dot-product of BF16 pairs, accumulating FP32.
///
/// For every output element `(m, n)`:
/// `dst[m][n] += Σ_k a[m][2k]·b[k][2n] + a[m][2k+1]·b[k][2n+1]`
///
/// Shapes: `dst` is `M×N` FP32 (`colsb = 4N`), `a` is `M×2K` BF16
/// (`colsb = 4K`... i.e. `2K` two-byte elements), `b` is `K×2N` BF16 in
/// VNNI layout.
///
/// The loop nest runs over decoded register rows ([`Tile::row_bf16`] /
/// [`Tile::row_f32`]) rather than per-element byte accessors; each output
/// element still sees the exact same FP32 operation sequence as
/// [`tdpbf16ps_scalar`] (K ascending, even pair member first), so results
/// are bit-identical.
///
/// # Panics
///
/// Panics if the tile shapes are inconsistent
/// (`dst.rows != a.rows`, `a.colsb != 4·b.rows`, or `b.colsb != dst.colsb`).
pub fn tdpbf16ps(dst: &mut Tile, a: &Tile, b: &Tile) {
    let (m_rows, n_cols, k_pairs) = bf16_shape_check(dst, a, b);

    // Decode all B rows once (instead of once per (m, n, k) element triple)
    // and widen to FP32 up front — BF16→FP32 is exact, so hoisting the
    // conversions out of the accumulation loop cannot change any result
    // bit. The even/odd pair members are split into separate planes so the
    // lane loop below is a pure FP32 multiply-add over contiguous arrays
    // (the compiler can vectorize it; the element-wise FMA order per output
    // is untouched).
    let mut b_even = [[0.0f32; 16]; 16];
    let mut b_odd = [[0.0f32; 16]; 16];
    for k in 0..k_pairs {
        let row = b.row_bf16(k);
        for n in 0..16 {
            b_even[k][n] = row[2 * n].to_f32();
            b_odd[k][n] = row[2 * n + 1].to_f32();
        }
    }

    for m in 0..m_rows {
        let a_row = a.row_bf16(m);
        let mut a_f = [0.0f32; 32];
        for (d, s) in a_f.iter_mut().zip(a_row.iter()) {
            *d = s.to_f32();
        }
        let mut acc = dst.row_f32(m);
        for k in 0..k_pairs {
            let a0 = a_f[2 * k];
            let a1 = a_f[2 * k + 1];
            let be = &b_even[k][..n_cols];
            let bo = &b_odd[k][..n_cols];
            // Per output element the accumulation order matches the scalar
            // path: k ascending, a0·b0 before a1·b1.
            for (slot, (&e, &o)) in acc[..n_cols].iter_mut().zip(be.iter().zip(bo)) {
                let x = a0.mul_add(e, *slot);
                *slot = a1.mul_add(o, x);
            }
        }
        dst.set_row_f32(m, &acc);
    }
}

/// The seed per-element implementation of `TDPBF16PS`, kept as the
/// differential-testing and benchmarking baseline for [`tdpbf16ps`].
///
/// # Panics
///
/// Panics if the tile shapes are inconsistent.
pub fn tdpbf16ps_scalar(dst: &mut Tile, a: &Tile, b: &Tile) {
    let (m_rows, n_cols, k_pairs) = bf16_shape_check(dst, a, b);
    for m in 0..m_rows {
        for n in 0..n_cols {
            let mut acc = dst.f32_at(m, n);
            for k in 0..k_pairs {
                let a0 = a.bf16_at(m, 2 * k);
                let a1 = a.bf16_at(m, 2 * k + 1);
                let b0 = b.bf16_at(k, 2 * n);
                let b1 = b.bf16_at(k, 2 * n + 1);
                // The TMUL datapath multiplies BF16 and accumulates the pair
                // sum into FP32.
                acc = a0.mul_add_f32(b0, acc);
                acc = a1.mul_add_f32(b1, acc);
            }
            dst.set_f32(m, n, acc);
        }
    }
}

/// Validates the `TDPBSSD` shape contract shared by the fast and scalar
/// paths; returns `(m_rows, n_cols, k_quads)`.
fn int8_shape_check(dst: &Tile, a: &Tile, b: &Tile) -> (usize, usize, usize) {
    let m_rows = usize::from(dst.shape().rows);
    let n_cols = usize::from(dst.shape().colsb) / 4;
    let k_quads = usize::from(a.shape().colsb) / 4; // quads of i8 per A row
    assert_eq!(
        usize::from(a.shape().rows),
        m_rows,
        "A rows must match accumulator rows"
    );
    assert_eq!(
        usize::from(b.shape().rows),
        k_quads,
        "B rows must equal A's K-quad count"
    );
    assert_eq!(
        usize::from(b.shape().colsb),
        usize::from(dst.shape().colsb),
        "B row bytes must match accumulator row bytes"
    );
    (m_rows, n_cols, k_quads)
}

/// `TDPBSSD dst, a, b` — dot-product of signed INT8 quads, accumulating i32.
///
/// For every output element `(m, n)`:
/// `dst[m][n] += Σ_k Σ_{j<4} a[m][4k+j]·b[k][4n+j]`
///
/// Like [`tdpbf16ps`], the loops run over decoded register rows; integer
/// wrapping arithmetic makes the result order-independent, but the operation
/// order matches [`tdpbssd_scalar`] anyway.
///
/// # Panics
///
/// Panics if the tile shapes are inconsistent.
pub fn tdpbssd(dst: &mut Tile, a: &Tile, b: &Tile) {
    let (m_rows, n_cols, k_quads) = int8_shape_check(dst, a, b);

    let mut b_rows = [[0i8; 64]; 16];
    for (k, slot) in b_rows.iter_mut().enumerate().take(k_quads) {
        *slot = b.row_i8(k);
    }

    for m in 0..m_rows {
        let a_row = a.row_i8(m);
        let mut acc = dst.row_i32(m);
        for k in 0..k_quads {
            let a0 = i32::from(a_row[4 * k]);
            let a1 = i32::from(a_row[4 * k + 1]);
            let a2 = i32::from(a_row[4 * k + 2]);
            let a3 = i32::from(a_row[4 * k + 3]);
            let b_row = &b_rows[k];
            for (n, slot) in acc.iter_mut().enumerate().take(n_cols) {
                let mut v = *slot;
                v = v.wrapping_add(a0.wrapping_mul(i32::from(b_row[4 * n])));
                v = v.wrapping_add(a1.wrapping_mul(i32::from(b_row[4 * n + 1])));
                v = v.wrapping_add(a2.wrapping_mul(i32::from(b_row[4 * n + 2])));
                v = v.wrapping_add(a3.wrapping_mul(i32::from(b_row[4 * n + 3])));
                *slot = v;
            }
        }
        dst.set_row_i32(m, &acc);
    }
}

/// The seed per-element implementation of `TDPBSSD`, kept as the
/// differential-testing and benchmarking baseline for [`tdpbssd`].
///
/// # Panics
///
/// Panics if the tile shapes are inconsistent.
pub fn tdpbssd_scalar(dst: &mut Tile, a: &Tile, b: &Tile) {
    let (m_rows, n_cols, k_quads) = int8_shape_check(dst, a, b);
    for m in 0..m_rows {
        for n in 0..n_cols {
            let mut acc = dst.i32_at(m, n);
            for k in 0..k_quads {
                for j in 0..4 {
                    let av = i32::from(a.i8_at(m, 4 * k + j));
                    let bv = i32::from(b.i8_at(k, 4 * n + j));
                    acc = acc.wrapping_add(av.wrapping_mul(bv));
                }
            }
            dst.set_i32(m, n, acc);
        }
    }
}

/// Packs a row-major `K×N` BF16 matrix block into the VNNI layout expected
/// by the `b` operand of [`tdpbf16ps`]: element `(k, n)` lands in tile row
/// `k/2`, BF16 column `2n + (k % 2)`.
///
/// `src` must hold `k_dim × n_dim` elements; `k_dim` must be even (pad odd
/// K with zeros before calling).
///
/// # Panics
///
/// Panics if `k_dim` is odd, dims exceed tile capacity, or `src` is too
/// small.
pub fn pack_b_vnni_bf16(tile: &mut Tile, src: &[crate::bf16::Bf16], k_dim: usize, n_dim: usize) {
    assert!(
        k_dim.is_multiple_of(2),
        "VNNI packing requires even K, got {k_dim}"
    );
    assert!(
        k_dim / 2 <= usize::from(tile.shape().rows),
        "K/2 exceeds tile rows"
    );
    assert!(
        2 * n_dim * 2 <= usize::from(tile.shape().colsb),
        "2N exceeds tile row bytes"
    );
    assert!(src.len() >= k_dim * n_dim, "source block too small");
    for k in 0..k_dim {
        for n in 0..n_dim {
            tile.set_bf16(k / 2, 2 * n + (k % 2), src[k * n_dim + n]);
        }
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact float assertions are deliberate: determinism is bit-level
mod tests {
    use super::*;
    use crate::bf16::Bf16;
    use crate::tile::{Tile, TileShape};

    fn full_tile() -> Tile {
        Tile::zeroed(TileShape::new(16, 64))
    }

    /// Reference f64 GEMM for a 16x16x32 block.
    fn reference(a: &[f32], b: &[f32]) -> Vec<f64> {
        let (m, n, k) = (16, 16, 32);
        let mut c = vec![0.0f64; m * n];
        for i in 0..m {
            for j in 0..n {
                for l in 0..k {
                    c[i * n + j] += f64::from(a[i * k + l]) * f64::from(b[l * n + j]);
                }
            }
        }
        c
    }

    #[test]
    fn tdpbf16ps_matches_reference_within_bf16_error() {
        // Deterministic pseudo-random inputs.
        let mut seed = 0x12345678u32;
        let mut next = || {
            seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
            ((seed >> 8) as f32 / (1 << 24) as f32) * 2.0 - 1.0
        };
        let a_f: Vec<f32> = (0..16 * 32).map(|_| next()).collect();
        let b_f: Vec<f32> = (0..32 * 16).map(|_| next()).collect();
        let a_bf: Vec<Bf16> = a_f.iter().map(|&x| Bf16::from_f32(x)).collect();
        let b_bf: Vec<Bf16> = b_f.iter().map(|&x| Bf16::from_f32(x)).collect();
        // Quantized reference (what the hardware actually computes).
        let a_q: Vec<f32> = a_bf.iter().map(|x| x.to_f32()).collect();
        let b_q: Vec<f32> = b_bf.iter().map(|x| x.to_f32()).collect();

        let mut at = full_tile();
        for m in 0..16 {
            for kk in 0..32 {
                at.set_bf16(m, kk, a_bf[m * 32 + kk]);
            }
        }
        let mut bt = full_tile();
        pack_b_vnni_bf16(&mut bt, &b_bf, 32, 16);
        let mut ct = full_tile();
        tdpbf16ps(&mut ct, &at, &bt);

        let expect = reference(&a_q, &b_q);
        for m in 0..16 {
            for n in 0..16 {
                let got = f64::from(ct.f32_at(m, n));
                let want = expect[m * 16 + n];
                assert!(
                    (got - want).abs() < 1e-3,
                    "({m},{n}): got {got}, want {want}"
                );
            }
        }
    }

    #[test]
    fn tdpbf16ps_accumulates_into_existing_dst() {
        let mut at = full_tile();
        let mut bt = full_tile();
        // A = all ones (K=32), B = identity-ish: b[k][n] = 1 if k==n else 0.
        for m in 0..16 {
            for kk in 0..32 {
                at.set_bf16(m, kk, Bf16::ONE);
            }
        }
        let mut b_src = vec![Bf16::ZERO; 32 * 16];
        for n in 0..16 {
            b_src[n * 16 + n] = Bf16::ONE;
        }
        pack_b_vnni_bf16(&mut bt, &b_src, 32, 16);
        let mut ct = full_tile();
        ct.set_f32(0, 0, 100.0);
        tdpbf16ps(&mut ct, &at, &bt);
        // Row of ones · identity column = 1, plus the pre-existing 100.
        assert_eq!(ct.f32_at(0, 0), 101.0);
        assert_eq!(ct.f32_at(5, 3), 1.0);
    }

    #[test]
    fn tdpbssd_int8_exact() {
        let mut at = full_tile();
        let mut bt = full_tile();
        // a[m][k] = (m + k) % 7 - 3 ; b in VNNI: b[k][n] = (k*2 + n) % 5 - 2
        let mut b_plain = vec![0i8; 64 * 16];
        for kk in 0..64 {
            for n in 0..16 {
                b_plain[kk * 16 + n] = ((kk * 2 + n) % 5) as i8 - 2;
            }
        }
        for m in 0..16 {
            for kk in 0..64 {
                at.set_i8(m, kk, ((m + kk) % 7) as i8 - 3);
            }
        }
        // VNNI pack INT8: element (k, n) → row k/4, byte column 4n + k%4.
        for kk in 0..64 {
            for n in 0..16 {
                bt.set_i8(kk / 4, 4 * n + kk % 4, b_plain[kk * 16 + n]);
            }
        }
        let mut ct = full_tile();
        tdpbssd(&mut ct, &at, &bt);
        for m in 0..16 {
            for n in 0..16 {
                let mut want = 0i32;
                for kk in 0..64 {
                    want += i32::from(((m + kk) % 7) as i8 - 3) * i32::from(b_plain[kk * 16 + n]);
                }
                assert_eq!(ct.i32_at(m, n), want, "({m},{n})");
            }
        }
    }

    /// Fills a tile with deterministic pseudo-random bytes (via typed
    /// setters so the active region is well-formed for any interpretation).
    fn scrambled_tile(shape: TileShape, seed: u64) -> Tile {
        let mut t = Tile::zeroed(shape);
        let mut s = seed | 1;
        let mut row = vec![0u8; usize::from(shape.colsb)];
        for r in 0..usize::from(shape.rows) {
            for b in row.iter_mut() {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *b = (s >> 33) as u8;
            }
            t.set_row(r, &row);
        }
        t
    }

    #[test]
    fn fast_bf16_path_is_bit_identical_to_scalar() {
        for seed in [1u64, 7, 42, 0xDEAD] {
            for &(rows, colsb) in &[(16u8, 64u8), (16, 32), (8, 64), (3, 16)] {
                let shape = TileShape::new(rows, colsb);
                let a = scrambled_tile(shape, seed);
                let b = scrambled_tile(TileShape::new(colsb / 4, colsb), seed ^ 0x5555);
                let dst0 = scrambled_tile(shape, seed ^ 0xAAAA);
                let mut fast = dst0.clone();
                let mut slow = dst0.clone();
                tdpbf16ps(&mut fast, &a, &b);
                tdpbf16ps_scalar(&mut slow, &a, &b);
                // Tile equality is byte equality: every f32 output bit and
                // every untouched byte must match.
                assert_eq!(fast, slow, "seed {seed} shape {rows}x{colsb}");
            }
        }
    }

    #[test]
    fn fast_int8_path_is_bit_identical_to_scalar() {
        for seed in [3u64, 11, 0xBEEF] {
            for &(rows, colsb) in &[(16u8, 64u8), (16, 32), (5, 64)] {
                let shape = TileShape::new(rows, colsb);
                let a = scrambled_tile(shape, seed);
                let b = scrambled_tile(TileShape::new(colsb / 4, colsb), seed ^ 0x1234);
                let dst0 = scrambled_tile(shape, seed ^ 0x4321);
                let mut fast = dst0.clone();
                let mut slow = dst0.clone();
                tdpbssd(&mut fast, &a, &b);
                tdpbssd_scalar(&mut slow, &a, &b);
                assert_eq!(fast, slow, "seed {seed} shape {rows}x{colsb}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "A rows")]
    fn mismatched_shapes_panic() {
        let mut dst = full_tile();
        let a = Tile::zeroed(TileShape::new(8, 64));
        let b = full_tile();
        tdpbf16ps(&mut dst, &a, &b);
    }

    #[test]
    #[should_panic(expected = "even K")]
    fn odd_k_vnni_pack_panics() {
        let mut t = full_tile();
        pack_b_vnni_bf16(&mut t, &[Bf16::ZERO; 16], 1, 16);
    }
}
