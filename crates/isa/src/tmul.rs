//! TMUL instruction semantics: `TDPBF16PS` (BF16) and `TDPBSSD` (INT8).
//!
//! Implementations follow the Intel ISA Extensions Programming Reference
//! pseudo-code. Both instructions consume VNNI-packed operands: the B tile
//! stores consecutive K-elements of one output column adjacent in memory
//! (pairs for BF16, quads for INT8).

use crate::tile::Tile;

/// `TDPBF16PS dst, a, b` — dot-product of BF16 pairs, accumulating FP32.
///
/// For every output element `(m, n)`:
/// `dst[m][n] += Σ_k a[m][2k]·b[k][2n] + a[m][2k+1]·b[k][2n+1]`
///
/// Shapes: `dst` is `M×N` FP32 (`colsb = 4N`), `a` is `M×2K` BF16
/// (`colsb = 4K`... i.e. `2K` two-byte elements), `b` is `K×2N` BF16 in
/// VNNI layout.
///
/// # Panics
///
/// Panics if the tile shapes are inconsistent
/// (`dst.rows != a.rows`, `a.colsb != 4·b.rows`, or `b.colsb != dst.colsb`).
pub fn tdpbf16ps(dst: &mut Tile, a: &Tile, b: &Tile) {
    let m_rows = usize::from(dst.shape().rows);
    let n_cols = usize::from(dst.shape().colsb) / 4;
    let k_pairs = usize::from(a.shape().colsb) / 4; // pairs of bf16 per A row
    assert_eq!(
        usize::from(a.shape().rows),
        m_rows,
        "A rows must match accumulator rows"
    );
    assert_eq!(
        usize::from(b.shape().rows),
        k_pairs,
        "B rows must equal A's K-pair count"
    );
    assert_eq!(
        usize::from(b.shape().colsb),
        usize::from(dst.shape().colsb),
        "B row bytes must match accumulator row bytes"
    );

    for m in 0..m_rows {
        for n in 0..n_cols {
            let mut acc = dst.f32_at(m, n);
            for k in 0..k_pairs {
                let a0 = a.bf16_at(m, 2 * k);
                let a1 = a.bf16_at(m, 2 * k + 1);
                let b0 = b.bf16_at(k, 2 * n);
                let b1 = b.bf16_at(k, 2 * n + 1);
                // The TMUL datapath multiplies BF16 and accumulates the pair
                // sum into FP32.
                acc = a0.mul_add_f32(b0, acc);
                acc = a1.mul_add_f32(b1, acc);
            }
            dst.set_f32(m, n, acc);
        }
    }
}

/// `TDPBSSD dst, a, b` — dot-product of signed INT8 quads, accumulating i32.
///
/// For every output element `(m, n)`:
/// `dst[m][n] += Σ_k Σ_{j<4} a[m][4k+j]·b[k][4n+j]`
///
/// # Panics
///
/// Panics if the tile shapes are inconsistent.
pub fn tdpbssd(dst: &mut Tile, a: &Tile, b: &Tile) {
    let m_rows = usize::from(dst.shape().rows);
    let n_cols = usize::from(dst.shape().colsb) / 4;
    let k_quads = usize::from(a.shape().colsb) / 4; // quads of i8 per A row
    assert_eq!(
        usize::from(a.shape().rows),
        m_rows,
        "A rows must match accumulator rows"
    );
    assert_eq!(
        usize::from(b.shape().rows),
        k_quads,
        "B rows must equal A's K-quad count"
    );
    assert_eq!(
        usize::from(b.shape().colsb),
        usize::from(dst.shape().colsb),
        "B row bytes must match accumulator row bytes"
    );

    for m in 0..m_rows {
        for n in 0..n_cols {
            let mut acc = dst.i32_at(m, n);
            for k in 0..k_quads {
                for j in 0..4 {
                    let av = i32::from(a.i8_at(m, 4 * k + j));
                    let bv = i32::from(b.i8_at(k, 4 * n + j));
                    acc = acc.wrapping_add(av.wrapping_mul(bv));
                }
            }
            dst.set_i32(m, n, acc);
        }
    }
}

/// Packs a row-major `K×N` BF16 matrix block into the VNNI layout expected
/// by the `b` operand of [`tdpbf16ps`]: element `(k, n)` lands in tile row
/// `k/2`, BF16 column `2n + (k % 2)`.
///
/// `src` must hold `k_dim × n_dim` elements; `k_dim` must be even (pad odd
/// K with zeros before calling).
///
/// # Panics
///
/// Panics if `k_dim` is odd, dims exceed tile capacity, or `src` is too
/// small.
pub fn pack_b_vnni_bf16(tile: &mut Tile, src: &[crate::bf16::Bf16], k_dim: usize, n_dim: usize) {
    assert!(
        k_dim.is_multiple_of(2),
        "VNNI packing requires even K, got {k_dim}"
    );
    assert!(
        k_dim / 2 <= usize::from(tile.shape().rows),
        "K/2 exceeds tile rows"
    );
    assert!(
        2 * n_dim * 2 <= usize::from(tile.shape().colsb),
        "2N exceeds tile row bytes"
    );
    assert!(src.len() >= k_dim * n_dim, "source block too small");
    for k in 0..k_dim {
        for n in 0..n_dim {
            tile.set_bf16(k / 2, 2 * n + (k % 2), src[k * n_dim + n]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bf16::Bf16;
    use crate::tile::{Tile, TileShape};

    fn full_tile() -> Tile {
        Tile::zeroed(TileShape::new(16, 64))
    }

    /// Reference f64 GEMM for a 16x16x32 block.
    fn reference(a: &[f32], b: &[f32]) -> Vec<f64> {
        let (m, n, k) = (16, 16, 32);
        let mut c = vec![0.0f64; m * n];
        for i in 0..m {
            for j in 0..n {
                for l in 0..k {
                    c[i * n + j] += f64::from(a[i * k + l]) * f64::from(b[l * n + j]);
                }
            }
        }
        c
    }

    #[test]
    fn tdpbf16ps_matches_reference_within_bf16_error() {
        // Deterministic pseudo-random inputs.
        let mut seed = 0x12345678u32;
        let mut next = || {
            seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
            ((seed >> 8) as f32 / (1 << 24) as f32) * 2.0 - 1.0
        };
        let a_f: Vec<f32> = (0..16 * 32).map(|_| next()).collect();
        let b_f: Vec<f32> = (0..32 * 16).map(|_| next()).collect();
        let a_bf: Vec<Bf16> = a_f.iter().map(|&x| Bf16::from_f32(x)).collect();
        let b_bf: Vec<Bf16> = b_f.iter().map(|&x| Bf16::from_f32(x)).collect();
        // Quantized reference (what the hardware actually computes).
        let a_q: Vec<f32> = a_bf.iter().map(|x| x.to_f32()).collect();
        let b_q: Vec<f32> = b_bf.iter().map(|x| x.to_f32()).collect();

        let mut at = full_tile();
        for m in 0..16 {
            for kk in 0..32 {
                at.set_bf16(m, kk, a_bf[m * 32 + kk]);
            }
        }
        let mut bt = full_tile();
        pack_b_vnni_bf16(&mut bt, &b_bf, 32, 16);
        let mut ct = full_tile();
        tdpbf16ps(&mut ct, &at, &bt);

        let expect = reference(&a_q, &b_q);
        for m in 0..16 {
            for n in 0..16 {
                let got = f64::from(ct.f32_at(m, n));
                let want = expect[m * 16 + n];
                assert!(
                    (got - want).abs() < 1e-3,
                    "({m},{n}): got {got}, want {want}"
                );
            }
        }
    }

    #[test]
    fn tdpbf16ps_accumulates_into_existing_dst() {
        let mut at = full_tile();
        let mut bt = full_tile();
        // A = all ones (K=32), B = identity-ish: b[k][n] = 1 if k==n else 0.
        for m in 0..16 {
            for kk in 0..32 {
                at.set_bf16(m, kk, Bf16::ONE);
            }
        }
        let mut b_src = vec![Bf16::ZERO; 32 * 16];
        for n in 0..16 {
            b_src[n * 16 + n] = Bf16::ONE;
        }
        pack_b_vnni_bf16(&mut bt, &b_src, 32, 16);
        let mut ct = full_tile();
        ct.set_f32(0, 0, 100.0);
        tdpbf16ps(&mut ct, &at, &bt);
        // Row of ones · identity column = 1, plus the pre-existing 100.
        assert_eq!(ct.f32_at(0, 0), 101.0);
        assert_eq!(ct.f32_at(5, 3), 1.0);
    }

    #[test]
    fn tdpbssd_int8_exact() {
        let mut at = full_tile();
        let mut bt = full_tile();
        // a[m][k] = (m + k) % 7 - 3 ; b in VNNI: b[k][n] = (k*2 + n) % 5 - 2
        let mut b_plain = vec![0i8; 64 * 16];
        for kk in 0..64 {
            for n in 0..16 {
                b_plain[kk * 16 + n] = ((kk * 2 + n) % 5) as i8 - 2;
            }
        }
        for m in 0..16 {
            for kk in 0..64 {
                at.set_i8(m, kk, ((m + kk) % 7) as i8 - 3);
            }
        }
        // VNNI pack INT8: element (k, n) → row k/4, byte column 4n + k%4.
        for kk in 0..64 {
            for n in 0..16 {
                bt.set_i8(kk / 4, 4 * n + kk % 4, b_plain[kk * 16 + n]);
            }
        }
        let mut ct = full_tile();
        tdpbssd(&mut ct, &at, &bt);
        for m in 0..16 {
            for n in 0..16 {
                let mut want = 0i32;
                for kk in 0..64 {
                    want += i32::from(((m + kk) % 7) as i8 - 3) * i32::from(b_plain[kk * 16 + n]);
                }
                assert_eq!(ct.i32_at(m, n), want, "({m},{n})");
            }
        }
    }

    #[test]
    #[should_panic(expected = "A rows")]
    fn mismatched_shapes_panic() {
        let mut dst = full_tile();
        let a = Tile::zeroed(TileShape::new(8, 64));
        let b = full_tile();
        tdpbf16ps(&mut dst, &a, &b);
    }

    #[test]
    #[should_panic(expected = "even K")]
    fn odd_k_vnni_pack_panics() {
        let mut t = full_tile();
        pack_b_vnni_bf16(&mut t, &[Bf16::ZERO; 16], 1, 16);
    }
}
