//! Closed-form GEMM timing: the analytical counterpart of the emulated
//! kernels, usable at sizes where functional emulation would take minutes.
//!
//! The model counts the instructions the tiled kernels in [`crate::gemm`]
//! and [`crate::avx512`] would execute, converts them to cycles through the
//! port models, and folds in a documented *software efficiency* factor (the
//! gap between ISA-theoretical throughput and what production kernel
//! libraries achieve). Its output is the shape-dependent compute-efficiency
//! curve the inference engine uses for every matmul operator.

use crate::amx::AmxCostModel;
use crate::avx512::AvxCostModel;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// GEMM problem shape (`M×K · K×N`, `batch` independent instances).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GemmShape {
    /// Output rows.
    pub m: u64,
    /// Output columns.
    pub n: u64,
    /// Inner dimension.
    pub k: u64,
    /// Independent instances.
    pub batch: u64,
}

impl GemmShape {
    /// Creates a non-batched shape.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn new(m: u64, n: u64, k: u64) -> Self {
        Self::batched(m, n, k, 1)
    }

    /// Creates a batched shape.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn batched(m: u64, n: u64, k: u64, batch: u64) -> Self {
        assert!(
            m > 0 && n > 0 && k > 0 && batch > 0,
            "GEMM dims must be positive"
        );
        GemmShape { m, n, k, batch }
    }

    /// Useful FLOPs.
    #[must_use]
    pub fn flops(&self) -> f64 {
        2.0 * self.m as f64 * self.n as f64 * self.k as f64 * self.batch as f64
    }
}

impl fmt::Display for GemmShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}x{}", self.batch, self.m, self.n, self.k)
    }
}

/// Which matrix engine executes the GEMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EngineKind {
    /// AMX TMUL, BF16 tiles.
    AmxBf16,
    /// AVX-512 `VDPBF16PS`.
    Avx512Bf16,
}

/// Fraction of ISA-theoretical peak that tuned kernel libraries reach on
/// large cache-blocked GEMMs.
///
/// oneDNN/IPEX AMX BF16 GEMMs sustain 50–60 % of the 2048 FLOP/cycle tile
/// peak on Sapphire Rapids once real prefetch, re-layout (VNNI packing) and
/// synchronization costs are paid; AVX-512 BF16 kernels are simpler and get
/// closer to their (much lower) peak.
#[must_use]
pub fn software_efficiency(engine: EngineKind) -> f64 {
    match engine {
        EngineKind::AmxBf16 => 0.55,
        EngineKind::Avx512Bf16 => 0.75,
    }
}

/// Result of the closed-form timing of one GEMM on one core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GemmTiming {
    /// Modeled core cycles.
    pub cycles: f64,
    /// Useful (unpadded) FLOPs.
    pub useful_flops: f64,
    /// `useful_flops / (cycles × engine peak FLOPs-per-cycle)` — the
    /// fraction of peak this shape can reach, in (0, 1].
    pub efficiency: f64,
}

/// Analytical cycles for the AMX kernel of [`crate::gemm::amx_gemm_bf16`]
/// generalized to 2×2 accumulator register blocking (the production kernel
/// structure: 4 accumulator tiles, 2 A tiles, 2 B tiles).
#[must_use]
pub fn amx_timing(shape: GemmShape) -> GemmTiming {
    let cost = AmxCostModel::default();
    let tm = shape.m.div_ceil(16);
    let tn = shape.n.div_ceil(16);
    let tk = shape.k.div_ceil(32);
    let b = shape.batch;

    // 2×2 blocking: ceil to pairs for load counting.
    let bm = tm.div_ceil(2);
    let bn = tn.div_ceil(2);
    let tdp = tm * tn * tk * b;
    // Per (2m, 2n, k) block: 2 A loads + 2 B loads feed 4 TDPs.
    let loads = bm * bn * tk * 4 * b;
    let stores = tm * tn * b;
    let tmul_cycles = (tdp * cost.tdp_issue_cycles + stores * cost.tilezero_cycles) as f64;
    let ls_cycles = (loads * cost.tileload_cycles + stores * cost.tilestore_cycles) as f64;
    // Config once per kernel launch, plus a fixed software prologue.
    let overhead = cost.ldtilecfg_cycles as f64 + 200.0;
    let raw_cycles = tmul_cycles.max(ls_cycles) + overhead;
    let cycles = raw_cycles / software_efficiency(EngineKind::AmxBf16);
    let useful = shape.flops();
    GemmTiming {
        cycles,
        useful_flops: useful,
        efficiency: useful / (cycles * 2048.0),
    }
}

/// Analytical cycles for an AVX-512 BF16 kernel with 8×64 register blocking
/// (8 A rows × 4 ZMM accumulator columns).
///
/// The cost unit is the 128-FLOP BF16 macro-op implied by Table I's peak
/// (18.0 TFLOPS at 32 × 2.2 GHz = 256 FLOPs/cycle over two ports): one
/// macro-op covers a 16-lane stripe and four K elements.
#[must_use]
pub fn avx512_timing(shape: GemmShape) -> GemmTiming {
    let cost = AvxCostModel::default();
    let rows = shape.m.div_ceil(8) * 8;
    let cols = shape.n.div_ceil(16); // zmm stripes of 16 f32
    let kp = shape.k.div_ceil(4); // 4 K elements per 128-FLOP macro-op
    let b = shape.batch;

    let fma = rows * cols * kp * b;
    // Per 8-row × 4-stripe block per k-pair: 4 B loads + 8 A broadcasts for
    // 32 FMAs → 0.375 loads per FMA; edge blocks are slightly worse, folded
    // into the software factor.
    let loads = (fma as f64 * 0.375).ceil() as u64;
    let fma_cycles = fma.div_ceil(cost.fma_ports) as f64;
    let ls_cycles = loads.div_ceil(cost.loads_per_cycle) as f64;
    let overhead = 150.0;
    let raw_cycles = fma_cycles.max(ls_cycles) + overhead;
    let cycles = raw_cycles / software_efficiency(EngineKind::Avx512Bf16);
    let useful = shape.flops();
    let peak_per_cycle = cost.bf16_flops_per_cycle();
    GemmTiming {
        cycles,
        useful_flops: useful,
        efficiency: useful / (cycles * peak_per_cycle),
    }
}

/// A thread-safe memo of closed-form GEMM timings keyed by
/// `(engine, shape)`.
///
/// The inference engine calls the timing model for every matmul operator of
/// every simulated request, and the paper sweeps re-run overlapping shape
/// grids across many experiments — the same `(engine, shape)` pair is timed
/// thousands of times. Entries are `Copy`-sized, so the cache holds the
/// [`GemmTiming`] itself; hit/miss counters are exposed for tests and
/// diagnostics.
///
/// The memo is a `BTreeMap`, not a `HashMap`: `HashMap` iteration order is
/// seeded per process by `RandomState`, and although today's accessors are
/// point lookups, a deterministic container makes the no-iteration-order
/// dependence invariant structural instead of a property every future
/// change must re-prove (lint rule D001).
#[derive(Debug, Default)]
pub struct TimingCache {
    map: Mutex<BTreeMap<(EngineKind, GemmShape), GemmTiming>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl TimingCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        TimingCache::default()
    }

    /// Locks the memo, recovering from poison: a panic elsewhere can only
    /// have happened between map operations (inserts are atomic with
    /// respect to unwinding), so the map itself is never half-updated.
    fn lock_map(&self) -> MutexGuard<'_, BTreeMap<(EngineKind, GemmShape), GemmTiming>> {
        match self.map.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The timing of `shape` on `engine`, computing and memoizing it on
    /// first use.
    pub fn get(&self, engine: EngineKind, shape: GemmShape) -> GemmTiming {
        let mut map = self.lock_map();
        if let Some(&t) = map.get(&(engine, shape)) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return t;
        }
        let t = match engine {
            EngineKind::AmxBf16 => amx_timing(shape),
            EngineKind::Avx512Bf16 => avx512_timing(shape),
        };
        map.insert((engine, shape), t);
        self.misses.fetch_add(1, Ordering::Relaxed);
        t
    }

    /// Cache hits since construction (or the last [`TimingCache::clear`]).
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (i.e. distinct shapes computed).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of memoized `(engine, shape)` entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock_map().len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries and resets the counters.
    pub fn clear(&self) {
        self.lock_map().clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

/// The process-wide timing cache shared by every experiment and backend.
#[must_use]
pub fn global_cache() -> &'static TimingCache {
    static CACHE: OnceLock<TimingCache> = OnceLock::new();
    CACHE.get_or_init(TimingCache::new)
}

/// [`amx_timing`] through the process-wide [`TimingCache`].
#[must_use]
pub fn amx_timing_cached(shape: GemmShape) -> GemmTiming {
    global_cache().get(EngineKind::AmxBf16, shape)
}

/// [`avx512_timing`] through the process-wide [`TimingCache`].
#[must_use]
pub fn avx512_timing_cached(shape: GemmShape) -> GemmTiming {
    global_cache().get(EngineKind::Avx512Bf16, shape)
}

/// Shape-dependent fraction of engine peak for `shape` on `engine`,
/// in (0, 1].
///
/// This is the curve the inference engine multiplies into the hardware's
/// peak FLOP/s for every matmul operator: near-square cache-resident GEMMs
/// approach the software ceiling; skinny decode GEMMs (m = batch) fall far
/// below it because tile/vector quantization wastes most of each
/// instruction. Results are memoized in the process-wide [`TimingCache`].
#[must_use]
pub fn gemm_efficiency(engine: EngineKind, shape: GemmShape) -> f64 {
    global_cache()
        .get(engine, shape)
        .efficiency
        .clamp(1e-6, 1.0)
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact float assertions are deliberate: determinism is bit-level
mod tests {
    use super::*;

    #[test]
    fn large_square_amx_gemm_approaches_software_ceiling() {
        let e = gemm_efficiency(EngineKind::AmxBf16, GemmShape::new(4096, 4096, 4096));
        assert!(e > 0.50 && e <= 0.56, "{e}");
    }

    #[test]
    fn skinny_decode_gemm_is_inefficient_on_amx() {
        // m = 1 (batch-1 decode): 1/16 of each tile row is useful.
        let skinny = gemm_efficiency(EngineKind::AmxBf16, GemmShape::new(1, 4096, 4096));
        let square = gemm_efficiency(EngineKind::AmxBf16, GemmShape::new(256, 4096, 4096));
        assert!(skinny < square / 8.0, "skinny {skinny} vs square {square}");
    }

    #[test]
    fn avx512_less_sensitive_to_skinny_m() {
        // AVX-512 pads m to 8, AMX to 16 (and its 2x2 blocking to 32):
        // relative waste at m=1 is smaller.
        let amx1 = gemm_efficiency(EngineKind::AmxBf16, GemmShape::new(1, 4096, 4096));
        let amx = gemm_efficiency(EngineKind::AmxBf16, GemmShape::new(512, 4096, 4096));
        let avx1 = gemm_efficiency(EngineKind::Avx512Bf16, GemmShape::new(1, 4096, 4096));
        let avx = gemm_efficiency(EngineKind::Avx512Bf16, GemmShape::new(512, 4096, 4096));
        assert!(avx1 / avx > amx1 / amx);
    }

    #[test]
    fn efficiency_monotone_in_m_up_to_blocking() {
        let shapes = [1u64, 2, 4, 8, 16, 32, 64, 128];
        let mut last = 0.0;
        for m in shapes {
            let e = gemm_efficiency(EngineKind::AmxBf16, GemmShape::new(m, 4096, 4096));
            assert!(e >= last, "m={m}: {e} < {last}");
            last = e;
        }
    }

    #[test]
    fn analytical_matches_emulated_instruction_counts() {
        // The closed-form TDP count must equal what the functional kernel
        // actually executes.
        let (m, n, k) = (33usize, 17usize, 65usize);
        let res = crate::gemm::amx_gemm_f32_inputs(&vec![0.5; m * k], &vec![0.5; k * n], m, n, k);
        let tdp_analytical =
            (m as u64).div_ceil(16) * (n as u64).div_ceil(16) * (k as u64).div_ceil(32);
        assert_eq!(res.unit.stats().tdpbf16ps, tdp_analytical);
    }

    #[test]
    fn batch_scales_cycles_linearly() {
        let one = amx_timing(GemmShape::new(128, 128, 128));
        let eight = amx_timing(GemmShape::batched(128, 128, 128, 8));
        let ratio = eight.cycles / one.cycles;
        assert!((6.5..8.0).contains(&ratio), "{ratio}"); // fixed overhead amortizes
    }

    #[test]
    fn cache_returns_identical_timings_and_counts_hits() {
        let cache = TimingCache::new();
        let shape = GemmShape::new(384, 512, 640);
        let direct = amx_timing(shape);
        let first = cache.get(EngineKind::AmxBf16, shape);
        let second = cache.get(EngineKind::AmxBf16, shape);
        assert_eq!(first, direct);
        assert_eq!(second, direct);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);
        // Engines key separately.
        let _ = cache.get(EngineKind::Avx512Bf16, shape);
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn cache_hits_are_bit_identical_to_cold_computation() {
        // Regression test for the BTreeMap conversion (lint rule D001):
        // a memoized timing must reproduce the cold closed-form result
        // down to the last mantissa bit, for both engines, across a grid
        // of shapes including padding edge cases.
        let cache = TimingCache::new();
        let dims = [1u64, 7, 16, 33, 255, 1024, 4096];
        for &m in &dims {
            for &k in &[32u64, 65, 4096] {
                for (engine, cold) in [
                    (
                        EngineKind::AmxBf16,
                        amx_timing as fn(GemmShape) -> GemmTiming,
                    ),
                    (EngineKind::Avx512Bf16, avx512_timing),
                ] {
                    let shape = GemmShape::batched(m, 512, k, 2);
                    let want = cold(shape);
                    let miss = cache.get(engine, shape); // cold path, memoizes
                    let hit = cache.get(engine, shape); // served from the map
                    for got in [miss, hit] {
                        assert_eq!(got.cycles.to_bits(), want.cycles.to_bits());
                        assert_eq!(got.useful_flops.to_bits(), want.useful_flops.to_bits());
                        assert_eq!(got.efficiency.to_bits(), want.efficiency.to_bits());
                    }
                }
            }
        }
        assert_eq!(cache.misses(), 2 * dims.len() as u64 * 3);
        assert_eq!(cache.hits(), cache.misses());
    }

    #[test]
    fn poisoned_lock_recovers_instead_of_panicking() {
        // A worker that panics while holding the cache lock must not take
        // every later caller down with it (P001: no panics in lib code).
        let cache = std::sync::Arc::new(TimingCache::new());
        let shape = GemmShape::new(64, 64, 64);
        let c2 = std::sync::Arc::clone(&cache);
        let _ = std::thread::spawn(move || {
            let _guard = c2.map.lock().expect("first lock");
            panic!("poison the cache lock");
        })
        .join();
        assert_eq!(cache.get(EngineKind::AmxBf16, shape), amx_timing(shape));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cache_is_safe_under_concurrent_access() {
        let cache = TimingCache::new();
        std::thread::scope(|s| {
            for t in 0..8 {
                let cache = &cache;
                s.spawn(move || {
                    for i in 0..64u64 {
                        let shape = GemmShape::new(16 + i % 8, 64, 32 + t % 4);
                        let got = cache.get(EngineKind::AmxBf16, shape);
                        assert_eq!(got, amx_timing(shape));
                    }
                });
            }
        });
        assert_eq!(cache.hits() + cache.misses(), 8 * 64);
        assert!(cache.len() <= 32);
    }

    #[test]
    fn cached_wrappers_match_direct_model() {
        let shape = GemmShape::batched(33, 65, 129, 2);
        assert_eq!(amx_timing_cached(shape), amx_timing(shape));
        assert_eq!(avx512_timing_cached(shape), avx512_timing(shape));
    }

    #[test]
    fn timing_display_and_flops() {
        let s = GemmShape::new(64, 64, 64);
        assert_eq!(s.flops(), 2.0 * 64.0f64.powi(3));
        assert_eq!(s.to_string(), "1x64x64x64");
    }
}
