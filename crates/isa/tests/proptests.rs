//! Property-based tests of the ISA substrate: the emulated kernels must
//! track the scalar reference for *arbitrary* shapes and values, and the
//! numeric formats must obey their error bounds.

use llmsim_isa::avx512::avx512_gemm_bf16;
use llmsim_isa::bf16::{Bf16, BF16_RELATIVE_EPS};
use llmsim_isa::gemm::{amx_gemm_bf16_legacy, amx_gemm_f32_inputs, reference_gemm_f32};
use llmsim_isa::parallel::amx_gemm_bf16_parallel;
use llmsim_isa::quant::QuantizedMatrix;
use llmsim_isa::timing::{gemm_efficiency, EngineKind, GemmShape};
use proptest::prelude::*;

fn pseudo_bf16(len: usize, seed: u64, salt: u64) -> Vec<Bf16> {
    Bf16::quantize_slice(
        &(0..len)
            .map(|i| {
                let h = (i as u64 ^ seed ^ salt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                ((h >> 40) as f32 / (1u64 << 24) as f32 - 0.5) * 4.0
            })
            .collect::<Vec<f32>>(),
    )
}

fn finite_f32() -> impl Strategy<Value = f32> {
    (-100.0f32..100.0).prop_map(|x| x)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// BF16 round-trip keeps relative error within half a ULP.
    #[test]
    fn bf16_round_trip_error_bound(x in -1e30f32..1e30) {
        let rt = Bf16::from_f32(x).to_f32();
        let denom = x.abs().max(f32::MIN_POSITIVE);
        prop_assert!(((rt - x) / denom).abs() <= BF16_RELATIVE_EPS);
    }

    /// BF16 conversion is monotone: a ≤ b ⇒ bf16(a) ≤ bf16(b).
    #[test]
    fn bf16_is_monotone(a in -1e20f32..1e20, b in -1e20f32..1e20) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(Bf16::from_f32(lo).to_f32() <= Bf16::from_f32(hi).to_f32());
    }

    /// The emulated AMX GEMM matches the scalar reference on random shapes
    /// and values, within the accumulated BF16 error bound.
    #[test]
    fn amx_gemm_matches_reference(
        m in 1usize..24,
        n in 1usize..24,
        k in 1usize..48,
        seed in any::<u64>(),
    ) {
        let gen = |len: usize, salt: u64| -> Vec<f32> {
            (0..len)
                .map(|i| {
                    let h = (i as u64 ^ seed ^ salt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    ((h >> 40) as f32 / (1u64 << 24) as f32 - 0.5) * 4.0
                })
                .collect()
        };
        let a = gen(m * k, 1);
        let b = gen(k * n, 2);
        let got = amx_gemm_f32_inputs(&a, &b, m, n, k);
        // Reference over the bf16-quantized operands.
        let aq: Vec<f32> = a.iter().map(|&x| Bf16::from_f32(x).to_f32()).collect();
        let bq: Vec<f32> = b.iter().map(|&x| Bf16::from_f32(x).to_f32()).collect();
        let want = reference_gemm_f32(&aq, &bq, m, n, k);
        for (g, w) in got.c.iter().zip(&want) {
            prop_assert!((g - w).abs() < 1e-2, "{g} vs {w} at ({m},{n},{k})");
        }
    }

    /// AVX-512 and AMX functional kernels agree with each other.
    #[test]
    fn avx512_and_amx_agree(m in 1usize..12, n in 1usize..20, k2 in 1usize..16) {
        let k = k2 * 2; // AVX kernel requires even K
        let a: Vec<Bf16> = (0..m * k).map(|i| Bf16::from_f32(((i % 13) as f32 - 6.0) / 4.0)).collect();
        let b: Vec<Bf16> = (0..k * n).map(|i| Bf16::from_f32(((i % 11) as f32 - 5.0) / 8.0)).collect();
        let (avx, _) = avx512_gemm_bf16(&a, &b, m, n, k);
        let amx = llmsim_isa::gemm::amx_gemm_bf16(&a, &b, m, n, k);
        for (x, y) in avx.iter().zip(&amx.c) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// GEMM efficiency is always in (0, 1] and never decreases when a
    /// dimension snaps up to the next tile multiple boundary.
    #[test]
    fn gemm_efficiency_in_unit_interval(
        m in 1u64..4096,
        n in 1u64..4096,
        k in 1u64..4096,
    ) {
        for engine in [EngineKind::AmxBf16, EngineKind::Avx512Bf16] {
            let e = gemm_efficiency(engine, GemmShape::new(m, n, k));
            prop_assert!(e > 0.0 && e <= 1.0, "{engine:?} {m}x{n}x{k}: {e}");
        }
    }

    /// The packed blocked kernel is bit-identical to the seed per-element
    /// kernel on arbitrary shapes and values: every output f32 bit and the
    /// full instruction statistics must match.
    #[test]
    fn packed_kernel_is_bit_identical_to_legacy(
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..72,
        seed in any::<u64>(),
    ) {
        let a = pseudo_bf16(m * k, seed, 1);
        let b = pseudo_bf16(k * n, seed, 2);
        let legacy = amx_gemm_bf16_legacy(&a, &b, m, n, k);
        let packed = llmsim_isa::gemm::amx_gemm_bf16(&a, &b, m, n, k);
        prop_assert_eq!(legacy.unit.stats(), packed.unit.stats());
        for (i, (x, y)) in legacy.c.iter().zip(&packed.c).enumerate() {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "element {}", i);
        }
    }

    /// The multi-core fan-out is deterministic: any core count produces the
    /// same bits as the single-core kernel.
    #[test]
    fn fan_out_is_core_count_invariant(
        m in 1usize..48,
        n in 1usize..32,
        k in 1usize..48,
        cores in 1usize..9,
        seed in any::<u64>(),
    ) {
        let a = pseudo_bf16(m * k, seed, 3);
        let b = pseudo_bf16(k * n, seed, 4);
        let serial = llmsim_isa::gemm::amx_gemm_bf16(&a, &b, m, n, k);
        let par = amx_gemm_bf16_parallel(&a, &b, m, n, k, cores);
        for (i, (x, y)) in serial.c.iter().zip(&par.c).enumerate() {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "element {} with {} cores", i, cores);
        }
    }

    /// INT8 symmetric quantization keeps per-element error within half a
    /// quantization step of the row maximum.
    #[test]
    fn int8_quantization_error_bound(
        rows in 1usize..8,
        cols in 1usize..32,
        vals in proptest::collection::vec(finite_f32(), 1..256),
    ) {
        let len = rows * cols;
        let src: Vec<f32> = (0..len).map(|i| vals[i % vals.len()]).collect();
        let q = QuantizedMatrix::quantize(&src, rows, cols);
        let back = q.dequantize();
        for r in 0..rows {
            let row_max = src[r * cols..(r + 1) * cols]
                .iter()
                .fold(0.0f32, |m, &x| m.max(x.abs()));
            let step = if row_max == 0.0 { 1.0 } else { row_max / 127.0 };
            for c in 0..cols {
                let err = (src[r * cols + c] - back[r * cols + c]).abs();
                prop_assert!(err <= step * 0.5001, "err {err} step {step}");
            }
        }
    }
}
