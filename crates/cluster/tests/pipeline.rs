//! Pipeline-parallel stage chains: degenerate single-stage groups must be
//! byte-identical to plain replicas, two-stage chains must actually
//! pipeline (higher throughput than one replica, bubbles and handoffs
//! accounted), and the config layer must reject every composition the
//! engine does not model.

use llmsim_cluster::{
    simulate_fleet, AutoscaleConfig, ChaosConfig, ClusterConfig, ClusterRequest, FleetReport,
    HeteroAware, JoinShortestQueue, KvConfig, PipelineConfig, PipelineGroup, ReplicaConfig,
    RoundRobin, RouterPolicy,
};
use llmsim_core::{CostModel, CpuBackend};
use llmsim_hw::presets::upi_link;
use llmsim_model::families;
use proptest::prelude::*;
use std::sync::Arc;

fn spr() -> Arc<dyn CostModel + Send + Sync> {
    Arc::new(CpuBackend::paper_spr())
}

fn fleet(n: usize) -> Vec<ReplicaConfig> {
    (0..n)
        .map(|_| {
            ReplicaConfig::warm(spr())
                .with_queue_cap(32)
                .with_max_batch(1)
        })
        .collect()
}

fn trace(n: usize, gap_s: f64) -> Vec<ClusterRequest> {
    (0..n)
        .map(|i| ClusterRequest {
            id: i,
            arrival_s: i as f64 * gap_s,
            prompt_len: 128 + 17 * (i as u64 % 5),
            gen_len: 16 + 3 * (i as u64 % 3),
            ..ClusterRequest::default()
        })
        .collect()
}

/// A depth-1 "chain" is a plain replica: outcomes, replica stats, and the
/// rendered report must match the pipeline-free run byte for byte — the
/// issue's 1e-9 bound is the loose form of what we actually guarantee.
#[test]
fn single_stage_group_is_byte_identical_to_standalone_replica() {
    let plain = ClusterConfig::new(fleet(1), vec![families::opt_13b()]);
    let piped = ClusterConfig::new(fleet(1), vec![families::opt_13b()]).with_pipeline(
        PipelineConfig::new(vec![PipelineGroup::new(vec![0], upi_link())]),
    );
    let reqs = trace(12, 0.05);
    let a = simulate_fleet(&plain, &mut RoundRobin::new(), &reqs);
    let b = simulate_fleet(&piped, &mut RoundRobin::new(), &reqs);
    assert_eq!(format!("{:?}", a.outcomes), format!("{:?}", b.outcomes));
    assert_eq!(format!("{:?}", a.replicas), format!("{:?}", b.replicas));
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        if let (Some(ex), Some(ey)) = (x.e2e_s, y.e2e_s) {
            assert!((ex - ey).abs() < 1e-9);
        }
    }
    // The only permitted report difference is the gated pipeline line.
    assert!(!a.render().contains("pipeline_groups="));
    assert!(b.render().contains("pipeline_groups=1 pipeline_handoffs=0"));
}

/// A two-stage chain of identical sockets overlaps stage work across
/// requests: the makespan beats one replica serving the same closed trace,
/// every completed request crosses exactly one hop, and downstream idle
/// time lands in the bubble counter without going negative.
#[test]
fn two_stage_chain_pipelines_and_accounts_handoffs_and_bubbles() {
    let single = ClusterConfig::new(fleet(1), vec![families::opt_13b()]);
    let chain = ClusterConfig::new(fleet(2), vec![families::opt_13b()]).with_pipeline(
        PipelineConfig::new(vec![PipelineGroup::new(vec![0, 1], upi_link())]),
    );
    let reqs = trace(8, 0.0);
    let a = simulate_fleet(&single, &mut RoundRobin::new(), &reqs);
    let b = simulate_fleet(&chain, &mut RoundRobin::new(), &reqs);
    assert_eq!(a.completed(), reqs.len());
    assert_eq!(b.completed(), reqs.len());
    assert!(
        b.makespan_s < a.makespan_s,
        "two-stage chain should finish the closed trace faster: \
         chain {} s vs single {} s",
        b.makespan_s,
        a.makespan_s
    );
    assert_eq!(b.pipeline_handoffs, reqs.len() as u64);
    assert!(b.pipeline_bubble_s() >= 0.0);
    let line = b.render();
    assert!(line.contains("pipeline_groups=1"));
    assert!(line.contains(&format!("pipeline_handoffs={}", reqs.len())));
}

/// Routing never targets a downstream stage: the views advertise zero
/// capacity (plus their stage position) for non-heads, and even a hostile
/// policy that insists on the downstream index gets filtered — its
/// requests are rejected instead of injected mid-chain.
#[test]
fn router_only_sees_stage_heads() {
    struct InsistOnDownstream {
        saw_downstream_cap: usize,
    }
    impl RouterPolicy for InsistOnDownstream {
        fn name(&self) -> String {
            "insist-on-downstream".into()
        }
        fn route(
            &mut self,
            _req: &ClusterRequest,
            views: &[llmsim_cluster::ReplicaView],
        ) -> Option<usize> {
            for v in views {
                if v.pipeline_stage > 0 {
                    assert_eq!(v.pipeline_group, Some(0));
                    assert_eq!(v.pipeline_depth, 2);
                    self.saw_downstream_cap += v.queue_cap;
                }
            }
            Some(1) // the downstream stage of group 0
        }
    }
    let config = ClusterConfig::new(fleet(3), vec![families::opt_13b()]).with_pipeline(
        PipelineConfig::new(vec![PipelineGroup::new(vec![0, 1], upi_link())]),
    );
    let reqs = trace(10, 0.01);
    let mut hostile = InsistOnDownstream {
        saw_downstream_cap: 0,
    };
    let report = simulate_fleet(&config, &mut hostile, &reqs);
    assert_eq!(
        hostile.saw_downstream_cap, 0,
        "non-head advertised capacity"
    );
    assert_eq!(report.completed(), 0);
    assert_eq!(report.pipeline_handoffs, 0);

    // Sane policies keep working: every completed request finishes on the
    // chain's tail (1) or the spare plain replica (2), never the head.
    for mut router in [
        Box::new(RoundRobin::new()) as Box<dyn RouterPolicy>,
        Box::new(JoinShortestQueue),
        Box::new(HeteroAware),
    ] {
        let report = simulate_fleet(&config, &mut *router, &reqs);
        for o in &report.outcomes {
            if let Some(r) = o.replica {
                assert_ne!(r, 0, "request {} reported finishing on a head stage", o.id);
            }
        }
    }
}

/// The config layer rejects every composition the engine does not model:
/// chaos, paged KV, and autoscaling against a pipeline, plus malformed
/// groups (empty, out-of-range, overlapping).
#[test]
fn pipeline_rejects_unmodeled_compositions() {
    let base = || {
        ClusterConfig::new(fleet(2), vec![families::opt_13b()]).with_pipeline(PipelineConfig::new(
            vec![PipelineGroup::new(vec![0, 1], upi_link())],
        ))
    };
    let expect_reject = |config: ClusterConfig, needle: &str| {
        let err = config.validate().expect_err(needle).to_string();
        assert!(err.contains(needle), "expected {needle:?} in {err:?}");
    };
    // Even the passthrough chaos config is rejected: the engine takes a
    // chaos-free fast path that the pipeline code relies on.
    expect_reject(base().with_chaos(ChaosConfig::none(1)), "chaos");
    expect_reject(base().with_kv(KvConfig::new()), "paged KV");
    expect_reject(
        base().with_autoscale(AutoscaleConfig::default()),
        "autoscaling",
    );

    let malformed = [
        (
            PipelineConfig::new(vec![PipelineGroup::new(vec![], upi_link())]),
            "no stages",
        ),
        (
            PipelineConfig::new(vec![PipelineGroup::new(vec![0, 7], upi_link())]),
            "references replica",
        ),
        (
            PipelineConfig::new(vec![
                PipelineGroup::new(vec![0], upi_link()),
                PipelineGroup::new(vec![0, 1], upi_link()),
            ]),
            "disjoint",
        ),
    ];
    for (pipeline, needle) in malformed {
        expect_reject(
            ClusterConfig::new(fleet(2), vec![families::opt_13b()]).with_pipeline(pipeline),
            needle,
        );
    }
}

fn arb_trace() -> impl Strategy<Value = Vec<ClusterRequest>> {
    (1usize..16, 1u64..256, 1u64..24, 0u64..400).prop_map(|(n, p0, g0, gap_ms)| {
        (0..n)
            .map(|i| ClusterRequest {
                id: i,
                arrival_s: i as f64 * gap_ms as f64 / 1000.0,
                prompt_len: p0 + 11 * (i as u64 % 6),
                gen_len: g0 + 7 * (i as u64 % 3),
                ..ClusterRequest::default()
            })
            .collect()
    })
}

fn render_all(report: &FleetReport) -> String {
    format!(
        "{:?}\n{:?}\n{}",
        report.outcomes, report.replicas, report.makespan_s
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Wrapping *every* replica of a fleet in its own depth-1 group is a
    /// no-op: byte-identical outcomes, replica stats, and makespan against
    /// the pipeline-free config, across random traces and fleet sizes.
    #[test]
    fn depth_one_groups_everywhere_are_a_noop(
        reqs in arb_trace(),
        n in 1usize..4,
        router_ix in 0usize..2,
    ) {
        let plain = ClusterConfig::new(fleet(n), vec![families::opt_13b()]);
        let groups = (0..n)
            .map(|i| PipelineGroup::new(vec![i], upi_link()))
            .collect();
        let piped = ClusterConfig::new(fleet(n), vec![families::opt_13b()])
            .with_pipeline(PipelineConfig::new(groups));
        let mut routers: [Box<dyn RouterPolicy>; 2] =
            [Box::new(RoundRobin::new()), Box::new(JoinShortestQueue)];
        let a = simulate_fleet(&plain, &mut *routers[router_ix], &reqs);
        let mut routers2: [Box<dyn RouterPolicy>; 2] =
            [Box::new(RoundRobin::new()), Box::new(JoinShortestQueue)];
        let b = simulate_fleet(&piped, &mut *routers2[router_ix], &reqs);
        prop_assert_eq!(render_all(&a), render_all(&b));
    }
}
