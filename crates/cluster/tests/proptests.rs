//! Fleet-simulator properties: determinism, conservation, and routing
//! sanity across randomly drawn heterogeneous fleets and traces.

use llmsim_cluster::{
    simulate_fleet, simulate_fleet_traced, AutoscaleConfig, ChaosConfig, ClusterConfig,
    ClusterRequest, FaultInjection, HeteroAware, JoinShortestQueue, LeastOutstandingTokens,
    OutcomeState, ReplicaConfig, ReplicaStart, ReplicaView, RoundRobin, RouterPolicy, SloTargets,
};
use llmsim_core::resilience::RetryPolicy;
use llmsim_core::{CostModel, CpuBackend, GpuBackend, VecSink};
use llmsim_model::families;
use proptest::prelude::*;
use std::sync::Arc;

/// A heterogeneous fleet: `n` replicas cycling through SPR / ICL / A100 /
/// H100 backends, with drawn queue caps and batch widths, the tail of the
/// fleet starting in the drawn state.
fn fleet(n: usize, queue_cap: usize, max_batch: u64, tail_start: ReplicaStart) -> ClusterConfig {
    let replicas: Vec<ReplicaConfig> = (0..n)
        .map(|i| {
            let backend: Arc<dyn CostModel + Send + Sync> = match i % 4 {
                0 => Arc::new(CpuBackend::paper_spr()),
                1 => Arc::new(CpuBackend::paper_icl()),
                2 => Arc::new(GpuBackend::paper_a100()),
                _ => Arc::new(GpuBackend::paper_h100()),
            };
            // Drawn independently, so clamp the batch to the queue cap:
            // `ClusterConfig::validate` rejects queue_cap < max_batch.
            let mut cfg = ReplicaConfig::warm(backend)
                .with_queue_cap(queue_cap)
                .with_max_batch(max_batch.min(queue_cap as u64));
            if i == n - 1 {
                cfg.start = tail_start;
            }
            cfg
        })
        .collect();
    ClusterConfig::new(replicas, vec![families::opt_1_3b(), families::opt_13b()])
        .with_slo(SloTargets {
            ttft_s: 2.0,
            e2e_s: 30.0,
        })
        .with_autoscale(AutoscaleConfig::default())
}

fn arb_trace() -> impl Strategy<Value = Vec<ClusterRequest>> {
    (1usize..24, 1u64..256, 1u64..32, 0u64..500).prop_map(|(n, p0, g0, gap_ms)| {
        (0..n)
            .map(|i| ClusterRequest {
                id: i,
                arrival_s: i as f64 * gap_ms as f64 / 1000.0,
                prompt_len: p0 + 13 * (i as u64 % 7),
                gen_len: g0 + 5 * (i as u64 % 4),
                model: i % 2,
                ..ClusterRequest::default()
            })
            .collect()
    })
}

fn routers() -> [Box<dyn RouterPolicy>; 4] {
    [
        Box::new(RoundRobin::new()),
        Box::new(JoinShortestQueue),
        Box::new(LeastOutstandingTokens),
        Box::new(HeteroAware),
    ]
}

fn starts() -> [ReplicaStart; 3] {
    [
        ReplicaStart::Warm,
        ReplicaStart::Cold,
        ReplicaStart::Standby,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Same fleet + same trace + same policy ⇒ byte-identical report.
    #[test]
    fn same_seed_byte_identical_report(
        reqs in arb_trace(),
        n in 2usize..5,
        cap in 2usize..12,
        batch in 1u64..5,
        router_ix in 0usize..4,
        start_ix in 0usize..3,
    ) {
        let config = fleet(n, cap, batch, starts()[start_ix]);
        let a = simulate_fleet(&config, &mut *routers()[router_ix], &reqs);
        let b = simulate_fleet(&config, &mut *routers()[router_ix], &reqs);
        prop_assert_eq!(a.render(), b.render());
        prop_assert_eq!(format!("{:?}", a.outcomes), format!("{:?}", b.outcomes));
        prop_assert_eq!(format!("{:?}", a.replicas), format!("{:?}", b.replicas));
    }

    /// Span tracing is observational: a traced run produces a report
    /// bit-identical to the untraced run, one span per request, with each
    /// completed span's phases summing to the outcome's e2e latency; and
    /// the TSV rendering is byte-stable across same-seed runs.
    #[test]
    fn tracing_changes_nothing_and_spans_reconcile(
        reqs in arb_trace(),
        n in 2usize..5,
        cap in 2usize..12,
        batch in 1u64..5,
        router_ix in 0usize..4,
        start_ix in 0usize..3,
    ) {
        let config = fleet(n, cap, batch, starts()[start_ix]);
        let plain = simulate_fleet(&config, &mut *routers()[router_ix], &reqs);
        let mut sink = VecSink::new();
        let traced =
            simulate_fleet_traced(&config, &mut *routers()[router_ix], &reqs, &mut sink);
        prop_assert_eq!(plain.render(), traced.render());
        prop_assert_eq!(format!("{:?}", plain.outcomes), format!("{:?}", traced.outcomes));
        prop_assert_eq!(sink.spans.len(), reqs.len());
        for o in &traced.outcomes {
            let s = sink
                .spans
                .iter()
                .find(|s| s.id == o.id as u64)
                .expect("span per request");
            if o.state == OutcomeState::Completed {
                let phase_sum = s.queue_delay_s + s.prefill_s() + s.decode_s;
                prop_assert!((s.e2e_s() - o.e2e_s.unwrap()).abs() < 1e-9);
                prop_assert!((phase_sum - s.e2e_s()).abs() < 1e-9);
            } else {
                prop_assert!(s.e2e_s().is_nan());
            }
        }
        let mut sink2 = VecSink::new();
        let _ = simulate_fleet_traced(&config, &mut *routers()[router_ix], &reqs, &mut sink2);
        prop_assert_eq!(sink.to_tsv(), sink2.to_tsv());
    }

    /// Conservation: every request terminates exactly once — completed with
    /// its full generation on a real replica, or rejected with zero tokens —
    /// and no latency is negative or reordered (ttft ≤ e2e, delay ≤ ttft).
    #[test]
    fn every_request_completes_or_is_rejected(
        reqs in arb_trace(),
        n in 1usize..5,
        cap in 1usize..10,
        batch in 1u64..5,
        router_ix in 0usize..4,
        start_ix in 0usize..3,
    ) {
        let config = fleet(n, cap, batch, starts()[start_ix]);
        let report = simulate_fleet(&config, &mut *routers()[router_ix], &reqs);
        prop_assert_eq!(report.outcomes.len(), reqs.len());
        prop_assert_eq!(report.completed() + report.rejected(), reqs.len());
        for (o, req) in report.outcomes.iter().zip(&reqs) {
            prop_assert_eq!(o.id, req.id);
            match o.state {
                OutcomeState::Completed => {
                    prop_assert_eq!(o.tokens, req.gen_len);
                    let replica = o.replica.expect("completed request has a replica");
                    prop_assert!(replica < n);
                    let delay = o.queue_delay_s.unwrap();
                    let ttft = o.ttft_s.unwrap();
                    let e2e = o.e2e_s.unwrap();
                    prop_assert!(delay >= 0.0 && ttft >= delay && e2e >= ttft);
                }
                OutcomeState::Rejected | OutcomeState::Failed => {
                    prop_assert_eq!(o.tokens, 0);
                    prop_assert!(o.replica.is_none());
                }
            }
        }
        let total: u64 = report.outcomes.iter().map(|o| o.tokens).sum();
        prop_assert_eq!(total, report.generated_tokens);
        prop_assert!(report.goodput_tokens <= report.generated_tokens);
    }

    /// Chaos as a passthrough: installing [`ChaosConfig::none`] — chaos
    /// machinery present, every fault/retry/hedge feature disabled — must
    /// leave the report byte-identical to a fleet with no chaos at all.
    #[test]
    fn passthrough_chaos_is_byte_identical(
        reqs in arb_trace(),
        n in 2usize..5,
        cap in 2usize..12,
        batch in 1u64..5,
        router_ix in 0usize..4,
        start_ix in 0usize..3,
        seed in any::<u64>(),
    ) {
        let config = fleet(n, cap, batch, starts()[start_ix]);
        let base = simulate_fleet(&config, &mut *routers()[router_ix], &reqs);
        let with_none = simulate_fleet(
            &config.clone().with_chaos(ChaosConfig::none(seed)),
            &mut *routers()[router_ix],
            &reqs,
        );
        prop_assert_eq!(base.render(), with_none.render());
        prop_assert_eq!(
            format!("{:?}", base.outcomes),
            format!("{:?}", with_none.outcomes)
        );
        prop_assert_eq!(
            format!("{:?}", base.replicas),
            format!("{:?}", with_none.replicas)
        );
    }

    /// Same-seed fault schedules are byte-identical, and each replica's
    /// stream is a function of `(seed, replica)` alone — growing the fleet
    /// never changes the faults an existing replica sees.
    #[test]
    fn fault_schedules_deterministic_and_fleet_size_independent(
        seed in any::<u64>(),
        mtbf_s in 5.0f64..60.0,
        n in 1usize..6,
        extra in 1usize..4,
    ) {
        let chaos = ChaosConfig::none(seed)
            .with_schedule(Vec::new());
        let chaos = ChaosConfig {
            injection: Some(FaultInjection::crashes(mtbf_s, 300.0)),
            ..chaos
        };
        let a = chaos.schedule_for(n);
        let b = chaos.schedule_for(n);
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let grown = chaos.schedule_for(n + extra);
        for r in 0..n {
            let small: Vec<_> = a.iter().filter(|f| f.replica == r).collect();
            let large: Vec<_> = grown.iter().filter(|f| f.replica == r).collect();
            prop_assert_eq!(
                format!("{small:?}"),
                format!("{large:?}"),
                "replica {} stream changed with fleet size",
                r
            );
        }
    }

    /// Conservation under chaos: across crash/retry/hedge chains, every
    /// arrival terminates in exactly one terminal state, retried requests
    /// count their tokens once, and the whole thing is seed-deterministic.
    #[test]
    fn chaos_conserves_requests(
        reqs in arb_trace(),
        n in 2usize..5,
        cap in 2usize..12,
        batch in 1u64..5,
        router_ix in 0usize..4,
        seed in any::<u64>(),
        mtbf_s in 3.0f64..30.0,
        max_retries in 0u32..4,
        hedge in any::<bool>(),
    ) {
        let chaos = ChaosConfig {
            seed,
            injection: Some(FaultInjection::crashes(mtbf_s, 120.0)),
            schedule: Vec::new(),
            retry: RetryPolicy {
                max_retries,
                base_backoff_s: 0.05,
                multiplier: 2.0,
                jitter_frac: 0.2,
                retry_budget: Some(64),
            },
            hedge: None,
        };
        let chaos = if hedge { chaos.with_hedge(0.25) } else { chaos };
        let config = fleet(n, cap, batch, ReplicaStart::Warm).with_chaos(chaos);
        let report = simulate_fleet(&config, &mut *routers()[router_ix], &reqs);
        prop_assert_eq!(report.outcomes.len(), reqs.len());
        prop_assert_eq!(
            report.completed() + report.rejected() + report.failed(),
            reqs.len(),
            "every arrival reaches exactly one terminal state"
        );
        for (o, req) in report.outcomes.iter().zip(&reqs) {
            prop_assert_eq!(o.id, req.id);
            match o.state {
                OutcomeState::Completed => prop_assert_eq!(o.tokens, req.gen_len),
                OutcomeState::Rejected | OutcomeState::Failed => {
                    prop_assert_eq!(o.tokens, 0);
                    prop_assert!(o.replica.is_none());
                }
            }
        }
        let total: u64 = report.outcomes.iter().map(|o| o.tokens).sum();
        prop_assert_eq!(total, report.generated_tokens, "winners counted once");
        // Seed-determinism holds with faults active too.
        let again = simulate_fleet(&config, &mut *routers()[router_ix], &reqs);
        prop_assert_eq!(report.render(), again.render());
        prop_assert_eq!(
            format!("{:?}", report.outcomes),
            format!("{:?}", again.outcomes)
        );
    }

    /// JSQ never routes to a full replica while a non-full one exists, and
    /// never rejects while any replica can still accept.
    #[test]
    fn jsq_never_picks_full_over_available(
        loads in proptest::collection::vec((0usize..8, 1usize..8), 1..6),
    ) {
        let views: Vec<ReplicaView> = loads
            .iter()
            .enumerate()
            .map(|(idx, &(in_flight, cap))| ReplicaView {
                idx,
                now_s: 0.0,
                name: format!("r{idx}"),
                queue_len: in_flight.min(cap),
                active: 0,
                queue_cap: cap,
                max_batch: 4,
                outstanding_tokens: 64 * in_flight as u64,
                predicted_hit_tokens: 0,
                est_prefix_saved_s: 0.0,
                session_resident: false,
                kv_free_blocks: 0,
                kv_total_blocks: 0,
                pipeline_group: None,
                pipeline_stage: 0,
                pipeline_depth: 1,
                warm: true,
                warmup_remaining_s: 0.0,
                est_start_delay_s: in_flight as f64,
                est_service_s: 1.0,
                resident: true,
            })
            .collect();
        let req = ClusterRequest {
            id: 0,
            arrival_s: 0.0,
            prompt_len: 64,
            gen_len: 8,
            ..ClusterRequest::default()
        };
        let choice = JoinShortestQueue.route(&req, &views);
        let any_open = views.iter().any(ReplicaView::can_accept);
        match choice {
            Some(i) => {
                prop_assert!(views[i].can_accept(), "routed to a full replica");
                let best = views
                    .iter()
                    .filter(|v| v.can_accept())
                    .map(ReplicaView::in_flight)
                    .min()
                    .unwrap();
                prop_assert_eq!(views[i].in_flight(), best);
            }
            None => prop_assert!(!any_open, "rejected while a replica had room"),
        }
    }
}
