//! Fault-injection integration tests: crash/slowdown/partition/drain
//! semantics, hedging, retry recovery, recovery-aware autoscaling, and
//! the documented crash-beats-completion tie-break.

use llmsim_cluster::{
    simulate_fleet, AutoscaleConfig, ChaosConfig, ClusterConfig, ClusterRequest, FaultEvent,
    FaultKind, HealthAware, JoinShortestQueue, OutcomeState, ReplicaConfig, RoundRobin,
};
use llmsim_core::resilience::RetryPolicy;
use llmsim_core::{CostModel, CpuBackend};
use llmsim_model::families;
use std::sync::Arc;

fn spr() -> Arc<dyn CostModel + Send + Sync> {
    Arc::new(CpuBackend::paper_spr())
}

fn fleet(n: usize) -> ClusterConfig {
    let replicas = (0..n).map(|_| ReplicaConfig::warm(spr())).collect();
    ClusterConfig::new(replicas, vec![families::opt_13b()])
}

fn req(id: usize, arrival_s: f64) -> ClusterRequest {
    ClusterRequest {
        id,
        arrival_s,
        prompt_len: 128,
        gen_len: 32,
        ..ClusterRequest::default()
    }
}

/// Service time of the standard request on an idle SPR replica, measured
/// from a fault-free run (arrival at t = 0, so e2e = service).
fn service_s() -> f64 {
    let report = simulate_fleet(&fleet(1), &mut RoundRobin::new(), &[req(0, 0.0)]);
    report.outcomes[0].e2e_s.expect("fault-free run completes")
}

/// The documented tie-break, pinned: the fault schedule is pushed at
/// setup, so a crash landing on the *exact* timestamp of a completion
/// fires first and wins — the completion arrives stale (epoch mismatch)
/// and the request is a crash victim, not a completion.
#[test]
fn crash_at_completion_timestamp_beats_the_completion() {
    let e2e = service_s();
    let crash_at = FaultEvent {
        replica: 0,
        at_s: e2e,
        kind: FaultKind::Crash,
    };
    // No retries: the victim terminates as failed.
    let config = fleet(1).with_chaos(ChaosConfig::none(1).with_schedule(vec![crash_at]));
    let report = simulate_fleet(&config, &mut RoundRobin::new(), &[req(0, 0.0)]);
    assert_eq!(report.completed(), 0, "crash wins the timestamp tie");
    assert_eq!(report.failed(), 1);
    assert_eq!(report.crashes, 1);
    assert_eq!(report.outcomes[0].state, OutcomeState::Failed);
    // The attempt had run its entire service when the crash struck: the
    // full generation is wasted work.
    assert_eq!(report.wasted_tokens, 32);

    // Deterministic: the same tie resolves the same way every run.
    let again = simulate_fleet(&config, &mut RoundRobin::new(), &[req(0, 0.0)]);
    assert_eq!(report.render(), again.render());
}

#[test]
fn crash_victim_recovers_via_retry() {
    let e2e = service_s();
    let crash_at = FaultEvent {
        replica: 0,
        at_s: e2e / 2.0,
        kind: FaultKind::Crash,
    };
    let chaos = ChaosConfig::none(3)
        .with_schedule(vec![crash_at])
        .with_retry(RetryPolicy::standard(Some(8)));
    let report = simulate_fleet(
        &fleet(1).with_chaos(chaos),
        &mut RoundRobin::new(),
        &[req(0, 0.0)],
    );
    assert_eq!(report.completed(), 1, "retry re-routes the crash victim");
    let o = &report.outcomes[0];
    assert!(o.retries >= 1, "outcome records its retry count");
    assert_eq!(report.retries, u64::from(o.retries));
    assert!(
        o.e2e_s.unwrap() > e2e,
        "recovered request pays crash + cold restart + backoff"
    );
    // Half the service ran before the crash: ~half the generation wasted.
    assert!(report.wasted_tokens > 0 && report.wasted_tokens < 32);
    assert_eq!(report.replicas[0].crashes, 1);
    assert!(
        report.replicas[0].warmups >= 1,
        "post-crash restart is a cold start"
    );
}

#[test]
fn queued_victims_carry_no_wasted_tokens() {
    // max_batch 1: request 1 is queued (never dispatched) when the crash
    // lands mid-service of request 0.
    let e2e = service_s();
    let mut config = fleet(1);
    config.replicas[0] = config.replicas[0].clone().with_max_batch(1);
    let crash_at = FaultEvent {
        replica: 0,
        at_s: e2e / 2.0,
        kind: FaultKind::Crash,
    };
    let config = config.with_chaos(ChaosConfig::none(5).with_schedule(vec![crash_at]));
    let report = simulate_fleet(&config, &mut RoundRobin::new(), &[req(0, 0.0), req(1, 0.0)]);
    assert_eq!(report.failed(), 2, "no retries configured");
    assert!(
        report.wasted_tokens < 32,
        "only the dispatched attempt's partial run counts as waste"
    );
}

#[test]
fn partition_hides_the_replica_without_killing_its_work() {
    let e2e = service_s();
    // Partition replica 0 from just after the first dispatch until well
    // past the horizon of the second arrival.
    let partition = FaultEvent {
        replica: 0,
        at_s: e2e * 0.1,
        kind: FaultKind::Partition {
            duration_s: e2e * 4.0,
        },
    };
    let config = fleet(2).with_chaos(ChaosConfig::none(7).with_schedule(vec![partition]));
    // Round-robin would alternate; the partition forces both later
    // arrivals onto replica 1.
    let reqs = [req(0, 0.0), req(1, e2e * 0.5), req(2, e2e * 0.6)];
    let report = simulate_fleet(&config, &mut RoundRobin::new(), &reqs);
    assert_eq!(report.completed(), 3, "accepted work survives a partition");
    assert_eq!(
        report.replicas[0].served, 1,
        "only the pre-partition request"
    );
    assert_eq!(report.replicas[1].served, 2);
    assert_eq!(report.crashes, 0);
    assert_eq!(report.wasted_tokens, 0);
}

#[test]
fn slowdown_multiplies_service_of_work_dispatched_in_the_window() {
    let e2e = service_s();
    let slowdown = FaultEvent {
        replica: 0,
        at_s: 0.0,
        kind: FaultKind::Slowdown {
            factor: 3.0,
            duration_s: e2e,
        },
    };
    let config = fleet(1).with_chaos(ChaosConfig::none(9).with_schedule(vec![slowdown]));
    let report = simulate_fleet(&config, &mut RoundRobin::new(), &[req(0, 0.0)]);
    let slowed = report.outcomes[0].e2e_s.unwrap();
    assert!(
        (slowed - 3.0 * e2e).abs() < 1e-9,
        "dispatch inside the window runs at the slowdown factor: {slowed} vs {}",
        3.0 * e2e
    );

    // Work dispatched after the window closes runs at full speed.
    let late = simulate_fleet(&config, &mut RoundRobin::new(), &[req(0, e2e * 3.5)]);
    let fast = late.outcomes[0].e2e_s.unwrap();
    assert!((fast - e2e).abs() < 1e-9, "window closed: {fast} vs {e2e}");
}

#[test]
fn drain_stops_admission_but_finishes_accepted_work() {
    let e2e = service_s();
    let mut config = fleet(1);
    config.replicas[0] = config.replicas[0].clone().with_max_batch(1);
    let drain = FaultEvent {
        replica: 0,
        at_s: e2e * 0.25,
        kind: FaultKind::Drain {
            duration_s: e2e * 4.0,
        },
    };
    let config = config.with_chaos(ChaosConfig::none(11).with_schedule(vec![drain]));
    let reqs = [
        req(0, 0.0),       // in service when the drain starts
        req(1, 0.0),       // queued when the drain starts
        req(2, e2e * 0.5), // arrives mid-drain: rejected
        req(3, e2e * 5.0), // arrives after the drain window: accepted
    ];
    let report = simulate_fleet(&config, &mut RoundRobin::new(), &reqs);
    assert_eq!(report.outcomes[0].state, OutcomeState::Completed);
    assert_eq!(
        report.outcomes[1].state,
        OutcomeState::Completed,
        "queued work accepted before the drain still runs"
    );
    assert_eq!(report.outcomes[2].state, OutcomeState::Rejected);
    assert_eq!(report.outcomes[3].state, OutcomeState::Completed);
    assert_eq!(report.crashes, 0);
    assert_eq!(report.wasted_tokens, 0, "drains lose nothing");
}

#[test]
fn hedge_wins_the_race_when_the_primary_is_slow() {
    let e2e = service_s();
    // Replica 0 is 10x slow for a long window; ties route to it first.
    let slowdown = FaultEvent {
        replica: 0,
        at_s: 0.0,
        kind: FaultKind::Slowdown {
            factor: 10.0,
            duration_s: e2e * 20.0,
        },
    };
    let chaos = ChaosConfig::none(13)
        .with_schedule(vec![slowdown])
        .with_hedge(0.25);
    let report = simulate_fleet(
        &fleet(2).with_chaos(chaos),
        &mut JoinShortestQueue,
        &[req(0, 0.0)],
    );
    assert_eq!(report.completed(), 1);
    assert_eq!(report.hedges, 1);
    let o = &report.outcomes[0];
    assert!(o.hedged);
    assert_eq!(o.replica, Some(1), "the hedge on the healthy replica wins");
    let hedged_e2e = o.e2e_s.unwrap();
    assert!(
        hedged_e2e < 2.0 * e2e,
        "first-wins: {hedged_e2e} must beat the 10x-slowed primary {}",
        10.0 * e2e
    );
    assert!(
        report.wasted_tokens > 0,
        "the cancelled slow primary's partial run is waste"
    );
    // Same seed, same race winner, byte for byte.
    let again = simulate_fleet(
        &fleet(2).with_chaos(
            ChaosConfig::none(13)
                .with_schedule(vec![slowdown])
                .with_hedge(0.25),
        ),
        &mut JoinShortestQueue,
        &[req(0, 0.0)],
    );
    assert_eq!(report.render(), again.render());
}

#[test]
fn health_aware_router_shifts_traffic_off_a_crashy_replica() {
    let e2e = service_s();
    // Replica 0 crashes twice early; the breaker should eject it and
    // route the rest of the trace to replica 1.
    let crashes = vec![
        FaultEvent {
            replica: 0,
            at_s: e2e * 0.2,
            kind: FaultKind::Crash,
        },
        FaultEvent {
            replica: 0,
            at_s: e2e * 0.4,
            kind: FaultKind::Crash,
        },
    ];
    let chaos = ChaosConfig::none(17)
        .with_schedule(crashes)
        .with_retry(RetryPolicy::standard(Some(16)));
    let config = fleet(2).with_chaos(chaos);
    let reqs: Vec<ClusterRequest> = (0..8).map(|i| req(i, i as f64 * e2e * 0.1)).collect();

    let mut breaker = HealthAware::new(RoundRobin::new(), 17);
    let guarded = simulate_fleet(&config, &mut breaker, &reqs);
    let mut plain = RoundRobin::new();
    let unguarded = simulate_fleet(&config, &mut plain, &reqs);

    assert!(guarded.completed() >= unguarded.completed());
    assert!(
        guarded.replicas[1].served > guarded.replicas[0].served,
        "breaker shifts traffic to the healthy replica: {} vs {}",
        guarded.replicas[1].served,
        guarded.replicas[0].served
    );
    assert!(guarded.router.starts_with("health("));
}

#[test]
fn autoscaler_replaces_a_crashed_replica_from_standby() {
    let e2e = service_s();
    let mut config = fleet(2);
    config.replicas[1] = ReplicaConfig::standby(spr());
    let crash = FaultEvent {
        replica: 0,
        at_s: e2e * 0.5,
        kind: FaultKind::Crash,
    };
    let chaos = ChaosConfig::none(19)
        .with_schedule(vec![crash])
        .with_retry(RetryPolicy::standard(Some(16)));
    let config = config.with_chaos(chaos).with_autoscale(AutoscaleConfig {
        interval_s: e2e * 0.2,
        ..AutoscaleConfig::default()
    });
    let reqs: Vec<ClusterRequest> = (0..6).map(|i| req(i, i as f64 * e2e * 0.3)).collect();
    let report = simulate_fleet(&config, &mut RoundRobin::new(), &reqs);
    assert!(
        report.scale_ups >= 1,
        "a standby replacement spins up for the crashed replica"
    );
    assert!(
        report.replicas[1].served > 0,
        "the replacement takes traffic after paying its cold start"
    );
    assert_eq!(
        report.completed() + report.rejected() + report.failed(),
        reqs.len()
    );
}
