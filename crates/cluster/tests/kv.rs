//! Paged-KV properties.
//!
//! The KV subsystem is strictly additive: with `ClusterConfig::kv` unset
//! the fast engine must stay byte-identical to the preserved seed engine
//! even on session-structured traces carrying prefix/session identities.
//! With KV enabled, the engine asserts block conservation after every
//! event internally — these properties drive it across drawn pool sizes,
//! block sizes, chaos, and preemption pressure so that assert actually
//! fires on any leak — and the sharded replay must stay thread-count
//! invariant with prefix-hit counters intact.

use llmsim_cluster::{
    shard_fleet, simulate_fleet, simulate_fleet_legacy, simulate_fleet_traced, simulate_shards,
    ChaosConfig, ClusterConfig, ClusterRequest, FaultInjection, JoinShortestQueue, KvConfig,
    PrefixAware, ReplicaConfig, RouterPolicy, SloTargets,
};
use llmsim_core::resilience::RetryPolicy;
use llmsim_core::{CostModel, CpuBackend, VecSink};
use llmsim_model::families;
use llmsim_report::validate_tsv;
use llmsim_workload::{synthesize_sessions, SessionSpec};
use proptest::prelude::*;
use std::sync::Arc;

/// A homogeneous SPR fleet (CPU serving is where paged KV matters most in
/// this paper's setting).
fn spr_fleet(n: usize, queue_cap: usize, max_batch: u64) -> ClusterConfig {
    let replicas: Vec<ReplicaConfig> = (0..n)
        .map(|_| {
            let backend: Arc<dyn CostModel + Send + Sync> = Arc::new(CpuBackend::paper_spr());
            ReplicaConfig::warm(backend)
                .with_queue_cap(queue_cap)
                .with_max_batch(max_batch.min(queue_cap as u64))
        })
        .collect();
    ClusterConfig::new(replicas, vec![families::opt_13b()]).with_slo(SloTargets {
        ttft_s: 5.0,
        e2e_s: 60.0,
    })
}

/// A session trace as fleet requests: ids are positional, models pinned
/// per session so chains never straddle models.
fn session_trace(seed: u64, sessions: usize, rate_per_s: f64) -> Vec<ClusterRequest> {
    let spec = SessionSpec::chat_day(seed, sessions, rate_per_s);
    synthesize_sessions(&spec)
        .iter()
        .enumerate()
        .map(|(i, r)| ClusterRequest {
            id: i,
            arrival_s: r.arrival_s,
            prompt_len: r.prompt_len,
            gen_len: r.gen_len,
            model: 0,
            prefix_id: r.prefix_id,
            prefix_len: r.prefix_len,
            session: r.session,
        })
        .collect()
}

fn crashy(seed: u64) -> ChaosConfig {
    ChaosConfig {
        seed,
        injection: Some(FaultInjection::crashes(20.0, 120.0)),
        schedule: Vec::new(),
        retry: RetryPolicy {
            max_retries: 2,
            base_backoff_s: 0.05,
            multiplier: 2.0,
            jitter_frac: 0.2,
            retry_budget: Some(64),
        },
        hedge: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// KV disabled (the default) is byte-identical to the seed engine on
    /// session traces — the new request fields, report columns, and
    /// router-view signals are all inert until `with_kv` opts in.
    #[test]
    fn kv_disabled_is_byte_identical_to_legacy(
        seed in any::<u64>(),
        sessions in 5usize..40,
        n in 1usize..4,
        cap in 4usize..12,
        batch in 1u64..6,
        chaos_on in any::<bool>(),
    ) {
        let reqs = session_trace(seed, sessions, 2.0);
        let mut config = spr_fleet(n, cap, batch);
        if chaos_on {
            config = config.with_chaos(crashy(seed));
        }
        let legacy = simulate_fleet_legacy(&config, &mut JoinShortestQueue, &reqs);
        let fast = simulate_fleet(&config, &mut JoinShortestQueue, &reqs);
        prop_assert_eq!(legacy.render(), fast.render());
        prop_assert_eq!(
            format!("{:?}", legacy.outcomes),
            format!("{:?}", fast.outcomes)
        );
        prop_assert_eq!(
            format!("{:?}", legacy.replicas),
            format!("{:?}", fast.replicas)
        );
        prop_assert_eq!(fast.prefix_hit_tokens, 0);
        prop_assert_eq!(fast.preemptions, 0);
    }

    /// KV-enabled runs hold block conservation at every event (asserted
    /// inside the engine), terminate every request, stay deterministic
    /// run-to-run, and only hit prefixes when prefix caching is on —
    /// across drawn block sizes and pool capacities tight enough to force
    /// eviction and preemption.
    #[test]
    fn kv_enabled_conserves_blocks_and_is_deterministic(
        seed in any::<u64>(),
        sessions in 5usize..30,
        n in 1usize..4,
        bt_ix in 0usize..3,
        cap_blocks in 600u64..4000,
        caching in any::<bool>(),
        chaos_on in any::<bool>(),
    ) {
        let reqs = session_trace(seed, sessions, 2.0);
        let block_tokens = [8u64, 16, 32][bt_ix];
        let kv = KvConfig::new()
            .with_block_tokens(block_tokens)
            .with_prefix_caching(caching)
            .with_capacity_blocks(cap_blocks);
        let mut config = spr_fleet(n, 12, 6).with_kv(kv);
        if chaos_on {
            config = config.with_chaos(crashy(seed));
        }
        let a = simulate_fleet(&config, &mut JoinShortestQueue, &reqs);
        let b = simulate_fleet(&config, &mut JoinShortestQueue, &reqs);
        prop_assert_eq!(a.render(), b.render());
        prop_assert_eq!(a.outcomes.len(), reqs.len());
        if !caching {
            prop_assert_eq!(a.prefix_hit_tokens, 0);
        }
        for r in &a.replicas {
            prop_assert!((0.0..=1.0).contains(&r.kv_peak_occupancy));
            prop_assert!(r.kv_mean_occupancy <= r.kv_peak_occupancy + 1e-12);
        }
    }

    /// Sharded KV-enabled replay is invariant to the worker thread count,
    /// including the new prefix-hit / preemption counters in the merged
    /// report.
    #[test]
    fn kv_sharded_replay_is_thread_count_invariant(
        seed in any::<u64>(),
        sessions in 10usize..40,
        k in 2usize..5,
    ) {
        let reqs = session_trace(seed, sessions, 4.0);
        let config = spr_fleet(2, 12, 6).with_kv(KvConfig::new().with_capacity_blocks(1500));
        let shards = shard_fleet(&config, &reqs, k);
        let make: &(dyn Fn(usize) -> Box<dyn RouterPolicy> + Sync) =
            &|_| Box::new(PrefixAware::new());
        let serial = simulate_shards(&shards, make, 1);
        for threads in [2usize, 4] {
            let parallel = simulate_shards(&shards, make, threads);
            prop_assert_eq!(serial.render(), parallel.render());
            prop_assert_eq!(serial.prefix_hit_tokens, parallel.prefix_hit_tokens);
            prop_assert_eq!(serial.preemptions, parallel.preemptions);
        }
        prop_assert_eq!(serial.outcomes.len(), reqs.len());
    }
}

/// Session traffic through a prefix-caching fleet actually shares KV:
/// the shared system prompts and per-session chains produce nonzero hit
/// tokens, and the saved prefill shortens the makespan relative to the
/// same fleet with caching off.
#[test]
fn prefix_caching_hits_and_helps_on_session_traffic() {
    let reqs = session_trace(42, 60, 2.0);
    let on = spr_fleet(2, 16, 8).with_kv(KvConfig::new().with_capacity_blocks(4000));
    let off = spr_fleet(2, 16, 8).with_kv(
        KvConfig::new()
            .with_capacity_blocks(4000)
            .with_prefix_caching(false),
    );
    let hit = simulate_fleet(&on, &mut JoinShortestQueue, &reqs);
    let cold = simulate_fleet(&off, &mut JoinShortestQueue, &reqs);
    assert!(
        hit.prefix_hit_tokens > 0,
        "session traffic must hit the prefix cache"
    );
    assert_eq!(cold.prefix_hit_tokens, 0);
    assert!(
        hit.makespan_s <= cold.makespan_s,
        "skipped prefill cannot lengthen the run: {} vs {}",
        hit.makespan_s,
        cold.makespan_s
    );
}

/// A pool far too small for the offered context forces preemptions, and
/// the run still terminates with every request resolved and wasted tokens
/// accounted.
#[test]
fn tight_pools_preempt_and_still_terminate() {
    let reqs = session_trace(7, 30, 4.0);
    let max_final = reqs
        .iter()
        .map(|r| (r.prompt_len + r.gen_len).div_ceil(16))
        .max()
        .unwrap();
    // Just enough for the biggest single sequence plus a little contention.
    let config = spr_fleet(1, 16, 8).with_kv(KvConfig::new().with_capacity_blocks(max_final + 8));
    let report = simulate_fleet(&config, &mut JoinShortestQueue, &reqs);
    assert_eq!(report.outcomes.len(), reqs.len());
    assert!(
        report.preemptions > 0,
        "a starved pool must preempt: {}",
        report.render()
    );
    assert!(report.wasted_tokens > 0, "preemption wastes partial decode");
}

/// Traced KV runs emit well-formed span TSV whose new `prefix_hit_tokens`
/// and `preemptions` columns reconcile with the fleet-level counters:
/// rejected spans carry zeros, and summing the hit column over completed
/// spans reproduces `FleetReport::prefix_hit_tokens` exactly.
#[test]
fn traced_kv_spans_validate_and_reconcile_hit_columns() {
    let reqs = session_trace(9, 40, 2.0);
    let config = spr_fleet(1, 16, 8).with_kv(KvConfig::new().with_capacity_blocks(4000));
    let mut sink = VecSink::new();
    let report = simulate_fleet_traced(&config, &mut JoinShortestQueue, &reqs, &mut sink);
    let tsv = sink.to_tsv();
    assert_eq!(validate_tsv(&tsv), Ok(reqs.len()));
    let header = tsv.lines().next().unwrap();
    let col = |name: &str| {
        header
            .split('\t')
            .position(|c| c == name)
            .unwrap_or_else(|| panic!("missing column {name}"))
    };
    let (hit_col, outcome_col) = (col("prefix_hit_tokens"), col("outcome"));
    let mut span_hits = 0u64;
    for line in tsv.lines().skip(1) {
        let fields: Vec<&str> = line.split('\t').collect();
        let hits: u64 = fields[hit_col].parse().unwrap();
        if fields[outcome_col] == "completed" {
            span_hits += hits;
        } else {
            assert_eq!(hits, 0, "non-completed span with hit tokens: {line}");
        }
    }
    assert!(report.prefix_hit_tokens > 0, "session trace must hit");
    assert_eq!(span_hits, report.prefix_hit_tokens);
}

/// `ClusterConfig::validate` rejects a queue cap smaller than the batch
/// width instead of silently truncating the batch.
#[test]
#[should_panic(expected = "queue_cap")]
fn queue_cap_below_max_batch_is_rejected() {
    let backend: Arc<dyn CostModel + Send + Sync> = Arc::new(CpuBackend::paper_spr());
    let cfg = ReplicaConfig::warm(backend)
        .with_queue_cap(2)
        .with_max_batch(8);
    let config = ClusterConfig::new(vec![cfg], vec![families::opt_13b()]);
    let reqs = session_trace(1, 2, 1.0);
    let _ = simulate_fleet(&config, &mut JoinShortestQueue, &reqs);
}
