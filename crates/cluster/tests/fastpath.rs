//! Fast-path equivalence properties.
//!
//! The engine rewrite (slab allocation, memoized pricing, O(1) id
//! lookups, persistent router views) and the sharded parallel replay are
//! pure performance work: none of it may move a single byte of output.
//! These properties hold the fast engine to the preserved seed engine,
//! streaming span sinks to the buffered renderer, and the parallel shard
//! replay to its own serial execution, across randomly drawn
//! heterogeneous fleets, traces, routers, and chaos configurations.

use llmsim_cluster::{
    merge_reports, shard_fleet, simulate_fleet, simulate_fleet_legacy, simulate_fleet_traced,
    simulate_fleet_traced_legacy, simulate_shards, simulate_shards_traced, AutoscaleConfig,
    ChaosConfig, ClusterConfig, ClusterRequest, FaultInjection, HeteroAware, JoinShortestQueue,
    LeastOutstandingTokens, ReplicaConfig, ReplicaStart, RoundRobin, RouterPolicy, SloTargets,
};
use llmsim_core::resilience::RetryPolicy;
use llmsim_core::trace::span_log;
use llmsim_core::{CostModel, CpuBackend, GpuBackend, StreamSink, VecSink};
use llmsim_model::families;
use proptest::prelude::*;
use std::sync::Arc;

/// A heterogeneous fleet: `n` replicas cycling through SPR / ICL / A100 /
/// H100 backends, with drawn queue caps and batch widths, the tail of the
/// fleet starting in the drawn state.
fn fleet(n: usize, queue_cap: usize, max_batch: u64, tail_start: ReplicaStart) -> ClusterConfig {
    let replicas: Vec<ReplicaConfig> = (0..n)
        .map(|i| {
            let backend: Arc<dyn CostModel + Send + Sync> = match i % 4 {
                0 => Arc::new(CpuBackend::paper_spr()),
                1 => Arc::new(CpuBackend::paper_icl()),
                2 => Arc::new(GpuBackend::paper_a100()),
                _ => Arc::new(GpuBackend::paper_h100()),
            };
            // Drawn independently, so clamp the batch to the queue cap:
            // `ClusterConfig::validate` rejects queue_cap < max_batch.
            let mut cfg = ReplicaConfig::warm(backend)
                .with_queue_cap(queue_cap)
                .with_max_batch(max_batch.min(queue_cap as u64));
            if i == n - 1 {
                cfg.start = tail_start;
            }
            cfg
        })
        .collect();
    ClusterConfig::new(replicas, vec![families::opt_1_3b(), families::opt_13b()])
        .with_slo(SloTargets {
            ttft_s: 2.0,
            e2e_s: 30.0,
        })
        .with_autoscale(AutoscaleConfig::default())
}

fn arb_trace() -> impl Strategy<Value = Vec<ClusterRequest>> {
    (1usize..24, 1u64..256, 1u64..32, 0u64..500).prop_map(|(n, p0, g0, gap_ms)| {
        (0..n)
            .map(|i| ClusterRequest {
                id: i,
                arrival_s: i as f64 * gap_ms as f64 / 1000.0,
                prompt_len: p0 + 13 * (i as u64 % 7),
                gen_len: g0 + 5 * (i as u64 % 4),
                model: i % 2,
                ..ClusterRequest::default()
            })
            .collect()
    })
}

fn router(ix: usize) -> Box<dyn RouterPolicy> {
    match ix % 4 {
        0 => Box::new(RoundRobin::new()),
        1 => Box::new(JoinShortestQueue),
        2 => Box::new(LeastOutstandingTokens),
        _ => Box::new(HeteroAware),
    }
}

fn starts() -> [ReplicaStart; 3] {
    [
        ReplicaStart::Warm,
        ReplicaStart::Cold,
        ReplicaStart::Standby,
    ]
}

/// A chaos config exercising crashes, retries, and (optionally) hedging.
fn chaos(seed: u64, mtbf_s: f64, max_retries: u32, hedge: bool) -> ChaosConfig {
    let chaos = ChaosConfig {
        seed,
        injection: Some(FaultInjection::crashes(mtbf_s, 120.0)),
        schedule: Vec::new(),
        retry: RetryPolicy {
            max_retries,
            base_backoff_s: 0.05,
            multiplier: 2.0,
            jitter_frac: 0.2,
            retry_budget: Some(64),
        },
        hedge: None,
    };
    if hedge {
        chaos.with_hedge(0.25)
    } else {
        chaos
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The rewritten engine is byte-identical to the preserved seed
    /// engine — report rendering, outcome-by-outcome debug formatting,
    /// per-replica stats, and the new event counters — including under
    /// crash/retry/hedge chaos, where any divergence in event or RNG
    /// ordering would cascade into visibly different outcomes.
    #[test]
    fn fast_engine_is_byte_identical_to_legacy(
        reqs in arb_trace(),
        n in 2usize..5,
        cap in 2usize..12,
        batch in 1u64..5,
        router_ix in 0usize..4,
        start_ix in 0usize..3,
        seed in any::<u64>(),
        mtbf_s in 3.0f64..30.0,
        max_retries in 0u32..4,
        hedge in any::<bool>(),
        chaos_on in any::<bool>(),
    ) {
        let mut config = fleet(n, cap, batch, starts()[start_ix]);
        if chaos_on {
            config = config.with_chaos(chaos(seed, mtbf_s, max_retries, hedge));
        }
        let legacy = simulate_fleet_legacy(&config, &mut *router(router_ix), &reqs);
        let fast = simulate_fleet(&config, &mut *router(router_ix), &reqs);
        prop_assert_eq!(legacy.render(), fast.render());
        prop_assert_eq!(
            format!("{:?}", legacy.outcomes),
            format!("{:?}", fast.outcomes)
        );
        prop_assert_eq!(
            format!("{:?}", legacy.replicas),
            format!("{:?}", fast.replicas)
        );
        prop_assert_eq!(legacy.events_processed, fast.events_processed);
        prop_assert_eq!(legacy.peak_in_flight, fast.peak_in_flight);
    }

    /// Both engines emit identical span logs, and the streaming sink's
    /// incremental TSV/JSONL bytes match rendering the same spans through
    /// the buffered `span_log` path — even with a pathologically small
    /// flush threshold forcing a write every record.
    #[test]
    fn traced_spans_and_streaming_bytes_are_identical(
        reqs in arb_trace(),
        n in 2usize..5,
        cap in 2usize..12,
        batch in 1u64..5,
        router_ix in 0usize..4,
        start_ix in 0usize..3,
        buf in 1usize..64,
    ) {
        let config = fleet(n, cap, batch, starts()[start_ix]);
        let mut fast_spans = VecSink::new();
        let fast = simulate_fleet_traced(&config, &mut *router(router_ix), &reqs, &mut fast_spans);
        let mut legacy_spans = VecSink::new();
        let legacy = simulate_fleet_traced_legacy(
            &config,
            &mut *router(router_ix),
            &reqs,
            &mut legacy_spans,
        );
        prop_assert_eq!(legacy.render(), fast.render());
        prop_assert_eq!(legacy_spans.to_tsv(), fast_spans.to_tsv());
        prop_assert_eq!(legacy_spans.to_jsonl(), fast_spans.to_jsonl());

        // Streaming vs buffered: same run, same bytes, no sorting — the
        // comparison target is the emission-order render.
        let mut tsv = StreamSink::tsv(Vec::new()).with_buffer_bytes(buf);
        let traced = simulate_fleet_traced(&config, &mut *router(router_ix), &reqs, &mut tsv);
        prop_assert_eq!(traced.render(), fast.render());
        let tsv_bytes = tsv.finish_into().expect("stream sink io error");
        prop_assert_eq!(
            String::from_utf8_lossy(&tsv_bytes).into_owned(),
            span_log(&fast_spans.spans).to_tsv()
        );

        let mut jsonl = StreamSink::jsonl(Vec::new()).with_buffer_bytes(buf);
        let _ = simulate_fleet_traced(&config, &mut *router(router_ix), &reqs, &mut jsonl);
        let jsonl_bytes = jsonl.finish_into().expect("stream sink io error");
        prop_assert_eq!(
            String::from_utf8_lossy(&jsonl_bytes).into_owned(),
            span_log(&fast_spans.spans).to_jsonl()
        );
    }

    /// Parallel shard replay is invariant to the worker thread count —
    /// 1, 2, and 4 threads produce byte-identical merged reports and
    /// span logs — and matches the hand-rolled serial fold over
    /// per-shard `simulate_fleet` runs.
    #[test]
    fn sharded_replay_is_thread_count_invariant(
        reqs in arb_trace(),
        n in 2usize..5,
        cap in 2usize..12,
        batch in 1u64..5,
        router_ix in 0usize..4,
        k in 1usize..5,
        seed in any::<u64>(),
        chaos_on in any::<bool>(),
    ) {
        let mut config = fleet(n, cap, batch, ReplicaStart::Warm);
        if chaos_on {
            config = config.with_chaos(chaos(seed, 10.0, 2, false));
        }
        let shards = shard_fleet(&config, &reqs, k);
        let make: &(dyn Fn(usize) -> Box<dyn RouterPolicy> + Sync) = &|_| router(router_ix);

        let serial = simulate_shards(&shards, make, 1);
        for threads in [2usize, 4] {
            let parallel = simulate_shards(&shards, make, threads);
            prop_assert_eq!(serial.render(), parallel.render());
            prop_assert_eq!(
                format!("{:?}", serial.outcomes),
                format!("{:?}", parallel.outcomes)
            );
        }

        // The merge is nothing more than the in-order fold of independent
        // single-fleet runs.
        let folded = merge_reports(
            &shards,
            shards
                .iter()
                .enumerate()
                .map(|(ix, s)| simulate_fleet(&s.config, &mut *make(ix), &s.requests))
                .collect(),
        );
        prop_assert_eq!(serial.render(), folded.render());
        prop_assert_eq!(
            format!("{:?}", serial.outcomes),
            format!("{:?}", folded.outcomes)
        );
        prop_assert_eq!(serial.outcomes.len(), reqs.len());

        // Traced shards: per-shard span logs are thread-count invariant
        // and carry source ids.
        let mut sinks_a: Vec<VecSink> = (0..shards.len()).map(|_| VecSink::new()).collect();
        let mut sinks_b: Vec<VecSink> = (0..shards.len()).map(|_| VecSink::new()).collect();
        let ta = simulate_shards_traced(&shards, make, 1, &mut sinks_a);
        let tb = simulate_shards_traced(&shards, make, 3, &mut sinks_b);
        prop_assert_eq!(ta.render(), tb.render());
        prop_assert_eq!(ta.render(), serial.render());
        for (a, b) in sinks_a.iter().zip(&sinks_b) {
            prop_assert_eq!(a.to_tsv(), b.to_tsv());
        }
        let seen: usize = sinks_a.iter().map(|s| s.spans.len()).sum();
        prop_assert_eq!(seen, reqs.len());
    }
}
