//! Replica-scoped fault injection for the fleet simulator.
//!
//! This module lifts the single-node fault machinery of
//! `llmsim_core::resilience` to fleet scale: instead of per-iteration
//! coin flips inside one server, faults here are *first-class engine
//! events* with a replica, a timestamp, and a kind, drawn once up front
//! from the run seed. The schedule generator gives every replica its own
//! [`SimRng`] substream ([`SimRng::derive`]), so the faults replica `i`
//! sees are a function of `(seed, i)` alone — byte-identical across runs
//! and independent of fleet size or replica iteration order (proptested
//! in `tests/chaos.rs`).
//!
//! The recovery side reuses `core::resilience` vocabulary directly:
//! [`RetryPolicy`] governs re-routing of requests lost to crashes
//! (exponential backoff, deterministic jitter, fleet-wide budget), and
//! [`ChaosConfig::none`] is the passthrough configuration under which the
//! engine must reproduce the chaos-free fleet byte for byte.

use llmsim_core::resilience::{RetryPolicy, SimRng};
use llmsim_workload::ChaosScenario;
use serde::Serialize;

/// What an injected fault does to its replica.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum FaultKind {
    /// The replica dies: every queued and in-service request on it is
    /// destroyed (resolved to a backend fault and re-routed under the
    /// retry policy) and the replica re-cold-starts, paying its
    /// hardware-derived warmup before serving again.
    Crash,
    /// Service-time multiplier window: requests *dispatched* while the
    /// window is open run `factor` times slower (noisy neighbour,
    /// frequency dip). In-service work is not retimed.
    Slowdown {
        /// Cost multiplier (≥ 1) applied at dispatch.
        factor: f64,
        /// Window length, seconds.
        duration_s: f64,
    },
    /// The replica becomes unreachable to the router for a window: no new
    /// work is admitted, but accepted work keeps running and completes.
    Partition {
        /// Window length, seconds.
        duration_s: f64,
    },
    /// Graceful maintenance drain: admission stops immediately, accepted
    /// work finishes, and the replica returns to service when the window
    /// closes. Nothing is lost.
    Drain {
        /// Window length, seconds.
        duration_s: f64,
    },
}

/// One scheduled fault: `kind` strikes `replica` at `at_s`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FaultEvent {
    /// Fleet index of the victim replica.
    pub replica: usize,
    /// Injection time, seconds.
    pub at_s: f64,
    /// What happens.
    pub kind: FaultKind,
}

/// Stochastic fault-process parameters: a per-replica Poisson process
/// with exponential inter-fault gaps of mean [`FaultInjection::mtbf_s`],
/// each fault's kind drawn from the normalized weights.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FaultInjection {
    /// Per-replica mean time between faults, seconds. Infinite disables
    /// the process (no faults are ever drawn).
    pub mtbf_s: f64,
    /// Faults are drawn in `[0, horizon_s)`.
    pub horizon_s: f64,
    /// Relative weight of [`FaultKind::Crash`].
    pub crash_weight: f64,
    /// Relative weight of [`FaultKind::Slowdown`].
    pub slowdown_weight: f64,
    /// Relative weight of [`FaultKind::Partition`].
    pub partition_weight: f64,
    /// Relative weight of [`FaultKind::Drain`].
    pub drain_weight: f64,
    /// Slowdown multiplier (≥ 1).
    pub slowdown_factor: f64,
    /// Slowdown window, seconds.
    pub slowdown_s: f64,
    /// Partition window, seconds.
    pub partition_s: f64,
    /// Drain window, seconds.
    pub drain_s: f64,
}

impl FaultInjection {
    /// Crash-only injection at the given MTBF over `horizon_s`.
    #[must_use]
    pub fn crashes(mtbf_s: f64, horizon_s: f64) -> Self {
        FaultInjection {
            mtbf_s,
            horizon_s,
            crash_weight: 1.0,
            slowdown_weight: 0.0,
            partition_weight: 0.0,
            drain_weight: 0.0,
            slowdown_factor: 1.0,
            slowdown_s: 0.0,
            partition_s: 0.0,
            drain_s: 0.0,
        }
    }

    /// Validates weights and windows.
    ///
    /// # Panics
    ///
    /// Panics on negative weights, a non-positive weight sum, a slowdown
    /// factor below 1, or negative/non-finite windows.
    pub fn validate(&self) {
        for (name, w) in [
            ("crash_weight", self.crash_weight),
            ("slowdown_weight", self.slowdown_weight),
            ("partition_weight", self.partition_weight),
            ("drain_weight", self.drain_weight),
        ] {
            assert!(w >= 0.0, "{name} must be non-negative, got {w}");
        }
        assert!(
            self.crash_weight + self.slowdown_weight + self.partition_weight + self.drain_weight
                > 0.0,
            "at least one fault kind must carry weight"
        );
        assert!(self.slowdown_factor >= 1.0, "slowdown factor must be >= 1");
        for (name, d) in [
            ("slowdown_s", self.slowdown_s),
            ("partition_s", self.partition_s),
            ("drain_s", self.drain_s),
            ("horizon_s", self.horizon_s),
        ] {
            assert!(d >= 0.0 && d.is_finite(), "{name} must be finite and >= 0");
        }
        assert!(self.mtbf_s > 0.0, "mtbf must be positive");
    }

    /// Draws one replica's fault stream from its derived substream.
    fn events_for(&self, seed: u64, replica: usize) -> Vec<FaultEvent> {
        let mut rng = SimRng::derive(seed, replica as u64);
        let mut events = Vec::new();
        let mut t_s = 0.0;
        loop {
            t_s += rng.exp_s(self.mtbf_s);
            if t_s >= self.horizon_s {
                return events;
            }
            let total = self.crash_weight
                + self.slowdown_weight
                + self.partition_weight
                + self.drain_weight;
            let draw = rng.next_f64() * total;
            let kind = if draw < self.crash_weight {
                FaultKind::Crash
            } else if draw < self.crash_weight + self.slowdown_weight {
                FaultKind::Slowdown {
                    factor: self.slowdown_factor,
                    duration_s: self.slowdown_s,
                }
            } else if draw < self.crash_weight + self.slowdown_weight + self.partition_weight {
                FaultKind::Partition {
                    duration_s: self.partition_s,
                }
            } else {
                FaultKind::Drain {
                    duration_s: self.drain_s,
                }
            };
            events.push(FaultEvent {
                replica,
                at_s: t_s,
                kind,
            });
        }
    }
}

/// Hedged dispatch: if a request is still unresolved after a fraction of
/// its deadline, a duplicate attempt is routed to a second replica and
/// whichever attempt completes first wins (the loser is cancelled
/// deterministically and its partial work counted as wasted).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct HedgePolicy {
    /// Hedge fires at `after_frac` × the e2e SLO after arrival (or
    /// `after_frac` × the routing-time service estimate when the fleet
    /// has no SLO configured).
    pub after_frac: f64,
}

/// Full fleet-level chaos configuration: the seeded fault schedule plus
/// the recovery machinery (retry + hedging).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ChaosConfig {
    /// Seed for the fault schedule and every backoff-jitter draw.
    pub seed: u64,
    /// Stochastic fault process; `None` draws nothing.
    pub injection: Option<FaultInjection>,
    /// Explicit faults merged into the drawn schedule (tests, replayed
    /// incident timelines). May be empty.
    pub schedule: Vec<FaultEvent>,
    /// Re-routing policy for requests destroyed by crashes: exponential
    /// backoff with deterministic jitter under a fleet-wide budget.
    pub retry: RetryPolicy,
    /// Hedged dispatch; `None` disables it.
    pub hedge: Option<HedgePolicy>,
}

impl ChaosConfig {
    /// The passthrough configuration: no faults, no retries, no hedging.
    /// A fleet simulated under this must produce a report byte-identical
    /// to one with chaos disabled entirely (proptested).
    #[must_use]
    pub fn none(seed: u64) -> Self {
        ChaosConfig {
            seed,
            injection: None,
            schedule: Vec::new(),
            retry: RetryPolicy::disabled(),
            hedge: None,
        }
    }

    /// Builds the chaos side of a [`ChaosScenario`] preset (the arrival
    /// side is built by the workload generators).
    #[must_use]
    pub fn from_scenario(seed: u64, s: &ChaosScenario) -> Self {
        let injection = s.mtbf_s.is_finite().then_some(FaultInjection {
            mtbf_s: s.mtbf_s,
            horizon_s: s.fault_horizon_s,
            crash_weight: s.crash_weight,
            slowdown_weight: s.slowdown_weight,
            partition_weight: s.partition_weight,
            drain_weight: s.drain_weight,
            slowdown_factor: s.slowdown_factor,
            slowdown_s: s.slowdown_s,
            partition_s: s.partition_s,
            drain_s: s.drain_s,
        });
        ChaosConfig {
            seed,
            injection,
            schedule: Vec::new(),
            retry: RetryPolicy {
                max_retries: s.max_retries,
                base_backoff_s: 0.05,
                multiplier: 2.0,
                jitter_frac: 0.2,
                retry_budget: s.retry_budget,
            },
            hedge: s
                .hedge_after_frac
                .map(|after_frac| HedgePolicy { after_frac }),
        }
    }

    /// Sets the explicit fault schedule.
    #[must_use]
    pub fn with_schedule(mut self, schedule: Vec<FaultEvent>) -> Self {
        self.schedule = schedule;
        self
    }

    /// Sets the retry policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Enables hedged dispatch.
    #[must_use]
    pub fn with_hedge(mut self, after_frac: f64) -> Self {
        self.hedge = Some(HedgePolicy { after_frac });
        self
    }

    /// The complete fault schedule for an `n_replicas` fleet: the drawn
    /// per-replica streams merged with the explicit schedule, ordered by
    /// `(time, replica)`. Each replica's stream comes from its own
    /// derived substream, so the result for replica `i` is unchanged by
    /// adding or removing other replicas.
    ///
    /// # Panics
    ///
    /// Panics if the injection parameters fail validation or an explicit
    /// fault names a replica outside the fleet.
    #[must_use]
    pub fn schedule_for(&self, n_replicas: usize) -> Vec<FaultEvent> {
        let mut events: Vec<FaultEvent> = Vec::new();
        if let Some(inj) = &self.injection {
            inj.validate();
            for replica in 0..n_replicas {
                events.extend(inj.events_for(self.seed, replica));
            }
        }
        for f in &self.schedule {
            assert!(
                f.replica < n_replicas,
                "explicit fault names replica {} but the fleet has {}",
                f.replica,
                n_replicas
            );
            events.push(*f);
        }
        // Stable sort on a total order: per-replica times are strictly
        // increasing, so (time, replica) ties can only involve explicit
        // entries, which keep their input order.
        events.sort_by(|a, b| a.at_s.total_cmp(&b.at_s).then(a.replica.cmp(&b.replica)));
        events
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact float assertions are deliberate: determinism is bit-level
mod tests {
    use super::*;

    #[test]
    fn schedule_is_seed_deterministic() {
        let cfg = ChaosConfig::none(42)
            .with_retry(RetryPolicy::standard(Some(8)))
            .with_hedge(0.25);
        assert!(cfg.schedule_for(4).is_empty(), "no injection draws nothing");

        let chaotic = ChaosConfig {
            injection: Some(FaultInjection::crashes(20.0, 200.0)),
            ..ChaosConfig::none(42)
        };
        let a = chaotic.schedule_for(4);
        let b = chaotic.schedule_for(4);
        assert!(!a.is_empty());
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].at_s <= w[1].at_s), "sorted");
    }

    #[test]
    fn per_replica_streams_are_independent_of_fleet_size() {
        let cfg = ChaosConfig {
            injection: Some(FaultInjection::crashes(15.0, 300.0)),
            ..ChaosConfig::none(7)
        };
        let small: Vec<FaultEvent> = cfg
            .schedule_for(2)
            .into_iter()
            .filter(|f| f.replica == 1)
            .collect();
        let large: Vec<FaultEvent> = cfg
            .schedule_for(6)
            .into_iter()
            .filter(|f| f.replica == 1)
            .collect();
        assert!(!small.is_empty());
        assert_eq!(
            small, large,
            "replica 1's faults must not depend on fleet size"
        );
    }

    #[test]
    fn scenario_conversion_maps_every_axis() {
        let s = llmsim_workload::ChaosScenario::flaky_network();
        let cfg = ChaosConfig::from_scenario(9, &s);
        let inj = cfg.injection.expect("finite MTBF enables injection");
        assert_eq!(inj.mtbf_s, s.mtbf_s);
        assert_eq!(inj.partition_s, s.partition_s);
        assert_eq!(cfg.retry.max_retries, s.max_retries);
        assert_eq!(cfg.retry.retry_budget, s.retry_budget);
        assert_eq!(
            cfg.hedge.map(|h| h.after_frac),
            s.hedge_after_frac,
            "hedging carries over"
        );
        let base = ChaosConfig::from_scenario(9, &llmsim_workload::ChaosScenario::fault_free());
        assert!(base.injection.is_none(), "infinite MTBF disables injection");
    }

    #[test]
    #[should_panic(expected = "at least one fault kind")]
    fn zero_weight_injection_panics() {
        let mut inj = FaultInjection::crashes(10.0, 100.0);
        inj.crash_weight = 0.0;
        let cfg = ChaosConfig {
            injection: Some(inj),
            ..ChaosConfig::none(1)
        };
        let _ = cfg.schedule_for(1);
    }

    #[test]
    fn kind_mix_follows_weights() {
        let inj = FaultInjection {
            mtbf_s: 5.0,
            horizon_s: 2000.0,
            crash_weight: 0.5,
            slowdown_weight: 0.5,
            partition_weight: 0.0,
            drain_weight: 0.0,
            slowdown_factor: 2.0,
            slowdown_s: 3.0,
            partition_s: 0.0,
            drain_s: 0.0,
        };
        let cfg = ChaosConfig {
            injection: Some(inj),
            ..ChaosConfig::none(3)
        };
        let events = cfg.schedule_for(1);
        assert!(events.len() > 100, "dense process over a long horizon");
        let crashes = events.iter().filter(|f| f.kind == FaultKind::Crash).count();
        let frac = crashes as f64 / events.len() as f64;
        assert!(
            (0.35..0.65).contains(&frac),
            "crash fraction {frac} should be near the 0.5 weight"
        );
        assert!(
            !events.iter().any(|f| matches!(
                f.kind,
                FaultKind::Partition { .. } | FaultKind::Drain { .. }
            )),
            "zero-weight kinds never drawn"
        );
    }
}
