//! The fleet simulation loop.
//!
//! `simulate_fleet` replays a request trace against a heterogeneous fleet
//! of replicas under a pluggable routing policy, with optional SLO
//! accounting, autoscaling, and fault injection. Everything is analytic
//! and seeded: the only sources of time are the backends' cost models and
//! the only randomness is the chaos configuration's [`SimRng`] streams,
//! so two runs of the same configuration produce byte-identical reports.
//!
//! # Fault semantics
//!
//! With a [`ChaosConfig`] installed, replica-scoped faults become engine
//! events. A **crash** destroys every queued and in-service request on
//! the victim (each becomes a backend fault, re-routed under the
//! fleet-wide retry budget with exponential backoff) and the replica pays
//! its hardware-derived cold start again before serving. A **slowdown**
//! multiplies the service time of work *dispatched* during its window. A
//! **partition** hides the replica from the router for its window while
//! accepted work keeps running. A **drain** stops admission, lets
//! accepted work finish, and restores the replica when the window closes.
//!
//! Outcomes and spans are computed at dispatch but *emitted* at the
//! terminal event: a crash or a lost hedge race can still invalidate a
//! dispatched attempt. Invalidation is epoch-based — each crash bumps the
//! replica's epoch, and completion/recovery events carry the epoch they
//! were scheduled under — so stale events are recognized and dropped
//! without ever touching the heap.

use crate::autoscale::{AutoscaleConfig, FleetGauge, ScaleDecision};
use crate::event::{EventKind, EventQueue};
use crate::faults::{ChaosConfig, FaultKind};
use crate::metrics::{ClusterOutcome, FleetReport, OutcomeState, ReplicaStats, SloTargets};
use crate::replica::{InFlight, Replica, ReplicaConfig, ReplicaStart, ReplicaState};
use crate::router::{HealthSignal, ReplicaView, RouterPolicy};
use llmsim_core::resilience::SimRng;
use llmsim_core::trace::{NullSink, SpanOutcome, SpanRecord, SpanSink};
use llmsim_core::CostModel;
use llmsim_model::ModelConfig;
use serde::Serialize;

/// Substream tag for retry-backoff jitter, distinct from the per-replica
/// fault streams (which use the replica index as the tag).
const RETRY_JITTER_STREAM: u64 = 0x5245_5452_594A_4954;

/// One request in the cluster workload.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ClusterRequest {
    /// Workload index (also the outcome index in the report).
    pub id: usize,
    /// Arrival time at the router.
    pub arrival_s: f64,
    /// Prompt tokens.
    pub prompt_len: u64,
    /// Tokens to generate.
    pub gen_len: u64,
    /// Index into [`ClusterConfig::models`].
    pub model: usize,
}

impl ClusterRequest {
    /// Prompt + generation token footprint.
    #[must_use]
    pub fn total_tokens(&self) -> u64 {
        self.prompt_len + self.gen_len
    }
}

/// A fleet: replicas, the models they serve, and optional SLO, autoscaler
/// and chaos configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// The fleet, in routing order.
    pub replicas: Vec<ReplicaConfig>,
    /// Models served by the fleet; requests index into this list.
    pub models: Vec<ModelConfig>,
    /// Goodput target, if any.
    pub slo: Option<SloTargets>,
    /// Autoscaler, if any.
    pub autoscale: Option<AutoscaleConfig>,
    /// Fault injection and recovery machinery, if any. `None` and
    /// [`ChaosConfig::none`] are byte-identical (proptested).
    pub chaos: Option<ChaosConfig>,
}

impl ClusterConfig {
    /// A warm fleet with no SLO, no autoscaler, and no chaos.
    #[must_use]
    pub fn new(replicas: Vec<ReplicaConfig>, models: Vec<ModelConfig>) -> Self {
        ClusterConfig {
            replicas,
            models,
            slo: None,
            autoscale: None,
            chaos: None,
        }
    }

    /// Sets the goodput SLO.
    #[must_use]
    pub fn with_slo(mut self, slo: SloTargets) -> Self {
        self.slo = Some(slo);
        self
    }

    /// Enables the autoscaler.
    #[must_use]
    pub fn with_autoscale(mut self, autoscale: AutoscaleConfig) -> Self {
        self.autoscale = Some(autoscale);
        self
    }

    /// Installs fault injection and recovery machinery.
    #[must_use]
    pub fn with_chaos(mut self, chaos: ChaosConfig) -> Self {
        self.chaos = Some(chaos);
        self
    }
}

/// Service time of a request at batch width `batch`: one prefill pass at
/// the full prompt, then the exact sum of per-step decode costs over the
/// growing KV length. The first generated token comes out of the prefill
/// pass, so decode step `s` (0-based, `gen_len - 1` steps total) attends
/// over `prompt_len + 1 + s` context tokens — identical to what the
/// single-server iteration-level simulator charges a lone request.
///
/// The router's predictions and the replica's actual charging both call
/// this, so prediction error can only come from batch-width changes after
/// routing, never from the pricing itself. (An earlier version priced
/// every decode step at the mid-generation KV length; the cross-check
/// test below caught it drifting from the serving simulator on long
/// generations.)
fn predict_service_s(
    backend: &dyn CostModel,
    model: &ModelConfig,
    batch: u64,
    prompt_len: u64,
    gen_len: u64,
) -> f64 {
    let prefill = backend.prefill_time(model, batch, prompt_len).as_f64();
    (0..gen_len.saturating_sub(1)).fold(prefill, |acc, step| {
        acc + backend
            .decode_step_time(model, batch, prompt_len + 1 + step)
            .as_f64()
    })
}

/// Engine-side per-request bookkeeping across crash retries and hedges.
#[derive(Debug, Clone, Default)]
struct ReqRuntime {
    /// Terminal outcome written (exactly once per request).
    resolved: bool,
    /// Crash-recovery re-routes consumed so far.
    retries: u32,
    /// Hedged duplicate dispatched.
    hedged: bool,
    /// Replicas currently holding a live attempt (queued or in service).
    /// At most two entries: the primary and one hedge.
    attempts: Vec<usize>,
}

/// Runs the fleet simulation to completion and reports.
///
/// Requests may be in any order; they are replayed by arrival time (ties
/// in input order). A request is *rejected* when the policy returns
/// `None`, or returns a replica that cannot accept it — the engine never
/// silently over-fills a bounded queue on a policy's behalf. Under chaos,
/// a request lost to crashes whose retries are exhausted terminates as
/// *failed* instead.
///
/// # Panics
///
/// Panics if the fleet or model list is empty, if a request's model index
/// is out of range, or if the chaos configuration is invalid.
pub fn simulate_fleet(
    config: &ClusterConfig,
    router: &mut dyn RouterPolicy,
    requests: &[ClusterRequest],
) -> FleetReport {
    simulate_fleet_traced(config, router, requests, &mut NullSink)
}

/// [`simulate_fleet`] with per-request span tracing.
///
/// Every request's full phase timeline — arrival, queue delay, dispatch,
/// prefill end, aggregated decode time, completion (or rejection or
/// failure), the replica that served it and the batch width at dispatch —
/// is emitted to `sink` as a [`SpanRecord`] at its terminal event.
/// Tracing is observational only: the returned report is bit-identical to
/// [`simulate_fleet`]'s regardless of the sink (a proptest holds the
/// engine to this).
///
/// # Panics
///
/// Panics under the same conditions as [`simulate_fleet`].
pub fn simulate_fleet_traced(
    config: &ClusterConfig,
    router: &mut dyn RouterPolicy,
    requests: &[ClusterRequest],
    sink: &mut dyn SpanSink,
) -> FleetReport {
    assert!(!config.replicas.is_empty(), "fleet must have replicas");
    assert!(!config.models.is_empty(), "fleet must serve models");
    for r in requests {
        assert!(
            r.model < config.models.len(),
            "request {} references model {} but the fleet serves {}",
            r.id,
            r.model,
            config.models.len()
        );
    }

    let chaos = config.chaos.clone().unwrap_or_else(|| ChaosConfig::none(0));
    let fault_schedule = chaos.schedule_for(config.replicas.len());
    let mut retry_rng = SimRng::derive(chaos.seed, RETRY_JITTER_STREAM);
    let mut retry_budget_left: Option<u64> = chaos.retry.retry_budget;

    let mut replicas: Vec<Replica> = config
        .replicas
        .iter()
        .map(|cfg| Replica::new(cfg.clone()))
        .collect();
    let mut queue = EventQueue::new();

    // Cold starters begin paging weights at t = 0.
    for (i, replica) in replicas.iter_mut().enumerate() {
        if replica.cfg.start == ReplicaStart::Cold {
            let ready = replica.cfg.warmup_time(&config.models).as_f64();
            replica.state = ReplicaState::Warming { ready_at_s: ready };
            replica.warmups += 1;
            queue.push(ready, EventKind::WarmupDone { replica: i });
        }
    }
    // The entire fault schedule goes in at setup, before any arrival or
    // completion: a fault tied with another event on the timestamp fires
    // first (see the event-queue docs for why that order is load-bearing).
    for (i, f) in fault_schedule.iter().enumerate() {
        queue.push(f.at_s, EventKind::Fault { fault: i });
    }
    for req in requests {
        queue.push(req.arrival_s, EventKind::Arrival { request: req.id });
    }
    if let Some(auto) = &config.autoscale {
        queue.push(auto.interval_s, EventKind::ScaleTick);
    }

    let by_id = |id: usize| {
        requests
            .iter()
            .find(|r| r.id == id)
            .expect("request ids must be unique and present")
    };

    let mut outcomes: Vec<Option<ClusterOutcome>> = vec![None; requests.len()];
    let mut runtime: Vec<ReqRuntime> = vec![ReqRuntime::default(); requests.len()];
    let mut resolved = 0usize;
    let mut makespan_s = 0.0f64;
    let mut scale_ups = 0u64;
    let mut scale_downs = 0u64;
    let mut wasted_tokens = 0u64;
    let mut retries_total = 0u64;
    let mut hedges_total = 0u64;

    while let Some(event) = queue.pop() {
        let now = event.time_s;
        match event.kind {
            EventKind::Arrival { request } => {
                let req = *by_id(request);
                match route_once(&req, now, &[], &replicas, config, router) {
                    Some(i) => {
                        admit(
                            i,
                            &req,
                            now,
                            &mut replicas,
                            config,
                            requests,
                            &mut queue,
                            sink,
                        );
                        runtime[request].attempts.push(i);
                        if let Some(h) = &chaos.hedge {
                            // Hedge deadline: a fraction of the e2e SLO,
                            // or of the routed replica's own service
                            // estimate when the fleet has no SLO.
                            let deadline_s = match &config.slo {
                                Some(slo) => slo.e2e_s,
                                None => predict_service_s(
                                    replicas[i].cfg.backend.as_ref(),
                                    &config.models[req.model],
                                    1,
                                    req.prompt_len,
                                    req.gen_len,
                                ),
                            };
                            queue.push(
                                req.arrival_s + h.after_frac * deadline_s,
                                EventKind::HedgeFire { request },
                            );
                        }
                    }
                    None => {
                        outcomes[request] = Some(ClusterOutcome {
                            id: request,
                            model: req.model,
                            replica: None,
                            state: OutcomeState::Rejected,
                            queue_delay_s: None,
                            ttft_s: None,
                            e2e_s: None,
                            tokens: 0,
                            retries: 0,
                            hedged: false,
                        });
                        runtime[request].resolved = true;
                        resolved += 1;
                        if sink.enabled() {
                            sink.record(SpanRecord::rejected(
                                request as u64,
                                req.model,
                                req.arrival_s,
                            ));
                        }
                    }
                }
            }
            EventKind::Retry { request } => {
                if runtime[request].resolved {
                    continue;
                }
                let req = *by_id(request);
                match route_once(&req, now, &[], &replicas, config, router) {
                    Some(i) => {
                        admit(
                            i,
                            &req,
                            now,
                            &mut replicas,
                            config,
                            requests,
                            &mut queue,
                            sink,
                        );
                        runtime[request].attempts.push(i);
                    }
                    // Nowhere to go right now: burns another retry (or
                    // terminates) rather than waiting forever.
                    None => retry_or_fail(
                        request,
                        now,
                        &req,
                        &chaos,
                        &mut runtime,
                        &mut retry_budget_left,
                        &mut retry_rng,
                        &mut retries_total,
                        &mut queue,
                        &mut outcomes,
                        &mut resolved,
                        &mut makespan_s,
                        sink,
                    ),
                }
            }
            EventKind::HedgeFire { request } => {
                let rt = &runtime[request];
                if rt.resolved || rt.hedged || rt.attempts.is_empty() {
                    continue;
                }
                let exclude = rt.attempts.clone();
                let req = *by_id(request);
                if let Some(i) = route_once(&req, now, &exclude, &replicas, config, router) {
                    runtime[request].hedged = true;
                    hedges_total += 1;
                    admit(
                        i,
                        &req,
                        now,
                        &mut replicas,
                        config,
                        requests,
                        &mut queue,
                        sink,
                    );
                    runtime[request].attempts.push(i);
                }
            }
            EventKind::WarmupDone { replica } => {
                if let ReplicaState::Warming { ready_at_s } = replicas[replica].state {
                    if ready_at_s <= now {
                        replicas[replica].state = ReplicaState::Warm;
                        try_dispatch(
                            replica,
                            now,
                            &mut replicas,
                            config,
                            requests,
                            &mut queue,
                            sink,
                        );
                    }
                }
            }
            EventKind::Completion {
                replica,
                request,
                epoch,
            } => {
                if replicas[replica].epoch != epoch {
                    // Scheduled before a crash destroyed the attempt.
                    continue;
                }
                let Some(slot) = replicas[replica]
                    .active
                    .iter()
                    .position(|a| a.request == request)
                else {
                    // Hedge loser: cancelled when its twin won.
                    continue;
                };
                let inflight = replicas[replica].active.swap_remove(slot);
                let req = *by_id(request);
                replicas[replica].outstanding_tokens = replicas[replica]
                    .outstanding_tokens
                    .saturating_sub(req.total_tokens());
                makespan_s = makespan_s.max(now);
                resolved += 1;
                let rt = &mut runtime[request];
                rt.resolved = true;
                let losers: Vec<usize> = rt
                    .attempts
                    .iter()
                    .copied()
                    .filter(|&r| r != replica)
                    .collect();
                rt.attempts.clear();
                if let Some(mut out) = inflight.pending {
                    out.retries = rt.retries;
                    out.hedged = rt.hedged;
                    outcomes[request] = Some(out);
                }
                if let Some(span) = inflight.span {
                    sink.record(span);
                }
                router.observe(&HealthSignal::Success {
                    replica,
                    now_s: now,
                });
                for loser in losers {
                    wasted_tokens += cancel_attempt(loser, &req, now, &mut replicas);
                    try_dispatch(
                        loser,
                        now,
                        &mut replicas,
                        config,
                        requests,
                        &mut queue,
                        sink,
                    );
                }
                try_dispatch(
                    replica,
                    now,
                    &mut replicas,
                    config,
                    requests,
                    &mut queue,
                    sink,
                );
            }
            EventKind::Fault { fault } => {
                let f = fault_schedule[fault];
                match f.kind {
                    FaultKind::Crash => {
                        let r = &mut replicas[f.replica];
                        if matches!(r.state, ReplicaState::Standby | ReplicaState::Failed { .. }) {
                            // Parked or already down: nothing to kill.
                            continue;
                        }
                        r.epoch += 1;
                        r.crashes += 1;
                        r.warmups += 1;
                        let queued: Vec<InFlight> = r.queue.drain(..).collect();
                        let active: Vec<InFlight> = std::mem::take(&mut r.active);
                        r.outstanding_tokens = 0;
                        r.queued_backlog_s = 0.0;
                        // Refund unrun service; the partial run is waste.
                        for inf in &active {
                            r.busy_slot_s -= (inf.completion_s - now).max(0.0);
                            wasted_tokens += partial_tokens(inf, by_id(inf.request).gen_len, now);
                        }
                        let ready = now + r.cfg.warmup_time(&config.models).as_f64();
                        let epoch = r.epoch;
                        r.state = ReplicaState::Failed { ready_at_s: ready };
                        queue.push(
                            ready,
                            EventKind::RecoveryDone {
                                replica: f.replica,
                                epoch,
                            },
                        );
                        router.observe(&HealthSignal::Failure {
                            replica: f.replica,
                            now_s: now,
                        });
                        for inf in queued.iter().chain(active.iter()) {
                            let victim = inf.request;
                            let rt = &mut runtime[victim];
                            rt.attempts.retain(|&x| x != f.replica);
                            if rt.resolved || !rt.attempts.is_empty() {
                                // A hedge twin is still alive elsewhere.
                                continue;
                            }
                            let req = *by_id(victim);
                            retry_or_fail(
                                victim,
                                now,
                                &req,
                                &chaos,
                                &mut runtime,
                                &mut retry_budget_left,
                                &mut retry_rng,
                                &mut retries_total,
                                &mut queue,
                                &mut outcomes,
                                &mut resolved,
                                &mut makespan_s,
                                sink,
                            );
                        }
                    }
                    FaultKind::Slowdown { factor, duration_s } => {
                        let r = &mut replicas[f.replica];
                        r.slow_factor = factor;
                        r.slow_until_s = r.slow_until_s.max(now + duration_s);
                    }
                    FaultKind::Partition { duration_s } => {
                        let r = &mut replicas[f.replica];
                        r.partitioned_until_s = r.partitioned_until_s.max(now + duration_s);
                    }
                    FaultKind::Drain { duration_s } => {
                        let r = &mut replicas[f.replica];
                        if r.state == ReplicaState::Warm {
                            r.state = ReplicaState::Draining;
                            queue.push(
                                now + duration_s,
                                EventKind::DrainEnd {
                                    replica: f.replica,
                                    epoch: r.epoch,
                                },
                            );
                        }
                    }
                }
            }
            EventKind::RecoveryDone { replica, epoch } => {
                let r = &mut replicas[replica];
                if r.epoch != epoch {
                    // A second crash struck mid-recovery; its own
                    // RecoveryDone supersedes this one.
                    continue;
                }
                if matches!(r.state, ReplicaState::Failed { .. }) {
                    r.state = ReplicaState::Warm;
                    try_dispatch(
                        replica,
                        now,
                        &mut replicas,
                        config,
                        requests,
                        &mut queue,
                        sink,
                    );
                }
            }
            EventKind::DrainEnd { replica, epoch } => {
                let r = &mut replicas[replica];
                if r.epoch == epoch && r.state == ReplicaState::Draining {
                    r.state = ReplicaState::Warm;
                    try_dispatch(
                        replica,
                        now,
                        &mut replicas,
                        config,
                        requests,
                        &mut queue,
                        sink,
                    );
                }
            }
            EventKind::ScaleTick => {
                let Some(auto) = &config.autoscale else {
                    continue;
                };
                for r in replicas.iter_mut() {
                    if r.state == ReplicaState::Warm && r.in_flight() == 0 {
                        r.idle_ticks += 1;
                    } else {
                        r.idle_ticks = 0;
                    }
                }
                let gauge = FleetGauge {
                    active_replicas: replicas.iter().filter(|r| r.routable(now)).count(),
                    standby_replicas: replicas
                        .iter()
                        .filter(|r| r.state == ReplicaState::Standby)
                        .count(),
                    in_flight: replicas
                        .iter()
                        .filter(|r| r.routable(now))
                        .map(Replica::in_flight)
                        .sum(),
                    idle_eligible: replicas
                        .iter()
                        .filter(|r| {
                            r.state == ReplicaState::Warm
                                && r.in_flight() == 0
                                && r.idle_ticks >= auto.scale_down_idle_ticks
                        })
                        .count(),
                    failed_replicas: replicas
                        .iter()
                        .filter(|r| matches!(r.state, ReplicaState::Failed { .. }))
                        .count(),
                };
                match auto.decide(gauge) {
                    ScaleDecision::Up => {
                        if let Some(i) = replicas
                            .iter()
                            .position(|r| r.state == ReplicaState::Standby)
                        {
                            let ready = now + replicas[i].cfg.warmup_time(&config.models).as_f64();
                            replicas[i].state = ReplicaState::Warming { ready_at_s: ready };
                            replicas[i].warmups += 1;
                            scale_ups += 1;
                            queue.push(ready, EventKind::WarmupDone { replica: i });
                        }
                    }
                    ScaleDecision::Down => {
                        if let Some(i) = replicas.iter().position(|r| {
                            r.state == ReplicaState::Warm
                                && r.in_flight() == 0
                                && r.idle_ticks >= auto.scale_down_idle_ticks
                        }) {
                            replicas[i].state = ReplicaState::Standby;
                            replicas[i].idle_ticks = 0;
                            scale_downs += 1;
                        }
                    }
                    ScaleDecision::Hold => {}
                }
                // Keep ticking only while work remains unresolved.
                if resolved < requests.len() {
                    queue.push(now + auto.interval_s, EventKind::ScaleTick);
                }
            }
        }
    }

    debug_assert_eq!(resolved, requests.len(), "every request must terminate");
    let outcomes: Vec<ClusterOutcome> = outcomes
        .into_iter()
        .map(|o| o.expect("every request must have a terminal outcome"))
        .collect();

    let generated_tokens: u64 = outcomes.iter().map(|o| o.tokens).sum();
    let goodput_tokens: u64 = outcomes
        .iter()
        .filter(|o| match &config.slo {
            // Rejected/unserved outcomes have no latencies and always
            // count as SLO misses — `meets_slo` handles them without
            // unwrapping.
            Some(slo) => o.meets_slo(slo),
            None => o.state == OutcomeState::Completed,
        })
        .map(|o| o.tokens)
        .sum();

    let crashes: u64 = replicas.iter().map(|r| r.crashes).sum();
    let replica_stats = replicas
        .iter()
        .map(|r| ReplicaStats {
            name: r.cfg.backend.name(),
            served: r.dispatched,
            busy_slot_s: r.busy_slot_s,
            utilization: if makespan_s > 0.0 {
                r.busy_slot_s / (makespan_s * r.cfg.max_batch as f64)
            } else {
                0.0
            },
            warmups: r.warmups,
            crashes: r.crashes,
        })
        .collect();

    FleetReport {
        router: router.name(),
        outcomes,
        makespan_s,
        generated_tokens,
        goodput_tokens,
        wasted_tokens,
        retries: retries_total,
        hedges: hedges_total,
        crashes,
        slo: config.slo,
        replicas: replica_stats,
        scale_ups,
        scale_downs,
    }
}

/// Routes one attempt of `req` at `now_s`: builds the fleet snapshot
/// (hiding `exclude`d replicas — those already hosting an attempt of this
/// request), asks the policy, and re-validates the choice.
fn route_once(
    req: &ClusterRequest,
    now_s: f64,
    exclude: &[usize],
    replicas: &[Replica],
    config: &ClusterConfig,
    router: &mut dyn RouterPolicy,
) -> Option<usize> {
    let views: Vec<ReplicaView> = replicas
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let mut v = view_of(i, r, &config.models[req.model], req, now_s);
            if exclude.contains(&i) {
                v.queue_cap = 0;
            }
            v
        })
        .collect();
    router
        .route(req, &views)
        .filter(|&i| i < replicas.len() && replicas[i].can_accept(now_s) && !exclude.contains(&i))
}

/// Enqueues one attempt of `req` on replica `i` and dispatches if a slot
/// is free.
#[allow(clippy::too_many_arguments)]
fn admit(
    i: usize,
    req: &ClusterRequest,
    now_s: f64,
    replicas: &mut [Replica],
    config: &ClusterConfig,
    requests: &[ClusterRequest],
    queue: &mut EventQueue,
    sink: &mut dyn SpanSink,
) {
    let est = predict_service_s(
        replicas[i].cfg.backend.as_ref(),
        &config.models[req.model],
        1,
        req.prompt_len,
        req.gen_len,
    );
    replicas[i].queue.push_back(InFlight::queued(req.id, est));
    replicas[i].outstanding_tokens += req.total_tokens();
    replicas[i].queued_backlog_s += est;
    try_dispatch(i, now_s, replicas, config, requests, queue, sink);
}

/// Schedules another crash-recovery attempt for `request`, or terminates
/// it as failed when its per-request retries or the fleet-wide budget are
/// exhausted. Backoff is exponential with deterministic seeded jitter.
#[allow(clippy::too_many_arguments)]
fn retry_or_fail(
    request: usize,
    now_s: f64,
    req: &ClusterRequest,
    chaos: &ChaosConfig,
    runtime: &mut [ReqRuntime],
    retry_budget_left: &mut Option<u64>,
    retry_rng: &mut SimRng,
    retries_total: &mut u64,
    queue: &mut EventQueue,
    outcomes: &mut [Option<ClusterOutcome>],
    resolved: &mut usize,
    makespan_s: &mut f64,
    sink: &mut dyn SpanSink,
) {
    let rt = &mut runtime[request];
    let budget_ok = !matches!(*retry_budget_left, Some(0));
    if rt.retries < chaos.retry.max_retries && budget_ok {
        if let Some(b) = *retry_budget_left {
            *retry_budget_left = Some(b - 1);
        }
        rt.retries += 1;
        *retries_total += 1;
        let backoff_s = chaos.retry.base_backoff_s
            * chaos.retry.multiplier.powi(rt.retries as i32 - 1)
            * (1.0 + chaos.retry.jitter_frac * retry_rng.next_f64());
        queue.push(now_s + backoff_s, EventKind::Retry { request });
    } else {
        rt.resolved = true;
        *resolved += 1;
        *makespan_s = makespan_s.max(now_s);
        outcomes[request] = Some(ClusterOutcome {
            id: request,
            model: req.model,
            replica: None,
            state: OutcomeState::Failed,
            queue_delay_s: None,
            ttft_s: None,
            e2e_s: None,
            tokens: 0,
            retries: rt.retries,
            hedged: rt.hedged,
        });
        if sink.enabled() {
            sink.record(SpanRecord::failed(
                request as u64,
                req.model,
                req.arrival_s,
                now_s,
            ));
        }
    }
}

/// Removes a live attempt of `req` from replica `idx` (the hedge loser
/// after its twin won). Returns the attempt's partial generation as
/// wasted tokens — zero if it was still queued. The loser's scheduled
/// completion event, if any, becomes stale (no matching active entry).
fn cancel_attempt(idx: usize, req: &ClusterRequest, now_s: f64, replicas: &mut [Replica]) -> u64 {
    let r = &mut replicas[idx];
    if let Some(pos) = r.queue.iter().position(|q| q.request == req.id) {
        if let Some(inf) = r.queue.remove(pos) {
            r.queued_backlog_s = (r.queued_backlog_s - inf.est_service_s).max(0.0);
            r.outstanding_tokens = r.outstanding_tokens.saturating_sub(req.total_tokens());
        }
        0
    } else if let Some(pos) = r.active.iter().position(|a| a.request == req.id) {
        let inf = r.active.swap_remove(pos);
        r.outstanding_tokens = r.outstanding_tokens.saturating_sub(req.total_tokens());
        // Refund the unrun tail of the slot; the run-so-far is waste.
        r.busy_slot_s -= (inf.completion_s - now_s).max(0.0);
        partial_tokens(&inf, req.gen_len, now_s)
    } else {
        0
    }
}

/// Tokens a dispatched attempt had generated by `now_s`, pro-rated over
/// its charged service time.
fn partial_tokens(inf: &InFlight, gen_len: u64, now_s: f64) -> u64 {
    if inf.service_s > 0.0 {
        let frac = ((now_s - inf.dispatch_s) / inf.service_s).clamp(0.0, 1.0);
        (gen_len as f64 * frac).floor() as u64
    } else {
        0
    }
}

/// Snapshot one replica for the router, pricing `req` on its backend.
fn view_of(
    idx: usize,
    replica: &Replica,
    model: &ModelConfig,
    req: &ClusterRequest,
    now_s: f64,
) -> ReplicaView {
    let routable = replica.routable(now_s);
    ReplicaView {
        idx,
        now_s,
        name: replica.cfg.backend.name(),
        queue_len: replica.queue.len(),
        active: replica.active.len(),
        // Standbys (and failed, draining or partitioned replicas) are
        // invisible to routers: report zero capacity.
        queue_cap: if routable { replica.cfg.queue_cap } else { 0 },
        max_batch: replica.cfg.max_batch,
        outstanding_tokens: replica.outstanding_tokens,
        warm: replica.state == ReplicaState::Warm,
        warmup_remaining_s: replica.warmup_remaining_s(now_s),
        est_start_delay_s: replica.est_start_delay_s(now_s),
        est_service_s: predict_service_s(
            replica.cfg.backend.as_ref(),
            model,
            1,
            req.prompt_len,
            req.gen_len,
        ),
        resident: replica.cfg.backend.holds_resident(model),
    }
}

/// Moves queued requests into free batch slots on a warm (or draining)
/// replica, scheduling their completions. Service time is priced at the
/// batch width *after* admission, so later co-runners slow a dispatch
/// down exactly as batching does on the single-server simulator, then
/// scaled by any open slowdown window. The outcome and span this attempt
/// will report are computed here — at dispatch, from dispatch-time values
/// — but emitted only when the completion event survives to fire.
fn try_dispatch(
    idx: usize,
    now_s: f64,
    replicas: &mut [Replica],
    config: &ClusterConfig,
    requests: &[ClusterRequest],
    queue: &mut EventQueue,
    sink: &mut dyn SpanSink,
) {
    loop {
        let r = &mut replicas[idx];
        if !r.can_dispatch() || (r.active.len() as u64) >= r.cfg.max_batch || r.queue.is_empty() {
            return;
        }
        let Some(mut inflight) = r.queue.pop_front() else {
            return;
        };
        r.queued_backlog_s = (r.queued_backlog_s - inflight.est_service_s).max(0.0);

        let req = requests
            .iter()
            .find(|q| q.id == inflight.request)
            .expect("dispatched request must exist");
        let model = &config.models[req.model];
        let batch = r.active.len() as u64 + 1;
        // Multiplying by the slowdown factor is exact: the factor is 1.0
        // outside any window, and x × 1.0 is bitwise x.
        let slow = r.slowdown_at(now_s);
        let prefill = r
            .cfg
            .backend
            .prefill_time(model, batch, req.prompt_len)
            .as_f64()
            * slow;
        let service = predict_service_s(
            r.cfg.backend.as_ref(),
            model,
            batch,
            req.prompt_len,
            req.gen_len,
        ) * slow;
        let queue_delay = now_s - req.arrival_s;
        let completion = now_s + service;

        r.busy_slot_s += service;
        r.dispatched += 1;
        inflight.completion_s = completion;
        inflight.dispatch_s = now_s;
        inflight.service_s = service;
        inflight.pending = Some(ClusterOutcome {
            id: req.id,
            model: req.model,
            replica: Some(idx),
            state: OutcomeState::Completed,
            queue_delay_s: Some(queue_delay),
            ttft_s: Some(queue_delay + prefill),
            e2e_s: Some(queue_delay + service),
            tokens: req.gen_len,
            retries: 0,
            hedged: false,
        });
        if sink.enabled() {
            inflight.span = Some(SpanRecord {
                id: req.id as u64,
                model: req.model,
                replica: Some(idx),
                outcome: SpanOutcome::Completed,
                arrival_s: req.arrival_s,
                queue_delay_s: queue_delay,
                dispatch_s: now_s,
                prefill_end_s: now_s + prefill,
                decode_s: service - prefill,
                decode_steps: req.gen_len.saturating_sub(1),
                completion_s: completion,
                batch_at_dispatch: batch,
            });
        }
        queue.push(
            completion,
            EventKind::Completion {
                replica: idx,
                request: req.id,
                epoch: r.epoch,
            },
        );
        r.active.push(inflight);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::{HeteroAware, JoinShortestQueue, RoundRobin};
    use llmsim_core::{CostModel, CpuBackend};
    use llmsim_hw::{presets, NumaConfig};
    use llmsim_model::{families, DType};
    use std::sync::Arc;

    fn cpu_fleet(n: usize) -> ClusterConfig {
        let replicas = (0..n)
            .map(|_| {
                let backend = CpuBackend::new(
                    presets::spr_max_9468(),
                    NumaConfig::QUAD_FLAT,
                    48,
                    DType::Bf16,
                )
                .expect("valid backend");
                ReplicaConfig::warm(Arc::new(backend) as Arc<dyn CostModel + Send + Sync>)
            })
            .collect();
        ClusterConfig::new(replicas, vec![families::opt_13b()])
    }

    fn trace(n: usize, gap_s: f64) -> Vec<ClusterRequest> {
        (0..n)
            .map(|i| ClusterRequest {
                id: i,
                arrival_s: i as f64 * gap_s,
                prompt_len: 128,
                gen_len: 32,
                model: 0,
            })
            .collect()
    }

    #[test]
    fn every_request_terminates() {
        let config = cpu_fleet(2);
        let reqs = trace(20, 0.05);
        let report = simulate_fleet(&config, &mut RoundRobin::new(), &reqs);
        assert_eq!(report.outcomes.len(), 20);
        assert_eq!(report.completed() + report.rejected(), 20);
        assert!(report.completed() > 0);
        assert!(report.makespan_s > 0.0);
    }

    #[test]
    fn same_seed_same_report() {
        let config = cpu_fleet(3);
        let reqs = trace(30, 0.02);
        let a = simulate_fleet(&config, &mut JoinShortestQueue, &reqs);
        let b = simulate_fleet(&config, &mut JoinShortestQueue, &reqs);
        assert_eq!(a.render(), b.render());
        assert_eq!(format!("{:?}", a.outcomes), format!("{:?}", b.outcomes));
    }

    #[test]
    fn cold_replica_pays_warmup_before_serving() {
        let mut config = cpu_fleet(1);
        config.replicas[0].start = ReplicaStart::Cold;
        let reqs = trace(1, 0.0);
        let report = simulate_fleet(&config, &mut RoundRobin::new(), &reqs);
        let warmup = config.replicas[0].warmup_time(&config.models).as_f64();
        assert!(warmup > 0.0);
        let delay = report.outcomes[0].queue_delay_s.unwrap();
        assert!(
            delay >= warmup * 0.999,
            "queue delay {delay} should cover warmup {warmup}"
        );
        assert_eq!(report.replicas[0].warmups, 1);
    }

    #[test]
    fn router_prediction_matches_single_server_simulation() {
        // Cross-check: for a single request on an otherwise idle replica
        // (batch width 1 throughout), the router's predicted service time
        // — and therefore the fleet's reported e2e — must agree with the
        // single-server iteration-level simulator pricing the same
        // request on the same backend. Both now charge prefill plus the
        // exact per-step decode sum over the growing KV length.
        use llmsim_core::serving::{simulate, SchedulingPolicy, ServingConfig, ServingRequest};
        use llmsim_core::CpuBackend;

        let model = families::opt_13b();
        let backend = CpuBackend::paper_spr();
        for (prompt_len, gen_len) in [(128, 32), (64, 1), (512, 100), (1, 2)] {
            let fleet = ClusterConfig::new(
                vec![ReplicaConfig::warm(
                    Arc::new(CpuBackend::paper_spr()) as Arc<dyn CostModel + Send + Sync>
                )],
                vec![model.clone()],
            );
            let req = ClusterRequest {
                id: 0,
                arrival_s: 0.0,
                prompt_len,
                gen_len,
                model: 0,
            };
            let fleet_e2e = simulate_fleet(&fleet, &mut RoundRobin::new(), &[req]).outcomes[0]
                .e2e_s
                .unwrap();
            let serving_e2e = simulate(
                &backend,
                &model,
                &ServingConfig {
                    max_batch: 1,
                    policy: SchedulingPolicy::IterationLevel,
                },
                &[ServingRequest {
                    id: 0,
                    arrival_s: 0.0,
                    prompt_len,
                    gen_len,
                }],
            )
            .outcomes[0]
                .e2e_s;
            let rel = (fleet_e2e - serving_e2e).abs() / serving_e2e;
            assert!(
                rel < 1e-9,
                "prompt {prompt_len} gen {gen_len}: fleet {fleet_e2e} vs serving {serving_e2e} \
                 (rel err {rel})"
            );
        }
    }

    #[test]
    fn spans_reconcile_with_fleet_outcomes() {
        use llmsim_core::trace::{SpanOutcome, VecSink};

        let mut config = cpu_fleet(2);
        // Force some rejections: tiny queue on both replicas.
        for r in &mut config.replicas {
            r.queue_cap = 3;
            r.max_batch = 2;
        }
        let reqs = trace(12, 0.01);
        let mut sink = VecSink::new();
        let traced = simulate_fleet_traced(&config, &mut RoundRobin::new(), &reqs, &mut sink);

        // Tracing is observational: identical report with and without.
        let plain = simulate_fleet(&config, &mut RoundRobin::new(), &reqs);
        assert_eq!(traced.render(), plain.render());
        assert_eq!(
            format!("{:?}", traced.outcomes),
            format!("{:?}", plain.outcomes)
        );

        // One span per request, reconciling with the outcome's latencies.
        assert_eq!(sink.spans.len(), reqs.len());
        for o in &traced.outcomes {
            let s = sink
                .spans
                .iter()
                .find(|s| s.id == o.id as u64)
                .expect("span per request");
            match o.state {
                OutcomeState::Completed => {
                    assert_eq!(s.outcome, SpanOutcome::Completed);
                    assert_eq!(s.replica, o.replica);
                    assert!((s.queue_delay_s - o.queue_delay_s.unwrap()).abs() < 1e-9);
                    assert!((s.ttft_s() - o.ttft_s.unwrap()).abs() < 1e-9);
                    assert!((s.e2e_s() - o.e2e_s.unwrap()).abs() < 1e-9);
                    let phase_sum = s.queue_delay_s + s.prefill_s() + s.decode_s;
                    assert!(
                        (phase_sum - s.e2e_s()).abs() < 1e-9,
                        "phases must sum to e2e"
                    );
                    assert!(s.batch_at_dispatch >= 1 && s.batch_at_dispatch <= 2);
                }
                OutcomeState::Rejected => {
                    assert_eq!(s.outcome, SpanOutcome::Rejected);
                    assert!(s.e2e_s().is_nan());
                }
                OutcomeState::Failed => unreachable!("no chaos configured"),
            }
        }
        // Deterministic TSV: same run, same bytes.
        let mut sink2 = VecSink::new();
        let _ = simulate_fleet_traced(&config, &mut RoundRobin::new(), &reqs, &mut sink2);
        assert_eq!(sink.to_tsv(), sink2.to_tsv());
    }

    #[test]
    fn overload_rejects_instead_of_growing_unbounded() {
        let mut config = cpu_fleet(1);
        config.replicas[0] = config.replicas[0]
            .clone()
            .with_queue_cap(2)
            .with_max_batch(1);
        // All at t=0: only queue_cap can be admitted.
        let reqs = trace(10, 0.0);
        let report = simulate_fleet(&config, &mut HeteroAware, &reqs);
        assert_eq!(report.completed(), 2);
        assert_eq!(report.rejected(), 8);
        assert!(report.reject_rate() > 0.7);
    }
}
